//! A classic Fibonacci heap (Fredman & Tarjan) with `O(1)` amortized
//! `push`/`decrease_key`/`meld` and `O(log n)` amortized `pop_min`.
//!
//! The ICDE'09 community-search paper uses a Fibonacci heap to order the
//! *can-list* of core candidates in `COMM-k` (its Algorithm 5 relies on
//! `enheap` being `O(1)` and `deheap` being `O(log(p·l))`), and the same
//! structure doubles as a priority queue for Dijkstra with decrease-key.
//!
//! Nodes live in a slab arena; [`FibHeap::push`] returns a [`NodeRef`]
//! handle that stays valid until the node is popped or the heap cleared.
//! Handles are generation-checked, so using a stale handle returns an error
//! instead of corrupting the heap.
//!
//! # Example
//! ```
//! use comm_fibheap::FibHeap;
//!
//! let mut h = FibHeap::new();
//! let a = h.push(5u64, "a");
//! let _b = h.push(3, "b");
//! h.decrease_key(a, 1).unwrap();
//! assert_eq!(h.pop_min().map(|(k, v)| (k, v)), Some((1, "a")));
//! assert_eq!(h.pop_min().map(|(k, v)| (k, v)), Some((3, "b")));
//! assert!(h.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

/// A handle to a live heap node, returned by [`FibHeap::push`].
///
/// The handle is invalidated when its node is popped; a stale handle is
/// detected via a generation counter and rejected by the mutating methods.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef {
    slot: u32,
    gen: u32,
}

impl fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeRef({}@{})", self.slot, self.gen)
    }
}

/// Errors returned by handle-based operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The handle refers to a node that was already removed.
    StaleHandle,
    /// `decrease_key` was called with a key greater than the current key.
    KeyNotDecreased,
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::StaleHandle => write!(f, "stale Fibonacci-heap handle"),
            HeapError::KeyNotDecreased => {
                write!(f, "decrease_key called with a larger key")
            }
        }
    }
}

impl std::error::Error for HeapError {}

struct Node<K, V> {
    /// `Some` while the node is live; taken on pop so slots stay stable
    /// (handle slots are never relocated).
    data: Option<(K, V)>,
    parent: u32,
    child: u32,
    left: u32,
    right: u32,
    degree: u32,
    gen: u32,
    mark: bool,
}

/// A min-ordered Fibonacci heap mapping keys `K` to payloads `V`.
pub struct FibHeap<K, V> {
    nodes: Vec<Node<K, V>>,
    free: Vec<u32>,
    min: u32,
    len: usize,
}

impl<K: Ord, V> Default for FibHeap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> FibHeap<K, V> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        FibHeap {
            nodes: Vec::new(),
            free: Vec::new(),
            min: NIL,
            len: 0,
        }
    }

    /// Creates an empty heap with room for `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        FibHeap {
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            min: NIL,
            len: 0,
        }
    }

    /// Number of elements currently in the heap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every element. Outstanding handles all become stale.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.min = NIL;
        self.len = 0;
    }

    fn alloc(&mut self, key: K, value: V) -> u32 {
        if let Some(slot) = self.free.pop() {
            let gen = self.nodes[slot as usize].gen;
            self.nodes[slot as usize] = Node {
                data: Some((key, value)),
                parent: NIL,
                child: NIL,
                left: slot,
                right: slot,
                degree: 0,
                gen,
                mark: false,
            };
            slot
        } else {
            let slot = self.nodes.len() as u32;
            self.nodes.push(Node {
                data: Some((key, value)),
                parent: NIL,
                child: NIL,
                left: slot,
                right: slot,
                degree: 0,
                gen: 0,
                mark: false,
            });
            slot
        }
    }

    #[inline]
    fn key_of(&self, i: u32) -> &K {
        &self.nodes[i as usize].data.as_ref().expect("live node").0
    }

    /// Splices node `x` (a singleton ring) into the ring containing `at`.
    fn splice_into_ring(&mut self, at: u32, x: u32) {
        let at_right = self.nodes[at as usize].right;
        self.nodes[x as usize].left = at;
        self.nodes[x as usize].right = at_right;
        self.nodes[at as usize].right = x;
        self.nodes[at_right as usize].left = x;
    }

    /// Unlinks node `x` from its sibling ring, leaving it a singleton.
    fn unlink(&mut self, x: u32) {
        let l = self.nodes[x as usize].left;
        let r = self.nodes[x as usize].right;
        self.nodes[l as usize].right = r;
        self.nodes[r as usize].left = l;
        self.nodes[x as usize].left = x;
        self.nodes[x as usize].right = x;
    }

    /// Inserts `(key, value)` and returns a handle to the new node.
    /// Amortized `O(1)`.
    pub fn push(&mut self, key: K, value: V) -> NodeRef {
        let slot = self.alloc(key, value);
        if self.min == NIL {
            self.min = slot;
        } else {
            self.splice_into_ring(self.min, slot);
            if self.key_of(slot) < self.key_of(self.min) {
                self.min = slot;
            }
        }
        self.len += 1;
        NodeRef {
            slot,
            gen: self.nodes[slot as usize].gen,
        }
    }

    /// Returns the minimum key/value without removing it.
    pub fn peek_min(&self) -> Option<(&K, &V)> {
        if self.min == NIL {
            None
        } else {
            let (k, v) = self.nodes[self.min as usize].data.as_ref()?;
            Some((k, v))
        }
    }

    fn check(&self, r: NodeRef) -> Result<(), HeapError> {
        let n = self
            .nodes
            .get(r.slot as usize)
            .ok_or(HeapError::StaleHandle)?;
        if n.data.is_none() || n.gen != r.gen {
            return Err(HeapError::StaleHandle);
        }
        Ok(())
    }

    /// Reads the key of a live node.
    pub fn key(&self, r: NodeRef) -> Result<&K, HeapError> {
        self.check(r)?;
        Ok(self.key_of(r.slot))
    }

    /// Reads the payload of a live node.
    pub fn value(&self, r: NodeRef) -> Result<&V, HeapError> {
        self.check(r)?;
        Ok(&self.nodes[r.slot as usize]
            .data
            .as_ref()
            .expect("live node")
            .1)
    }

    /// Cuts `x` from its parent and moves it to the root ring.
    fn cut(&mut self, x: u32, parent: u32) {
        // Fix parent's child pointer / degree.
        if self.nodes[parent as usize].child == x {
            let r = self.nodes[x as usize].right;
            self.nodes[parent as usize].child = if r == x { NIL } else { r };
        }
        self.unlink(x);
        self.nodes[parent as usize].degree -= 1;
        self.nodes[x as usize].parent = NIL;
        self.nodes[x as usize].mark = false;
        self.splice_into_ring(self.min, x);
    }

    fn cascading_cut(&mut self, mut y: u32) {
        loop {
            let p = self.nodes[y as usize].parent;
            if p == NIL {
                return;
            }
            if !self.nodes[y as usize].mark {
                self.nodes[y as usize].mark = true;
                return;
            }
            self.cut(y, p);
            y = p;
        }
    }

    /// Lowers the key of the node behind `r` to `new_key`.
    /// Amortized `O(1)`. Fails if the handle is stale or the key larger.
    pub fn decrease_key(&mut self, r: NodeRef, new_key: K) -> Result<(), HeapError> {
        self.check(r)?;
        let x = r.slot;
        if &new_key > self.key_of(x) {
            return Err(HeapError::KeyNotDecreased);
        }
        self.nodes[x as usize].data.as_mut().expect("live node").0 = new_key;
        let parent = self.nodes[x as usize].parent;
        if parent != NIL && self.key_of(x) < self.key_of(parent) {
            self.cut(x, parent);
            self.cascading_cut(parent);
        }
        if self.key_of(x) < self.key_of(self.min) {
            self.min = x;
        }
        Ok(())
    }

    /// Removes and returns the minimum `(key, value)`.
    /// Amortized `O(log n)`.
    pub fn pop_min(&mut self) -> Option<(K, V)> {
        if self.min == NIL {
            return None;
        }
        let z = self.min;

        // Promote z's children to the root ring.
        let mut child = self.nodes[z as usize].child;
        while child != NIL {
            let next = {
                let r = self.nodes[child as usize].right;
                if r == child {
                    NIL
                } else {
                    r
                }
            };
            self.unlink(child);
            self.nodes[child as usize].parent = NIL;
            self.nodes[child as usize].mark = false;
            self.splice_into_ring(z, child);
            child = next;
        }
        self.nodes[z as usize].child = NIL;

        // Remove z from the root ring.
        let ring_rest = {
            let r = self.nodes[z as usize].right;
            if r == z {
                NIL
            } else {
                r
            }
        };
        self.unlink(z);
        self.len -= 1;

        if ring_rest == NIL {
            self.min = NIL;
        } else {
            self.min = ring_rest;
            self.consolidate(ring_rest);
        }

        // Retire slot z: take the payload, bump the generation so stale
        // handles are detected, and recycle the slot.
        let node = &mut self.nodes[z as usize];
        let data = node.data.take().expect("popped node was live");
        node.gen = node.gen.wrapping_add(1);
        self.free.push(z);
        Some(data)
    }

    fn consolidate(&mut self, start: u32) {
        // Collect roots first (the ring is mutated during linking).
        let mut roots = Vec::new();
        let mut cur = start;
        loop {
            roots.push(cur);
            cur = self.nodes[cur as usize].right;
            if cur == start {
                break;
            }
        }

        let max_degree = 2 + (usize::BITS - (self.len.max(1)).leading_zeros()) as usize * 2;
        let mut by_degree: Vec<u32> = vec![NIL; max_degree + 2];

        for mut x in roots {
            let mut d = self.nodes[x as usize].degree as usize;
            while by_degree[d] != NIL {
                let mut y = by_degree[d];
                by_degree[d] = NIL;
                if self.key_of(y) < self.key_of(x) {
                    std::mem::swap(&mut x, &mut y);
                }
                // Link y under x.
                self.unlink(y);
                self.nodes[y as usize].parent = x;
                self.nodes[y as usize].mark = false;
                let c = self.nodes[x as usize].child;
                if c == NIL {
                    self.nodes[x as usize].child = y;
                } else {
                    self.splice_into_ring(c, y);
                }
                self.nodes[x as usize].degree += 1;
                d += 1;
            }
            by_degree[d] = x;
        }

        // Find new min among the remaining roots.
        let mut min = NIL;
        for &root in by_degree.iter() {
            if root == NIL {
                continue;
            }
            if min == NIL || self.key_of(root) < self.key_of(min) {
                min = root;
            }
        }
        self.min = min;
    }

    /// Drains the heap in ascending key order.
    pub fn into_sorted_vec(mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(kv) = self.pop_min() {
            out.push(kv);
        }
        out
    }
}

impl<K: Ord + fmt::Debug, V> fmt::Debug for FibHeap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FibHeap(len={}", self.len)?;
        if let Some((k, _)) = self.peek_min() {
            write!(f, ", min={k:?}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_heap() {
        let mut h: FibHeap<u32, ()> = FibHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.peek_min(), None);
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn push_pop_ordering() {
        let mut h = FibHeap::new();
        for k in [5, 1, 4, 2, 3] {
            h.push(k, k * 10);
        }
        assert_eq!(h.len(), 5);
        let out: Vec<_> = h.into_sorted_vec();
        assert_eq!(out, vec![(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]);
    }

    #[test]
    fn duplicate_keys() {
        let mut h = FibHeap::new();
        h.push(1, "a");
        h.push(1, "b");
        h.push(0, "c");
        assert_eq!(h.pop_min().unwrap().0, 0);
        assert_eq!(h.pop_min().unwrap().0, 1);
        assert_eq!(h.pop_min().unwrap().0, 1);
    }

    #[test]
    fn decrease_key_moves_to_front() {
        let mut h = FibHeap::new();
        let _a = h.push(10, "a");
        let b = h.push(20, "b");
        h.push(5, "c");
        // Force some tree structure.
        assert_eq!(h.pop_min().unwrap().1, "c");
        h.decrease_key(b, 1).unwrap();
        assert_eq!(h.pop_min().unwrap(), (1, "b"));
        assert_eq!(h.pop_min().unwrap(), (10, "a"));
    }

    #[test]
    fn decrease_key_rejects_increase() {
        let mut h = FibHeap::new();
        let a = h.push(10, ());
        assert_eq!(h.decrease_key(a, 11), Err(HeapError::KeyNotDecreased));
        // Equal key is allowed (no-op).
        assert_eq!(h.decrease_key(a, 10), Ok(()));
    }

    #[test]
    fn stale_handle_detected() {
        let mut h = FibHeap::new();
        let a = h.push(1, ());
        assert_eq!(h.pop_min(), Some((1, ())));
        assert_eq!(h.decrease_key(a, 0), Err(HeapError::StaleHandle));
        assert_eq!(h.key(a), Err(HeapError::StaleHandle));
    }

    #[test]
    fn handle_reads() {
        let mut h = FibHeap::new();
        let a = h.push(7, "x");
        assert_eq!(h.key(a), Ok(&7));
        assert_eq!(h.value(a), Ok(&"x"));
    }

    #[test]
    fn clear_invalidates() {
        let mut h = FibHeap::new();
        let a = h.push(7, "x");
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.key(a), Err(HeapError::StaleHandle));
        // Heap remains usable.
        h.push(3, "y");
        assert_eq!(h.pop_min(), Some((3, "y")));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut h = FibHeap::new();
        h.push(4, 4);
        h.push(2, 2);
        assert_eq!(h.pop_min().unwrap().0, 2);
        h.push(1, 1);
        h.push(3, 3);
        assert_eq!(h.pop_min().unwrap().0, 1);
        assert_eq!(h.pop_min().unwrap().0, 3);
        assert_eq!(h.pop_min().unwrap().0, 4);
        assert!(h.pop_min().is_none());
    }

    #[test]
    fn slot_reuse_after_pop() {
        let mut h = FibHeap::new();
        for i in 0..100 {
            h.push(i, i);
        }
        for i in 0..50 {
            assert_eq!(h.pop_min().unwrap().0, i);
        }
        for i in 0..50 {
            h.push(i, i);
        }
        let out = h.into_sorted_vec();
        let keys: Vec<_> = out.iter().map(|&(k, _)| k).collect();
        let mut expect: Vec<_> = (0..50).chain(50..100).collect();
        expect.sort_unstable();
        assert_eq!(keys, expect);
    }

    #[test]
    fn heap_sort_large_random() {
        // Deterministic LCG so the test needs no rand dependency wiring here.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut h = FibHeap::new();
        let mut keys = Vec::new();
        for _ in 0..5000 {
            let k = next() % 10_000;
            keys.push(k);
            h.push(k, ());
        }
        keys.sort_unstable();
        let drained: Vec<u32> = h.into_sorted_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(drained, keys);
    }

    #[test]
    fn decrease_key_stress_matches_reference() {
        // Mirror operations against a simple sorted-vec reference model.
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut h = FibHeap::new();
        let mut live: Vec<(NodeRef, u32)> = Vec::new();
        let mut model: Vec<u32> = Vec::new();
        for step in 0..20_000u32 {
            match next() % 4 {
                0 | 1 => {
                    let k = next() % 1_000_000;
                    let r = h.push(k, step);
                    live.push((r, k));
                    model.push(k);
                }
                2 if !live.is_empty() => {
                    let i = (next() as usize) % live.len();
                    let (r, old) = live[i];
                    let nk = old / 2;
                    if h.decrease_key(r, nk).is_ok() {
                        live[i].1 = nk;
                        let pos = model.iter().position(|&m| m == old).unwrap();
                        model[pos] = nk;
                    }
                }
                _ => {
                    let got = h.pop_min().map(|(k, _)| k);
                    model.sort_unstable();
                    let want = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0))
                    };
                    assert_eq!(got, want, "mismatch at step {step}");
                    if let Some(k) = got {
                        // Drop one matching live handle (it is now stale).
                        if let Some(p) = live.iter().position(|&(_, lk)| lk == k) {
                            live.swap_remove(p);
                        }
                    }
                }
            }
            assert_eq!(h.len(), model.len());
        }
    }
}
