//! `COMM-k` (Algorithm 5): polynomial-delay enumeration of communities in
//! non-decreasing cost order, with run-time-extendable `k`.
//!
//! The enumerator keeps a *can-list* of candidate tuples
//! `(C, cost, pos, prev)` and a Fibonacci heap ordering the live candidates
//! by cost. Each deheap emits one community and subdivides the deheaped
//! tuple's subspace into at most `l − pos + 1` child subspaces whose best
//! cores are enheaped (Lawler's procedure). Because candidates persist on
//! the can-list, enlarging `k` at run time costs nothing: just keep calling
//! [`CommK::next`].
//!
//! # Paper erratum
//!
//! Algorithm 5's lines 20–23 reconstruct the deheaped tuple's subspace by
//! removing `h.C[h.pos]` for every chain ancestor `h`. Replaying the
//! paper's own running example shows this re-emits core `[v13, v8, v9]`
//! when expanding the tuple for `[v13, v8, v11]` (`pos = 3`, parent
//! `pos = 1`): the value that must leave `S_3` is the *parent's*
//! `C[3] = v9`, not the tuple's own `v11` (which line 25 removes anyway).
//! We therefore remove `h.prev.C[h.pos]` per chain entry — the exact
//! Lawler reconstruction — and the duplication-freeness property tests
//! cross-check the result against the naive enumerator.

use crate::error::QueryError;
use crate::get_community::get_community_guarded;
use crate::neighbor::NeighborSets;
use crate::types::{Community, Core, CostFn, QuerySpec};
use comm_fibheap::FibHeap;
use comm_graph::weight::index_to_u32;
use comm_graph::{
    DijkstraEngine, EnginePool, Graph, InterruptReason, NodeId, Outcome, Parallelism, RunGuard,
    Weight,
};
use std::collections::BTreeSet;

/// One entry of the can-list: the paper's can-tuple `(C, cost, pos, prev)`.
#[derive(Clone, Debug)]
struct CanTuple {
    core: Core,
    cost: Weight,
    /// The subdivision dimension: this tuple's core agrees with its
    /// parent's on every dimension `< pos` and differs at `pos`.
    pos: usize,
    /// Index of the parent can-tuple on the can-list.
    prev: Option<u32>,
}

/// Ordered polynomial-delay enumerator with interactive `k`.
///
/// ```
/// use comm_core::{CommK, QuerySpec};
/// use comm_datasets::paper_example::{fig4_graph, fig4_keyword_nodes, FIG4_RMAX};
/// use comm_graph::Weight;
///
/// let graph = fig4_graph();
/// let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
/// let mut topk = CommK::new(&graph, &spec);
/// let top2: Vec<_> = topk.by_ref().take(2).collect();
/// assert_eq!(top2[0].cost, Weight::new(7.0));
/// assert_eq!(top2[1].cost, Weight::new(10.0));
/// // The user enlarges k at run time: enumeration simply continues.
/// let next = topk.next().unwrap();
/// assert_eq!(next.cost, Weight::new(11.0));
/// ```
pub struct CommK<'g> {
    graph: &'g Graph,
    rmax: Weight,
    cost_fn: CostFn,
    l: usize,
    v_sets: Vec<Vec<NodeId>>,
    /// Scratch `S_i`, rebuilt per `Next()` from `V_i` minus chain removals.
    s_sets: Vec<BTreeSet<NodeId>>,
    ns: NeighborSets,
    engine: DijkstraEngine,
    can_list: Vec<CanTuple>,
    /// Min-heap over `(cost, can-list index)`; the index doubles as a
    /// deterministic tiebreaker (insertion order).
    heap: FibHeap<(Weight, u32), u32>,
    emitted: usize,
    peak_bytes: usize,
    started: bool,
    guard: RunGuard,
    /// Thread count for the initial keyword sweeps (default: serial).
    parallelism: Parallelism,
    /// Set once the guard trips; the iterator then yields `None` forever.
    interrupted: Option<InterruptReason>,
}

impl<'g> CommK<'g> {
    /// Prepares the enumeration; no work happens until the first `next()`.
    pub fn new(graph: &'g Graph, spec: &QuerySpec) -> CommK<'g> {
        let l = spec.l();
        assert!(l > 0, "need at least one keyword");
        CommK {
            graph,
            rmax: spec.rmax,
            cost_fn: spec.cost,
            l,
            v_sets: spec.keyword_nodes.clone(),
            s_sets: vec![BTreeSet::new(); l],
            ns: NeighborSets::new(l, graph.node_count()),
            engine: DijkstraEngine::new(graph.node_count()),
            can_list: Vec::new(),
            heap: FibHeap::new(),
            emitted: 0,
            peak_bytes: 0,
            started: false,
            guard: RunGuard::unlimited(),
            parallelism: Parallelism::serial(),
            interrupted: None,
        }
    }

    /// Sets the thread count for the `l` initial keyword sweeps; see
    /// [`CommAll::with_parallelism`] — output is bit-identical for every
    /// thread count. Default: [`Parallelism::serial`].
    ///
    /// [`CommAll::with_parallelism`]: crate::CommAll::with_parallelism
    pub fn with_parallelism(mut self, par: Parallelism) -> CommK<'g> {
        self.parallelism = par;
        self
    }

    /// Like [`new`](Self::new), but validates the spec against the graph
    /// instead of panicking on malformed input.
    pub fn try_new(graph: &'g Graph, spec: &QuerySpec) -> Result<CommK<'g>, QueryError> {
        spec.validate_for(graph)?;
        Ok(CommK::new(graph, spec))
    }

    /// Attaches an execution governor; see [`CommAll::with_guard`] for the
    /// contract (guarded output is always a prefix of the unguarded order).
    ///
    /// [`CommAll::with_guard`]: crate::CommAll::with_guard
    pub fn with_guard(mut self, guard: RunGuard) -> CommK<'g> {
        self.guard = guard;
        self
    }

    /// Why enumeration stopped early, if the guard tripped.
    pub fn interrupted(&self) -> Option<InterruptReason> {
        self.interrupted
    }

    /// Communities emitted so far (the current `k`).
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Size of the can-list (bounded by `l · k`, Theorem V.1).
    pub fn can_list_len(&self) -> usize {
        self.can_list.len()
    }

    /// Peak logical bytes: neighbor table + can-list + heap + `S_i`.
    pub fn peak_memory_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Total `Neighbor()` sweeps run so far — `O(l)` per emitted community
    /// (the paper's `O(c(l))` claim; contrast `lawler::LawlerK`).
    pub fn neighbor_sweeps(&self) -> usize {
        self.ns.sweeps()
    }

    fn track_memory(&mut self) -> Result<(), InterruptReason> {
        let can_bytes: usize = self.can_list.iter().map(|t| t.core.byte_size() + 24).sum();
        let heap_bytes = self.heap.len() * 48;
        let s_bytes: usize = self
            .s_sets
            .iter()
            .map(|s| s.len() * std::mem::size_of::<NodeId>() * 2)
            .sum();
        let bytes = self.ns.byte_size() + can_bytes + heap_bytes + s_bytes;
        if bytes > self.peak_bytes {
            self.peak_bytes = bytes;
        }
        self.guard.check_bytes(bytes)
    }

    fn recompute_from_s(&mut self, i: usize) -> Result<(), InterruptReason> {
        let seeds: Vec<NodeId> = self.s_sets[i].iter().copied().collect();
        self.ns.recompute_dim_guarded(
            self.graph,
            &mut self.engine,
            i,
            seeds,
            self.rmax,
            &self.guard,
        )
    }

    fn enheap(&mut self, tuple: CanTuple) {
        let idx = index_to_u32(self.can_list.len());
        let key = (tuple.cost, idx);
        self.can_list.push(tuple);
        self.heap.push(key, idx);
    }

    /// Lines 1–6: find the best core of the full space and enheap it. The
    /// `l` initial sweeps fan out per [`with_parallelism`](Self::with_parallelism).
    fn start(&mut self) -> Result<(), InterruptReason> {
        self.started = true;
        for i in 0..self.l {
            self.s_sets[i] = self.v_sets[i].iter().copied().collect();
        }
        let seeds: Vec<Vec<NodeId>> = self
            .s_sets
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        self.ns.recompute_all_guarded(
            self.graph,
            EnginePool::global(),
            &seeds,
            self.rmax,
            &self.guard,
            self.parallelism,
        )?;
        if let Some(best) = self.ns.best_core_with(self.cost_fn) {
            self.enheap(CanTuple {
                core: best.core,
                cost: best.cost,
                pos: 0,
                prev: None,
            });
        }
        self.track_memory()
    }

    /// The `Next()` procedure (lines 15–31): subdivide tuple `g`'s subspace
    /// and enheap the best core of each non-empty part.
    fn expand(&mut self, g_idx: u32) -> Result<(), InterruptReason> {
        let (g_core, g_pos) = {
            let g = &self.can_list[g_idx as usize];
            (g.core.clone(), g.pos)
        };
        // Preparation (lines 16–18): pin every dimension to the deheaped
        // core's node and reset S_i to the full V_i.
        for i in 0..self.l {
            self.ns.recompute_dim_guarded(
                self.graph,
                &mut self.engine,
                i,
                [g_core.get(i)],
                self.rmax,
                &self.guard,
            )?;
            self.s_sets[i] = self.v_sets[i].iter().copied().collect();
        }
        // Chain walk (lines 19–23, corrected — see module docs): rebuild
        // g's subspace by removing, at each ancestor's position, the value
        // the ancestor's *parent* excluded when creating it.
        let mut h = g_idx;
        loop {
            let (pos, prev) = {
                let t = &self.can_list[h as usize];
                (t.pos, t.prev)
            };
            let Some(p) = prev else { break };
            let removed = self.can_list[p as usize].core.get(pos);
            self.s_sets[pos].remove(&removed);
            h = p;
        }
        // Subdivision (lines 24–31), from dimension l−1 down to g.pos.
        for i in (g_pos..self.l).rev() {
            self.s_sets[i].remove(&g_core.get(i));
            self.recompute_from_s(i)?;
            if let Some(best) = self.ns.best_core_with(self.cost_fn) {
                self.enheap(CanTuple {
                    core: best.core,
                    cost: best.cost,
                    pos: i,
                    prev: Some(g_idx),
                });
            }
            self.s_sets[i].insert(g_core.get(i));
            self.recompute_from_s(i)?;
        }
        self.track_memory()
    }

    /// Records a guard trip; subsequent `next()` calls yield `None`.
    fn trip(&mut self, reason: InterruptReason) {
        self.interrupted = Some(reason);
    }
}

impl<'g> Iterator for CommK<'g> {
    type Item = Community;

    fn next(&mut self) -> Option<Community> {
        if self.interrupted.is_some() {
            return None;
        }
        if !self.started {
            if let Err(reason) = self.start() {
                self.trip(reason);
                return None;
            }
        }
        let (_, g_idx) = self.heap.pop_min()?;
        // Candidate budget k ⇒ exactly k communities emitted.
        if let Err(reason) = self.guard.note_candidate() {
            self.trip(reason);
            return None;
        }
        let core = self.can_list[g_idx as usize].core.clone();
        let community = match get_community_guarded(
            self.graph,
            &mut self.engine,
            &core,
            self.rmax,
            self.cost_fn,
            &self.guard,
        ) {
            // xtask-allow: no_panics — BestCore only returns cores certified by a center
            Ok(c) => c.expect("a core returned by BestCore always has a center"),
            Err(reason) => {
                self.trip(reason);
                return None;
            }
        };
        // A trip while subdividing still emits the community already
        // materialized: output stays an exact prefix of the ranked order.
        if let Err(reason) = self.expand(g_idx) {
            self.trip(reason);
        }
        self.emitted += 1;
        Some(community)
    }
}

/// Convenience: the top-k communities as a vector.
pub fn comm_k(graph: &Graph, spec: &QuerySpec, k: usize) -> Vec<Community> {
    CommK::new(graph, spec).take(k).collect()
}

/// [`comm_k`] validating the spec and running under `guard`.
///
/// An interrupted run returns `Outcome::Interrupted` carrying the ranked
/// prefix emitted before the trip. Pair with
/// [`RunGuard::with_candidate_budget`] for an exact top-k cut.
pub fn comm_k_guarded(
    graph: &Graph,
    spec: &QuerySpec,
    k: usize,
    guard: RunGuard,
) -> Result<Outcome<Vec<Community>>, QueryError> {
    let mut it = CommK::try_new(graph, spec)?.with_guard(guard);
    let mut out = Vec::new();
    for c in it.by_ref().take(k) {
        // xtask-allow: unbounded_alloc — take(k) bounds output; iterator charges per candidate
        out.push(c);
    }
    Ok(match it.interrupted() {
        None => Outcome::Complete(out),
        Some(reason) => Outcome::Interrupted {
            reason,
            partial: out,
        },
    })
}

/// [`comm_k`] with up-front validation and no execution limits.
pub fn try_comm_k(graph: &Graph, spec: &QuerySpec, k: usize) -> Result<Vec<Community>, QueryError> {
    Ok(comm_k_guarded(graph, spec, k, RunGuard::unlimited())?.into_value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_all_cores;
    use comm_datasets::paper_example::{fig4_graph, fig4_keyword_nodes, fig4_table1, FIG4_RMAX};

    fn fig4_spec(rmax: f64) -> QuerySpec {
        QuerySpec::new(fig4_keyword_nodes(), Weight::new(rmax))
    }

    #[test]
    fn table1_ranking_in_order() {
        // The paper's Table I, in rank order 1..5 with costs 7,10,11,14,15.
        let g = fig4_graph();
        let top = comm_k(&g, &fig4_spec(FIG4_RMAX), 10);
        assert_eq!(top.len(), 5);
        for (rank, core, cost, centers) in fig4_table1() {
            let c = &top[rank - 1];
            assert_eq!(
                c.core.0.iter().map(|n| n.0).collect::<Vec<_>>(),
                core.to_vec(),
                "rank {rank}"
            );
            assert_eq!(c.cost, Weight::new(cost), "rank {rank}");
            assert_eq!(
                c.centers.iter().map(|n| n.0).collect::<Vec<_>>(),
                centers,
                "rank {rank}"
            );
        }
    }

    #[test]
    fn no_duplicates_beyond_k() {
        let g = fig4_graph();
        let all: Vec<_> = CommK::new(&g, &fig4_spec(FIG4_RMAX)).collect();
        assert_eq!(all.len(), 5, "exhaustive CommK must terminate at 5");
        let mut cores: Vec<_> = all.iter().map(|c| c.core.clone()).collect();
        cores.sort();
        cores.dedup();
        assert_eq!(cores.len(), 5);
    }

    #[test]
    fn order_is_nondecreasing() {
        let g = fig4_graph();
        let mut last = Weight::ZERO;
        for c in CommK::new(&g, &fig4_spec(FIG4_RMAX)) {
            assert!(c.cost >= last);
            last = c.cost;
        }
    }

    #[test]
    fn interactive_k_extension_matches_oneshot() {
        let g = fig4_graph();
        let spec = fig4_spec(FIG4_RMAX);
        // Take 2, then 2 more — must equal taking 4 at once.
        let mut it = CommK::new(&g, &spec);
        let mut resumed: Vec<Core> = it.by_ref().take(2).map(|c| c.core).collect();
        resumed.extend(it.by_ref().take(2).map(|c| c.core));
        let oneshot: Vec<Core> = comm_k(&g, &spec, 4).into_iter().map(|c| c.core).collect();
        assert_eq!(resumed, oneshot);
    }

    #[test]
    fn matches_naive_on_fig4_all_radii() {
        let g = fig4_graph();
        for rmax in [4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 12.0] {
            let spec = fig4_spec(rmax);
            let expect = naive_all_cores(&g, &spec);
            let got: Vec<(Core, Weight)> =
                CommK::new(&g, &spec).map(|c| (c.core, c.cost)).collect();
            // Same multiset of cores…
            let mut a: Vec<_> = got.iter().map(|(c, _)| c.clone()).collect();
            a.sort();
            let mut b: Vec<_> = expect.iter().map(|(c, _)| c.clone()).collect();
            b.sort();
            assert_eq!(a, b, "core sets differ at rmax={rmax}");
            // …same cost sequence in rank order.
            let costs_got: Vec<Weight> = got.iter().map(|&(_, w)| w).collect();
            let costs_expect: Vec<Weight> = expect.iter().map(|&(_, w)| w).collect();
            assert_eq!(costs_got, costs_expect, "cost order differs at rmax={rmax}");
        }
    }

    #[test]
    fn can_list_bounded_by_l_times_k() {
        let g = fig4_graph();
        let mut it = CommK::new(&g, &fig4_spec(FIG4_RMAX));
        let mut emitted = 0;
        while it.next().is_some() {
            emitted += 1;
            assert!(
                it.can_list_len() <= 3 * emitted + 1,
                "can-list {} exceeds l·k bound at k={emitted}",
                it.can_list_len()
            );
        }
        assert!(it.peak_memory_bytes() > 0);
    }

    #[test]
    fn single_keyword_ranked() {
        // l = 1: cores rank by distance-0 (each keyword node is a center
        // of itself), so all costs are 0.
        let g = fig4_graph();
        let spec = QuerySpec::new(vec![vec![NodeId(4), NodeId(13)]], Weight::new(8.0));
        let all: Vec<_> = CommK::new(&g, &spec).collect();
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|c| c.cost == Weight::ZERO));
    }

    #[test]
    fn candidate_budget_yields_ranked_prefix() {
        let g = fig4_graph();
        let spec = fig4_spec(FIG4_RMAX);
        let full: Vec<Core> = CommK::new(&g, &spec).map(|c| c.core).collect();
        for b in 0..full.len() {
            let guard = RunGuard::new().with_candidate_budget(b as u64);
            let out = comm_k_guarded(&g, &spec, 10, guard).unwrap();
            assert_eq!(
                out.reason(),
                Some(InterruptReason::CandidateBudgetExhausted)
            );
            let got: Vec<Core> = out.into_value().into_iter().map(|c| c.core).collect();
            assert_eq!(got, full[..b], "budget {b}");
        }
    }

    #[test]
    fn try_comm_k_rejects_bad_specs() {
        let g = fig4_graph();
        let bad = QuerySpec::new(vec![vec![NodeId(4), NodeId(500)]], Weight::new(8.0));
        assert!(matches!(
            try_comm_k(&g, &bad, 3),
            Err(QueryError::NodeOutOfRange { dim: 0, .. })
        ));
        let top = try_comm_k(&g, &fig4_spec(FIG4_RMAX), 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].cost, Weight::new(7.0));
    }

    #[test]
    fn empty_result_when_no_center_exists() {
        let g = fig4_graph();
        let spec = QuerySpec::new(vec![vec![NodeId(4)], vec![NodeId(13)]], Weight::new(1.0));
        assert_eq!(CommK::new(&g, &spec).count(), 0);
    }
}
