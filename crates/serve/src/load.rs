//! The open-loop load generator and its report.
//!
//! *Open loop* means arrivals follow a fixed schedule (one request every
//! `interarrival`, round-robin over the worker connections) regardless of
//! how fast the server responds — so when the server slows down, pressure
//! builds instead of the generator politely backing off, which is exactly
//! the regime admission control exists for.
//!
//! Each worker drives a resilient [`Client`] and classifies every logical
//! request into one terminal state: `complete`, `degraded` (certified
//! exact-prefix `Interrupted`), `overloaded` (explicitly shed), `error`
//! (request rejected), or `transport_failures` (connection lost after all
//! retries). The report records the breakdown plus latency percentiles
//! and renders itself as JSON (hand-rolled — the crate is std-only) for
//! `BENCH_serve.json`.

use crate::client::{Client, ClientConfig, ClientError};
use crate::protocol::Response;
use crate::workload::QueryMix;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-generator settings.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent worker connections.
    pub connections: usize,
    /// Total logical requests to send.
    pub requests: usize,
    /// Open-loop arrival spacing (global, not per worker).
    pub interarrival: Duration,
    /// The query mix, applied round-robin.
    pub mix: Vec<QueryMix>,
    /// Per-connection client settings (timeouts, retry budget).
    pub client: ClientConfig,
    /// Every Nth request, send a *slow client* instead: open a fresh
    /// connection, write half a frame header, stall past the server's io
    /// timeout, and confirm the server hangs up. Counted separately.
    pub slow_client_every: Option<u64>,
    /// How long a slow client stalls before expecting the hang-up.
    pub slow_client_stall: Duration,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            connections: 4,
            requests: 100,
            interarrival: Duration::from_millis(5),
            mix: Vec::new(),
            client: ClientConfig::default(),
            slow_client_every: None,
            slow_client_stall: Duration::from_millis(300),
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Logical requests sent (excluding injected slow clients).
    pub sent: u64,
    /// `Complete` replies.
    pub complete: u64,
    /// `Interrupted` replies (certified exact-prefix degradation).
    pub degraded: u64,
    /// Requests whose every attempt was explicitly shed.
    pub overloaded: u64,
    /// `Error` replies (invalid requests).
    pub errors: u64,
    /// Requests lost to transport failures after all retries.
    pub transport_failures: u64,
    /// Replies that failed to decode (must be zero in a healthy run).
    pub protocol_errors: u64,
    /// Injected slow-client probes.
    pub slow_clients: u64,
    /// Slow-client probes the server correctly disconnected.
    pub slow_clients_disconnected: u64,
    /// Total wire attempts across all clients (retries included).
    pub attempts: u64,
    /// Latency percentiles over successful classifications, milliseconds.
    pub latency_ms: LatencySummary,
    /// Wall-clock duration of the run, milliseconds.
    pub wall_ms: u64,
}

/// Latency percentiles in milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencySummary {
    /// Summarizes a set of latencies (unsorted, in milliseconds).
    pub fn from_latencies(mut ms: Vec<f64>) -> LatencySummary {
        if ms.is_empty() {
            return LatencySummary::default();
        }
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pick = |q: f64| -> f64 {
            let idx = ((ms.len() - 1) as f64 * q).round();
            let idx = usize::try_from(idx.max(0.0).min((ms.len() - 1) as f64) as u64)
                .unwrap_or(ms.len() - 1);
            ms[idx.min(ms.len() - 1)]
        };
        LatencySummary {
            mean: ms.iter().sum::<f64>() / ms.len() as f64,
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: *ms.last().unwrap_or(&0.0),
        }
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Renders the host provenance block every report carries: timings are
/// meaningless without the CPU count and thread override they ran under.
fn machine_json() -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads_env = match std::env::var(comm_graph::parallel::THREADS_ENV) {
        Ok(v) => format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")),
        Err(_) => "null".to_string(),
    };
    format!(
        "{{ \"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {cpus}, \"threads_env\": {threads_env} }}",
        std::env::consts::OS,
        std::env::consts::ARCH,
    )
}

impl LoadReport {
    /// Renders the report as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        s.push_str(&format!("  \"machine\": {},\n", machine_json()));
        let fields: [(&str, String); 11] = [
            ("sent", self.sent.to_string()),
            ("complete", self.complete.to_string()),
            ("degraded", self.degraded.to_string()),
            ("overloaded", self.overloaded.to_string()),
            ("errors", self.errors.to_string()),
            ("transport_failures", self.transport_failures.to_string()),
            ("protocol_errors", self.protocol_errors.to_string()),
            ("slow_clients", self.slow_clients.to_string()),
            (
                "slow_clients_disconnected",
                self.slow_clients_disconnected.to_string(),
            ),
            ("attempts", self.attempts.to_string()),
            ("wall_ms", self.wall_ms.to_string()),
        ];
        for (k, v) in fields {
            s.push_str(&format!("  \"{k}\": {v},\n"));
        }
        s.push_str(&format!(
            "  \"latency_ms\": {{ \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {} }}\n",
            json_f64(self.latency_ms.mean),
            json_f64(self.latency_ms.p50),
            json_f64(self.latency_ms.p90),
            json_f64(self.latency_ms.p99),
            json_f64(self.latency_ms.max),
        ));
        s.push('}');
        s
    }

    /// Every logical request reached a terminal state: nothing hung,
    /// nothing was silently dropped. (Transport failures are terminal for
    /// the client but indicate lost replies, so they are reported — the
    /// chaos tests bound them separately.)
    pub fn fully_classified(&self) -> bool {
        self.sent
            == self.complete
                + self.degraded
                + self.overloaded
                + self.errors
                + self.transport_failures
                + self.protocol_errors
    }
}

/// Shared tallies the workers fold into.
#[derive(Default)]
struct Tally {
    complete: AtomicU64,
    degraded: AtomicU64,
    overloaded: AtomicU64,
    errors: AtomicU64,
    transport_failures: AtomicU64,
    protocol_errors: AtomicU64,
    slow_clients: AtomicU64,
    slow_disconnected: AtomicU64,
    attempts: AtomicU64,
}

/// Runs the open-loop generator against `addr` and aggregates the report.
///
/// Workers share a global arrival schedule: request `i` is released at
/// `start + i × interarrival`; a worker that falls behind fires
/// immediately (open loop: lateness accumulates pressure on the server,
/// not gaps in the schedule).
// xtask-allow: guard_coverage — client-side driver; execution is governed by the server's RunGuards
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    if cfg.mix.is_empty() || cfg.requests == 0 || cfg.connections == 0 {
        return LoadReport::default();
    }
    let tally = Tally::default();
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(cfg.requests));
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..cfg.connections {
            scope.spawn(|| {
                let mut client = Client::new(addr, cfg.client.clone());
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cfg.requests {
                        break;
                    }
                    // Open-loop release time for request i.
                    let due = cfg
                        .interarrival
                        .saturating_mul(u32::try_from(i).unwrap_or(u32::MAX));
                    let elapsed = start.elapsed();
                    if due > elapsed {
                        std::thread::sleep(due - elapsed);
                    }
                    let seq = u64::try_from(i).unwrap_or(u64::MAX) + 1;
                    if cfg.slow_client_every.is_some_and(|n| n > 0 && seq % n == 0) {
                        tally.slow_clients.fetch_add(1, Ordering::Relaxed);
                        if slow_client_probe(addr, cfg) {
                            tally.slow_disconnected.fetch_add(1, Ordering::Relaxed);
                        }
                        continue;
                    }
                    let q = &cfg.mix[i % cfg.mix.len()];
                    let kw: Vec<&str> = q.keywords.iter().map(String::as_str).collect();
                    let t0 = Instant::now();
                    let outcome = client.query(&kw, q.rmax, q.k, q.priority);
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    match outcome {
                        Ok(Response::Complete { .. }) => {
                            tally.complete.fetch_add(1, Ordering::Relaxed);
                            if let Ok(mut l) = latencies.lock() {
                                l.push(ms);
                            }
                        }
                        Ok(Response::Interrupted { .. }) => {
                            tally.degraded.fetch_add(1, Ordering::Relaxed);
                            if let Ok(mut l) = latencies.lock() {
                                l.push(ms);
                            }
                        }
                        Ok(Response::Error { .. }) => {
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            // Pong/Stats/ShuttingDown in reply to a query:
                            // a protocol violation.
                            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Overloaded { .. }) => {
                            tally.overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Io(_)) => {
                            tally.transport_failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Protocol(_) | ClientError::IdMismatch { .. }) => {
                            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let (attempts, _) = client.stats();
                tally.attempts.fetch_add(attempts, Ordering::Relaxed);
            });
        }
    });
    let wall = start.elapsed();
    let lat = latencies.into_inner().unwrap_or_else(|p| p.into_inner());
    let slow = tally.slow_clients.load(Ordering::Relaxed);
    LoadReport {
        sent: u64::try_from(cfg.requests).unwrap_or(u64::MAX) - slow,
        complete: tally.complete.load(Ordering::Relaxed),
        degraded: tally.degraded.load(Ordering::Relaxed),
        overloaded: tally.overloaded.load(Ordering::Relaxed),
        errors: tally.errors.load(Ordering::Relaxed),
        transport_failures: tally.transport_failures.load(Ordering::Relaxed),
        protocol_errors: tally.protocol_errors.load(Ordering::Relaxed),
        slow_clients: slow,
        slow_clients_disconnected: tally.slow_disconnected.load(Ordering::Relaxed),
        attempts: tally.attempts.load(Ordering::Relaxed),
        latency_ms: LatencySummary::from_latencies(lat),
        wall_ms: u64::try_from(wall.as_millis()).unwrap_or(u64::MAX),
    }
}

/// Opens a connection, writes half a frame header, stalls, and reports
/// whether the server hung up (true = the slow-client defense worked).
fn slow_client_probe(addr: SocketAddr, cfg: &LoadConfig) -> bool {
    use std::io::{Read, Write};
    let Ok(mut stream) = std::net::TcpStream::connect_timeout(&addr, cfg.client.connect_timeout)
    else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(cfg.slow_client_stall.saturating_mul(4)));
    // Two bytes of a four-byte length prefix, then silence.
    if stream.write_all(&[0x02, 0x00]).is_err() {
        return true; // already hung up
    }
    std::thread::sleep(cfg.slow_client_stall);
    // A healthy server has closed the socket by now: read yields EOF (0)
    // or a reset error, never data.
    let mut buf = [0u8; 1];
    match stream.read(&mut buf) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => !matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let s = LatencySummary::from_latencies((1..=100).map(f64::from).collect());
        assert!((s.p50 - 50.0).abs() <= 1.0, "p50 = {}", s.p50);
        assert!((s.p90 - 90.0).abs() <= 1.0, "p90 = {}", s.p90);
        assert!((s.p99 - 99.0).abs() <= 1.0, "p99 = {}", s.p99);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_latencies_are_zero() {
        let s = LatencySummary::from_latencies(Vec::new());
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn report_json_is_well_formed_and_complete() {
        let mut r = LoadReport {
            sent: 10,
            complete: 6,
            degraded: 2,
            overloaded: 2,
            ..LoadReport::default()
        };
        r.latency_ms = LatencySummary {
            mean: 1.5,
            p50: 1.0,
            p90: 2.0,
            p99: 3.0,
            max: 3.5,
        };
        let json = r.to_json();
        for key in [
            "\"machine\"",
            "\"cpus\":",
            "\"threads_env\":",
            "\"sent\": 10",
            "\"complete\": 6",
            "\"degraded\": 2",
            "\"overloaded\": 2",
            "\"latency_ms\"",
            "\"p99\": 3.000",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(r.fully_classified());
        r.complete = 5;
        assert!(!r.fully_classified());
    }
}
