//! A minimal Rust source model for the lint rules.
//!
//! This is deliberately not a full parser. Rules only need three facts about
//! a source file, all computable with a small hand-rolled lexer:
//!
//! 1. a *masked* view of the text where comment and string-literal interiors
//!    are blanked out (so `panic!` inside a doc comment never matches);
//! 2. which lines belong to `#[cfg(test)]` items (rules skip test code);
//! 3. which lines carry `xtask-allow` waiver comments.
//!
//! The masked view preserves byte offsets and line boundaries exactly, so
//! rule matches report real source positions.

use std::collections::BTreeSet;
use std::path::PathBuf;

/// Waiver comment marker: `// xtask-allow: rule_id — reason`.
///
/// A waiver suppresses findings of the named rule(s) on its own line and on
/// the line directly below it (so it can sit above the offending statement).
pub const ALLOW_MARKER: &str = "xtask-allow:";

/// File-wide waiver marker: `// xtask-allow-file: rule_id — reason`.
pub const ALLOW_FILE_MARKER: &str = "xtask-allow-file:";

/// One source file plus the derived views the rules consume.
pub struct SourceFile {
    /// Path as reported in diagnostics (repo-relative where possible).
    pub path: PathBuf,
    /// Text with comment and string interiors replaced by spaces.
    pub masked: String,
    /// Byte offset of the start of each line (first entry is 0).
    pub line_starts: Vec<usize>,
    /// `test_lines[i]` is true when 1-based line `i + 1` is inside a
    /// `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
    /// `(line, rule_id)` pairs for line-scoped waivers.
    pub waivers: BTreeSet<(usize, String)>,
    /// Rule ids waived for the whole file.
    pub file_waivers: BTreeSet<String>,
    /// Every waiver comment occurrence, for stale-waiver auditing.
    pub waiver_sites: Vec<WaiverSite>,
}

/// One `xtask-allow` comment occurrence (one per rule it names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverSite {
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// The rule id it waives.
    pub rule: String,
    /// True for `xtask-allow-file` (whole-file) waivers.
    pub file_level: bool,
}

impl SourceFile {
    /// Builds the source model from raw text.
    pub fn from_text(path: PathBuf, text: String) -> SourceFile {
        let masked = mask(&text);
        let line_starts = line_starts(&text);
        let test_lines = test_lines(&masked, &line_starts);
        let (waivers, file_waivers, waiver_sites) = collect_waivers(&text, &line_starts);
        SourceFile {
            path,
            masked,
            line_starts,
            test_lines,
            waivers,
            file_waivers,
            waiver_sites,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether 1-based `line` is inside `#[cfg(test)]` code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// Whether a finding of `rule` at 1-based `line` is waived.
    pub fn is_waived(&self, rule: &str, line: usize) -> bool {
        if self.file_waivers.contains(rule) {
            return true;
        }
        self.waivers.contains(&(line, rule.to_string()))
            || (line > 1 && self.waivers.contains(&(line - 1, rule.to_string())))
    }

    /// The masked text of 1-based `line` (without the trailing newline).
    pub fn masked_line(&self, line: usize) -> &str {
        let lo = self.line_starts[line - 1];
        let hi = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.masked.len());
        self.masked[lo..hi].trim_end_matches('\n')
    }
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Replaces comment bodies and string/char-literal interiors with spaces,
/// preserving newlines and byte offsets.
fn mask(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => i = mask_string(bytes, &mut out, i),
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                i = mask_raw_string(bytes, &mut out, i);
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'"' => {
                i = mask_string(bytes, &mut out, i + 1);
            }
            b'\'' => i = mask_char_or_lifetime(bytes, &mut out, i),
            _ => i += 1,
        }
    }
    // Offsets are byte-exact; masking only writes ASCII spaces over
    // non-newline bytes, so the result is still valid UTF-8 only if we never
    // split a multi-byte char. Comment/string interiors may hold multi-byte
    // chars; blanking each byte keeps the length and replaces the whole char.
    String::from_utf8(out).unwrap_or_else(|e| {
        // Unreachable in practice: every masked byte becomes ' '.
        panic!("masking produced invalid UTF-8: {e}")
    })
}

fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn mask_raw_string(bytes: &[u8], out: &mut [u8], start: usize) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0;
            while k < hashes && i + 1 + k < bytes.len() && bytes[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        if bytes[i] != b'\n' {
            out[i] = b' ';
        }
        i += 1;
    }
    i
}

fn mask_string(bytes: &[u8], out: &mut [u8], quote: usize) -> usize {
    let mut i = quote + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                out[i] = b' ';
                if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                    out[i + 1] = b' ';
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => i += 1,
            _ => {
                out[i] = b' ';
                i += 1;
            }
        }
    }
    i
}

/// Distinguishes `'a'` / `'\n'` char literals from `'a` lifetimes.
fn mask_char_or_lifetime(bytes: &[u8], out: &mut [u8], quote: usize) -> usize {
    let i = quote + 1;
    if i >= bytes.len() {
        return i;
    }
    if bytes[i] == b'\\' {
        // Escape: mask until the closing quote.
        let mut j = i;
        while j < bytes.len() && bytes[j] != b'\'' {
            out[j] = b' ';
            j += 1;
        }
        return j + 1;
    }
    // `'x'` (possibly multi-byte x): find a closing quote within 5 bytes.
    let limit = (i + 5).min(bytes.len());
    let mut j = i;
    while j < limit && bytes[j] != b'\'' {
        j += 1;
    }
    if j < limit && bytes[j] == b'\'' && j > i {
        for b in out.iter_mut().take(j).skip(i) {
            *b = b' ';
        }
        return j + 1;
    }
    // Lifetime: leave as-is.
    i
}

/// Marks the line span of every `#[cfg(test)]` item (typically `mod tests`).
fn test_lines(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut flags = vec![false; line_starts.len()];
    let bytes = masked.as_bytes();
    let mut search = 0;
    while let Some(rel) = masked[search..].find("#[cfg(test)]") {
        let attr_at = search + rel;
        search = attr_at + 1;
        // Find the item's opening brace after the attribute.
        let Some(open_rel) = masked[attr_at..].find('{') else {
            break;
        };
        let open = attr_at + open_rel;
        let mut depth = 0usize;
        let mut close = masked.len();
        for (off, &b) in bytes.iter().enumerate().skip(open) {
            if b == b'{' {
                depth += 1;
            } else if b == b'}' {
                depth -= 1;
                if depth == 0 {
                    close = off;
                    break;
                }
            }
        }
        let first = match line_starts.binary_search(&attr_at) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let last = match line_starts.binary_search(&close) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        for f in flags.iter_mut().take(last + 1).skip(first) {
            *f = true;
        }
    }
    flags
}

fn collect_waivers(
    text: &str,
    line_starts: &[usize],
) -> (BTreeSet<(usize, String)>, BTreeSet<String>, Vec<WaiverSite>) {
    let mut line_waivers = BTreeSet::new();
    let mut file_waivers = BTreeSet::new();
    let mut sites = Vec::new();
    for (idx, start) in line_starts.iter().enumerate() {
        let end = line_starts.get(idx + 1).copied().unwrap_or(text.len());
        let line = &text[*start..end];
        if let Some(pos) = line.find(ALLOW_FILE_MARKER) {
            for rule in parse_rule_list(&line[pos + ALLOW_FILE_MARKER.len()..]) {
                sites.push(WaiverSite {
                    line: idx + 1,
                    rule: rule.clone(),
                    file_level: true,
                });
                file_waivers.insert(rule);
            }
        } else if let Some(pos) = line.find(ALLOW_MARKER) {
            for rule in parse_rule_list(&line[pos + ALLOW_MARKER.len()..]) {
                sites.push(WaiverSite {
                    line: idx + 1,
                    rule: rule.clone(),
                    file_level: false,
                });
                line_waivers.insert((idx + 1, rule));
            }
        }
    }
    (line_waivers, file_waivers, sites)
}

/// Parses `rule_a, rule_b — free-form reason` into the rule ids.
fn parse_rule_list(rest: &str) -> Vec<String> {
    let rest = rest
        .split(['—', ';'])
        .next()
        .unwrap_or("")
        .split(" - ")
        .next()
        .unwrap_or("");
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'))
        .map(str::to_string)
        .collect()
}

/// Whether the byte at `pos` could continue an identifier (used for
/// token-boundary matching).
pub fn ident_at(masked: &str, pos: usize) -> bool {
    masked
        .as_bytes()
        .get(pos)
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(text: &str) -> SourceFile {
        SourceFile::from_text(PathBuf::from("test.rs"), text.to_string())
    }

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"panic!\"; // panic!\nlet y = 1;\n";
        let f = file(src);
        assert!(!f.masked.contains("panic!"));
        assert!(f.masked.contains("let y = 1;"));
        assert_eq!(f.masked.len(), src.len());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let f = file("let s = r#\"unwrap()\"#; let c = 'u'; let l: &'static str = \"\";");
        assert!(!f.masked.contains("unwrap"));
        assert!(f.masked.contains("'static"));
    }

    #[test]
    fn masks_block_comments_nested() {
        let f = file("/* outer /* panic! */ still */ let z = 2;");
        assert!(!f.masked.contains("panic!"));
        assert!(f.masked.contains("let z = 2;"));
    }

    #[test]
    fn detects_cfg_test_span() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = file(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn waiver_applies_to_own_and_next_line() {
        let src = "// xtask-allow: no_panics — audited\nlet x = y.unwrap();\nlet z = 0;\n";
        let f = file(src);
        assert!(f.is_waived("no_panics", 1));
        assert!(f.is_waived("no_panics", 2));
        assert!(!f.is_waived("no_panics", 3));
        assert!(!f.is_waived("narrowing_cast", 2));
    }

    #[test]
    fn file_waiver_applies_everywhere() {
        let src = "// xtask-allow-file: guard_coverage — enumeration driver\nfn f() {}\n";
        let f = file(src);
        assert!(f.is_waived("guard_coverage", 2));
        assert!(!f.is_waived("no_panics", 2));
    }

    #[test]
    fn waiver_parses_multiple_rules() {
        let f = file("// xtask-allow: no_panics, narrowing_cast — both fine\nlet x = 1;\n");
        assert!(f.is_waived("no_panics", 2));
        assert!(f.is_waived("narrowing_cast", 2));
    }

    #[test]
    fn line_of_maps_offsets() {
        let f = file("a\nbb\nccc\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(5), 3);
    }
}
