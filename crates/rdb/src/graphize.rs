//! Materializing a relational database as the database graph `G_D`.
//!
//! Following Sec. II and Sec. VII of the paper: every tuple becomes a node;
//! every foreign-key reference `(u → v)` becomes a pair of directed edges
//! (the paper's graphs are *bi-directed*: DBLP's 5,076,826 references yield
//! 10,153,652 directed edges), and each directed edge `(u, v)` is weighted
//! `w_e((u, v)) = log2(1 + N_in(v))` where `N_in(v)` is the in-degree of the
//! target node.

use crate::database::{Database, TupleRef};
use crate::text::FullTextIndex;
use comm_graph::weight::index_to_u32;
use comm_graph::{Graph, GraphBuilder, GraphInvariantError, NodeId, Weight};
use std::collections::HashMap;
use std::fmt;

/// How to weight the directed edges of the materialized graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightScheme {
    /// The paper's `w_e((u,v)) = log2(1 + N_in(v))`.
    LogInDegree,
    /// Every edge has the same weight (useful for unit tests).
    Uniform(f64),
}

/// Whether each reference contributes one or two directed edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeMode {
    /// `(u, v)` and `(v, u)` — the setting of all the paper's experiments.
    BiDirected,
    /// Only the referencing → referenced direction.
    ForwardOnly,
}

/// Why a materialized [`DatabaseGraph`] failed certification.
#[derive(Clone, Debug, PartialEq)]
pub enum WeightCertificationError {
    /// The graph itself violates a CSR invariant.
    InvalidGraph(GraphInvariantError),
    /// An edge's weight disagrees with the declared [`WeightScheme`].
    WrongEdgeWeight {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
        /// The stored weight.
        got: f64,
        /// The weight the scheme prescribes.
        expected: f64,
    },
    /// The provenance table does not cover the graph's nodes one-to-one.
    ProvenanceLengthMismatch {
        /// Graph node count.
        nodes: usize,
        /// Provenance entries.
        tuples: usize,
    },
    /// A keyword's posting list is not sorted and deduplicated.
    UnsortedKeywordPostings {
        /// The offending keyword.
        keyword: String,
    },
}

impl fmt::Display for WeightCertificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightCertificationError::InvalidGraph(e) => write!(f, "invalid database graph: {e}"),
            WeightCertificationError::WrongEdgeWeight {
                from,
                to,
                got,
                expected,
            } => write!(
                f,
                "edge {from}->{to} weighs {got}, the weight scheme prescribes {expected}"
            ),
            WeightCertificationError::ProvenanceLengthMismatch { nodes, tuples } => {
                write!(f, "{nodes} graph nodes but {tuples} provenance entries")
            }
            WeightCertificationError::UnsortedKeywordPostings { keyword } => {
                write!(f, "posting list of {keyword:?} is not sorted/deduplicated")
            }
        }
    }
}

impl std::error::Error for WeightCertificationError {}

impl From<GraphInvariantError> for WeightCertificationError {
    fn from(e: GraphInvariantError) -> WeightCertificationError {
        WeightCertificationError::InvalidGraph(e)
    }
}

/// The materialized database graph: topology plus tuple provenance plus a
/// node-level keyword lookup.
pub struct DatabaseGraph {
    /// The weighted directed graph `G_D`.
    pub graph: Graph,
    /// `provenance[node.index()]` is the tuple behind each node.
    pub provenance: Vec<TupleRef>,
    node_of: HashMap<TupleRef, NodeId>,
    keyword_nodes: HashMap<String, Vec<NodeId>>,
}

impl DatabaseGraph {
    /// Materializes `db` with the given weighting and edge mode, and lifts
    /// the full-text index to node ids.
    pub fn materialize(db: &Database, scheme: WeightScheme, mode: EdgeMode) -> DatabaseGraph {
        // 1. Assign node ids in (table, row) order.
        let mut provenance = Vec::with_capacity(db.tuple_count());
        let mut node_of = HashMap::with_capacity(db.tuple_count());
        for table_id in db.tables() {
            for row in db.table(table_id).rows() {
                let tref = TupleRef {
                    table: table_id,
                    row,
                };
                node_of.insert(tref, NodeId(index_to_u32(provenance.len())));
                provenance.push(tref);
            }
        }
        let n = provenance.len();

        // 2. Collect reference pairs (unweighted directed edges).
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for table_id in db.tables() {
            let table = db.table(table_id);
            let fk_count = table.schema().foreign_keys.len();
            for row in table.rows() {
                let from = node_of[&TupleRef {
                    table: table_id,
                    row,
                }];
                for fk_idx in 0..fk_count {
                    if let Some(target) = db.resolve_fk(
                        TupleRef {
                            table: table_id,
                            row,
                        },
                        fk_idx,
                    ) {
                        let to = node_of[&target];
                        pairs.push((from, to));
                        if mode == EdgeMode::BiDirected {
                            pairs.push((to, from));
                        }
                    }
                }
            }
        }

        // 3. Weight by final in-degree.
        let mut in_degree = vec![0u32; n];
        for &(_, v) in &pairs {
            in_degree[v.index()] += 1;
        }
        let mut builder = GraphBuilder::new(n);
        for &(u, v) in &pairs {
            let w = match scheme {
                WeightScheme::LogInDegree => {
                    Weight::new((1.0 + f64::from(in_degree[v.index()])).log2())
                }
                WeightScheme::Uniform(w) => Weight::new(w),
            };
            builder.add_edge(u, v, w);
        }
        let graph = builder.build();

        // 4. Lift the full-text index to node ids.
        let text = FullTextIndex::build(db);
        let mut keyword_nodes: HashMap<String, Vec<NodeId>> = HashMap::new();
        for (kw, postings) in text.iter() {
            let mut nodes: Vec<NodeId> = postings.iter().map(|t| node_of[t]).collect();
            nodes.sort_unstable();
            keyword_nodes.insert(kw.to_owned(), nodes);
        }

        let materialized = DatabaseGraph {
            graph,
            provenance,
            node_of,
            keyword_nodes,
        };
        #[cfg(any(debug_assertions, feature = "verify"))]
        materialized.assert_certified(scheme);
        materialized
    }

    /// Certifies the materialized graph against its construction contract:
    /// CSR invariants hold, every edge weight matches `scheme` (recomputed
    /// from the graph's own in-degrees for [`WeightScheme::LogInDegree`]),
    /// provenance covers the nodes one-to-one, and every keyword posting
    /// list is sorted and deduplicated.
    pub fn validate_weights(&self, scheme: WeightScheme) -> Result<(), WeightCertificationError> {
        self.graph.validate()?;
        if self.provenance.len() != self.graph.node_count() {
            return Err(WeightCertificationError::ProvenanceLengthMismatch {
                nodes: self.graph.node_count(),
                tuples: self.provenance.len(),
            });
        }
        for (u, v, w) in self.graph.edges() {
            let expected = match scheme {
                WeightScheme::LogInDegree => (1.0 + self.graph.in_degree(v) as f64).log2(),
                WeightScheme::Uniform(w) => w,
            };
            if w.get() != expected {
                return Err(WeightCertificationError::WrongEdgeWeight {
                    from: u,
                    to: v,
                    got: w.get(),
                    expected,
                });
            }
        }
        for (keyword, nodes) in self.keywords() {
            if nodes.windows(2).any(|p| p[0] >= p[1]) {
                return Err(WeightCertificationError::UnsortedKeywordPostings {
                    keyword: keyword.to_owned(),
                });
            }
        }
        Ok(())
    }

    #[cfg(any(debug_assertions, feature = "verify"))]
    fn assert_certified(&self, scheme: WeightScheme) {
        if let Err(e) = self.validate_weights(scheme) {
            // xtask-allow: no_panics — materialize() just built this graph; a certification failure is a graphize bug
            panic!("materialized database graph failed certification: {e}");
        }
    }

    /// The node of a tuple.
    pub fn node_of(&self, tuple: TupleRef) -> Option<NodeId> {
        self.node_of.get(&tuple).copied()
    }

    /// The tuple behind a node.
    pub fn tuple_of(&self, node: NodeId) -> TupleRef {
        self.provenance[node.index()]
    }

    /// The nodes containing `keyword` — the paper's `V_i`.
    pub fn keyword_nodes(&self, keyword: &str) -> &[NodeId] {
        self.keyword_nodes
            .get(&keyword.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates all `(keyword, nodes)` pairs.
    pub fn keywords(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.keyword_nodes
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Keyword frequency over nodes (Tables II–V's KWF).
    pub fn keyword_frequency(&self, keyword: &str) -> f64 {
        if self.graph.node_count() == 0 {
            0.0
        } else {
            self.keyword_nodes(keyword).len() as f64 / self.graph.node_count() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::{ColumnType, Value};
    use comm_graph::Direction;

    /// Fig. 1(a)'s tiny co-authorship database: 3 authors, 2 papers,
    /// 5 write references + 1 citation.
    fn coauthor_db() -> Database {
        let mut db = Database::new();
        let author = db.create_table(
            TableSchema::new(
                "Author",
                vec![
                    ColumnDef::new("Aid", ColumnType::Int),
                    ColumnDef::full_text("Name"),
                ],
            )
            .with_primary_key("Aid"),
        );
        let paper = db.create_table(
            TableSchema::new(
                "Paper",
                vec![
                    ColumnDef::new("Pid", ColumnType::Int),
                    ColumnDef::full_text("Title"),
                ],
            )
            .with_primary_key("Pid"),
        );
        let write = db.create_table(
            TableSchema::new(
                "Write",
                vec![
                    ColumnDef::new("Aid", ColumnType::Int),
                    ColumnDef::new("Pid", ColumnType::Int),
                ],
            )
            .with_foreign_key("Aid", author)
            .with_foreign_key("Pid", paper),
        );
        let cite = db.create_table(
            TableSchema::new(
                "Cite",
                vec![
                    ColumnDef::new("Pid1", ColumnType::Int),
                    ColumnDef::new("Pid2", ColumnType::Int),
                ],
            )
            .with_foreign_key("Pid1", paper)
            .with_foreign_key("Pid2", paper),
        );
        for (aid, name) in [(1, "John Smith"), (2, "Jim Smith"), (3, "Kate Green")] {
            db.insert(author, &[Value::Int(aid), Value::from(name)])
                .unwrap();
        }
        for (pid, title) in [(1, "paper1"), (2, "paper2")] {
            db.insert(paper, &[Value::Int(pid), Value::from(title)])
                .unwrap();
        }
        for (aid, pid) in [(1, 1), (3, 1), (3, 2), (1, 2), (2, 2)] {
            db.insert(write, &[Value::Int(aid), Value::Int(pid)])
                .unwrap();
        }
        db.insert(cite, &[Value::Int(1), Value::Int(2)]).unwrap();
        db
    }

    #[test]
    fn node_per_tuple() {
        let db = coauthor_db();
        let g = DatabaseGraph::materialize(&db, WeightScheme::Uniform(1.0), EdgeMode::BiDirected);
        assert_eq!(g.graph.node_count(), db.tuple_count());
        assert_eq!(g.graph.node_count(), 3 + 2 + 5 + 1);
    }

    #[test]
    fn bidirected_edge_count() {
        let db = coauthor_db();
        let g = DatabaseGraph::materialize(&db, WeightScheme::Uniform(1.0), EdgeMode::BiDirected);
        // 5 writes × 2 fks + 1 cite × 2 fks = 12 references → 24 directed edges.
        assert_eq!(g.graph.edge_count(), 24);
        let f = DatabaseGraph::materialize(&db, WeightScheme::Uniform(1.0), EdgeMode::ForwardOnly);
        assert_eq!(f.graph.edge_count(), 12);
    }

    #[test]
    fn keyword_lookup_via_nodes() {
        let db = coauthor_db();
        let g = DatabaseGraph::materialize(&db, WeightScheme::Uniform(1.0), EdgeMode::BiDirected);
        assert_eq!(g.keyword_nodes("smith").len(), 2);
        assert_eq!(g.keyword_nodes("kate").len(), 1);
        assert_eq!(g.keyword_nodes("paper1").len(), 1);
        assert_eq!(g.keyword_nodes("nothing").len(), 0);
        assert!(g.keyword_frequency("smith") > 0.0);
    }

    #[test]
    fn provenance_roundtrip() {
        let db = coauthor_db();
        let g = DatabaseGraph::materialize(&db, WeightScheme::Uniform(1.0), EdgeMode::BiDirected);
        for node in g.graph.nodes() {
            let t = g.tuple_of(node);
            assert_eq!(g.node_of(t), Some(node));
        }
    }

    #[test]
    fn materialized_graph_certifies() {
        let db = coauthor_db();
        for scheme in [WeightScheme::LogInDegree, WeightScheme::Uniform(2.5)] {
            let g = DatabaseGraph::materialize(&db, scheme, EdgeMode::BiDirected);
            g.validate_weights(scheme).unwrap();
        }
    }

    #[test]
    fn wrong_scheme_is_detected() {
        let db = coauthor_db();
        let g = DatabaseGraph::materialize(&db, WeightScheme::Uniform(1.0), EdgeMode::BiDirected);
        assert!(matches!(
            g.validate_weights(WeightScheme::Uniform(2.0)),
            Err(WeightCertificationError::WrongEdgeWeight { .. })
        ));
        assert!(matches!(
            g.validate_weights(WeightScheme::LogInDegree),
            Err(WeightCertificationError::WrongEdgeWeight { .. })
        ));
    }

    #[test]
    fn log_indegree_weights() {
        let db = coauthor_db();
        let g = DatabaseGraph::materialize(&db, WeightScheme::LogInDegree, EdgeMode::BiDirected);
        // Every edge weight equals log2(1 + in_degree(target)).
        for (_, v, w) in g.graph.edges() {
            let expect = (1.0 + g.graph.in_degree(v) as f64).log2();
            assert!((w.get() - expect).abs() < 1e-12);
        }
        // Authors connected to papers through Write tuples within 2 hops.
        let kate = g.keyword_nodes("kate")[0];
        let reach = comm_graph::shortest_distances(&g.graph, Direction::Forward, kate);
        let finite = reach.iter().filter(|d| d.is_finite()).count();
        assert!(finite > 1, "kate reaches more than herself");
    }
}
