//! Error type for the relational layer.

use std::fmt;

/// Errors raised by schema validation and insertion.
#[derive(Debug, Clone, PartialEq)]
pub enum RdbError {
    /// A row had the wrong number of cells.
    ArityMismatch {
        /// Table name.
        table: String,
        /// Declared arity.
        expected: usize,
        /// Provided arity.
        got: usize,
    },
    /// A cell did not match its column's type.
    TypeMismatch {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// Cell index.
        index: usize,
    },
    /// The primary-key cell was `Null`.
    NullPrimaryKey {
        /// Table name.
        table: String,
    },
    /// A primary key was inserted twice.
    DuplicateKey {
        /// Table name.
        table: String,
        /// Offending key.
        key: i64,
    },
    /// A foreign key referenced a missing row.
    ForeignKeyViolation {
        /// Referencing table name.
        table: String,
        /// Referencing column name.
        column: String,
        /// The dangling key value.
        key: i64,
    },
    /// A table name was not found in the database.
    NoSuchTable {
        /// The missing name.
        name: String,
    },
    /// A text cell was too large for the row format's `u32` length prefix.
    OversizedText {
        /// The cell's byte length.
        len: usize,
    },
    /// An encoded row failed to decode (truncated payload, unknown cell
    /// tag, or invalid UTF-8) — the arena bytes do not describe a row.
    CorruptRow {
        /// What the decoder found.
        detail: String,
    },
}

impl fmt::Display for RdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdbError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(f, "table {table}: expected {expected} cells, got {got}"),
            RdbError::TypeMismatch {
                table,
                column,
                index,
            } => write!(
                f,
                "table {table}: cell {index} does not match column {column}"
            ),
            RdbError::NullPrimaryKey { table } => {
                write!(f, "table {table}: primary key may not be NULL")
            }
            RdbError::DuplicateKey { table, key } => {
                write!(f, "table {table}: duplicate primary key {key}")
            }
            RdbError::ForeignKeyViolation { table, column, key } => {
                write!(f, "table {table}.{column}: dangling foreign key {key}")
            }
            RdbError::NoSuchTable { name } => write!(f, "no table named {name}"),
            RdbError::OversizedText { len } => {
                write!(f, "text cell of {len} bytes exceeds the u32 length prefix")
            }
            RdbError::CorruptRow { detail } => write!(f, "corrupt row: {detail}"),
        }
    }
}

impl std::error::Error for RdbError {}
