//! Synthetic IMDB-like dataset (the paper's "IMDB" is the GroupLens
//! MovieLens-1M dump: `Users(UserID, Gender, Age, Occupation, Zip-code)`,
//! `Movies(MovieID, Title, Genres)`, `Ratings(UserID, MovieID, Rating,
//! Timestamp)` with 6.04K / 3.88K / 1,000.21K tuples — each user rates
//! 165.6 movies and each movie is rated 257.6 times on average, giving the
//! *dense* bipartite topology responsible for the multi-center communities
//! of Fig. 9/10).
//!
//! The generator reproduces that density shape at a laptop-friendly scale:
//! long-tailed per-user rating counts, preferential movie popularity, and
//! Table V keywords planted into movie titles at exact KWFs.

use crate::dblp::GeneratedDataset;
use crate::keywords::{filler_title, plant_keywords, PlantSpec};
use crate::sampling::WeightedSampler;
use crate::workload::{all_plant_specs, IMDB_KEYWORD_GROUPS};
use comm_rdb::{
    ColumnDef, ColumnType, Database, DatabaseGraph, EdgeMode, TableSchema, Value, WeightScheme,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for the IMDB-like generator.
#[derive(Clone, Debug)]
pub struct ImdbConfig {
    /// Number of users (paper full scale: 6,040).
    pub users: usize,
    /// Number of movies (paper full scale: 3,883).
    pub movies: usize,
    /// Mean ratings per user (paper: 165.6; scaled default keeps the
    /// graph dense while staying laptop-sized).
    pub avg_ratings_per_user: f64,
    /// RNG seed.
    pub seed: u64,
    /// Keywords to plant (defaults to every Table V keyword).
    pub plant: Vec<PlantSpec>,
}

impl Default for ImdbConfig {
    fn default() -> ImdbConfig {
        ImdbConfig {
            users: 650,
            movies: 420,
            avg_ratings_per_user: 55.0,
            seed: 0x14DB_2000,
            plant: all_plant_specs(IMDB_KEYWORD_GROUPS),
        }
    }
}

impl ImdbConfig {
    /// Scales user/movie counts by `factor`.
    pub fn scaled(mut self, factor: f64) -> ImdbConfig {
        self.users = ((self.users as f64) * factor).round() as usize;
        self.movies = ((self.movies as f64) * factor).round() as usize;
        self
    }

    /// The paper's full MovieLens-1M scale: 6,040 users, 3,883 movies,
    /// ≈ 1M ratings (≈ 1.01M tuples, ≈ 4.0M directed edges).
    pub fn paper_scale() -> ImdbConfig {
        ImdbConfig {
            users: 6_040,
            movies: 3_883,
            avg_ratings_per_user: 165.6,
            ..ImdbConfig::default()
        }
    }
}

const GENRES: [&str; 8] = [
    "drama",
    "comedy",
    "action",
    "thriller",
    "romance",
    "horror",
    "documentary",
    "animation",
];
const OCCUPATIONS: [&str; 6] = [
    "engineer", "artist", "student", "doctor", "writer", "farmer",
];

/// Generates the IMDB-like database and materializes its graph.
pub fn generate_imdb(config: &ImdbConfig) -> GeneratedDataset {
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Ratings: per user, a long-tailed count (exponential-ish around the
    // mean); movies chosen preferentially (hits get most ratings).
    let mut movie_sampler = WeightedSampler::new(config.movies);
    let mut ratings: Vec<(usize, usize)> = Vec::new();
    for user in 0..config.users {
        // Geometric-like tail: 1 + floor(Exp(mean-1)).
        let mean = (config.avg_ratings_per_user - 1.0).max(0.0);
        let count = 1 + sample_exponential(&mut rng, mean).min(config.movies.saturating_sub(1));
        let mut seen = std::collections::HashSet::with_capacity(count);
        while seen.len() < count {
            let m = movie_sampler.sample(&mut rng);
            if seen.insert(m) {
                movie_sampler.add(m, 1);
                ratings.push((user, m));
            }
        }
    }

    let total_tuples = config.users + config.movies + ratings.len();
    let mut titles: Vec<String> = (0..config.movies).map(|_| filler_title(&mut rng)).collect();
    // Movie keyword placement is uniform: the rating graph is dense enough
    // that communities form without topical correlation.
    plant_keywords(
        &mut titles,
        &[],
        0.0,
        0.0,
        total_tuples,
        &config.plant,
        config.seed,
    );

    let mut db = Database::new();
    let users_t = db.create_table(
        TableSchema::new(
            "Users",
            vec![
                ColumnDef::new("UserID", ColumnType::Int),
                ColumnDef::new("Gender", ColumnType::Text),
                ColumnDef::new("Age", ColumnType::Int),
                ColumnDef::full_text("Occupation"),
                ColumnDef::new("Zipcode", ColumnType::Text),
            ],
        )
        .with_primary_key("UserID"),
    );
    let movies_t = db.create_table(
        TableSchema::new(
            "Movies",
            vec![
                ColumnDef::new("MovieID", ColumnType::Int),
                ColumnDef::full_text("Title"),
                ColumnDef::full_text("Genres"),
            ],
        )
        .with_primary_key("MovieID"),
    );
    let ratings_t = db.create_table(
        TableSchema::new(
            "Ratings",
            vec![
                ColumnDef::new("UserID", ColumnType::Int),
                ColumnDef::new("MovieID", ColumnType::Int),
                ColumnDef::new("Rating", ColumnType::Int),
                ColumnDef::new("Timestamp", ColumnType::Int),
            ],
        )
        .with_foreign_key("UserID", users_t)
        .with_foreign_key("MovieID", movies_t),
    );

    for u in 0..config.users {
        db.insert(
            users_t,
            &[
                Value::Int(u as i64),
                Value::Text(if u % 2 == 0 { "M".into() } else { "F".into() }),
                Value::Int(18 + (u % 50) as i64),
                Value::Text(OCCUPATIONS[u % OCCUPATIONS.len()].to_owned()),
                Value::Text(format!("{:05}", (u * 37) % 100_000)),
            ],
        )
        // xtask-allow: no_panics — the generator emits schema-valid rows by construction
        .expect("user insert");
    }
    for (m, title) in titles.into_iter().enumerate() {
        db.insert(
            movies_t,
            &[
                Value::Int(m as i64),
                Value::Text(title),
                Value::Text(GENRES[m % GENRES.len()].to_owned()),
            ],
        )
        // xtask-allow: no_panics — the generator emits schema-valid rows by construction
        .expect("movie insert");
    }
    let mut ts = 960_000_000i64;
    for &(u, m) in &ratings {
        ts += 7;
        db.insert(
            ratings_t,
            &[
                Value::Int(u as i64),
                Value::Int(m as i64),
                Value::Int(1 + ((u + m) % 5) as i64),
                Value::Int(ts),
            ],
        )
        // xtask-allow: no_panics — the generator emits schema-valid rows by construction
        .expect("rating insert");
    }

    let graph = DatabaseGraph::materialize(&db, WeightScheme::LogInDegree, EdgeMode::BiDirected);
    GeneratedDataset {
        name: "imdb-synthetic",
        db,
        graph,
    }
}

/// Samples `floor(Exp(mean))` (long-tailed, mean ≈ `mean`).
fn sample_exponential(rng: &mut SmallRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (-u.ln() * mean).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm_rdb::TableId;

    fn small() -> ImdbConfig {
        ImdbConfig::default().scaled(0.3)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_imdb(&small());
        let b = generate_imdb(&small());
        assert_eq!(a.graph.graph.edge_count(), b.graph.graph.edge_count());
        assert_eq!(a.graph.keyword_nodes("star"), b.graph.keyword_nodes("star"));
    }

    #[test]
    fn denser_than_dblp() {
        // The defining contrast of Sec. VII: IMDB's graph is denser.
        let imdb = generate_imdb(&small());
        let dblp = crate::dblp::generate_dblp(&crate::dblp::DblpConfig::default().scaled(0.1));
        let density = |d: &GeneratedDataset| {
            d.graph.graph.edge_count() as f64 / d.graph.graph.node_count() as f64
        };
        assert!(density(&imdb) > density(&dblp));
    }

    #[test]
    fn ratings_dominate_tuples() {
        let d = generate_imdb(&small());
        let ratings = d.db.table(TableId(2)).len();
        assert!(ratings * 2 > d.db.tuple_count());
        assert_eq!(d.graph.graph.edge_count(), 2 * 2 * ratings);
    }

    #[test]
    fn planted_kwf_is_exact() {
        let d = generate_imdb(&small());
        let total = d.db.tuple_count();
        for group in IMDB_KEYWORD_GROUPS {
            for kw in group.keywords {
                let nodes = d.graph.keyword_nodes(kw).len();
                let want = (group.kwf * total as f64).round() as usize;
                assert_eq!(nodes, want, "kwf of {kw}");
            }
        }
    }

    #[test]
    fn movie_popularity_long_tailed() {
        let d = generate_imdb(&small());
        let movies = d.db.table(TableId(1)).len();
        let mut pop = vec![0usize; movies];
        let ratings = d.db.table(TableId(2));
        for row in ratings.rows() {
            let m = ratings.cell(row, comm_rdb::ColumnId(1)).as_int().unwrap() as usize;
            pop[m] += 1;
        }
        let max = *pop.iter().max().unwrap();
        let min = *pop.iter().min().unwrap();
        let mean = pop.iter().sum::<usize>() as f64 / movies as f64;
        // The graph is so dense that popular movies saturate (every user
        // rated them); skew shows up as a wide min–max spread instead.
        assert!(max as f64 > mean * 1.3, "max {max}, mean {mean}");
        assert!((min as f64) < mean * 0.7, "min {min}, mean {mean}");
    }

    #[test]
    fn no_duplicate_user_movie_pairs() {
        let d = generate_imdb(&ImdbConfig::default().scaled(0.1));
        let ratings = d.db.table(TableId(2));
        let mut seen = std::collections::HashSet::new();
        for row in ratings.rows() {
            let u = ratings.cell(row, comm_rdb::ColumnId(0)).as_int().unwrap();
            let m = ratings.cell(row, comm_rdb::ColumnId(1)).as_int().unwrap();
            assert!(seen.insert((u, m)), "duplicate rating ({u}, {m})");
        }
    }
}
