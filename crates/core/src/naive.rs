// xtask-allow-file: guard_coverage — brute-force oracles exist to cross-check the real engines in tests
//! The naive nested-loop enumerator of Sec. III: check every combination of
//! `V_1 × … × V_l` (`O(n^l)`), keeping those that admit a center.
//!
//! It is exponential in `l`, but trivially complete and duplication-free,
//! which makes it the ground-truth oracle for the property tests of the
//! polynomial-delay algorithms and the expanding baselines. It is also a
//! legitimate (terrible) baseline in its own right.

use crate::types::{Core, QuerySpec};
use comm_graph::weight::index_to_u32;
use comm_graph::{DijkstraEngine, Direction, Graph, NodeId, Weight};

/// All cores with their costs, computed by brute force.
///
/// Returns `(core, cost)` pairs sorted by `(cost, core)`; the cost is
/// `min_u Σ_i dist(u, c_i)` over all centers `u` reaching every `c_i`
/// within `rmax`.
pub fn naive_all_cores(graph: &Graph, spec: &QuerySpec) -> Vec<(Core, Weight)> {
    let n = graph.node_count();
    let l = spec.l();
    if spec.has_empty_keyword() || l == 0 {
        return Vec::new();
    }

    // dist_to[v] = per-node distance *to* keyword node v (reverse Dijkstra).
    let mut engine = DijkstraEngine::new(n);
    let mut keyword_union: Vec<NodeId> = spec.keyword_nodes.iter().flatten().copied().collect();
    keyword_union.sort_unstable();
    keyword_union.dedup();
    let mut dist_to: Vec<Vec<Weight>> = Vec::with_capacity(keyword_union.len());
    for &v in &keyword_union {
        let mut d = vec![Weight::INFINITY; n];
        engine.run(graph, Direction::Reverse, [v], spec.rmax, |s| {
            d[s.node.index()] = s.dist;
        });
        dist_to.push(d);
    }
    // xtask-allow: no_panics — slot() is only called on members of keyword_union
    let slot = |v: NodeId| keyword_union.binary_search(&v).expect("keyword node");

    let mut out: Vec<(Core, Weight)> = Vec::new();
    let mut combo = vec![0usize; l];
    'outer: loop {
        // Evaluate the current combination.
        let core: Vec<NodeId> = (0..l).map(|i| spec.keyword_nodes[i][combo[i]]).collect();
        let mut best = Weight::INFINITY;
        #[allow(clippy::needless_range_loop)] // u indexes l parallel arrays
        for u in 0..n {
            let mut dists = Vec::with_capacity(l);
            let mut ok = true;
            for &c in &core {
                let d = dist_to[slot(c)][u];
                if !d.is_finite() {
                    ok = false;
                    break;
                }
                dists.push(d);
            }
            if ok {
                let s = spec.cost.combine(dists);
                if s < best {
                    best = s;
                }
            }
        }
        if best.is_finite() {
            out.push((Core(core), best));
        }
        // Advance the odometer.
        for i in (0..l).rev() {
            combo[i] += 1;
            if combo[i] < spec.keyword_nodes[i].len() {
                continue 'outer;
            }
            combo[i] = 0;
            if i == 0 {
                break 'outer;
            }
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Brute-force re-derivation of a community's node roles, straight from
/// Definition 2.1 (used to cross-check `GetCommunity`).
///
/// Returns `(centers, all_members)`, both sorted.
pub fn naive_community_nodes(
    graph: &Graph,
    core: &Core,
    rmax: Weight,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let n = graph.node_count();
    let mut engine = DijkstraEngine::new(n);
    let distinct = core.distinct_nodes();

    // dist(u, c) for every u, per knode c.
    let mut dist_to = Vec::new();
    for &c in &distinct {
        let mut d = vec![Weight::INFINITY; n];
        engine.run(graph, Direction::Reverse, [c], rmax, |s| {
            d[s.node.index()] = s.dist;
        });
        dist_to.push(d);
    }
    let centers: Vec<NodeId> = (0..n)
        .filter(|&u| dist_to.iter().all(|d| d[u].is_finite()))
        .map(|u| NodeId(index_to_u32(u)))
        .collect();
    if centers.is_empty() {
        return (Vec::new(), Vec::new());
    }

    // dist(v_c, x) for every x, per center (forward).
    let mut members: Vec<NodeId> = Vec::new();
    let mut dist_from_center = vec![Weight::INFINITY; n];
    engine.run(
        graph,
        Direction::Forward,
        centers.iter().copied(),
        rmax,
        |s| {
            dist_from_center[s.node.index()] = s.dist;
        },
    );
    for u in 0..n {
        if !dist_from_center[u].is_finite() {
            continue;
        }
        let to_knode = dist_to
            .iter()
            .map(|d| d[u])
            .min()
            .unwrap_or(Weight::INFINITY);
        if to_knode.is_finite() && dist_from_center[u] + to_knode <= rmax {
            members.push(NodeId(index_to_u32(u)));
        }
    }
    members.sort_unstable();
    (centers, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CostFn;
    use comm_datasets::paper_example::{fig4_graph, fig4_keyword_nodes, fig4_table1, FIG4_RMAX};

    #[test]
    fn max_cost_reorders_table1() {
        let g = fig4_graph();
        let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX))
            .with_cost(CostFn::MaxDistance);
        let cores = naive_all_cores(&g, &spec);
        assert_eq!(cores.len(), 5, "cost fn must not change the result set");
        // Under max-distance, [v4,v8,v6] still wins (max 3 at v7).
        assert_eq!(cores[0].0, Core(vec![NodeId(4), NodeId(8), NodeId(6)]));
        assert_eq!(cores[0].1, Weight::new(3.0));
    }

    #[test]
    fn naive_matches_table1_exactly() {
        let g = fig4_graph();
        let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
        let cores = naive_all_cores(&g, &spec);
        let got: Vec<(Vec<u32>, f64)> = cores
            .iter()
            .map(|(c, w)| (c.0.iter().map(|n| n.0).collect(), w.get()))
            .collect();
        let expect: Vec<(Vec<u32>, f64)> = fig4_table1()
            .into_iter()
            .map(|(_, core, cost, _)| (core.to_vec(), cost))
            .collect();
        assert_eq!(
            got, expect,
            "naive enumeration must reproduce Table I in rank order"
        );
    }

    #[test]
    fn naive_community_roles_match_paper() {
        let g = fig4_graph();
        let core = Core(vec![NodeId(13), NodeId(8), NodeId(11)]);
        let (centers, members) = naive_community_nodes(&g, &core, Weight::new(FIG4_RMAX));
        assert_eq!(centers, vec![NodeId(11), NodeId(12)]);
        assert_eq!(
            members,
            vec![NodeId(8), NodeId(10), NodeId(11), NodeId(12), NodeId(13)]
        );
    }

    #[test]
    fn empty_when_keyword_unmatched() {
        let g = fig4_graph();
        let spec = QuerySpec::new(vec![vec![NodeId(4)], vec![]], Weight::new(8.0));
        assert!(naive_all_cores(&g, &spec).is_empty());
    }
}
