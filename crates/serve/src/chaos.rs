//! Server-side fault injection, extending the engine's `with_trip_after`
//! wire into the serving path.
//!
//! [`ChaosConfig`] is compiled into every build (it is plain configuration,
//! off by default) so the CI smoke lane and the chaos tests exercise the
//! *production* request loop, not a test-only variant. Each injection is
//! driven by a deterministic shared counter, so a given config produces
//! the same fault schedule on every run:
//!
//! * **guard trips** — admitted queries run under a guard additionally
//!   armed with `with_trip_after(n)`, forcing certified exact-prefix
//!   degradation at a chosen point;
//! * **mid-request disconnects** — the server drops the connection after
//!   executing but before replying on every Nth query, exercising the
//!   client's retry + the server's idempotent replay;
//! * **reply delays** — the server sleeps before replying on every Nth
//!   query, simulating a slow network/peer so client read timeouts fire;
//! * **pool poisoning** — before every Nth query the `EnginePool` shard
//!   for the served graph is poisoned by a panicking thread, proving the
//!   recovery path keeps the daemon serving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Fault-injection schedule for the serving path. `None` everywhere (the
/// default) injects nothing.
#[derive(Clone, Debug, Default)]
pub struct ChaosConfig {
    /// Arm every admitted query's guard with `with_trip_after(n)`.
    pub trip_queries_after: Option<u64>,
    /// Drop the connection instead of replying on every Nth query.
    pub disconnect_every: Option<u64>,
    /// Sleep this long before sending every Nth query reply.
    pub delay_every: Option<(u64, Duration)>,
    /// Poison the `EnginePool` shard for the served graph before every
    /// Nth query.
    pub poison_pool_every: Option<u64>,
}

impl ChaosConfig {
    /// Whether any injection is armed.
    pub fn is_active(&self) -> bool {
        self.trip_queries_after.is_some()
            || self.disconnect_every.is_some()
            || self.delay_every.is_some()
            || self.poison_pool_every.is_some()
    }
}

/// The chaos schedule plus its deterministic query counter.
pub struct ChaosState {
    cfg: ChaosConfig,
    queries: AtomicU64,
    injected_disconnects: AtomicU64,
    injected_delays: AtomicU64,
    injected_poisons: AtomicU64,
}

/// One query's injection decisions, sampled at admission time.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosPlan {
    /// Arm the guard with this trip-after value.
    pub trip_after: Option<u64>,
    /// Drop the connection instead of sending the reply.
    pub drop_reply: bool,
    /// Sleep before sending the reply.
    pub delay_reply: Option<Duration>,
    /// Poison the engine-pool shard before executing.
    pub poison_pool: bool,
}

impl ChaosState {
    /// Wraps a schedule.
    pub fn new(cfg: ChaosConfig) -> ChaosState {
        ChaosState {
            cfg,
            queries: AtomicU64::new(0),
            injected_disconnects: AtomicU64::new(0),
            injected_delays: AtomicU64::new(0),
            injected_poisons: AtomicU64::new(0),
        }
    }

    /// The schedule this state runs.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Samples the injection plan for the next query (1-based sequence).
    pub fn plan_query(&self) -> ChaosPlan {
        if !self.cfg.is_active() {
            return ChaosPlan::default();
        }
        let seq = self.queries.fetch_add(1, Ordering::Relaxed) + 1;
        let every = |n: Option<u64>| n.is_some_and(|n| n > 0 && seq.is_multiple_of(n));
        let plan = ChaosPlan {
            trip_after: self.cfg.trip_queries_after,
            drop_reply: every(self.cfg.disconnect_every),
            delay_reply: self
                .cfg
                .delay_every
                .filter(|(n, _)| *n > 0 && seq.is_multiple_of(*n))
                .map(|(_, d)| d),
            poison_pool: every(self.cfg.poison_pool_every),
        };
        if plan.drop_reply {
            self.injected_disconnects.fetch_add(1, Ordering::Relaxed);
        }
        if plan.delay_reply.is_some() {
            self.injected_delays.fetch_add(1, Ordering::Relaxed);
        }
        if plan.poison_pool {
            self.injected_poisons.fetch_add(1, Ordering::Relaxed);
        }
        plan
    }

    /// `(disconnects, delays, poisons)` injected so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.injected_disconnects.load(Ordering::Relaxed),
            self.injected_delays.load(Ordering::Relaxed),
            self.injected_poisons.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_config_injects_nothing() {
        let st = ChaosState::new(ChaosConfig::default());
        for _ in 0..100 {
            let p = st.plan_query();
            assert!(p.trip_after.is_none());
            assert!(!p.drop_reply && !p.poison_pool && p.delay_reply.is_none());
        }
        assert_eq!(st.stats(), (0, 0, 0));
    }

    #[test]
    fn schedule_is_deterministic_and_periodic() {
        let cfg = ChaosConfig {
            trip_queries_after: Some(5),
            disconnect_every: Some(3),
            delay_every: Some((4, Duration::from_millis(10))),
            poison_pool_every: Some(6),
        };
        let st = ChaosState::new(cfg);
        let plans: Vec<ChaosPlan> = (0..12).map(|_| st.plan_query()).collect();
        for (i, p) in plans.iter().enumerate() {
            let seq = u64::try_from(i).unwrap() + 1;
            assert_eq!(p.trip_after, Some(5));
            assert_eq!(p.drop_reply, seq % 3 == 0, "seq {seq}");
            assert_eq!(p.delay_reply.is_some(), seq % 4 == 0, "seq {seq}");
            assert_eq!(p.poison_pool, seq % 6 == 0, "seq {seq}");
        }
        assert_eq!(st.stats(), (4, 3, 2));
    }
}
