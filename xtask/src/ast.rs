//! A token-tree layer over [`SourceFile`]'s masked text.
//!
//! The lint rules started as substring scans; the analyzer needs structure:
//! which tokens form a function body, where loops begin and end, what the
//! receiver of a method call is. This module tokenizes the masked text
//! (comments and string interiors are already blanked, so every token is
//! real code) and extracts just enough shape — functions with their impl
//! context, struct fields with type text, enums with variants, bracket
//! matching — for the rules to query structurally instead of textually.
//!
//! It is still deliberately not a full parser: no expressions, no types, no
//! name resolution beyond what the analyzer layers on top. Offsets are
//! byte-exact against the original source, so findings report real lines.

use crate::scan::SourceFile;

/// Token classification. Brackets are split out so they can be matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (including suffixed/hex forms).
    Num,
    /// Any other single character.
    Punct(char),
    /// `(`, `[`, or `{`.
    Open(char),
    /// `)`, `]`, or `}`.
    Close(char),
}

/// One token: byte span in the masked text plus its kind.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// Classification.
    pub kind: TokKind,
}

/// A function item: signature facts plus token ranges for later queries.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range `[sig_start, body_open)` covering qualifiers + signature.
    pub sig: (usize, usize),
    /// Parameters as `(name, type text)`; `self` params use the name `self`.
    pub params: Vec<(String, String)>,
    /// Return type text (empty for `()`).
    pub ret: String,
    /// Token indices of the body `{` and its matching `}` (None for trait
    /// signatures without bodies).
    pub body: Option<(usize, usize)>,
    /// Name of the enclosing `impl` type, when the fn is inside one.
    pub impl_ty: Option<String>,
}

/// One named struct field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Type text as written (masked source slice).
    pub ty: String,
}

/// A struct item with its named fields (tuple/unit structs have none).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Named fields.
    pub fields: Vec<Field>,
}

/// An enum item with its variant names.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// `(line, variant_name)` pairs.
    pub variants: Vec<(usize, String)>,
}

/// The token span of an `impl` block and the type it implements for.
#[derive(Debug, Clone)]
pub struct ImplSpan {
    /// Token index of the body `{`.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
    /// The implemented-for type name (`Foo` in `impl Trait for Foo`).
    pub ty: String,
}

/// A call site: an identifier directly followed by `(`.
#[derive(Debug, Clone)]
pub struct Call {
    /// Token index of the callee identifier.
    pub tok: usize,
    /// Callee name.
    pub name: String,
    /// True when the call is a method call (`recv.name(...)`).
    pub is_method: bool,
}

/// The parsed token tree plus extracted items for one file.
pub struct Ast {
    /// The masked source text (byte offsets match the [`SourceFile`]).
    pub src: String,
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// For bracket tokens, the index of the matching partner
    /// (`usize::MAX` for unmatched or non-bracket tokens).
    pub partner: Vec<usize>,
    /// Function items (all visibilities, including nested in impls).
    pub fns: Vec<FnItem>,
    /// Struct items with named fields.
    pub structs: Vec<StructItem>,
    /// Enum items.
    pub enums: Vec<EnumItem>,
    /// Impl-block spans (for impl-context lookup).
    pub impls: Vec<ImplSpan>,
}

const KEYWORDS: [&str; 24] = [
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "fn", "impl",
    "let", "pub", "use", "mod", "where", "unsafe", "async", "dyn", "ref", "mut", "break",
    "continue",
];

impl Ast {
    /// Tokenizes and extracts items from a source file's masked text.
    pub fn parse(sf: &SourceFile) -> Ast {
        let src = sf.masked.clone();
        let toks = tokenize(&src);
        let partner = match_brackets(&toks);
        let mut ast = Ast {
            src,
            toks,
            partner,
            fns: Vec::new(),
            structs: Vec::new(),
            enums: Vec::new(),
            impls: Vec::new(),
        };
        ast.extract(sf);
        ast
    }

    /// The text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        let t = &self.toks[i];
        &self.src[t.start..t.end]
    }

    /// The identifier text of token `i`, when it is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        (self.toks.get(i)?.kind == TokKind::Ident).then(|| self.text(i))
    }

    /// Whether token `i` is the punct `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct(c))
    }

    /// Whether tokens `i` and `i + 1` are byte-adjacent (no whitespace).
    fn adjacent(&self, i: usize) -> bool {
        i + 1 < self.toks.len() && self.toks[i].end == self.toks[i + 1].start
    }

    /// Whether tokens `i - 1, i` form a `::` path separator.
    fn path_sep_before(&self, i: usize) -> bool {
        i >= 2
            && self.is_punct(i - 1, ':')
            && self.is_punct(i - 2, ':')
            && self.toks[i - 2].end == self.toks[i - 1].start
    }

    /// The masked-source slice spanned by tokens `[lo, hi]` inclusive.
    pub fn span_text(&self, lo: usize, hi: usize) -> &str {
        if lo >= self.toks.len() || hi >= self.toks.len() || lo > hi {
            return "";
        }
        &self.src[self.toks[lo].start..self.toks[hi].end]
    }

    /// 1-based line of token `i`.
    pub fn line(&self, sf: &SourceFile, i: usize) -> usize {
        sf.line_of(self.toks[i].start)
    }

    /// Call sites within the token range `[lo, hi)`.
    pub fn calls_in(&self, lo: usize, hi: usize) -> Vec<Call> {
        let mut out = Vec::new();
        for i in lo..hi.min(self.toks.len().saturating_sub(1)) {
            let Some(name) = self.ident(i) else { continue };
            if KEYWORDS.contains(&name) {
                continue;
            }
            // `name!(...)` macros tokenize as Ident, `!`, `(` — the bang
            // between name and paren already excludes them here.
            if self.toks[i + 1].kind != TokKind::Open('(') {
                continue;
            }
            out.push(Call {
                tok: i,
                name: name.to_string(),
                is_method: i > 0 && self.is_punct(i - 1, '.'),
            });
        }
        out
    }

    /// The dotted/path receiver chain of a method call, outermost first:
    /// `self.classes[c].lock()` yields `["self", "classes"]` (the method
    /// name itself is excluded); `EnginePool::global().acquire(n)` yields
    /// `["EnginePool", "global"]`. Unresolvable elements stop the walk.
    pub fn receiver_chain(&self, call_tok: usize) -> Vec<String> {
        let mut chain: Vec<String> = Vec::new();
        let mut j = call_tok; // token just after the separator under scan
        loop {
            if j == 0 {
                break;
            }
            // Identify the separator directly before token j.
            let sep = j - 1;
            let elem_end = if self.is_punct(sep, '.') {
                if sep == 0 {
                    break;
                }
                sep - 1
            } else if sep >= 1
                && self.is_punct(sep, ':')
                && self.is_punct(sep - 1, ':')
                && self.toks[sep - 1].end == self.toks[sep].start
            {
                if sep == 1 {
                    break;
                }
                sep - 2
            } else {
                break;
            };
            // Skip over trailing groups: `foo(...)`, `xs[i]`.
            let mut e = elem_end;
            while let TokKind::Close(_) = self.toks[e].kind {
                let open = self.partner[e];
                if open == usize::MAX || open == 0 {
                    chain.reverse();
                    return chain;
                }
                e = open - 1;
            }
            match self.toks[e].kind {
                TokKind::Ident | TokKind::Num => {
                    chain.push(self.text(e).to_string());
                    j = e;
                }
                _ => break,
            }
        }
        chain.reverse();
        chain
    }

    /// Loop spans (`for`/`while`/`loop`) within `[lo, hi)` as
    /// `(keyword_tok, close_brace_tok)` pairs, including the loop header.
    pub fn loops_in(&self, lo: usize, hi: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let hi = hi.min(self.toks.len());
        for i in lo..hi {
            let Some(kw) = self.ident(i) else { continue };
            if kw != "for" && kw != "while" && kw != "loop" {
                continue;
            }
            // `for<'a>` higher-ranked bounds are types, not loops.
            if kw == "for" && self.is_punct(i + 1, '<') {
                continue;
            }
            // Find the loop body `{` at group level 0 from the keyword.
            let mut j = i + 1;
            let mut open = None;
            while j < hi {
                match self.toks[j].kind {
                    TokKind::Open('{') => {
                        open = Some(j);
                        break;
                    }
                    TokKind::Open(_) => {
                        let p = self.partner[j];
                        if p == usize::MAX {
                            break;
                        }
                        j = p + 1;
                    }
                    TokKind::Punct(';') | TokKind::Close(_) => break,
                    _ => j += 1,
                }
            }
            if let Some(open) = open {
                let close = self.partner[open];
                if close != usize::MAX {
                    out.push((i, close));
                }
            }
        }
        out
    }

    /// The innermost enclosing impl type for token index `i`.
    pub fn impl_ty_at(&self, i: usize) -> Option<&str> {
        self.impls
            .iter()
            .filter(|s| s.open < i && i < s.close)
            .min_by_key(|s| s.close - s.open)
            .map(|s| s.ty.as_str())
    }

    /// Skips a `<...>` generic group starting at the `<` token `i`; returns
    /// the index just past the closing `>`. Arrow `->` greater-thans do not
    /// close the group.
    fn skip_angles(&self, i: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < self.toks.len() {
            match self.toks[j].kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    let is_arrow = j > 0 && self.is_punct(j - 1, '-') && self.adjacent(j - 1);
                    if !is_arrow {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                }
                TokKind::Open(_) => {
                    let p = self.partner[j];
                    if p == usize::MAX {
                        return j + 1;
                    }
                    j = p;
                }
                TokKind::Punct(';') => return j,
                _ => {}
            }
            j += 1;
        }
        j
    }

    fn extract(&mut self, sf: &SourceFile) {
        let mut i = 0;
        while i < self.toks.len() {
            match self.ident(i) {
                Some("impl") => {
                    if let Some(span) = self.parse_impl(i) {
                        // Walk into the body so nested fns are found too.
                        i = span.open + 1;
                        self.impls.push(span);
                        continue;
                    }
                }
                Some("fn") => {
                    if let Some(f) = self.parse_fn(sf, i) {
                        let next = f.body.map(|(open, _)| open + 1).unwrap_or(f.sig.1);
                        self.fns.push(f);
                        i = next;
                        continue;
                    }
                }
                Some("struct") => {
                    if let Some((s, next)) = self.parse_struct(i) {
                        self.structs.push(s);
                        i = next;
                        continue;
                    }
                }
                Some("enum") => {
                    if let Some((e, next)) = self.parse_enum(sf, i) {
                        self.enums.push(e);
                        i = next;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Attach impl context now that all spans are known.
        let tys: Vec<Option<String>> = self
            .fns
            .iter()
            .map(|f| self.impl_ty_at(f.fn_tok).map(str::to_string))
            .collect();
        for (f, ty) in self.fns.iter_mut().zip(tys) {
            f.impl_ty = ty;
        }
    }

    /// Parses an impl header at the `impl` keyword; returns its span.
    fn parse_impl(&self, i: usize) -> Option<ImplSpan> {
        let mut j = i + 1;
        if self.is_punct(j, '<') {
            j = self.skip_angles(j);
        }
        let mut ty: Option<String> = None;
        while j < self.toks.len() {
            match self.toks[j].kind {
                TokKind::Open('{') => {
                    let close = self.partner[j];
                    if close == usize::MAX {
                        return None;
                    }
                    return Some(ImplSpan {
                        open: j,
                        close,
                        ty: ty.unwrap_or_default(),
                    });
                }
                TokKind::Punct(';') => return None,
                TokKind::Punct('<') => {
                    j = self.skip_angles(j);
                    continue;
                }
                TokKind::Open(_) => {
                    let p = self.partner[j];
                    if p == usize::MAX {
                        return None;
                    }
                    j = p + 1;
                    continue;
                }
                TokKind::Ident => {
                    let w = self.text(j);
                    if w == "for" {
                        ty = None; // the implemented-for type follows
                    } else if w == "where" {
                        // Type already seen; scan on for the brace.
                    } else if ty.is_none()
                        && !matches!(w, "dyn" | "mut" | "const" | "unsafe" | "async")
                        && !self.path_sep_before(j)
                    {
                        // First path segment: prefer the last segment of a
                        // `a::b::Ty` path, so peek ahead through `::`.
                        let mut last = j;
                        let mut k = j;
                        while k + 2 < self.toks.len()
                            && self.is_punct(k + 1, ':')
                            && self.is_punct(k + 2, ':')
                            && self.toks[k + 1].end == self.toks[k + 2].start
                            && self.toks.get(k + 3).map(|t| t.kind) == Some(TokKind::Ident)
                        {
                            last = k + 3;
                            k = k + 3;
                        }
                        ty = Some(self.text(last).to_string());
                        j = k + 1;
                        continue;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Parses a fn item at the `fn` keyword.
    fn parse_fn(&self, sf: &SourceFile, i: usize) -> Option<FnItem> {
        let name = self.ident(i + 1)?.to_string();
        // Back-scan qualifiers (`pub(crate) const async unsafe fn ...`).
        let mut sig_start = i;
        let mut is_pub = false;
        let mut b = i;
        while b > 0 {
            let prev = b - 1;
            match self.toks[prev].kind {
                TokKind::Ident => match self.text(prev) {
                    "pub" => {
                        is_pub = true;
                        sig_start = prev;
                        b = prev;
                    }
                    "const" | "async" | "unsafe" | "extern" | "crate" | "super" | "in" => {
                        sig_start = prev;
                        b = prev;
                    }
                    _ => break,
                },
                TokKind::Close(')') => {
                    // `pub(crate)` — jump over the group.
                    let open = self.partner[prev];
                    if open == usize::MAX || open == 0 {
                        break;
                    }
                    sig_start = open;
                    b = open;
                }
                _ => break,
            }
        }
        // Generic params after the name.
        let mut j = i + 2;
        if self.is_punct(j, '<') {
            j = self.skip_angles(j);
        }
        if self.toks.get(j).map(|t| t.kind) != Some(TokKind::Open('(')) {
            return None;
        }
        let params_open = j;
        let params_close = self.partner[j];
        if params_close == usize::MAX {
            return None;
        }
        let params = self.parse_params(params_open, params_close);
        // Find the body `{` (or `;` for trait signatures), arrow-aware.
        let mut k = params_close + 1;
        let mut arrow_at: Option<usize> = None;
        let mut body = None;
        while k < self.toks.len() {
            match self.toks[k].kind {
                TokKind::Open('{') => {
                    let close = self.partner[k];
                    if close == usize::MAX {
                        return None;
                    }
                    body = Some((k, close));
                    break;
                }
                TokKind::Punct(';') | TokKind::Close(_) => break,
                TokKind::Punct('<') => {
                    k = self.skip_angles(k);
                    continue;
                }
                TokKind::Open(_) => {
                    let p = self.partner[k];
                    if p == usize::MAX {
                        return None;
                    }
                    k = p + 1;
                    continue;
                }
                TokKind::Punct('>') if arrow_at.is_none() && k > 0 && self.is_punct(k - 1, '-') => {
                    arrow_at = Some(k + 1);
                    k += 1;
                    continue;
                }
                _ => {
                    k += 1;
                    continue;
                }
            }
        }
        let sig_end = body.map(|(open, _)| open).unwrap_or(k);
        let ret = match arrow_at {
            Some(a) if a < sig_end => {
                let mut end = sig_end;
                // Trim a trailing `where` clause out of the return text.
                for w in a..sig_end {
                    if self.ident(w) == Some("where") {
                        end = w;
                        break;
                    }
                }
                self.span_text(a, end.saturating_sub(1)).trim().to_string()
            }
            _ => String::new(),
        };
        Some(FnItem {
            line: self.line(sf, i),
            name,
            is_pub,
            fn_tok: i,
            sig: (sig_start, sig_end),
            params,
            ret,
            body,
            impl_ty: None,
        })
    }

    /// Splits the param group into `(name, type text)` pairs.
    fn parse_params(&self, open: usize, close: usize) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut seg_start = open + 1;
        let mut angle = 0i32;
        let mut m = open + 1;
        while m <= close {
            let end_here = m == close || (angle == 0 && self.toks[m].kind == TokKind::Punct(','));
            if end_here {
                if seg_start < m {
                    if let Some(p) = self.parse_param(seg_start, m) {
                        out.push(p);
                    }
                }
                seg_start = m + 1;
                m += 1;
                continue;
            }
            match self.toks[m].kind {
                TokKind::Open(_) => {
                    let p = self.partner[m];
                    if p == usize::MAX || p > close {
                        break;
                    }
                    m = p + 1;
                }
                TokKind::Punct('<') => {
                    angle += 1;
                    m += 1;
                }
                TokKind::Punct('>') => {
                    let is_arrow = m > 0 && self.is_punct(m - 1, '-') && self.adjacent(m - 1);
                    if !is_arrow {
                        angle -= 1;
                    }
                    m += 1;
                }
                _ => m += 1,
            }
        }
        out
    }

    /// One param segment `[lo, hi)`: `name: Type`, `&mut self`, etc.
    fn parse_param(&self, lo: usize, hi: usize) -> Option<(String, String)> {
        // Find the first single `:` (not `::`) at this level.
        let mut colon = None;
        let mut m = lo;
        while m < hi {
            match self.toks[m].kind {
                TokKind::Open(_) => {
                    let p = self.partner[m];
                    if p == usize::MAX || p >= hi {
                        break;
                    }
                    m = p + 1;
                    continue;
                }
                TokKind::Punct(':') => {
                    let doubled = (m + 1 < hi && self.is_punct(m + 1, ':') && self.adjacent(m))
                        || (m > lo && self.is_punct(m - 1, ':') && self.adjacent(m - 1));
                    if !doubled {
                        colon = Some(m);
                        break;
                    }
                }
                _ => {}
            }
            m += 1;
        }
        match colon {
            Some(c) => {
                // Name: last ident before the colon (skips `mut`, `ref`).
                let mut name = None;
                for k in (lo..c).rev() {
                    if let Some(id) = self.ident(k) {
                        if id != "mut" && id != "ref" {
                            name = Some(id.to_string());
                            break;
                        }
                    }
                }
                let ty = if c + 1 < hi {
                    self.span_text(c + 1, hi - 1).trim().to_string()
                } else {
                    String::new()
                };
                Some((name?, ty))
            }
            None => {
                // `self`, `&self`, `&mut self`, `&'a self`.
                for k in lo..hi {
                    if self.ident(k) == Some("self") {
                        let ty = self.span_text(lo, hi - 1).trim().to_string();
                        return Some(("self".to_string(), ty));
                    }
                }
                None
            }
        }
    }

    /// Parses a struct at the `struct` keyword; returns item + resume index.
    fn parse_struct(&self, i: usize) -> Option<(StructItem, usize)> {
        let name = self.ident(i + 1)?.to_string();
        let mut j = i + 2;
        if self.is_punct(j, '<') {
            j = self.skip_angles(j);
        }
        // Scan (over where clauses) for the field block, tuple, or unit.
        let mut open = None;
        while j < self.toks.len() {
            match self.toks[j].kind {
                TokKind::Open('{') => {
                    open = Some(j);
                    break;
                }
                TokKind::Open('(') => {
                    // Tuple struct: no named fields.
                    let p = self.partner[j];
                    let next = if p == usize::MAX { j + 1 } else { p + 1 };
                    return Some((
                        StructItem {
                            name,
                            fields: Vec::new(),
                        },
                        next,
                    ));
                }
                TokKind::Punct(';') | TokKind::Close(_) => {
                    return Some((
                        StructItem {
                            name,
                            fields: Vec::new(),
                        },
                        j + 1,
                    ));
                }
                TokKind::Punct('<') => {
                    j = self.skip_angles(j);
                    continue;
                }
                _ => j += 1,
            }
        }
        let open = open?;
        let close = self.partner[open];
        if close == usize::MAX {
            return None;
        }
        let mut fields = Vec::new();
        let mut k = open + 1;
        while k < close {
            match self.toks[k].kind {
                TokKind::Punct('#')
                    if self.toks.get(k + 1).map(|t| t.kind) == Some(TokKind::Open('[')) =>
                {
                    let p = self.partner[k + 1];
                    if p == usize::MAX {
                        break;
                    }
                    k = p + 1;
                }
                TokKind::Ident if self.text(k) == "pub" => {
                    k += 1;
                    if self.toks.get(k).map(|t| t.kind) == Some(TokKind::Open('(')) {
                        let p = self.partner[k];
                        if p == usize::MAX {
                            break;
                        }
                        k = p + 1;
                    }
                }
                TokKind::Ident if self.is_punct(k + 1, ':') => {
                    let fname = self.text(k).to_string();
                    // Type runs to the level-0 comma or the block close.
                    let mut m = k + 2;
                    let mut angle = 0i32;
                    while m < close {
                        match self.toks[m].kind {
                            TokKind::Open(_) => {
                                let p = self.partner[m];
                                if p == usize::MAX || p > close {
                                    break;
                                }
                                m = p + 1;
                                continue;
                            }
                            TokKind::Punct('<') => angle += 1,
                            TokKind::Punct('>') => angle -= 1,
                            TokKind::Punct(',') if angle == 0 => break,
                            _ => {}
                        }
                        m += 1;
                    }
                    let ty = if k + 2 < m {
                        self.span_text(k + 2, m - 1).trim().to_string()
                    } else {
                        String::new()
                    };
                    fields.push(Field { name: fname, ty });
                    k = m + 1;
                }
                _ => k += 1,
            }
        }
        Some((StructItem { name, fields }, close + 1))
    }

    /// Parses an enum at the `enum` keyword; returns item + resume index.
    fn parse_enum(&self, sf: &SourceFile, i: usize) -> Option<(EnumItem, usize)> {
        let name = self.ident(i + 1)?.to_string();
        let line = self.line(sf, i);
        let mut j = i + 2;
        if self.is_punct(j, '<') {
            j = self.skip_angles(j);
        }
        while j < self.toks.len() && self.toks[j].kind != TokKind::Open('{') {
            if let TokKind::Punct(';') | TokKind::Close(_) = self.toks[j].kind {
                return None;
            }
            j += 1;
        }
        let open = j;
        let close = *self.partner.get(open)?;
        if close == usize::MAX {
            return None;
        }
        let mut variants = Vec::new();
        let mut k = open + 1;
        while k < close {
            match self.toks[k].kind {
                TokKind::Punct('#')
                    if self.toks.get(k + 1).map(|t| t.kind) == Some(TokKind::Open('[')) =>
                {
                    let p = self.partner[k + 1];
                    if p == usize::MAX {
                        break;
                    }
                    k = p + 1;
                }
                TokKind::Ident => {
                    let vname = self.text(k).to_string();
                    if vname.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                        variants.push((self.line(sf, k), vname));
                    }
                    // Skip payload and discriminant to the level-0 comma.
                    let mut m = k + 1;
                    while m < close {
                        match self.toks[m].kind {
                            TokKind::Open(_) => {
                                let p = self.partner[m];
                                if p == usize::MAX || p > close {
                                    break;
                                }
                                m = p + 1;
                                continue;
                            }
                            TokKind::Punct(',') => break,
                            _ => m += 1,
                        }
                    }
                    k = m + 1;
                }
                _ => k += 1,
            }
        }
        Some((
            EnumItem {
                name,
                line,
                variants,
            },
            close + 1,
        ))
    }
}

fn tokenize(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Tok {
                start,
                end: i,
                kind: TokKind::Ident,
            });
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Tok {
                start,
                end: i,
                kind: TokKind::Num,
            });
            continue;
        }
        let kind = match b {
            b'(' | b'[' | b'{' => TokKind::Open(b as char),
            b')' | b']' | b'}' => TokKind::Close(b as char),
            _ if b.is_ascii() => TokKind::Punct(b as char),
            _ => {
                // Multi-byte char (only possible outside masked regions in
                // identifiers we don't care about); skip its bytes.
                let ch_len = src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
                i += ch_len;
                continue;
            }
        };
        toks.push(Tok {
            start: i,
            end: i + 1,
            kind,
        });
        i += 1;
    }
    toks
}

fn match_brackets(toks: &[Tok]) -> Vec<usize> {
    let mut partner = vec![usize::MAX; toks.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Open(c) => stack.push((c, i)),
            TokKind::Close(c) => {
                let want = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                if let Some(pos) = stack.iter().rposition(|&(o, _)| o == want) {
                    let (_, open) = stack.remove(pos);
                    partner[open] = i;
                    partner[i] = open;
                }
            }
            _ => {}
        }
    }
    partner
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ast(src: &str) -> Ast {
        let sf = SourceFile::from_text(PathBuf::from("t.rs"), src.to_string());
        Ast::parse(&sf)
    }

    #[test]
    fn extracts_fn_with_impl_context() {
        let a = ast(
            "impl Gate {\n    pub fn admit(&self, n: usize) -> bool {\n        true\n    }\n}\n",
        );
        assert_eq!(a.fns.len(), 1);
        let f = &a.fns[0];
        assert_eq!(f.name, "admit");
        assert!(f.is_pub);
        assert_eq!(f.impl_ty.as_deref(), Some("Gate"));
        assert_eq!(f.ret, "bool");
        assert_eq!(f.params[0].0, "self");
        assert_eq!(f.params[1], ("n".to_string(), "usize".to_string()));
    }

    #[test]
    fn trait_impl_for_resolves_type() {
        let a = ast("impl std::fmt::Display for DemoError {\n    fn fmt(&self) {}\n}\n");
        assert_eq!(a.impls.len(), 1);
        assert_eq!(a.impls[0].ty, "DemoError");
        assert_eq!(a.fns[0].impl_ty.as_deref(), Some("DemoError"));
    }

    #[test]
    fn generic_impl_resolves_type() {
        let a = ast(
            "impl<K: Eq, V> Lru<K, V> {\n    fn get(&mut self, k: &K) -> Option<&V> { None }\n}\n",
        );
        assert_eq!(a.impls[0].ty, "Lru");
        assert_eq!(a.fns[0].ret, "Option<&V>");
    }

    #[test]
    fn struct_fields_capture_lock_types() {
        let a = ast("pub struct Gate {\n    cfg: Config,\n    state: Mutex<GateState>,\n    freed: Condvar,\n}\n");
        assert_eq!(a.structs.len(), 1);
        let s = &a.structs[0];
        assert_eq!(s.name, "Gate");
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[1].name, "state");
        assert!(s.fields[1].ty.contains("Mutex<"));
    }

    #[test]
    fn boxed_slice_of_mutexes_is_a_lock_field() {
        let a = ast("struct Pool {\n    classes: Box<[Mutex<Vec<Engine>>]>,\n}\n");
        assert!(a.structs[0].fields[0].ty.contains("Mutex<"));
    }

    #[test]
    fn enum_variants_extracted() {
        let a = ast(
            "pub enum Response {\n    Complete { id: u64 },\n    Pong,\n    Error(String),\n}\n",
        );
        let e = &a.enums[0];
        assert_eq!(e.name, "Response");
        let names: Vec<&str> = e.variants.iter().map(|(_, v)| v.as_str()).collect();
        assert_eq!(names, ["Complete", "Pong", "Error"]);
    }

    #[test]
    fn receiver_chain_walks_fields_and_indexing() {
        let a = ast("fn f(&self) { let g = self.classes[class].lock(); }\n");
        let calls = a.calls_in(0, a.toks.len());
        let lock = calls.iter().find(|c| c.name == "lock").unwrap();
        assert!(lock.is_method);
        assert_eq!(a.receiver_chain(lock.tok), ["self", "classes"]);
    }

    #[test]
    fn receiver_chain_walks_paths_and_calls() {
        let a = ast("fn f() { EnginePool::global().acquire(n); }\n");
        let calls = a.calls_in(0, a.toks.len());
        let acq = calls.iter().find(|c| c.name == "acquire").unwrap();
        let chain = a.receiver_chain(acq.tok);
        assert!(chain.contains(&"EnginePool".to_string()), "{chain:?}");
        assert!(chain.contains(&"global".to_string()), "{chain:?}");
    }

    #[test]
    fn loops_span_header_and_body() {
        let a = ast(
            "fn f(g: &G) {\n    for u in g.nodes() {\n        work(u);\n    }\n    done();\n}\n",
        );
        let f = &a.fns[0];
        let (lo, hi) = f.body.unwrap();
        let loops = a.loops_in(lo, hi);
        assert_eq!(loops.len(), 1);
        let text = a.span_text(loops[0].0, loops[0].1);
        assert!(text.contains(".nodes()"));
        assert!(text.contains("work"));
        assert!(!text.contains("done"));
    }

    #[test]
    fn while_let_loop_found() {
        let a = ast("fn f(s: &mut S) { while let Ok(x) = read_frame(s) { go(x); } }\n");
        let loops = a.loops_in(0, a.toks.len());
        assert_eq!(loops.len(), 1);
        assert!(a.span_text(loops[0].0, loops[0].1).contains("read_frame"));
    }

    #[test]
    fn trait_signature_has_no_body() {
        let a = ast("trait T {\n    fn required(&self) -> usize;\n}\n");
        assert_eq!(a.fns.len(), 1);
        assert!(a.fns[0].body.is_none());
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let a = ast("fn f(cb: fn(u32) -> u32) -> u32 { cb(1) }\n");
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.fns[0].name, "f");
    }

    #[test]
    fn pub_crate_visibility_detected() {
        let a = ast("pub(crate) fn helper() {}\n");
        assert!(a.fns[0].is_pub);
    }

    #[test]
    fn where_clause_and_generic_fn_parse() {
        let a = ast(
            "pub fn run<F, T>(tasks: Vec<F>) -> Vec<T>\nwhere\n    F: FnOnce() -> T + Send,\n{\n    Vec::new()\n}\n",
        );
        let f = &a.fns[0];
        assert_eq!(f.name, "run");
        assert!(f.body.is_some());
        assert_eq!(f.params[0].0, "tasks");
        assert!(f.ret.starts_with("Vec<T>"));
    }

    #[test]
    fn calls_exclude_keywords_and_macros() {
        let a = ast("fn f() { if (x) { go(); } assert!(y); }\n");
        let names: Vec<String> = a
            .calls_in(0, a.toks.len())
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert!(names.contains(&"go".to_string()));
        assert!(!names.contains(&"if".to_string()));
    }
}
