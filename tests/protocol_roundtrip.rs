//! Property tests for the comm-serve wire protocol.
//!
//! Two guarantees the hand-written codecs must uphold:
//!
//! 1. **Roundtrip fidelity** — encode → decode → encode is bit-identical
//!    for every representable message, including `rmax = NaN` and other
//!    special floats (which is why the property compares re-encoded bytes
//!    rather than structural equality: `NaN != NaN`).
//! 2. **Hostile-input safety** — truncated and corrupted payloads are
//!    rejected with a `ProtocolError`, never a panic, and the framing
//!    layer refuses oversized length prefixes before allocating.

use communities::serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    CommunitySummary, Priority, Request, Response, MAX_FRAME_BYTES,
};
use proptest::prelude::*;

fn arb_priority() -> impl Strategy<Value = Priority> {
    prop_oneof![
        Just(Priority::Low),
        Just(Priority::Normal),
        Just(Priority::High),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            any::<u64>(),
            arb_priority(),
            prop::collection::vec(".{0,24}", 0..6),
            any::<u64>(),
            any::<u32>(),
        )
            .prop_map(|(id, priority, keywords, rmax_bits, k)| Request::Query {
                id,
                priority,
                keywords,
                // All 2^64 bit patterns: NaN payloads, infinities, subnormals.
                rmax: f64::from_bits(rmax_bits),
                k,
            }),
        any::<u64>().prop_map(|id| Request::Ping { id }),
        any::<u64>().prop_map(|id| Request::Stats { id }),
        any::<u64>().prop_map(|id| Request::Shutdown { id }),
    ]
}

fn arb_summary() -> impl Strategy<Value = CommunitySummary> {
    (
        prop::collection::vec(any::<u32>(), 0..5),
        any::<u64>(),
        prop::collection::vec(any::<u32>(), 0..5),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(
            |(core, cost_bits, centers, node_count, edge_count)| CommunitySummary {
                core,
                cost_bits,
                centers,
                node_count,
                edge_count,
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<u64>(), prop::collection::vec(arb_summary(), 0..4))
            .prop_map(|(id, communities)| Response::Complete { id, communities }),
        (
            any::<u64>(),
            ".{0,32}",
            prop::collection::vec(arb_summary(), 0..4),
        )
            .prop_map(|(id, reason, communities)| Response::Interrupted {
                id,
                reason,
                communities,
            }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(id, retry_after_ms)| Response::Overloaded { id, retry_after_ms }),
        (any::<u64>(), ".{0,32}").prop_map(|(id, message)| Response::Error { id, message }),
        any::<u64>().prop_map(|id| Response::Pong { id }),
        (
            any::<u64>(),
            prop::collection::vec((".{0,16}", any::<u64>()), 0..6),
        )
            .prop_map(|(id, counters)| Response::Stats { id, counters }),
        any::<u64>().prop_map(|id| Response::ShuttingDown { id }),
    ]
}

proptest! {
    #[test]
    fn request_roundtrip_is_bit_identical(req in arb_request()) {
        let bytes = encode_request(&req).expect("encode");
        let back = decode_request(&bytes).expect("decode");
        let again = encode_request(&back).expect("re-encode");
        prop_assert_eq!(bytes, again);
    }

    #[test]
    fn response_roundtrip_is_bit_identical(resp in arb_response()) {
        let bytes = encode_response(&resp).expect("encode");
        let back = decode_response(&bytes).expect("decode");
        let again = encode_response(&back).expect("re-encode");
        prop_assert_eq!(bytes, again);
    }

    /// Every field is fixed-size or length-prefixed, so a payload can never
    /// decode from fewer bytes than it was encoded to: all proper prefixes
    /// must be rejected — and none may panic.
    #[test]
    fn truncated_request_is_rejected(req in arb_request(), cut in any::<prop::sample::Index>()) {
        let bytes = encode_request(&req).expect("encode");
        let cut = cut.index(bytes.len());
        prop_assert!(decode_request(&bytes[..cut]).is_err());
    }

    #[test]
    fn truncated_response_is_rejected(resp in arb_response(), cut in any::<prop::sample::Index>()) {
        let bytes = encode_response(&resp).expect("encode");
        let cut = cut.index(bytes.len());
        prop_assert!(decode_response(&bytes[..cut]).is_err());
    }

    /// A single flipped byte must never cause a panic: either the decoder
    /// rejects it, or it decodes to some other message that re-encodes
    /// cleanly (a flip inside string content is still a valid message).
    #[test]
    fn corrupted_request_never_panics(
        req in arb_request(),
        at in any::<prop::sample::Index>(),
        flip in 1u8..,
    ) {
        let mut bytes = encode_request(&req).expect("encode");
        let at = at.index(bytes.len());
        bytes[at] ^= flip;
        if let Ok(back) = decode_request(&bytes) {
            encode_request(&back).expect("decoded message re-encodes");
        }
    }

    #[test]
    fn corrupted_response_never_panics(
        resp in arb_response(),
        at in any::<prop::sample::Index>(),
        flip in 1u8..,
    ) {
        let mut bytes = encode_response(&resp).expect("encode");
        let at = at.index(bytes.len());
        bytes[at] ^= flip;
        if let Ok(back) = decode_response(&bytes) {
            encode_response(&back).expect("decoded message re-encodes");
        }
    }

    #[test]
    fn frame_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write");
        let back = read_frame(&mut wire.as_slice()).expect("read");
        prop_assert_eq!(payload, back);
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocating() {
    // A hostile peer claims a frame just over the cap; read_frame must
    // refuse without trying to allocate the claimed buffer.
    let wire = (MAX_FRAME_BYTES + 1).to_le_bytes();
    assert!(read_frame(&mut wire.as_slice()).is_err());

    let wire = u32::MAX.to_le_bytes();
    assert!(read_frame(&mut wire.as_slice()).is_err());
}

#[test]
fn empty_and_garbage_payloads_are_rejected() {
    assert!(decode_request(&[]).is_err());
    assert!(decode_response(&[]).is_err());
    // Wrong version byte.
    assert!(decode_request(&[0x7f, 1, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    // Unknown kind under the right version.
    assert!(decode_request(&[1, 0xee, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
}
