//! Table schemas, primary keys, and foreign-key references.
//!
//! Foreign keys are what turn a relational database into the paper's
//! database graph `G_D`: every tuple is a node and every foreign-key
//! reference contributes an edge between the referencing and the referenced
//! tuple.

use crate::value::ColumnType;
use comm_graph::weight::index_to_u32;

/// Index of a table within a database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TableId(pub u32);

/// Index of a column within a table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ColumnId(pub u32);

/// One column of a table.
#[derive(Clone, Debug)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Value type.
    pub ty: ColumnType,
    /// Whether this column participates in the full-text index (the
    /// paper locates keyword nodes "using the full text index").
    pub full_text: bool,
}

impl ColumnDef {
    /// A plain column.
    pub fn new(name: &str, ty: ColumnType) -> ColumnDef {
        ColumnDef {
            name: name.to_owned(),
            ty,
            full_text: false,
        }
    }

    /// A text column included in the full-text index.
    pub fn full_text(name: &str) -> ColumnDef {
        ColumnDef {
            name: name.to_owned(),
            ty: ColumnType::Text,
            full_text: true,
        }
    }
}

/// A foreign-key constraint: `column` of this table references the primary
/// key of `target` table.
#[derive(Clone, Debug)]
pub struct ForeignKey {
    /// Referencing column in this table.
    pub column: ColumnId,
    /// Referenced table (its primary key).
    pub target: TableId,
}

/// The schema of one table.
#[derive(Clone, Debug)]
pub struct TableSchema {
    /// Table name (unique within the database).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// The primary-key column, if the table has one. Must be `Int`.
    pub primary_key: Option<ColumnId>,
    /// Foreign keys declared on this table.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Creates a schema with the given name and columns.
    pub fn new(name: &str, columns: Vec<ColumnDef>) -> TableSchema {
        TableSchema {
            name: name.to_owned(),
            columns,
            primary_key: None,
            foreign_keys: Vec::new(),
        }
    }

    /// Declares `column` as the integer primary key.
    pub fn with_primary_key(mut self, column: &str) -> TableSchema {
        let id = self
            .column_id(column)
            // xtask-allow: no_panics — schema construction is programmer-facing; a typo'd column is a build bug
            .unwrap_or_else(|| panic!("no column named {column}"));
        assert_eq!(
            self.columns[id.0 as usize].ty,
            ColumnType::Int,
            "primary keys must be Int columns"
        );
        self.primary_key = Some(id);
        self
    }

    /// Declares a foreign key from `column` to table `target`.
    pub fn with_foreign_key(mut self, column: &str, target: TableId) -> TableSchema {
        let id = self
            .column_id(column)
            // xtask-allow: no_panics — schema construction is programmer-facing; a typo'd column is a build bug
            .unwrap_or_else(|| panic!("no column named {column}"));
        assert_eq!(
            self.columns[id.0 as usize].ty,
            ColumnType::Int,
            "foreign keys must be Int columns"
        );
        self.foreign_keys.push(ForeignKey { column: id, target });
        self
    }

    /// Looks a column up by name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| ColumnId(index_to_u32(i)))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Ids of the full-text columns.
    pub fn full_text_columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.full_text)
            .map(|(i, _)| ColumnId(index_to_u32(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_schema() -> TableSchema {
        TableSchema::new(
            "Paper",
            vec![
                ColumnDef::new("Pid", ColumnType::Int),
                ColumnDef::full_text("Title"),
            ],
        )
        .with_primary_key("Pid")
    }

    #[test]
    fn column_lookup() {
        let s = paper_schema();
        assert_eq!(s.column_id("Pid"), Some(ColumnId(0)));
        assert_eq!(s.column_id("Title"), Some(ColumnId(1)));
        assert_eq!(s.column_id("Nope"), None);
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn primary_key_recorded() {
        let s = paper_schema();
        assert_eq!(s.primary_key, Some(ColumnId(0)));
    }

    #[test]
    fn full_text_columns() {
        let s = paper_schema();
        let ft: Vec<_> = s.full_text_columns().collect();
        assert_eq!(ft, vec![ColumnId(1)]);
    }

    #[test]
    fn foreign_keys() {
        let s = TableSchema::new(
            "Write",
            vec![
                ColumnDef::new("Aid", ColumnType::Int),
                ColumnDef::new("Pid", ColumnType::Int),
            ],
        )
        .with_foreign_key("Aid", TableId(0))
        .with_foreign_key("Pid", TableId(1));
        assert_eq!(s.foreign_keys.len(), 2);
        assert_eq!(s.foreign_keys[0].column, ColumnId(0));
        assert_eq!(s.foreign_keys[1].target, TableId(1));
    }

    #[test]
    #[should_panic(expected = "must be Int")]
    fn text_primary_key_rejected() {
        let _ = TableSchema::new("T", vec![ColumnDef::full_text("name")]).with_primary_key("name");
    }
}
