//! REPL session state: the loaded dataset and the active query.
//!
//! The session owns the generated dataset and the current query's
//! projected graph. `more` continues the (deterministic) ranked
//! enumeration past the session's high-water mark; because enumeration on
//! a projected graph is milliseconds, the session re-enumerates the
//! prefix rather than holding a borrowing iterator across commands.

use comm_core::trees::topk_trees;
use comm_core::{CommK, CostFn, ProjectionIndex, QuerySpec, RunGuard};
use comm_datasets::cache::{bundle_path, cache_dir, load_bundle, save_bundle, GraphBundle};
use comm_datasets::stats::dataset_stats;
use comm_datasets::{generate_dblp, generate_imdb, DblpConfig, GeneratedDataset, ImdbConfig};
use comm_graph::{NodeId, Weight};
use comm_rdb::ColumnId;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the session serves queries from: a full generated dataset (graph
/// + relational database, so answers carry tuple labels), or a warm
/// graph bundle mapped back from the `COMM_BENCH_CACHE` directory — the
/// database is not persisted, so labels degrade to node ids, but loading
/// skips generation entirely.
enum LoadedData {
    Full(GeneratedDataset),
    Warm { name: String, bundle: GraphBundle },
}

impl LoadedData {
    fn graph(&self) -> &comm_graph::Graph {
        match self {
            LoadedData::Full(ds) => &ds.graph.graph,
            LoadedData::Warm { bundle, .. } => &bundle.graph,
        }
    }

    fn keyword_nodes(&self, kw: &str) -> &[NodeId] {
        match self {
            LoadedData::Full(ds) => ds.graph.keyword_nodes(kw),
            LoadedData::Warm { bundle, .. } => bundle.keyword_nodes(kw),
        }
    }

    /// A human label for a graph node: the owning tuple when the database
    /// is resident, the bare node id on a warm bundle.
    fn describe(&self, node: NodeId) -> String {
        match self {
            LoadedData::Full(ds) => describe_static(ds, node),
            LoadedData::Warm { .. } => format!("node#{}", node.0),
        }
    }
}

/// A loaded dataset plus the state of the current query.
pub struct Session {
    dataset: Option<LoadedData>,
    default_rmax: f64,
    /// The current query's projected graph and spec (owned).
    current: Option<ActiveQuery>,
    /// Per-query wall-clock deadline (the `timeout` command).
    timeout: Option<Duration>,
    /// Cancel flag shared with the Ctrl-C handler: aborts the query that
    /// is currently running while keeping the session alive.
    cancel: Arc<AtomicBool>,
}

struct ActiveQuery {
    keywords: Vec<String>,
    graph: comm_graph::Graph,
    original_ids: Vec<NodeId>,
    spec: QuerySpec,
    emitted: usize,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// An empty session.
    pub fn new() -> Session {
        Session {
            dataset: None,
            default_rmax: 6.0,
            current: None,
            timeout: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Loads a dataset: from the warm bundle cache when `COMM_BENCH_CACHE`
    /// holds a matching graph bundle (mmap, no generation, node-id
    /// labels), else by generating it (and priming the cache for next
    /// time). Returns a status line, or an error naming the valid
    /// datasets — an unknown name must never silently fall back to a
    /// default.
    pub fn load(&mut self, which: &str, scale: f64) -> Result<String, String> {
        self.load_with_cache(which, scale, cache_dir().as_deref())
    }

    /// [`Session::load`] with an explicit cache directory (`None`
    /// disables the warm path; exposed for tests).
    pub fn load_with_cache(
        &mut self,
        which: &str,
        scale: f64,
        cache: Option<&Path>,
    ) -> Result<String, String> {
        let rmax = match which {
            "dblp" => 6.0,
            "imdb" => 11.0,
            other => {
                return Err(format!(
                    "unknown dataset {other:?} — valid datasets: dblp, imdb"
                ))
            }
        };
        let key = format!("{which}-s{scale}-session");
        if let Some(dir) = cache {
            if let Ok(bundle) = load_bundle(bundle_path(dir, &key)) {
                let line = format!(
                    "loaded {which} from warm cache: graph {} nodes / {} edges (default rmax {rmax}; tuple labels unavailable)",
                    bundle.graph.node_count(),
                    bundle.graph.edge_count(),
                );
                self.dataset = Some(LoadedData::Warm {
                    name: which.to_owned(),
                    bundle,
                });
                self.default_rmax = rmax;
                self.current = None;
                return Ok(line);
            }
        }
        let ds = match which {
            "dblp" => generate_dblp(&DblpConfig::default().scaled(scale)),
            _ => generate_imdb(&ImdbConfig::default().scaled(scale)),
        };
        if let Some(dir) = cache {
            // Prime the warm cache best-effort: the session works the same
            // whether or not the bundle reached disk.
            if std::fs::create_dir_all(dir).is_ok() {
                save_bundle(bundle_path(dir, &key), &ds.graph.graph, ds.graph.keywords()).ok();
            }
        }
        let line = format!(
            "loaded {}: {} tuples, graph {} nodes / {} edges (default rmax {})",
            ds.name,
            ds.db.tuple_count(),
            ds.graph.graph.node_count(),
            ds.graph.graph.edge_count(),
            rmax
        );
        self.dataset = Some(LoadedData::Full(ds));
        self.default_rmax = rmax;
        self.current = None;
        Ok(line)
    }

    /// The cancel flag a Ctrl-C handler should flip to abort whatever
    /// query is currently running (the session itself stays usable).
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        self.cancel.clone()
    }

    /// Sets (or clears, with `None`) the per-query deadline.
    pub fn set_timeout(&mut self, secs: Option<f64>) -> String {
        self.timeout = secs.map(Duration::from_secs_f64);
        match self.timeout {
            Some(t) => format!("queries now time out after {}s", t.as_secs_f64()),
            None => "query timeout disabled".to_owned(),
        }
    }

    /// A fresh guard for one command: the shared Ctrl-C flag (cleared
    /// first, so a cancel aimed at a *previous* query cannot abort this
    /// one) plus the session deadline, if any.
    fn guard(&self) -> RunGuard {
        self.cancel.store(false, Ordering::SeqCst);
        let mut g = RunGuard::new().with_cancel_flag(self.cancel.clone());
        if let Some(t) = self.timeout {
            g = g.with_deadline(t);
        }
        g
    }

    /// Runs a fresh query, printing the first `k` communities.
    pub fn query(
        &mut self,
        keywords: &[String],
        rmax: Option<f64>,
        k: usize,
        max_cost: bool,
    ) -> Result<String, String> {
        let ds = self
            .dataset
            .as_ref()
            .ok_or("no dataset — try 'load dblp'")?;
        let rmax = rmax.unwrap_or(self.default_rmax);
        for kw in keywords {
            if ds.keyword_nodes(kw).is_empty() {
                return Err(format!(
                    "keyword {kw:?} matches nothing (benchmark keywords: see Tables III/V, e.g. 'database', 'star')"
                ));
            }
        }
        // Project the query subgraph (Sec. VI). One guard covers the whole
        // query — index build, projection, and enumeration share the
        // deadline and the Ctrl-C flag.
        let guard = self.guard();
        let entries: Vec<(&str, &[NodeId])> = keywords
            .iter()
            .map(|kw| (kw.as_str(), ds.keyword_nodes(kw)))
            .collect();
        let index = ProjectionIndex::build_guarded(ds.graph(), entries, Weight::new(rmax), &guard)
            .map_err(|r| format!("query interrupted while indexing ({r})"))?;
        let refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
        let pq = index
            .try_project(&refs, Weight::new(rmax), &guard)
            .map_err(|e| format!("projection failed: {e}"))?;
        let mut spec = QuerySpec::new(pq.spec.keyword_nodes.clone(), pq.spec.rmax);
        if max_cost {
            spec = spec.with_cost(CostFn::MaxDistance);
        }
        self.current = Some(ActiveQuery {
            keywords: keywords.to_vec(),
            graph: pq.projected.graph.clone(),
            original_ids: pq.projected.original_ids.clone(),
            spec,
            emitted: 0,
        });
        let mut out = format!(
            "projected graph: {} nodes ({:.3}% of G_D)\n",
            pq.projected.graph.node_count(),
            100.0 * index.projection_ratio(&pq)
        );
        out.push_str(&self.more_with(k, guard)?);
        Ok(out)
    }

    /// Streams `n` more communities of the active query.
    pub fn more(&mut self, n: usize) -> Result<String, String> {
        let guard = self.guard();
        self.more_with(n, guard)
    }

    fn more_with(&mut self, n: usize, guard: RunGuard) -> Result<String, String> {
        let ds = self.dataset.as_ref().ok_or("no dataset loaded")?;
        let q = self.current.as_mut().ok_or("no active query")?;
        // CommK is resumable but borrows the graph; to keep the session
        // simple we re-enumerate up to the high-water mark (communities are
        // deterministic), which is still fast on projected graphs.
        let mut it = CommK::new(&q.graph, &q.spec).with_guard(guard);
        let mut skipped = 0;
        while skipped < q.emitted && it.next().is_some() {
            skipped += 1;
        }
        let mut out = String::new();
        let mut got = 0;
        for c in it.by_ref().take(n) {
            got += 1;
            q.emitted += 1;
            let _ = writeln!(
                out,
                "#{} cost {:.2} — {} centers, {} nodes",
                q.emitted,
                c.cost.get(),
                c.centers.len(),
                c.node_count()
            );
            for (kw, &local) in q.keywords.iter().zip(&c.core.0) {
                let orig = q.original_ids[local.index()];
                let _ = writeln!(out, "    {kw}: {}", ds.describe(orig));
            }
        }
        if let Some(reason) = it.interrupted() {
            let _ = writeln!(
                out,
                "(interrupted: {reason} — results so far shown; 'more' retries under a fresh deadline)"
            );
        } else if got == 0 {
            out.push_str("(enumeration exhausted — no more communities)\n");
        }
        Ok(out)
    }

    /// Shows the top-n connected-tree answers for the active query.
    pub fn trees(&self, n: usize) -> Result<String, String> {
        let ds = self.dataset.as_ref().ok_or("no dataset loaded")?;
        let q = self.current.as_ref().ok_or("no active query")?;
        let trees = topk_trees(&q.graph, &q.spec, n);
        let mut out = format!(
            "top-{} connected trees (prior-art result shape):\n",
            trees.len()
        );
        for (i, t) in trees.iter().enumerate() {
            let root = q.original_ids[t.root.index()];
            let _ = writeln!(
                out,
                "T{} weight {:.2}, root {} — {} edges",
                i + 1,
                t.weight.get(),
                ds.describe(root),
                t.edges.len()
            );
        }
        Ok(out)
    }

    /// Exports community #`rank` (1-based, in ranking order) of the
    /// active query as GraphViz DOT; writes to `path` or returns the text.
    pub fn dot(&self, rank: usize, path: Option<&str>) -> Result<String, String> {
        let ds = self.dataset.as_ref().ok_or("no dataset loaded")?;
        let q = self.current.as_ref().ok_or("no active query")?;
        let mut it = CommK::new(&q.graph, &q.spec).with_guard(self.guard());
        let community = it.nth(rank - 1).ok_or_else(|| match it.interrupted() {
            Some(reason) => format!("interrupted: {reason}"),
            None => format!("the query has fewer than {rank} communities"),
        })?;
        let dot = comm_core::dot::community_to_dot(&community, |local| {
            ds.describe(q.original_ids[local.index()])
        });
        match path {
            Some(p) => {
                std::fs::write(p, &dot).map_err(|e| format!("cannot write {p}: {e}"))?;
                Ok(format!(
                    "wrote community #{rank} to {p} ({} bytes)",
                    dot.len()
                ))
            }
            None => Ok(dot),
        }
    }

    /// Dataset statistics. Tuple-level statistics need the relational
    /// database, so a warm bundle reports graph-level numbers only.
    pub fn stats(&self) -> Result<String, String> {
        match self.dataset.as_ref().ok_or("no dataset loaded")? {
            LoadedData::Full(ds) => {
                let s = dataset_stats(ds, &[]);
                Ok(format!(
                    "{}: {} tuples, {} edges, density {:.2}, max degree {}, top-1% degree share {:.1}%",
                    s.name,
                    s.tuples,
                    s.edges,
                    s.density,
                    s.degrees.max,
                    100.0 * s.degrees.top1_share
                ))
            }
            LoadedData::Warm { name, bundle } => Ok(format!(
                "{} (warm bundle): graph {} nodes / {} edges, {} keywords (tuple statistics need a generated dataset)",
                name,
                bundle.graph.node_count(),
                bundle.graph.edge_count(),
                bundle.keyword_nodes.len()
            )),
        }
    }

    /// Whether a dataset is loaded (used by the unit tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn has_dataset(&self) -> bool {
        self.dataset.is_some()
    }
}

fn describe_static(ds: &GeneratedDataset, node: NodeId) -> String {
    let tref = ds.graph.tuple_of(node);
    let table = ds.db.table(tref.table);
    let name = &table.schema().name;
    match name.as_str() {
        "Author" | "Users" => format!("{name}({})", table.cell(tref.row, ColumnId(1))),
        "Paper" | "Movies" => format!("{name}(\"{}\")", table.cell(tref.row, ColumnId(1))),
        other => format!("{other}#{}", tref.row.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded() -> Session {
        let mut s = Session::new();
        s.load("dblp", 0.3).unwrap();
        s
    }

    #[test]
    fn load_and_stats() {
        let mut s = Session::new();
        assert!(!s.has_dataset());
        assert!(s.stats().is_err());
        let line = s.load("imdb", 0.3).unwrap();
        assert!(line.contains("imdb"));
        assert!(s.stats().unwrap().contains("density"));
    }

    #[test]
    fn load_rejects_unknown_dataset() {
        let mut s = Session::new();
        let err = s.load("netflix", 1.0).unwrap_err();
        assert!(err.contains("valid datasets: dblp, imdb"), "{err}");
        assert!(!s.has_dataset(), "a failed load must not install a dataset");
    }

    #[test]
    fn zero_timeout_interrupts_query_but_session_survives() {
        let mut s = loaded();
        assert!(s.set_timeout(Some(0.0)).contains("time out"));
        let err = s.query(&["database".into()], None, 1, false).unwrap_err();
        assert!(err.contains("interrupted"), "{err}");
        assert!(s.set_timeout(None).contains("disabled"));
        assert!(s.query(&["database".into()], None, 1, false).is_ok());
    }

    #[test]
    fn stale_ctrl_c_does_not_cancel_next_query() {
        let mut s = loaded();
        // A Ctrl-C that arrives between commands must not poison the next
        // query: each guard clears the shared flag before running.
        s.cancel_flag().store(true, Ordering::SeqCst);
        let out = s.query(&["database".into()], None, 1, false).unwrap();
        assert!(out.contains("#1 cost"), "{out}");
        assert!(!s.cancel_flag().load(Ordering::SeqCst));
    }

    #[test]
    fn query_and_more_resume() {
        let mut s = loaded();
        let out = s
            .query(&["database".into(), "support".into()], None, 3, false)
            .unwrap();
        assert!(out.contains("projected graph"));
        assert!(out.contains("#1 cost"));
        // more continues the numbering.
        let more = s.more(2).unwrap();
        assert!(more.contains("#4") || more.contains("exhausted"), "{more}");
    }

    #[test]
    fn unknown_keyword_reported() {
        let mut s = loaded();
        let err = s.query(&["zzzznope".into()], None, 3, false).unwrap_err();
        assert!(err.contains("matches nothing"));
    }

    #[test]
    fn trees_for_active_query() {
        let mut s = loaded();
        s.query(&["database".into(), "optimization".into()], None, 2, false)
            .unwrap();
        let out = s.trees(4).unwrap();
        assert!(out.contains("connected trees"));
    }

    #[test]
    fn dot_export_of_active_query() {
        let mut s = loaded();
        s.query(&["database".into(), "support".into()], None, 1, false)
            .unwrap();
        let dot = s.dot(1, None).unwrap();
        assert!(dot.starts_with("digraph community {"));
        assert!(dot.contains("Paper("));
        assert!(s.dot(100_000, None).is_err());
    }

    #[test]
    fn max_cost_query_runs() {
        let mut s = loaded();
        let out = s
            .query(&["database".into(), "support".into()], Some(7.0), 2, true)
            .unwrap();
        assert!(out.contains("#1 cost"));
    }

    #[test]
    fn query_without_dataset_fails() {
        let mut s = Session::new();
        assert!(s.query(&["x".into()], None, 1, false).is_err());
        assert!(s.more(1).is_err());
        assert!(s.trees(1).is_err());
    }

    #[test]
    fn describe_resolves_tables() {
        let s = loaded();
        let ds = s.dataset.as_ref().unwrap();
        let node = ds.keyword_nodes("database")[0];
        let d = ds.describe(node);
        assert!(d.starts_with("Paper("), "{d}");
    }

    #[test]
    fn warm_cache_load_skips_generation_and_still_answers() {
        let dir = std::env::temp_dir().join(format!(
            "comm_cli_session_warm_{}_{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        // First load generates and primes the cache (full tuple labels).
        let mut cold = Session::new();
        let line = cold.load_with_cache("dblp", 0.3, Some(&dir)).unwrap();
        assert!(line.contains("tuples"), "{line}");
        let cold_out = cold.query(&["database".into()], None, 2, false).unwrap();
        assert!(cold_out.contains("Paper("), "{cold_out}");

        // Second session maps the bundle: no generation, node-id labels,
        // same community structure.
        let mut warm = Session::new();
        let line = warm.load_with_cache("dblp", 0.3, Some(&dir)).unwrap();
        assert!(line.contains("warm cache"), "{line}");
        let warm_out = warm.query(&["database".into()], None, 2, false).unwrap();
        assert!(warm_out.contains("node#"), "{warm_out}");
        // The ranked costs are a generation-independent fingerprint: they
        // must agree between the generated and the mapped graph.
        let costs = |out: &str| -> Vec<String> {
            out.lines()
                .filter(|l| l.contains(" cost "))
                .map(str::to_owned)
                .collect()
        };
        assert_eq!(costs(&cold_out), costs(&warm_out));
        assert!(warm.stats().unwrap().contains("warm bundle"));

        // Unknown datasets still fail fast, cache or not.
        assert!(warm.load_with_cache("netflix", 1.0, Some(&dir)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
