//! Weighted sampling for preferential attachment at scale.
//!
//! The generators pick authors/movies proportionally to `load + 1`. A
//! linear scan per pick (`preferential_pick`) is `O(n)` and fine at the
//! default benchmark scale, but makes paper-full-scale generation (597K
//! authors, 2.4M writes) quadratic. [`WeightedSampler`] is a Fenwick
//! (binary indexed) tree over the same weights with `O(log n)` update and
//! prefix-search sampling — and it consumes randomness identically to the
//! linear scan (one draw in `[0, total)` mapped through the cumulative
//! weights), so swapping it in does not change any generated dataset.

use rand::rngs::SmallRng;
use rand::Rng;

/// Fenwick-tree sampler over integer weights.
pub struct WeightedSampler {
    /// 1-based Fenwick tree of weight sums.
    tree: Vec<u64>,
    n: usize,
    total: u64,
}

impl WeightedSampler {
    /// Creates a sampler over `n` items, each with initial weight 1
    /// (the add-one smoothing of preferential attachment).
    pub fn new(n: usize) -> WeightedSampler {
        let mut s = WeightedSampler {
            tree: vec![0; n + 1],
            n,
            total: 0,
        };
        for i in 0..n {
            s.add(i, 1);
        }
        s
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the sampler is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The total weight.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds `delta` to item `i`'s weight.
    pub fn add(&mut self, i: usize, delta: u64) {
        debug_assert!(i < self.n);
        self.total += delta;
        let mut idx = i + 1;
        while idx <= self.n {
            self.tree[idx] += delta;
            idx += idx & idx.wrapping_neg();
        }
    }

    /// The weight of item `i`.
    pub fn weight(&self, i: usize) -> u64 {
        self.prefix(i + 1) - self.prefix(i)
    }

    fn prefix(&self, mut idx: usize) -> u64 {
        let mut sum = 0;
        while idx > 0 {
            sum += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }

    /// Finds the item whose cumulative weight interval contains `t`
    /// (`0 ≤ t < total`), i.e. the smallest `i` with `prefix(i+1) > t`.
    pub fn find(&self, mut t: u64) -> usize {
        debug_assert!(t < self.total);
        let mut pos = 0usize;
        let mut step = self.n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= self.n && self.tree[next] <= t {
                t -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos.min(self.n - 1)
    }

    /// Samples an item proportional to its weight — randomness-compatible
    /// with `preferential_pick` (one `gen_range(0..total)` draw).
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        self.find(rng.gen_range(0..self.total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::preferential_pick;
    use rand::SeedableRng;

    #[test]
    fn prefix_search_exact() {
        let mut s = WeightedSampler::new(4); // weights 1,1,1,1
        s.add(1, 4); // weights 1,5,1,1 → cumulative 1,6,7,8
        assert_eq!(s.total(), 8);
        assert_eq!(s.find(0), 0);
        assert_eq!(s.find(1), 1);
        assert_eq!(s.find(5), 1);
        assert_eq!(s.find(6), 2);
        assert_eq!(s.find(7), 3);
        assert_eq!(s.weight(1), 5);
        assert_eq!(s.weight(3), 1);
    }

    #[test]
    fn matches_linear_scan_draw_for_draw() {
        // The Fenwick sampler must map the same uniform draw to the same
        // item as the linear walk, so generators stay deterministic.
        let mut weights = vec![0u32; 50];
        let mut sampler = WeightedSampler::new(50);
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        for step in 0..5_000 {
            let total: u64 = weights.iter().map(|&w| u64::from(w) + 1).sum();
            let a = preferential_pick(&mut rng_a, &weights, total);
            let b = sampler.sample(&mut rng_b);
            assert_eq!(a, b, "diverged at step {step}");
            weights[a] += 1;
            sampler.add(b, 1);
        }
    }

    #[test]
    fn single_item() {
        let s = WeightedSampler::new(1);
        assert_eq!(s.find(0), 0);
        assert_eq!(s.total(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn heavy_tail_sampling_is_fast_and_skewed() {
        let mut s = WeightedSampler::new(10_000);
        s.add(42, 1_000_000);
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..2_000).filter(|_| s.sample(&mut rng) == 42).count();
        assert!(hits > 1_900, "heavy item sampled {hits}/2000");
    }
}
