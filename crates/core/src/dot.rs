//! GraphViz DOT export for query answers.
//!
//! The paper's user story is exploratory ("browsing the resulting trees",
//! Sec. I); a community's whole point is that its *structure* carries the
//! answer. [`community_to_dot`] renders a community with its roles
//! distinguished — doubled circles for centers, filled boxes for knodes,
//! plain nodes for path nodes — and [`tree_to_dot`] renders a tree answer,
//! so results can be piped straight into `dot -Tsvg`.

use crate::trees::TreeAnswer;
use crate::types::Community;
use comm_graph::NodeId;
use std::fmt::Write as _;

// xtask-allow-file: guard_coverage — DOT rendering walks an already-materialized answer, not the graph

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a community as a DOT digraph. `label` maps original node ids to
/// display names (fall back to `v{id}` with `|n| format!("{n}")`).
pub fn community_to_dot<F: Fn(NodeId) -> String>(community: &Community, label: F) -> String {
    let mut out = String::from("digraph community {\n");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(
        out,
        "  label=\"core {:?}, cost {}\"; labelloc=top;",
        community.core, community.cost
    );
    for &u in community.nodes() {
        let name = escape(&label(u));
        let is_center = community.centers.binary_search(&u).is_ok();
        let is_knode = community.knodes.binary_search(&u).is_ok();
        let shape = match (is_center, is_knode) {
            (true, true) => "shape=box, peripheries=2, style=filled, fillcolor=lightgoldenrod",
            (true, false) => "shape=ellipse, peripheries=2, style=filled, fillcolor=lightblue",
            (false, true) => "shape=box, style=filled, fillcolor=lightgoldenrod",
            (false, false) => "shape=ellipse",
        };
        let _ = writeln!(out, "  n{} [label=\"{}\", {}];", u.0, name, shape);
    }
    let sub = &community.subgraph;
    for (lu, lv, w) in sub.graph.edges() {
        let (u, v) = (sub.to_original(lu), sub.to_original(lv));
        let _ = writeln!(out, "  n{} -> n{} [label=\"{}\"];", u.0, v.0, w);
    }
    out.push_str("}\n");
    out
}

/// Renders a tree answer as a DOT digraph (root doubled, knodes boxed).
pub fn tree_to_dot<F: Fn(NodeId) -> String>(tree: &TreeAnswer, label: F) -> String {
    let mut out = String::from("digraph tree {\n");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(
        out,
        "  label=\"root v{}, weight {}\"; labelloc=top;",
        tree.root.0, tree.weight
    );
    let knodes = tree.core.distinct_nodes();
    for u in tree.nodes() {
        let name = escape(&label(u));
        let mut attrs = String::from("shape=ellipse");
        if knodes.binary_search(&u).is_ok() {
            attrs = "shape=box, style=filled, fillcolor=lightgoldenrod".into();
        }
        if u == tree.root {
            attrs.push_str(", peripheries=2");
        }
        let _ = writeln!(out, "  n{} [label=\"{}\", {}];", u.0, name, attrs);
    }
    for &(u, v, w) in &tree.edges {
        let _ = writeln!(out, "  n{} -> n{} [label=\"{}\"];", u.0, v.0, w);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees::topk_trees;
    use crate::{comm_k, QuerySpec};
    use comm_datasets::paper_example::{fig4_graph, fig4_keyword_nodes, FIG4_RMAX};
    use comm_graph::Weight;

    fn r5() -> Community {
        let g = fig4_graph();
        let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
        comm_k(&g, &spec, 3).remove(2) // rank 3 = R5
    }

    #[test]
    fn community_dot_structure() {
        let dot = community_to_dot(&r5(), |n| format!("{n}"));
        assert!(dot.starts_with("digraph community {"));
        assert!(dot.trim_end().ends_with('}'));
        // Centers v11, v12 doubled; knodes boxed; pnode v10 plain.
        assert!(dot.contains("n11 [label=\"v11\", shape=box, peripheries=2"));
        assert!(dot.contains("n12 [label=\"v12\", shape=ellipse, peripheries=2"));
        assert!(dot.contains("n8 [label=\"v8\", shape=box, style=filled"));
        assert!(dot.contains("n10 [label=\"v10\", shape=ellipse];"));
        // Edges of the induced subgraph (v11 -> v10 weight 2).
        assert!(dot.contains("n11 -> n10 [label=\"2\"];"));
    }

    #[test]
    fn tree_dot_structure() {
        let g = fig4_graph();
        let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
        let tree = topk_trees(&g, &spec, 1).remove(0);
        let dot = tree_to_dot(&tree, |n| format!("{n}"));
        assert!(dot.starts_with("digraph tree {"));
        assert!(dot.contains("root v7"));
        // Root v7 has double periphery.
        assert!(dot.contains("n7 [label=\"v7\", shape=ellipse, peripheries=2];"));
        // Knodes boxed.
        assert!(dot.contains("n4 [label=\"v4\", shape=box"));
    }

    #[test]
    fn labels_are_escaped() {
        let dot = community_to_dot(&r5(), |n| format!("say \"{n}\" \\ done"));
        assert!(dot.contains("say \\\"v11\\\" \\\\ done"));
    }
}
