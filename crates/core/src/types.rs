//! Shared types: queries, cores, and communities.

use crate::error::{validate_nodes, validate_radius, QueryError};
use crate::neighbor::MAX_KEYWORDS;
use comm_graph::{Graph, InducedGraph, NodeId, Weight};
use std::fmt;

/// The community cost function.
///
/// The paper defines `cost(R)` as the minimum over centers of the *total*
/// shortest-path weight to every knode, but stresses that "our work does
/// not rely on a specific cost function". Both enumerators and both
/// baselines accept any variant here; ordering, completeness, and
/// duplication-freeness are preserved (the Lawler argument only needs the
/// per-center aggregate to be monotone in the per-keyword distances).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CostFn {
    /// `min_u Σ_i dist(u, c_i)` — the paper's default.
    #[default]
    SumDistances,
    /// `min_u max_i dist(u, c_i)` — ranks by the tightest radius that
    /// still centers the community (an "eccentricity" ranking).
    MaxDistance,
}

impl CostFn {
    /// Aggregates the per-keyword distances of one center.
    #[inline]
    pub fn combine(self, dists: impl IntoIterator<Item = Weight>) -> Weight {
        match self {
            CostFn::SumDistances => dists.into_iter().sum(),
            CostFn::MaxDistance => dists.into_iter().max().unwrap_or(Weight::ZERO),
        }
    }
}

/// An l-keyword query, resolved to node sets: `keyword_nodes[i]` is the
/// paper's `V_i` — every node containing keyword `k_i` — and `rmax` is the
/// radius bound on center→keyword-node distances.
///
/// Resolution from keyword strings to node sets is the job of the caller
/// (e.g. `comm_rdb::DatabaseGraph::keyword_nodes` or the projection index),
/// which keeps this crate independent of any particular text index.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// `V_i` per keyword, each sorted and deduplicated.
    pub keyword_nodes: Vec<Vec<NodeId>>,
    /// The radius `Rmax`.
    pub rmax: Weight,
    /// How communities are costed/ranked (default: the paper's sum).
    pub cost: CostFn,
}

/// Rejects keyword counts beyond the `u8` dimension counters of
/// [`NeighborSets`](crate::NeighborSets).
fn validate_keyword_count(l: usize) -> Result<(), QueryError> {
    if l > MAX_KEYWORDS {
        return Err(QueryError::TooManyKeywords {
            l,
            max: MAX_KEYWORDS,
        });
    }
    Ok(())
}

impl QuerySpec {
    /// Builds a spec, sorting and deduplicating each node set.
    pub fn new(mut keyword_nodes: Vec<Vec<NodeId>>, rmax: Weight) -> QuerySpec {
        for set in &mut keyword_nodes {
            set.sort_unstable();
            set.dedup();
        }
        QuerySpec {
            keyword_nodes,
            rmax,
            cost: CostFn::default(),
        }
    }

    /// Builds a spec from a raw `f64` radius, validating it (and `l > 0`)
    /// instead of panicking — the entry point for the fallible `try_*`
    /// query APIs.
    pub fn try_new(keyword_nodes: Vec<Vec<NodeId>>, rmax: f64) -> Result<QuerySpec, QueryError> {
        if keyword_nodes.is_empty() {
            return Err(QueryError::NoKeywords);
        }
        validate_keyword_count(keyword_nodes.len())?;
        validate_radius(rmax)?;
        let rmax = Weight::try_new(rmax).ok_or(QueryError::InvalidRadius(rmax))?;
        Ok(QuerySpec::new(keyword_nodes, rmax))
    }

    /// Validates this spec against a concrete graph: at least one keyword,
    /// a finite non-negative radius, and every keyword node inside the
    /// graph's id range. All `try_*` / `*_guarded` entry points call this
    /// before doing any work.
    pub fn validate_for(&self, graph: &Graph) -> Result<(), QueryError> {
        if self.keyword_nodes.is_empty() {
            return Err(QueryError::NoKeywords);
        }
        validate_keyword_count(self.keyword_nodes.len())?;
        validate_radius(self.rmax.get())?;
        validate_nodes(&self.keyword_nodes, graph)
    }

    /// Replaces the cost function used for ranking.
    pub fn with_cost(mut self, cost: CostFn) -> QuerySpec {
        self.cost = cost;
        self
    }

    /// The number of keywords `l`.
    pub fn l(&self) -> usize {
        self.keyword_nodes.len()
    }

    /// Whether any keyword matched no node at all (no community can exist).
    pub fn has_empty_keyword(&self) -> bool {
        self.keyword_nodes.iter().any(Vec::is_empty)
    }
}

/// A community core: the list `C = [c_1, ..., c_l]` where `c_i` contains
/// keyword `k_i`. A core uniquely determines its community; duplication-
/// freeness is defined position-wise on cores (Sec. II).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Core(pub Vec<NodeId>);

impl Core {
    /// The node for keyword `i`.
    #[inline]
    pub fn get(&self, i: usize) -> NodeId {
        self.0[i]
    }

    /// Number of keywords.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the core is empty (no keywords).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The distinct nodes of the core (a node may carry several keywords).
    pub fn distinct_nodes(&self) -> Vec<NodeId> {
        let mut v = self.0.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Approximate logical size in bytes (for memory accounting).
    pub fn byte_size(&self) -> usize {
        self.0.len() * std::mem::size_of::<NodeId>()
    }
}

impl fmt::Debug for Core {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.0.iter()).finish()
    }
}

/// A fully materialized community `R(V, E)` (Definition 2.1): the induced
/// subgraph over knodes ∪ cnodes ∪ pnodes, plus its cost and role breakdown.
#[derive(Clone, Debug)]
pub struct Community {
    /// The core `C` that uniquely determines this community.
    pub core: Core,
    /// `cost(R)`: minimum over centers of the total shortest-path weight
    /// from the center to every knode.
    pub cost: Weight,
    /// The cnodes `V_c` (sorted): nodes reaching every knode within Rmax.
    pub centers: Vec<NodeId>,
    /// The knodes `V_l` (sorted, deduplicated core nodes).
    pub knodes: Vec<NodeId>,
    /// The pnodes `V_p` (sorted): path nodes that are neither center nor knode.
    pub path_nodes: Vec<NodeId>,
    /// The induced subgraph over all community nodes, with the id mapping
    /// back to `G_D`.
    pub subgraph: InducedGraph,
}

impl Community {
    /// All community nodes (original graph ids), sorted.
    pub fn nodes(&self) -> &[NodeId] {
        &self.subgraph.original_ids
    }

    /// Number of nodes in the community.
    pub fn node_count(&self) -> usize {
        self.subgraph.original_ids.len()
    }

    /// Number of edges in the community's induced subgraph.
    pub fn edge_count(&self) -> usize {
        self.subgraph.graph.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_spec_normalizes() {
        let spec = QuerySpec::new(
            vec![vec![NodeId(3), NodeId(1), NodeId(3)], vec![NodeId(2)]],
            Weight::new(5.0),
        );
        assert_eq!(spec.keyword_nodes[0], vec![NodeId(1), NodeId(3)]);
        assert_eq!(spec.l(), 2);
        assert!(!spec.has_empty_keyword());
        let empty = QuerySpec::new(vec![vec![], vec![NodeId(1)]], Weight::ZERO);
        assert!(empty.has_empty_keyword());
    }

    #[test]
    fn try_new_validates_radius_and_keywords() {
        assert!(matches!(
            QuerySpec::try_new(vec![], 1.0),
            Err(QueryError::NoKeywords)
        ));
        assert!(matches!(
            QuerySpec::try_new(vec![vec![NodeId(0)]], f64::NAN),
            Err(QueryError::InvalidRadius(r)) if r.is_nan()
        ));
        assert!(matches!(
            QuerySpec::try_new(vec![vec![NodeId(0)]], -2.0),
            Err(QueryError::InvalidRadius(_))
        ));
        assert!(matches!(
            QuerySpec::try_new(vec![vec![NodeId(0)]], f64::INFINITY),
            Err(QueryError::InvalidRadius(_))
        ));
        let ok = QuerySpec::try_new(vec![vec![NodeId(2), NodeId(0)]], 3.5).unwrap();
        assert_eq!(ok.rmax, Weight::new(3.5));
        assert_eq!(ok.keyword_nodes[0], vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn try_new_rejects_too_many_keywords() {
        let sets = vec![vec![NodeId(0)]; MAX_KEYWORDS + 1];
        assert!(matches!(
            QuerySpec::try_new(sets.clone(), 1.0),
            Err(QueryError::TooManyKeywords { l, max })
                if l == MAX_KEYWORDS + 1 && max == MAX_KEYWORDS
        ));
        // validate_for rejects it too, before any node-range checks.
        let g = comm_graph::GraphBuilder::new(2).build();
        let spec = QuerySpec::new(sets, Weight::new(1.0));
        assert!(matches!(
            spec.validate_for(&g),
            Err(QueryError::TooManyKeywords { .. })
        ));
        // Exactly MAX_KEYWORDS is fine.
        let ok = QuerySpec::try_new(vec![vec![NodeId(0)]; MAX_KEYWORDS], 1.0);
        assert!(ok.is_ok());
    }

    #[test]
    fn cost_fn_combine() {
        let ws = [Weight::new(2.0), Weight::new(5.0), Weight::new(1.0)];
        assert_eq!(CostFn::SumDistances.combine(ws), Weight::new(8.0));
        assert_eq!(CostFn::MaxDistance.combine(ws), Weight::new(5.0));
        assert_eq!(CostFn::MaxDistance.combine([]), Weight::ZERO);
        let spec =
            QuerySpec::new(vec![vec![NodeId(1)]], Weight::ZERO).with_cost(CostFn::MaxDistance);
        assert_eq!(spec.cost, CostFn::MaxDistance);
    }

    #[test]
    fn core_distinct_nodes() {
        let c = Core(vec![NodeId(4), NodeId(8), NodeId(4)]);
        assert_eq!(c.distinct_nodes(), vec![NodeId(4), NodeId(8)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), NodeId(8));
        assert!(!c.is_empty());
        assert_eq!(c.byte_size(), 12);
    }

    #[test]
    fn core_debug_format() {
        let c = Core(vec![NodeId(4), NodeId(8)]);
        assert_eq!(format!("{c:?}"), "[v4, v8]");
    }
}
