//! Serial/parallel equivalence gate (the tentpole's correctness contract):
//! every parallel path — enumerator keyword sweeps, projection-index
//! construction, community materialization, and the batch driver — must
//! produce **identical** results to the serial path for every thread
//! count, on the paper's running example and on a sampled synthetic DBLP
//! workload.

use comm_bench::{BatchQuery, BatchRunner};
use communities::datasets::paper_example::{fig4_graph, fig4_keyword_nodes, FIG4_RMAX};
use communities::datasets::workload::{query_keywords, DBLP_KEYWORD_GROUPS};
use communities::datasets::{generate_dblp, DblpConfig};
use communities::graph::{Direction, Graph, Kernel, NodeId, Weight};
use communities::search::{
    get_community_guarded, get_community_par_guarded, CommAll, CommK, Community, CostFn,
    EnginePool, NeighborSets, Parallelism, ProjectionIndex, QuerySpec, RunGuard,
};

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Everything observable about a community, in one comparable value.
fn sig(c: &Community) -> (Vec<u32>, f64, Vec<u32>, Vec<u32>, Vec<u32>, usize) {
    let ids = |v: &[NodeId]| v.iter().map(|n| n.0).collect::<Vec<u32>>();
    (
        ids(&c.core.0),
        c.cost.get(),
        ids(&c.centers),
        ids(&c.path_nodes),
        ids(c.nodes()),
        c.edge_count(),
    )
}

fn small_dblp() -> communities::datasets::GeneratedDataset {
    generate_dblp(&DblpConfig::default().scaled(0.3))
}

fn dblp_spec(ds: &communities::datasets::GeneratedDataset, l: usize) -> QuerySpec {
    let keywords = query_keywords(DBLP_KEYWORD_GROUPS, 0.0009, l);
    QuerySpec::new(
        keywords
            .iter()
            .map(|&kw| ds.graph.keyword_nodes(kw).to_vec())
            .collect(),
        Weight::new(6.0),
    )
}

/// CommAll truncated at `cap`, at a given thread count.
fn all_at(g: &Graph, spec: &QuerySpec, threads: usize, cap: usize) -> Vec<Community> {
    CommAll::new(g, spec)
        .with_parallelism(Parallelism::new(threads))
        .take(cap)
        .collect()
}

fn topk_at(g: &Graph, spec: &QuerySpec, threads: usize, k: usize) -> Vec<Community> {
    CommK::new(g, spec)
        .with_parallelism(Parallelism::new(threads))
        .take(k)
        .collect()
}

#[test]
fn paper_example_comm_all_is_thread_count_invariant() {
    let g = fig4_graph();
    let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
    let serial: Vec<_> = all_at(&g, &spec, 1, usize::MAX).iter().map(sig).collect();
    assert!(!serial.is_empty());
    for threads in THREAD_SWEEP {
        let par: Vec<_> = all_at(&g, &spec, threads, usize::MAX)
            .iter()
            .map(sig)
            .collect();
        assert_eq!(serial, par, "CommAll diverged at {threads} threads");
    }
}

#[test]
fn paper_example_comm_k_is_thread_count_invariant() {
    let g = fig4_graph();
    for cost in [CostFn::SumDistances, CostFn::MaxDistance] {
        let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX)).with_cost(cost);
        let serial: Vec<_> = topk_at(&g, &spec, 1, 10).iter().map(sig).collect();
        assert!(!serial.is_empty());
        for threads in THREAD_SWEEP {
            let par: Vec<_> = topk_at(&g, &spec, threads, 10).iter().map(sig).collect();
            assert_eq!(serial, par, "CommK diverged at {threads} threads");
        }
    }
}

#[test]
fn dblp_workload_enumeration_is_thread_count_invariant() {
    let ds = small_dblp();
    let g = &ds.graph.graph;
    for l in [2usize, 4] {
        let spec = dblp_spec(&ds, l);
        let serial_all: Vec<_> = all_at(g, &spec, 1, 60).iter().map(sig).collect();
        let serial_topk: Vec<_> = topk_at(g, &spec, 1, 40).iter().map(sig).collect();
        for threads in [2usize, 4] {
            let par_all: Vec<_> = all_at(g, &spec, threads, 60).iter().map(sig).collect();
            assert_eq!(
                serial_all, par_all,
                "DBLP CommAll l={l} at {threads} threads"
            );
            let par_topk: Vec<_> = topk_at(g, &spec, threads, 40).iter().map(sig).collect();
            assert_eq!(
                serial_topk, par_topk,
                "DBLP CommK l={l} at {threads} threads"
            );
        }
    }
}

#[test]
fn dblp_projection_build_is_thread_count_invariant() {
    let ds = small_dblp();
    let g = &ds.graph.graph;
    let keywords = query_keywords(DBLP_KEYWORD_GROUPS, 0.0009, 4);
    let entries: Vec<(&str, &[NodeId])> = keywords
        .iter()
        .map(|&kw| (kw, ds.graph.keyword_nodes(kw)))
        .collect();
    let serial = ProjectionIndex::build(g, entries.iter().copied(), Weight::new(8.0));
    let pool = EnginePool::new();
    for threads in THREAD_SWEEP {
        let par = ProjectionIndex::build_par_guarded(
            g,
            entries.iter().copied(),
            Weight::new(8.0),
            &RunGuard::unlimited(),
            &pool,
            Parallelism::new(threads),
        )
        .expect("unlimited guard never trips");
        assert_eq!(par.keyword_count(), serial.keyword_count());
        assert_eq!(par.byte_size(), serial.byte_size());
        for &kw in &keywords {
            assert_eq!(par.nodes_of(kw), serial.nodes_of(kw));
            assert_eq!(par.edges_of(kw), serial.edges_of(kw));
        }
    }
}

#[test]
fn dblp_get_community_is_thread_count_invariant() {
    let ds = small_dblp();
    let g = &ds.graph.graph;
    let spec = dblp_spec(&ds, 4);
    // Materialize through the parallel step-1 path for real enumerated
    // cores and compare against the serial engine.
    let cores: Vec<_> = all_at(g, &spec, 1, 12)
        .into_iter()
        .map(|c| c.core)
        .collect();
    assert!(!cores.is_empty());
    let pool = EnginePool::new();
    let mut engine = communities::graph::DijkstraEngine::new(g.node_count());
    for core in &cores {
        let serial = get_community_guarded(
            g,
            &mut engine,
            core,
            spec.rmax,
            CostFn::SumDistances,
            &RunGuard::unlimited(),
        )
        .expect("unlimited guard never trips")
        .expect("enumerated cores always materialize");
        for threads in THREAD_SWEEP {
            let par = get_community_par_guarded(
                g,
                &pool,
                core,
                spec.rmax,
                CostFn::SumDistances,
                &RunGuard::unlimited(),
                Parallelism::new(threads),
            )
            .expect("unlimited guard never trips")
            .expect("enumerated cores always materialize");
            assert_eq!(
                sig(&serial),
                sig(&par),
                "core {core:?} at {threads} threads"
            );
        }
    }
}

/// Both Dijkstra kernels settle the paper example's keyword sweeps in the
/// same order with the same distances, sources, and parents.
#[test]
fn paper_example_kernels_settle_identically() {
    let g = fig4_graph();
    let rmax = Weight::new(FIG4_RMAX);
    for seeds in fig4_keyword_nodes() {
        let collect = |kernel: Kernel| {
            let mut e = communities::graph::DijkstraEngine::with_kernel(g.node_count(), kernel);
            let mut out = Vec::new();
            e.run(&g, Direction::Reverse, seeds.iter().copied(), rmax, |s| {
                out.push((s.node, s.dist, s.source, s.parent));
            });
            out
        };
        let heap = collect(Kernel::Heap);
        assert!(!heap.is_empty());
        assert_eq!(heap, collect(Kernel::Bucket), "bucket kernel diverged");
        assert_eq!(heap, collect(Kernel::Auto), "auto kernel diverged");
    }
}

/// On the sampled DBLP workload the fused batched refill matches the
/// fan-out path bit-for-bit under either kernel.
#[test]
fn dblp_batched_refill_is_kernel_invariant() {
    let ds = small_dblp();
    let g = &ds.graph.graph;
    let spec = dblp_spec(&ds, 4);
    let (l, n) = (spec.l(), g.node_count());
    let pool = EnginePool::new();
    let mut fanned = NeighborSets::new(l, n);
    fanned.recompute_all(
        g,
        &pool,
        &spec.keyword_nodes,
        spec.rmax,
        Parallelism::new(4),
    );
    for kernel in [Kernel::Heap, Kernel::Bucket] {
        pool.set_kernel(kernel);
        let mut batched = NeighborSets::new(l, n);
        batched
            .recompute_all_batched_guarded(
                g,
                &pool,
                &spec.keyword_nodes,
                spec.rmax,
                &RunGuard::unlimited(),
            )
            .expect("unlimited guard never trips");
        for u in (0..n as u32).map(NodeId) {
            for i in 0..l {
                assert_eq!(
                    batched.dist(i, u),
                    fanned.dist(i, u),
                    "dim {i} node {u} ({kernel})"
                );
                assert_eq!(
                    batched.src(i, u),
                    fanned.src(i, u),
                    "dim {i} node {u} ({kernel})"
                );
            }
            assert_eq!(batched.sum(u), fanned.sum(u), "sum at {u} ({kernel})");
            assert_eq!(batched.count(u), fanned.count(u), "count at {u} ({kernel})");
        }
    }
}

/// End-to-end enumeration — CommAll and CommK on the paper example and the
/// sampled DBLP workload — is invariant under the process-wide kernel
/// default. (The stamp is restored to `Auto`; the kernel is a pure
/// performance knob, so concurrent tests observing a transient stamp still
/// compute identical results.)
#[test]
fn enumeration_is_kernel_invariant() {
    let paper = fig4_graph();
    let paper_spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
    let ds = small_dblp();
    let dblp = &ds.graph.graph;
    let dspec = dblp_spec(&ds, 4);
    let pool = EnginePool::global();
    let mut runs = Vec::new();
    for kernel in [Kernel::Heap, Kernel::Bucket, Kernel::Auto] {
        pool.set_kernel(kernel);
        runs.push((
            all_at(&paper, &paper_spec, 1, usize::MAX)
                .iter()
                .map(sig)
                .collect::<Vec<_>>(),
            topk_at(&paper, &paper_spec, 1, 10)
                .iter()
                .map(sig)
                .collect::<Vec<_>>(),
            all_at(dblp, &dspec, 1, 60)
                .iter()
                .map(sig)
                .collect::<Vec<_>>(),
            topk_at(dblp, &dspec, 1, 40)
                .iter()
                .map(sig)
                .collect::<Vec<_>>(),
        ));
    }
    pool.set_kernel(Kernel::Auto);
    assert!(!runs[0].0.is_empty() && !runs[0].2.is_empty());
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(run, &runs[0], "kernel {} diverged", Kernel::ALL[i]);
    }
}

#[test]
fn dblp_batch_runner_is_thread_count_invariant() {
    let ds = small_dblp();
    let g = &ds.graph.graph;
    let queries: Vec<BatchQuery> = [2usize, 3, 4]
        .iter()
        .map(|&l| {
            let kws = query_keywords(DBLP_KEYWORD_GROUPS, 0.0009, l);
            BatchQuery {
                label: kws.join("+"),
                keyword_nodes: kws
                    .iter()
                    .map(|kw| ds.graph.keyword_nodes(kw).to_vec())
                    .collect(),
                rmax: 6.0,
                k: 25,
            }
        })
        .collect();
    let serial = BatchRunner::new(Parallelism::serial()).run(g, &queries);
    assert_eq!(serial.completed, queries.len());
    for threads in [2usize, 4] {
        let par = BatchRunner::new(Parallelism::new(threads)).run(g, &queries);
        assert_eq!(par.queries, serial.queries);
        assert_eq!(par.completed, serial.completed);
        for (a, b) in serial.results.iter().zip(&par.results) {
            assert_eq!(a.label, b.label, "batch order must follow submission");
            assert_eq!(a.status, b.status, "query '{}' diverged", a.label);
        }
    }
}
