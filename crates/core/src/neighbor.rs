//! `Neighbor()` (Algorithm 2) and `BestCore()` (Algorithm 3).
//!
//! [`NeighborSets`] keeps, for each node `u` and each keyword dimension `i`,
//! the nearest currently-admissible node containing `k_i` (`src(N_i, u)`)
//! and its distance (`min(N_i, u)`), plus the per-node running total weight
//! and keyword counter the paper describes for `BestCore`'s `O(n)` scan.
//! Recomputing one dimension (`Neighbor(S_i, Rmax)`) patches the totals
//! incrementally, so the bookkeeping adds no asymptotic cost on top of
//! Dijkstra, exactly as claimed in Sec. IV-A.

use crate::error::QueryError;
use crate::types::{Core, CostFn};
use comm_graph::weight::index_to_u32;
use comm_graph::{
    DijkstraEngine, Direction, EnginePool, Graph, InterruptReason, NodeId, Parallelism,
    PooledEngine, RunGuard, Weight,
};

const NO_SRC: u32 = u32::MAX;

/// Maximum keyword dimensions per query: the per-node dimension counters
/// are `u8`, so `l` must fit in one byte.
pub const MAX_KEYWORDS: usize = u8::MAX as usize;

/// Node-range granularity of the parallel `sum`/`count` rebuild in
/// [`NeighborSets::recompute_all_guarded`].
const REBUILD_CHUNK: usize = 4096;

/// Minimum total seed count across all dimensions before the serial path
/// fuses the `l` sweeps into one batched multi-source pass. Below this the
/// sweeps are tiny and the per-dimension loop's smaller scratch wins.
const BATCH_MIN_TOTAL_SEEDS: usize = 64;

/// The best core found by a `BestCore()` scan.
#[derive(Clone, Debug, PartialEq)]
pub struct BestCore {
    /// The core `C = [c_1..c_l]`.
    pub core: Core,
    /// Its cost: the center's total shortest-path weight to all `c_i`.
    pub cost: Weight,
    /// The center realizing that cost.
    pub center: NodeId,
}

/// Per-dimension neighbor sets with incremental `sum`/`count` bookkeeping.
pub struct NeighborSets {
    l: usize,
    n: usize,
    /// Dimension-major `dist[i * n + u]`: `min(N_i, u)` or `INFINITY`.
    dist: Vec<Weight>,
    /// Dimension-major nearest keyword node `src(N_i, u)`, `NO_SRC` if none.
    src: Vec<u32>,
    /// Per-node total of finite dimension distances.
    sum: Vec<Weight>,
    /// Per-node number of finite dimensions; `count[u] == l` ⇔ `u ∈ ⋂ N_i`.
    count: Vec<u8>,
    /// How many `Neighbor()` sweeps (`recompute_dim` calls) have run — the
    /// unit the paper's `O(c(l))` vs `O(l·c(l))` comparison counts.
    sweeps: usize,
}

impl NeighborSets {
    /// Creates empty neighbor sets for `l` keywords over `n` nodes.
    ///
    /// # Panics
    /// If `l` is zero or exceeds [`MAX_KEYWORDS`] — a caller bug by this
    /// function's contract. [`try_new`](Self::try_new) is the fallible
    /// path the `try_*` query APIs use.
    pub fn new(l: usize, n: usize) -> NeighborSets {
        // xtask-allow: no_panics — documented caller contract; try_new is the fallible path
        Self::try_new(l, n).expect("need 1 ≤ l ≤ 255 keywords")
    }

    /// Like [`new`](Self::new), reporting an out-of-range keyword count as
    /// a [`QueryError`] instead of panicking.
    pub fn try_new(l: usize, n: usize) -> Result<NeighborSets, QueryError> {
        if l == 0 {
            return Err(QueryError::NoKeywords);
        }
        if l > MAX_KEYWORDS {
            return Err(QueryError::TooManyKeywords {
                l,
                max: MAX_KEYWORDS,
            });
        }
        Ok(NeighborSets {
            l,
            n,
            dist: vec![Weight::INFINITY; l * n],
            src: vec![NO_SRC; l * n],
            sum: vec![Weight::ZERO; n],
            count: vec![0; n],
            sweeps: 0,
        })
    }

    /// Total `Neighbor()` sweeps run so far.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Number of keyword dimensions.
    pub fn l(&self) -> usize {
        self.l
    }

    /// `min(N_i, u)`, if `u ∈ N_i`.
    pub fn dist(&self, i: usize, u: NodeId) -> Option<Weight> {
        let d = self.dist[i * self.n + u.index()];
        d.is_finite().then_some(d)
    }

    /// `src(N_i, u)`: the nearest admissible node containing `k_i`.
    pub fn src(&self, i: usize, u: NodeId) -> Option<NodeId> {
        let s = self.src[i * self.n + u.index()];
        (s != NO_SRC).then_some(NodeId(s))
    }

    /// `u.sum`: the accumulated distance `Σ_i min(N_i, u)` over the
    /// dimensions where `u ∈ N_i` (the `BestCore()` accumulator).
    pub fn sum(&self, u: NodeId) -> Weight {
        self.sum[u.index()]
    }

    /// `u.count`: in how many neighbor sets `u` appears (`u` is a center
    /// candidate iff `count == l`).
    pub fn count(&self, u: NodeId) -> usize {
        usize::from(self.count[u.index()])
    }

    /// The nodes of `N_i` (mainly for tests; `O(n)`).
    pub fn neighbor_set(&self, i: usize) -> Vec<NodeId> {
        (0..index_to_u32(self.n))
            .map(NodeId)
            .filter(|u| self.dist[i * self.n + u.index()].is_finite())
            .collect()
    }

    /// Recomputes dimension `i` as `Neighbor(G_D, seeds, rmax)`:
    /// a multi-source Dijkstra over the *reverse* graph (the virtual-sink
    /// construction of Algorithm 2), truncated at `rmax`.
    ///
    /// Seeds must be sorted for deterministic nearest-source tie-breaking.
    pub fn recompute_dim(
        &mut self,
        graph: &Graph,
        engine: &mut DijkstraEngine,
        i: usize,
        seeds: impl IntoIterator<Item = NodeId>,
        rmax: Weight,
    ) {
        self.recompute_dim_guarded(graph, engine, i, seeds, rmax, &RunGuard::unlimited())
            // xtask-allow: no_panics — an unlimited guard can never interrupt the sweep
            .expect("unlimited guard never trips")
    }

    /// Like [`recompute_dim`](Self::recompute_dim), but consults `guard`
    /// per settled node. On interruption dimension `i` is left partially
    /// refilled — callers must abandon the whole enumeration (which every
    /// guarded enumerator does), not keep scanning for cores.
    pub fn recompute_dim_guarded(
        &mut self,
        graph: &Graph,
        engine: &mut DijkstraEngine,
        i: usize,
        seeds: impl IntoIterator<Item = NodeId>,
        rmax: Weight,
        guard: &RunGuard,
    ) -> Result<(), InterruptReason> {
        debug_assert!(i < self.l);
        self.sweeps += 1;
        let n = self.n;
        let dist = &mut self.dist[i * n..(i + 1) * n];
        let src = &mut self.src[i * n..(i + 1) * n];
        // Retract the old contribution of dimension i.
        for u in 0..n {
            if dist[u].is_finite() {
                self.count[u] -= 1;
                // f64 retraction can drift by an ulp; snap to exact zero
                // when the last dimension leaves and clamp tiny negatives.
                let new_sum = if self.count[u] == 0 {
                    0.0
                } else {
                    (self.sum[u].get() - dist[u].get()).max(0.0)
                };
                self.sum[u] = Weight::new(new_sum);
                dist[u] = Weight::INFINITY;
                src[u] = NO_SRC;
            }
        }
        // Refill from the truncated reverse Dijkstra.
        let sum = &mut self.sum;
        let count = &mut self.count;
        engine.run_guarded(graph, Direction::Reverse, seeds, rmax, guard, |s| {
            let u = s.node.index();
            dist[u] = s.dist;
            src[u] = s.source.0;
            sum[u] += s.dist;
            count[u] += 1;
        })?;
        Ok(())
    }

    /// Recomputes every dimension at once — dimension `i` as
    /// `Neighbor(G_D, seeds[i], rmax)` — with the `l` sweeps fanned out
    /// across `par`'s workers, each borrowing an engine from `pool`.
    ///
    /// The sweeps are data-independent (each writes only its own
    /// dimension-major `dist`/`src` slice), so after they finish the
    /// `sum`/`count` bookkeeping is rebuilt from zero, per node, in
    /// dimension order `0..l`. That fixed floating-point addition order
    /// makes the resulting table **bit-identical for every thread count**,
    /// and — on a fresh table — bit-identical to the serial
    /// [`recompute_dim_guarded`](Self::recompute_dim_guarded) loop the
    /// enumerators historically ran (the property tests assert this).
    ///
    /// `seeds.len()` must equal `l`. On interruption the table is left
    /// partially refilled — callers must abandon the enumeration, exactly
    /// as for an interrupted `recompute_dim_guarded`.
    ///
    /// A serial caller with enough seed mass is routed through
    /// [`recompute_all_batched_guarded`](Self::recompute_all_batched_guarded)
    /// — the fused pass is bit-identical, so the selection is invisible.
    pub fn recompute_all_guarded(
        &mut self,
        graph: &Graph,
        pool: &EnginePool,
        seeds: &[Vec<NodeId>],
        rmax: Weight,
        guard: &RunGuard,
        par: Parallelism,
    ) -> Result<(), InterruptReason> {
        debug_assert_eq!(seeds.len(), self.l);
        if self.batching_profitable(par, seeds) {
            return self.recompute_all_batched_guarded(graph, pool, seeds, rmax, guard);
        }
        self.sweeps += self.l;
        let n = self.n;
        let l = self.l;
        // An empty graph (e.g. a projection with no centers) has nothing
        // to sweep, and `chunks_mut(0)` below would panic.
        if n == 0 {
            return Ok(());
        }
        // Phase 1: fill each dimension's dist/src slice independently.
        let sweep_tasks: Vec<_> = self
            .dist
            .chunks_mut(n)
            .zip(self.src.chunks_mut(n))
            .zip(seeds)
            .map(|((dist, src), dim_seeds)| {
                move |engine: &mut PooledEngine<'_>| -> Result<(), InterruptReason> {
                    dist.fill(Weight::INFINITY);
                    src.fill(NO_SRC);
                    engine.run_guarded(
                        graph,
                        Direction::Reverse,
                        dim_seeds.iter().copied(),
                        rmax,
                        guard,
                        |s| {
                            dist[s.node.index()] = s.dist;
                            src[s.node.index()] = s.source.0;
                        },
                    )?;
                    Ok(())
                }
            })
            .collect();
        for swept in par.map_init(|| pool.acquire(n), sweep_tasks) {
            swept?;
        }
        // Phase 2: rebuild sum/count from zero in dimension order. Chunked
        // over node ranges so the reduction parallelizes too; the per-node
        // addition order is 0..l regardless of chunking or thread count.
        let dist = &self.dist;
        let rebuild_tasks: Vec<_> = self
            .sum
            .chunks_mut(REBUILD_CHUNK)
            .zip(self.count.chunks_mut(REBUILD_CHUNK))
            .enumerate()
            .map(|(chunk_idx, (sum, count))| {
                move || {
                    let base = chunk_idx * REBUILD_CHUNK;
                    for (off, (total, cnt)) in sum.iter_mut().zip(count.iter_mut()).enumerate() {
                        let u = base + off;
                        let mut acc = Weight::ZERO;
                        // count fits u8: the constructor caps l at MAX_KEYWORDS.
                        let mut finite: u8 = 0;
                        for i in 0..l {
                            let d = dist[i * n + u];
                            if d.is_finite() {
                                acc += d;
                                finite += 1;
                            }
                        }
                        *total = acc;
                        *cnt = finite;
                    }
                }
            })
            .collect();
        par.map(rebuild_tasks);
        Ok(())
    }

    /// Whether [`recompute_all_guarded`](Self::recompute_all_guarded)
    /// routes through the fused batched pass: only for serial callers
    /// (a parallel fan-out already keeps every worker busy), only with
    /// at least two dimensions to fuse, only when the total seed mass
    /// clears [`BATCH_MIN_TOTAL_SEEDS`], and only when the virtual id
    /// space `l·n` fits the engine's `u32` node ids.
    fn batching_profitable(&self, par: Parallelism, seeds: &[Vec<NodeId>]) -> bool {
        par.is_serial()
            && self.l >= 2
            && self
                .l
                .checked_mul(self.n)
                .and_then(comm_graph::weight::try_index_to_u32)
                .is_some()
            && seeds.iter().map(Vec::len).sum::<usize>() >= BATCH_MIN_TOTAL_SEEDS
    }

    /// Recomputes every dimension in **one** fused multi-source sweep:
    /// the `l` truncated reverse Dijkstras of
    /// [`recompute_all_guarded`](Self::recompute_all_guarded) share a
    /// single frontier over virtual `(dimension, node)` ids
    /// ([`DijkstraEngine::run_batched_guarded`]), so the graph's adjacency
    /// streams through one queue and one scratch reset instead of `l`.
    ///
    /// Per-dimension results are bit-identical to the fan-out path and to
    /// the serial `recompute_dim_guarded` loop (the queue's exact
    /// `(dist, id)` order projects onto each dimension as exactly its
    /// standalone settle order); the `sum`/`count` rebuild keeps the fixed
    /// dimension order `0..l`. The property tests assert all three agree.
    ///
    /// The engine borrowed from `pool` is sized for `l·n` virtual nodes;
    /// the pool trims it back to class capacity on release, so batched
    /// sweeps do not pin `l×` scratch forever. Callers must ensure `l·n`
    /// fits `u32` (the auto-selection gate checks this).
    pub fn recompute_all_batched_guarded(
        &mut self,
        graph: &Graph,
        pool: &EnginePool,
        seeds: &[Vec<NodeId>],
        rmax: Weight,
        guard: &RunGuard,
    ) -> Result<(), InterruptReason> {
        debug_assert_eq!(seeds.len(), self.l);
        self.sweeps += self.l;
        let n = self.n;
        let l = self.l;
        if n == 0 {
            return Ok(());
        }
        self.dist.fill(Weight::INFINITY);
        self.src.fill(NO_SRC);
        let dist = &mut self.dist;
        let src = &mut self.src;
        let mut engine = pool.acquire(l * n);
        engine.run_batched_guarded(graph, Direction::Reverse, seeds, rmax, guard, |dim, s| {
            let idx = dim * n + s.node.index();
            dist[idx] = s.dist;
            src[idx] = s.source.0;
        })?;
        drop(engine);
        // Rebuild sum/count from zero in dimension order — the same
        // addition order as the fan-out rebuild, hence bit-identical.
        for u in 0..n {
            let mut acc = Weight::ZERO;
            let mut finite: u8 = 0;
            for i in 0..l {
                let d = dist[i * n + u];
                if d.is_finite() {
                    acc += d;
                    finite += 1;
                }
            }
            self.sum[u] = acc;
            self.count[u] = finite;
        }
        Ok(())
    }

    /// [`recompute_all_guarded`](Self::recompute_all_guarded) without
    /// execution limits.
    pub fn recompute_all(
        &mut self,
        graph: &Graph,
        pool: &EnginePool,
        seeds: &[Vec<NodeId>],
        rmax: Weight,
        par: Parallelism,
    ) {
        self.recompute_all_guarded(graph, pool, seeds, rmax, &RunGuard::unlimited(), par)
            // xtask-allow: no_panics — an unlimited guard can never interrupt the sweep
            .expect("unlimited guard never trips")
    }

    /// `BestCore()` (Algorithm 3) under the paper's sum cost: scans
    /// `⋂ N_i` once and returns the minimum-cost core, the cost being the
    /// scanning center's total distance `Σ_i min(N_i, u)`. Ties break by
    /// center id (deterministic).
    pub fn best_core(&self) -> Option<BestCore> {
        self.best_core_with(CostFn::SumDistances)
    }

    /// `BestCore()` under an arbitrary cost function. The sum variant uses
    /// the incrementally maintained totals (`O(n)`); other variants
    /// aggregate the l per-dimension distances per intersection node
    /// (`O(l·n)`, still within the per-answer budget of Theorem IV.1).
    // xtask-allow: guard_coverage — scans the in-memory N_i table (O(l·n) per answer), no graph traversal
    pub fn best_core_with(&self, cost_fn: CostFn) -> Option<BestCore> {
        let mut best: Option<(Weight, usize)> = None;
        for u in 0..self.n {
            if usize::from(self.count[u]) == self.l {
                let cost = match cost_fn {
                    CostFn::SumDistances => self.sum[u],
                    _ => cost_fn.combine((0..self.l).map(|i| self.dist[i * self.n + u])),
                };
                match best {
                    Some((b, _)) if b <= cost => {}
                    _ => best = Some((cost, u)),
                }
            }
        }
        let (cost, u) = best?;
        let core = Core(
            (0..self.l)
                .map(|i| {
                    let s = self.src[i * self.n + u];
                    debug_assert_ne!(s, NO_SRC);
                    NodeId(s)
                })
                .collect(),
        );
        Some(BestCore {
            core,
            cost,
            center: NodeId(index_to_u32(u)),
        })
    }

    /// All nodes currently in `⋂ N_i` — potential centers (for tests).
    pub fn intersection(&self) -> Vec<NodeId> {
        (0..self.n)
            .filter(|&u| usize::from(self.count[u]) == self.l)
            .map(|u| NodeId(index_to_u32(u)))
            .collect()
    }

    /// Logical bytes held — the paper's `O(l·n)` table plus sums/counters.
    pub fn byte_size(&self) -> usize {
        self.dist.len() * std::mem::size_of::<Weight>()
            + self.src.len() * std::mem::size_of::<u32>()
            + self.sum.len() * std::mem::size_of::<Weight>()
            + self.count.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm_datasets::paper_example::{fig4_graph, fig4_keyword_nodes};

    fn fig4() -> Graph {
        fig4_graph()
    }

    fn v_sets() -> Vec<Vec<NodeId>> {
        fig4_keyword_nodes()
    }

    fn build(rmax: f64) -> (Graph, NeighborSets, DijkstraEngine) {
        let g = fig4();
        let mut eng = DijkstraEngine::new(g.node_count());
        let mut ns = NeighborSets::new(3, g.node_count());
        for (i, set) in v_sets().into_iter().enumerate() {
            ns.recompute_dim(&g, &mut eng, i, set, Weight::new(rmax));
        }
        (g, ns, eng)
    }

    #[test]
    fn neighbor_sets_match_paper_walkthrough() {
        // Sec. IV: with Rmax = 8,
        // N1 = {1,4,5,7,8,9,11,12,13}, N2 = {1,2,4,5,7,8,9,10,11,12},
        // N3 = {1,2,3,4,5,6,7,9,11,12}.
        let (_, ns, _) = build(8.0);
        let ids = |v: Vec<NodeId>| v.into_iter().map(|n| n.0).collect::<Vec<_>>();
        assert_eq!(ids(ns.neighbor_set(0)), vec![1, 4, 5, 7, 8, 9, 11, 12, 13]);
        assert_eq!(
            ids(ns.neighbor_set(1)),
            vec![1, 2, 4, 5, 7, 8, 9, 10, 11, 12]
        );
        assert_eq!(
            ids(ns.neighbor_set(2)),
            vec![1, 2, 3, 4, 5, 6, 7, 9, 11, 12]
        );
        // Intersection from the walkthrough: {1,4,5,7,9,11,12}.
        assert_eq!(ids(ns.intersection()), vec![1, 4, 5, 7, 9, 11, 12]);
    }

    #[test]
    fn first_best_core_is_r3() {
        // Sec. IV: "BestCore() identifies a core C = [v4, v8, v6] centered
        // at v7 with a cost of 7".
        let (_, ns, _) = build(8.0);
        let best = ns.best_core().unwrap();
        assert_eq!(best.core, Core(vec![NodeId(4), NodeId(8), NodeId(6)]));
        assert_eq!(best.cost, Weight::new(7.0));
        assert_eq!(best.center, NodeId(7));
    }

    #[test]
    fn restricting_dim_changes_best_core() {
        // Sec. IV walkthrough: pin dims 1,2 to {v4},{v8}, restrict dim 3 to
        // V3 − {v6} = {v3, v9, v11}: intersection is empty → no core.
        let (g, mut ns, mut eng) = build(8.0);
        let r = Weight::new(8.0);
        ns.recompute_dim(&g, &mut eng, 0, [NodeId(4)], r);
        ns.recompute_dim(&g, &mut eng, 1, [NodeId(8)], r);
        ns.recompute_dim(&g, &mut eng, 2, vec![NodeId(3), NodeId(9), NodeId(11)], r);
        assert_eq!(ns.best_core(), None);
        // Then S2 = {v2}, dim 3 back to full V3: core [v4, v2, v3].
        ns.recompute_dim(&g, &mut eng, 2, v_sets()[2].clone(), r);
        ns.recompute_dim(&g, &mut eng, 1, [NodeId(2)], r);
        let best = ns.best_core().unwrap();
        assert_eq!(best.core, Core(vec![NodeId(4), NodeId(2), NodeId(3)]));
        assert_eq!(best.cost, Weight::new(14.0));
        assert_eq!(best.center, NodeId(1));
    }

    #[test]
    fn sums_and_counts_survive_recompute_cycles() {
        let (g, mut ns, mut eng) = build(8.0);
        let before = ns.best_core();
        // Thrash one dimension and restore it.
        let r = Weight::new(8.0);
        for _ in 0..5 {
            ns.recompute_dim(&g, &mut eng, 1, [NodeId(2)], r);
            ns.recompute_dim(&g, &mut eng, 1, v_sets()[1].clone(), r);
        }
        assert_eq!(ns.best_core(), before);
    }

    #[test]
    fn empty_seed_dimension_blocks_all_cores() {
        let (g, mut ns, mut eng) = build(8.0);
        ns.recompute_dim(&g, &mut eng, 0, std::iter::empty(), Weight::new(8.0));
        assert_eq!(ns.best_core(), None);
        assert!(ns.intersection().is_empty());
    }

    #[test]
    fn src_and_dist_accessors() {
        let (_, ns, _) = build(8.0);
        // v7 reaches keyword-b node v8 at distance 3.
        assert_eq!(ns.dist(1, NodeId(7)), Some(Weight::new(3.0)));
        assert_eq!(ns.src(1, NodeId(7)), Some(NodeId(8)));
        // v3 cannot reach any a-node within 8.
        assert_eq!(ns.dist(0, NodeId(3)), None);
        assert_eq!(ns.src(0, NodeId(3)), None);
    }

    #[test]
    fn byte_size_scales_with_l_n() {
        let a = NeighborSets::new(2, 100).byte_size();
        let b = NeighborSets::new(4, 100).byte_size();
        assert!(b > a);
    }

    #[test]
    fn try_new_rejects_bad_keyword_counts() {
        assert!(matches!(
            NeighborSets::try_new(0, 10),
            Err(QueryError::NoKeywords)
        ));
        assert!(matches!(
            NeighborSets::try_new(MAX_KEYWORDS + 1, 10),
            Err(QueryError::TooManyKeywords { l, max })
                if l == MAX_KEYWORDS + 1 && max == MAX_KEYWORDS
        ));
        assert!(NeighborSets::try_new(MAX_KEYWORDS, 10).is_ok());
    }

    #[test]
    fn recompute_all_matches_serial_dim_loop_bitwise() {
        let g = fig4();
        let pool = EnginePool::new();
        let r = Weight::new(8.0);
        let seeds = v_sets();
        // The historical path: one recompute_dim per dimension, in order.
        let mut legacy = NeighborSets::new(3, g.node_count());
        let mut eng = DijkstraEngine::new(g.node_count());
        for (i, set) in seeds.clone().into_iter().enumerate() {
            legacy.recompute_dim(&g, &mut eng, i, set, r);
        }
        for threads in [1usize, 2, 4, 8] {
            let mut fanned = NeighborSets::new(3, g.node_count());
            fanned.recompute_all(&g, &pool, &seeds, r, Parallelism::new(threads));
            assert_eq!(fanned.dist, legacy.dist, "dist, threads={threads}");
            assert_eq!(fanned.src, legacy.src, "src, threads={threads}");
            assert_eq!(fanned.sum, legacy.sum, "sum, threads={threads}");
            assert_eq!(fanned.count, legacy.count, "count, threads={threads}");
            assert_eq!(fanned.sweeps(), legacy.sweeps());
            assert_eq!(fanned.best_core(), legacy.best_core());
        }
        // Engines were parked back in the pool after the fan-out.
        assert!(pool.pooled_engines() >= 1);
    }

    #[test]
    fn recompute_all_batched_matches_fanout_bitwise() {
        let g = fig4();
        let pool = EnginePool::new();
        let r = Weight::new(8.0);
        let seeds = v_sets();
        let mut fanned = NeighborSets::new(3, g.node_count());
        fanned.recompute_all(&g, &pool, &seeds, r, Parallelism::serial());
        let mut batched = NeighborSets::new(3, g.node_count());
        batched
            .recompute_all_batched_guarded(&g, &pool, &seeds, r, &RunGuard::unlimited())
            .unwrap();
        assert_eq!(batched.dist, fanned.dist);
        assert_eq!(batched.src, fanned.src);
        assert_eq!(batched.sum, fanned.sum);
        assert_eq!(batched.count, fanned.count);
        assert_eq!(batched.sweeps(), fanned.sweeps());
        assert_eq!(batched.best_core(), fanned.best_core());
        // The paper's walkthrough answer survives the fused pass.
        let best = batched.best_core().unwrap();
        assert_eq!(best.center, NodeId(7));
        assert_eq!(best.cost, Weight::new(7.0));
    }

    #[test]
    fn batched_recompute_respects_guard_and_recovers() {
        let g = fig4();
        let pool = EnginePool::new();
        let seeds = v_sets();
        let mut ns = NeighborSets::new(3, g.node_count());
        let tripping = RunGuard::new().with_settled_budget(2);
        let err = ns
            .recompute_all_batched_guarded(&g, &pool, &seeds, Weight::new(8.0), &tripping)
            .unwrap_err();
        assert_eq!(err, InterruptReason::SettledBudgetExhausted);
        // A full rerun over the same table lands on the exact answer.
        ns.recompute_all_batched_guarded(&g, &pool, &seeds, Weight::new(8.0), &RunGuard::new())
            .unwrap();
        assert_eq!(ns.best_core().unwrap().center, NodeId(7));
    }

    #[test]
    fn batching_gate_prefers_fanout_for_tiny_or_parallel_inputs() {
        let ns = NeighborSets::new(3, 100);
        let tiny: Vec<Vec<NodeId>> = vec![vec![NodeId(0)]; 3];
        let big: Vec<Vec<NodeId>> =
            vec![(0..BATCH_MIN_TOTAL_SEEDS as u32).map(NodeId).collect(); 3];
        assert!(!ns.batching_profitable(Parallelism::serial(), &tiny));
        assert!(ns.batching_profitable(Parallelism::serial(), &big));
        assert!(!ns.batching_profitable(Parallelism::new(4), &big));
        // One dimension has nothing to fuse.
        assert!(!NeighborSets::new(1, 100).batching_profitable(Parallelism::serial(), &big[..1]));
    }

    #[test]
    fn recompute_all_respects_guard() {
        let g = fig4();
        let pool = EnginePool::new();
        let seeds = v_sets();
        for threads in [1usize, 4] {
            let mut ns = NeighborSets::new(3, g.node_count());
            let tripping = RunGuard::new().with_settled_budget(2);
            let err = ns
                .recompute_all_guarded(
                    &g,
                    &pool,
                    &seeds,
                    Weight::new(8.0),
                    &tripping,
                    Parallelism::new(threads),
                )
                .unwrap_err();
            assert_eq!(err, InterruptReason::SettledBudgetExhausted);
        }
    }
}
