//! Cross-crate integration tests: relational database → database graph →
//! projection index → community search, on both synthetic datasets.

use communities::datasets::workload::{query_keywords, DBLP_KEYWORD_GROUPS, IMDB_KEYWORD_GROUPS};
use communities::datasets::{generate_dblp, generate_imdb, DblpConfig, ImdbConfig};
use communities::graph::{NodeId, Weight};
use communities::search::{
    bu_all, bu_topk, comm_all, td_all, td_topk, CommAll, CommK, ProjectionIndex, QuerySpec,
};
use std::collections::BTreeSet;

fn small_dblp() -> communities::datasets::GeneratedDataset {
    generate_dblp(&DblpConfig::default().scaled(0.4))
}

fn small_imdb() -> communities::datasets::GeneratedDataset {
    let mut c = ImdbConfig::default().scaled(0.5);
    c.avg_ratings_per_user = 30.0;
    generate_imdb(&c)
}

fn spec_for(
    ds: &communities::datasets::GeneratedDataset,
    keywords: &[&str],
    rmax: f64,
) -> QuerySpec {
    QuerySpec::new(
        keywords
            .iter()
            .map(|&kw| ds.graph.keyword_nodes(kw).to_vec())
            .collect(),
        Weight::new(rmax),
    )
}

#[test]
fn dblp_projection_equals_full_graph_query() {
    let ds = small_dblp();
    let keywords = query_keywords(DBLP_KEYWORD_GROUPS, 0.0009, 3);
    let entries: Vec<(&str, &[NodeId])> = keywords
        .iter()
        .map(|&kw| (kw, ds.graph.keyword_nodes(kw)))
        .collect();
    let index = ProjectionIndex::build(&ds.graph.graph, entries, Weight::new(8.0));
    let pq = index.project(&keywords, Weight::new(6.0)).unwrap();

    let full_spec = spec_for(&ds, &keywords, 6.0);
    let full: BTreeSet<Vec<NodeId>> = comm_all(&ds.graph.graph, &full_spec)
        .into_iter()
        .map(|c| c.core.0)
        .collect();
    let projected: BTreeSet<Vec<NodeId>> = comm_all(&pq.projected.graph, &pq.spec)
        .into_iter()
        .map(|c| {
            c.core
                .0
                .iter()
                .map(|&n| pq.projected.to_original(n))
                .collect()
        })
        .collect();
    assert_eq!(full, projected);
}

#[test]
fn imdb_all_engines_agree_on_topk() {
    let ds = small_imdb();
    let keywords = query_keywords(IMDB_KEYWORD_GROUPS, 0.0009, 3);
    let spec = spec_for(&ds, &keywords, 10.0);
    let entries: Vec<(&str, &[NodeId])> = keywords
        .iter()
        .map(|&kw| (kw, ds.graph.keyword_nodes(kw)))
        .collect();
    let index = ProjectionIndex::build(&ds.graph.graph, entries, Weight::new(10.0));
    let pq = index.project(&keywords, Weight::new(10.0)).unwrap();
    let g = &pq.projected.graph;

    let k = 40;
    let pd: Vec<Weight> = CommK::new(g, &pq.spec).take(k).map(|c| c.cost).collect();
    let bu = bu_topk(g, &pq.spec, k, None);
    let td = td_topk(g, &pq.spec, k, None);
    assert!(!pd.is_empty(), "query should produce communities");
    assert_eq!(
        pd,
        bu.communities.iter().map(|c| c.cost).collect::<Vec<_>>()
    );
    assert_eq!(
        pd,
        td.communities.iter().map(|c| c.cost).collect::<Vec<_>>()
    );
    // Sanity: projection gives the same ranking as the full graph.
    let full: Vec<Weight> = CommK::new(&ds.graph.graph, &spec)
        .take(k)
        .map(|c| c.cost)
        .collect();
    assert_eq!(pd, full);
}

#[test]
fn imdb_all_enumerators_agree_on_core_sets() {
    let ds = small_imdb();
    let keywords = query_keywords(IMDB_KEYWORD_GROUPS, 0.0003, 2);
    let entries: Vec<(&str, &[NodeId])> = keywords
        .iter()
        .map(|&kw| (kw, ds.graph.keyword_nodes(kw)))
        .collect();
    let index = ProjectionIndex::build(&ds.graph.graph, entries, Weight::new(9.0));
    let pq = index.project(&keywords, Weight::new(9.0)).unwrap();
    let g = &pq.projected.graph;

    let pd: BTreeSet<_> = comm_all(g, &pq.spec).into_iter().map(|c| c.core).collect();
    let bu: BTreeSet<_> = bu_all(g, &pq.spec, None)
        .communities
        .into_iter()
        .map(|c| c.core)
        .collect();
    let td: BTreeSet<_> = td_all(g, &pq.spec, None)
        .communities
        .into_iter()
        .map(|c| c.core)
        .collect();
    assert_eq!(pd, bu);
    assert_eq!(pd, td);
}

#[test]
fn interactive_resume_equals_oneshot_on_generated_data() {
    let ds = small_dblp();
    let keywords = query_keywords(DBLP_KEYWORD_GROUPS, 0.0015, 3);
    let spec = spec_for(&ds, &keywords, 7.0);
    let oneshot: Vec<_> = CommK::new(&ds.graph.graph, &spec)
        .take(30)
        .map(|c| c.core)
        .collect();
    let mut it = CommK::new(&ds.graph.graph, &spec);
    let mut paged: Vec<_> = it.by_ref().take(10).map(|c| c.core).collect();
    paged.extend(it.by_ref().take(10).map(|c| c.core));
    paged.extend(it.by_ref().take(10).map(|c| c.core));
    assert_eq!(paged, oneshot);
}

#[test]
fn communities_satisfy_definition_on_generated_data() {
    // Every emitted community must satisfy Definition 2.1 on the original
    // graph: centers reach every knode within Rmax; all keywords covered.
    let ds = small_imdb();
    let keywords = query_keywords(IMDB_KEYWORD_GROUPS, 0.0006, 3);
    let spec = spec_for(&ds, &keywords, 10.0);
    let g = &ds.graph.graph;
    let mut engine = communities::graph::DijkstraEngine::new(g.node_count());
    for c in CommK::new(g, &spec).take(12) {
        // Knodes carry the right keywords.
        for (i, &knode) in c.core.0.iter().enumerate() {
            assert!(
                ds.graph.keyword_nodes(keywords[i]).contains(&knode),
                "knode {knode} lacks keyword {}",
                keywords[i]
            );
        }
        // Every center reaches every knode within Rmax.
        for &center in &c.centers {
            let dist = engine.distances(g, communities::graph::Direction::Forward, center);
            for &knode in &c.core.0 {
                assert!(
                    dist[knode.index()] <= spec.rmax,
                    "center {center} cannot reach {knode}"
                );
            }
        }
        // The community subgraph is induced: edge counts match.
        let members = c.nodes();
        let expect: usize = members
            .iter()
            .map(|&u| {
                g.out_neighbors(u)
                    .filter(|(v, _)| members.binary_search(v).is_ok())
                    .count()
            })
            .sum();
        assert_eq!(c.edge_count(), expect);
    }
}

#[test]
fn comm_all_iterator_stats() {
    let ds = small_dblp();
    let keywords = query_keywords(DBLP_KEYWORD_GROUPS, 0.0012, 2);
    let spec = spec_for(&ds, &keywords, 6.0);
    let mut it = CommAll::new(&ds.graph.graph, &spec);
    let mut n = 0;
    while it.next().is_some() {
        n += 1;
        assert_eq!(it.emitted(), n);
        if n > 500 {
            break;
        }
    }
    assert!(it.peak_memory_bytes() > 0);
}
