//! Unified error type for the fallible `try_*` query APIs.
//!
//! The infallible entry points (`comm_all`, `comm_k`, …) keep their
//! historical contract: malformed inputs are caller bugs and panic. The
//! `try_*` / `*_guarded` variants validate the whole [`QuerySpec`] up front
//! and return a [`QueryError`] instead, so a service embedding this crate
//! can reject bad requests without a catch-unwind boundary.
//!
//! [`QuerySpec`]: crate::QuerySpec

use comm_graph::{Graph, InterruptReason, NodeId};
use std::fmt;

/// Why a query was rejected (or, for non-enumerating operations such as
/// projection, why it was cut short).
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// The query has zero keywords (`l == 0`).
    NoKeywords,
    /// The query has more keywords than the engine's per-node `u8`
    /// dimension counters support (`l > MAX_KEYWORDS`).
    ///
    /// [`MAX_KEYWORDS`]: crate::MAX_KEYWORDS
    TooManyKeywords {
        /// The number of keywords requested.
        l: usize,
        /// The supported maximum ([`crate::MAX_KEYWORDS`]).
        max: usize,
    },
    /// `rmax` is NaN, negative, or non-finite.
    InvalidRadius(f64),
    /// A keyword node set references a node outside the graph.
    NodeOutOfRange {
        /// The keyword dimension (0-based) containing the bad node.
        dim: usize,
        /// The offending node id.
        node: NodeId,
        /// The graph's node count.
        node_count: usize,
    },
    /// The requested `rmax` exceeds the radius the projection index was
    /// built for — projecting would silently drop communities.
    RadiusExceedsIndex {
        /// The requested query radius.
        rmax: f64,
        /// The radius the index supports.
        index_radius: f64,
    },
    /// A query keyword is absent from the projection index.
    UnknownKeyword(String),
    /// The run guard tripped inside an operation with no meaningful
    /// partial result (projection, single-community materialization).
    /// Enumerators report interruption via `Outcome::Interrupted` instead.
    Interrupted(InterruptReason),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoKeywords => write!(f, "query has no keywords (l = 0)"),
            QueryError::TooManyKeywords { l, max } => {
                write!(
                    f,
                    "query has {l} keywords; the engine supports at most {max}"
                )
            }
            QueryError::InvalidRadius(r) => {
                write!(f, "query radius must be finite and non-negative, got {r}")
            }
            QueryError::NodeOutOfRange {
                dim,
                node,
                node_count,
            } => write!(
                f,
                "keyword {dim} references node {node} outside the graph (node count {node_count})"
            ),
            QueryError::RadiusExceedsIndex { rmax, index_radius } => write!(
                f,
                "query Rmax {rmax} exceeds the index radius {index_radius}"
            ),
            QueryError::UnknownKeyword(kw) => write!(f, "keyword {kw:?} is not indexed"),
            QueryError::Interrupted(reason) => write!(f, "query interrupted: {reason}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<InterruptReason> for QueryError {
    fn from(reason: InterruptReason) -> QueryError {
        QueryError::Interrupted(reason)
    }
}

/// Validates a radius for query use: finite and non-negative.
pub(crate) fn validate_radius(rmax: f64) -> Result<(), QueryError> {
    if rmax.is_finite() && rmax >= 0.0 {
        Ok(())
    } else {
        Err(QueryError::InvalidRadius(rmax))
    }
}

/// Validates keyword node sets against a graph's node range.
pub(crate) fn validate_nodes(
    keyword_nodes: &[Vec<NodeId>],
    graph: &Graph,
) -> Result<(), QueryError> {
    let node_count = graph.node_count();
    for (dim, set) in keyword_nodes.iter().enumerate() {
        if let Some(&node) = set.iter().find(|v| v.index() >= node_count) {
            return Err(QueryError::NodeOutOfRange {
                dim,
                node,
                node_count,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm_graph::GraphBuilder;

    #[test]
    fn every_variant_displays_its_context() {
        let cases: Vec<(QueryError, &str)> = vec![
            (QueryError::NoKeywords, "no keywords"),
            (
                QueryError::TooManyKeywords { l: 300, max: 255 },
                "at most 255",
            ),
            (QueryError::InvalidRadius(-1.5), "-1.5"),
            (
                QueryError::NodeOutOfRange {
                    dim: 2,
                    node: NodeId(9),
                    node_count: 4,
                },
                "keyword 2",
            ),
            (
                QueryError::RadiusExceedsIndex {
                    rmax: 8.0,
                    index_radius: 5.0,
                },
                "exceeds the index radius 5",
            ),
            (QueryError::UnknownKeyword("zzz".into()), "\"zzz\""),
            (
                QueryError::Interrupted(InterruptReason::Cancelled),
                "interrupted",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{err:?} displayed as {text:?}");
        }
    }

    #[test]
    fn interrupt_reasons_convert() {
        let err: QueryError = InterruptReason::DeadlineExceeded.into();
        assert_eq!(
            err,
            QueryError::Interrupted(InterruptReason::DeadlineExceeded)
        );
    }

    #[test]
    fn radius_validation() {
        assert!(validate_radius(0.0).is_ok());
        assert!(validate_radius(7.25).is_ok());
        assert_eq!(
            validate_radius(f64::NEG_INFINITY),
            Err(QueryError::InvalidRadius(f64::NEG_INFINITY))
        );
        assert!(matches!(
            validate_radius(f64::NAN),
            Err(QueryError::InvalidRadius(r)) if r.is_nan()
        ));
    }

    #[test]
    fn node_validation_pinpoints_dimension() {
        let g = GraphBuilder::new(3).build();
        assert!(validate_nodes(&[vec![NodeId(0), NodeId(2)]], &g).is_ok());
        let err = validate_nodes(&[vec![NodeId(1)], vec![NodeId(0), NodeId(3)]], &g).unwrap_err();
        assert_eq!(
            err,
            QueryError::NodeOutOfRange {
                dim: 1,
                node: NodeId(3),
                node_count: 3,
            }
        );
    }
}
