//! Admission control: a bounded wait queue plus the degradation ladder
//! that maps request priority and queue pressure to [`RunGuard`] limits.
//!
//! The daemon never queues to death. A request either:
//!
//! 1. **admits** — it gets a [`Permit`] (an RAII in-flight slot) and a
//!    [`RunGuard`] whose deadline and work budgets shrink as the queue
//!    fills, so overload degrades answers to certified exact prefixes
//!    instead of stretching latencies unboundedly; or
//! 2. **sheds** — the queue is full (or the wait timed out), and the
//!    caller must send an explicit `Overloaded` reply with a back-off
//!    hint. Shed requests are never executed, so shedding is idempotent.
//!
//! The ladder is deliberately step-wise (full / half / quarter limits)
//! rather than continuous: step boundaries make the degraded behavior
//! predictable and testable.

use comm_graph::RunGuard;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::protocol::Priority;

/// Tunables for the admission gate and the degradation ladder.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Queries executing concurrently (each holds an engine + scratch).
    pub max_inflight: usize,
    /// Requests allowed to wait for a slot; beyond this the gate sheds.
    pub max_queue: usize,
    /// How long a queued request waits for a slot before being shed.
    pub queue_wait: Duration,
    /// Normal-priority deadline at zero pressure (ladder level 0).
    pub base_deadline: Duration,
    /// Normal-priority settled-node budget at zero pressure.
    pub base_settled_budget: u64,
    /// Back-off hint sent with `Overloaded` replies.
    pub retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_inflight: 2,
            max_queue: 8,
            queue_wait: Duration::from_millis(250),
            base_deadline: Duration::from_secs(2),
            base_settled_budget: 5_000_000,
            retry_after: Duration::from_millis(200),
        }
    }
}

/// Occupancy of the gate, guarded by one mutex.
#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    queued: usize,
}

/// The outcome of asking for admission.
pub enum Admission<'g> {
    /// The request may execute; drop the permit when done.
    Admitted(Permit<'g>),
    /// The request was shed; reply `Overloaded` with this back-off hint.
    Shed {
        /// Suggested client back-off.
        retry_after: Duration,
    },
}

/// A bounded admission gate shared by every connection handler.
pub struct AdmissionGate {
    cfg: AdmissionConfig,
    state: Mutex<GateState>,
    freed: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
    /// Raised on shutdown: every guard built by this gate is cancelled.
    shutdown: Arc<AtomicBool>,
}

impl AdmissionGate {
    /// Builds a gate; guards it issues share `shutdown` as their cancel
    /// flag, so raising it cancels every in-flight query cooperatively.
    pub fn new(cfg: AdmissionConfig, shutdown: Arc<AtomicBool>) -> AdmissionGate {
        AdmissionGate {
            cfg,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shutdown,
        }
    }

    /// The gate's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// `(admitted, shed)` lifetime counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.admitted.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
        )
    }

    /// Locks the gate state, recovering from a poisoned mutex: the state
    /// is two counters whose invariants are restored by the RAII permits,
    /// so an unwinding handler must not wedge the whole daemon.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, GateState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Requests admission, blocking up to `queue_wait` for an in-flight
    /// slot. Returns [`Admission::Shed`] when the wait queue is full or
    /// the wait times out.
    pub fn admit(&self) -> Admission<'_> {
        let mut st = self.lock_state();
        if st.inflight < self.cfg.max_inflight && st.queued == 0 {
            // Fast path: a free slot and nobody queued ahead of us.
            st.inflight += 1;
            drop(st);
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Admission::Admitted(Permit { gate: self });
        }
        if st.queued >= self.cfg.max_queue {
            drop(st);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed {
                retry_after: self.cfg.retry_after,
            };
        }
        st.queued += 1;
        let mut remaining = self.cfg.queue_wait;
        while st.inflight >= self.cfg.max_inflight {
            if remaining.is_zero() {
                st.queued -= 1;
                drop(st);
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Admission::Shed {
                    retry_after: self.cfg.retry_after,
                };
            }
            let started = std::time::Instant::now();
            let (guard_back, timeout) = match self.freed.wait_timeout(st, remaining) {
                Ok((g, t)) => (g, t.timed_out()),
                Err(poisoned) => {
                    let (g, t) = poisoned.into_inner();
                    (g, t.timed_out())
                }
            };
            st = guard_back;
            if timeout {
                remaining = Duration::ZERO;
            } else {
                remaining = remaining.saturating_sub(started.elapsed());
            }
        }
        st.queued -= 1;
        st.inflight += 1;
        drop(st);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Admission::Admitted(Permit { gate: self })
    }

    /// The current degradation ladder level derived from queue pressure:
    /// `0` under half-full, `1` at half, `2` at three-quarters.
    pub fn pressure_level(&self) -> u8 {
        let queued = self.lock_state().queued;
        if queued * 4 >= self.cfg.max_queue * 3 {
            2
        } else if queued * 2 >= self.cfg.max_queue {
            1
        } else {
            0
        }
    }

    /// Builds the [`RunGuard`] for an admitted request: base limits scaled
    /// up by priority and down by the current ladder level, sharing the
    /// gate's shutdown flag for cooperative cancellation.
    pub fn guard_for(&self, priority: Priority) -> RunGuard {
        self.guard_at(priority, self.pressure_level())
    }

    /// [`guard_for`](Self::guard_for) at an explicit ladder level (exposed
    /// so tests and the chaos harness can pin the level).
    pub fn guard_at(&self, priority: Priority, level: u8) -> RunGuard {
        let (num, den): (u32, u32) = match priority {
            Priority::Low => (1, 2),
            Priority::Normal => (1, 1),
            Priority::High => (2, 1),
        };
        // Ladder: level 0 keeps full limits, 1 halves them, 2 quarters.
        let shrink = 1u32 << level.min(2);
        let deadline = self.cfg.base_deadline * num / (den * shrink);
        let settled = self.cfg.base_settled_budget * u64::from(num) / u64::from(den * shrink);
        RunGuard::new()
            .with_cancel_flag(Arc::clone(&self.shutdown))
            .with_deadline(deadline.max(Duration::from_millis(1)))
            .with_settled_budget(settled.max(1))
    }
}

/// An in-flight slot; dropping it frees the slot and wakes one waiter.
pub struct Permit<'g> {
    gate: &'g AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.lock_state();
        st.inflight = st.inflight.saturating_sub(1);
        drop(st);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn gate(max_inflight: usize, max_queue: usize, wait_ms: u64) -> AdmissionGate {
        AdmissionGate::new(
            AdmissionConfig {
                max_inflight,
                max_queue,
                queue_wait: Duration::from_millis(wait_ms),
                ..AdmissionConfig::default()
            },
            Arc::new(AtomicBool::new(false)),
        )
    }

    #[test]
    fn admits_up_to_capacity_then_sheds_on_timeout() {
        let g = gate(1, 4, 10);
        let first = match g.admit() {
            Admission::Admitted(p) => p,
            Admission::Shed { .. } => panic!("first request must admit"),
        };
        // Second request waits 10ms for the held slot, then sheds.
        match g.admit() {
            Admission::Shed { retry_after } => assert!(!retry_after.is_zero()),
            Admission::Admitted(_) => panic!("slot is held; must shed"),
        }
        drop(first);
        assert!(matches!(g.admit(), Admission::Admitted(_)));
        assert_eq!(g.stats(), (2, 1));
    }

    #[test]
    fn full_queue_sheds_immediately() {
        let g = Arc::new(gate(1, 0, 1000));
        let _held = match g.admit() {
            Admission::Admitted(p) => p,
            Admission::Shed { .. } => panic!("first admits"),
        };
        // max_queue = 0: no waiting allowed, shed without blocking.
        let start = std::time::Instant::now();
        assert!(matches!(g.admit(), Admission::Shed { .. }));
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn permit_drop_wakes_a_waiter() {
        let g = Arc::new(gate(1, 4, 2000));
        let held = match g.admit() {
            Admission::Admitted(p) => p,
            Admission::Shed { .. } => panic!("first admits"),
        };
        std::thread::scope(|s| {
            let g2 = Arc::clone(&g);
            let waiter = s.spawn(move || matches!(g2.admit(), Admission::Admitted(_)));
            std::thread::sleep(Duration::from_millis(50));
            drop(held);
            assert!(waiter.join().unwrap(), "waiter must admit after release");
        });
    }

    #[test]
    fn ladder_scales_guard_limits_monotonically() {
        let g = gate(2, 8, 10);
        // Same priority: deeper levels must not loosen limits. We can't
        // read a guard's limits directly, so probe via the settled budget.
        for (prio, budgets) in [
            (Priority::Low, [2_500_000u64, 1_250_000, 625_000]),
            (Priority::Normal, [5_000_000, 2_500_000, 1_250_000]),
            (Priority::High, [10_000_000, 5_000_000, 2_500_000]),
        ] {
            for (level, want) in budgets.iter().enumerate() {
                let guard = g.guard_at(prio, u8::try_from(level).unwrap());
                assert!(guard.note_settled(want - 1).is_ok());
                assert!(guard.note_settled(1).is_ok(), "budget is inclusive");
                assert!(
                    guard.note_settled(1).is_err(),
                    "{prio} level {level}: budget must trip past {want}"
                );
            }
        }
    }

    #[test]
    fn shutdown_flag_cancels_issued_guards() {
        let shutdown = Arc::new(AtomicBool::new(false));
        let g = AdmissionGate::new(AdmissionConfig::default(), Arc::clone(&shutdown));
        let guard = g.guard_for(Priority::Normal);
        assert!(guard.check().is_ok());
        shutdown.store(true, Ordering::Relaxed);
        assert!(guard.check().is_err(), "shutdown cancels in-flight guards");
    }

    #[test]
    fn pressure_level_tracks_queue_occupancy() {
        let g = gate(1, 8, 10);
        assert_eq!(g.pressure_level(), 0);
        g.lock_state().queued = 4;
        assert_eq!(g.pressure_level(), 1);
        g.lock_state().queued = 6;
        assert_eq!(g.pressure_level(), 2);
        g.lock_state().queued = 0;
    }
}
