//! Radius-bounded single/multi-source Dijkstra.
//!
//! Every subroutine in the paper reduces to a shortest-path sweep:
//!
//! * `Neighbor(G_D, V_i, Rmax)` (Algorithm 2) = multi-source Dijkstra on the
//!   *reverse* graph seeded from `V_i` at distance 0 (the virtual sink `t`
//!   with zero-weight edges), truncated at `Rmax`;
//! * `GetCommunity` (Algorithm 4) = one forward sweep from the virtual
//!   source `s` over the centers plus one reverse sweep from `t` over the
//!   core;
//! * the expanding baselines = truncated sweeps per keyword node / per
//!   candidate center.
//!
//! [`DijkstraEngine`] owns the per-node scratch arrays and recycles them
//! across runs with an epoch counter, so a sweep costs
//! `O(n_reached · log n_reached + m_reached)` with no per-run allocation
//! beyond heap growth.

use crate::csr::{Direction, Graph, NodeId};
use crate::guard::{InterruptReason, RunGuard};
use crate::weight::Weight;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Marker for "no source recorded".
const NO_SOURCE: u32 = u32::MAX;

/// A settled node reported by [`DijkstraEngine::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Settled {
    /// The settled node.
    pub node: NodeId,
    /// Shortest distance from the nearest seed (seeds are at distance 0).
    pub dist: Weight,
    /// The seed the shortest path starts from — the paper's `src(N_i, u)`.
    pub source: NodeId,
    /// The previous hop on that shortest path (the node itself for seeds).
    /// Following `parent` repeatedly reaches `source`.
    pub parent: NodeId,
}

/// Reusable Dijkstra state for one graph size.
pub struct DijkstraEngine {
    dist: Vec<Weight>,
    source: Vec<u32>,
    parent: Vec<u32>,
    epoch: Vec<u32>,
    settled: Vec<bool>,
    current_epoch: u32,
    heap: BinaryHeap<Reverse<(Weight, NodeId)>>,
}

impl DijkstraEngine {
    /// Creates an engine for graphs with up to `n` nodes.
    pub fn new(n: usize) -> DijkstraEngine {
        DijkstraEngine {
            dist: vec![Weight::INFINITY; n],
            source: vec![NO_SOURCE; n],
            parent: vec![NO_SOURCE; n],
            epoch: vec![0; n],
            settled: vec![false; n],
            current_epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Grows the engine to accommodate `n` nodes (no-op if large enough).
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, Weight::INFINITY);
            self.source.resize(n, NO_SOURCE);
            self.parent.resize(n, NO_SOURCE);
            self.epoch.resize(n, 0);
            self.settled.resize(n, false);
        }
    }

    #[inline]
    fn fresh(&mut self) {
        self.current_epoch = self.current_epoch.wrapping_add(1);
        if self.current_epoch == 0 {
            // Extremely rare wrap: reset stamps so stale entries cannot alias.
            self.epoch.fill(u32::MAX);
            self.current_epoch = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn relax(&mut self, node: NodeId, dist: Weight, source: NodeId, parent: NodeId) -> bool {
        let i = node.index();
        if self.epoch[i] != self.current_epoch {
            self.epoch[i] = self.current_epoch;
            self.settled[i] = false;
            self.dist[i] = dist;
            self.source[i] = source.0;
            self.parent[i] = parent.0;
            true
        } else if dist < self.dist[i] && !self.settled[i] {
            self.dist[i] = dist;
            self.source[i] = source.0;
            self.parent[i] = parent.0;
            true
        } else {
            false
        }
    }

    /// Runs a truncated multi-source Dijkstra.
    ///
    /// Seeds start at distance `0`. Nodes with shortest distance `≤ radius`
    /// are settled and passed to `visit` in non-decreasing distance order.
    /// Each settled node carries the seed its shortest path leaves from
    /// (ties broken by which seed reaches it first through the heap, which
    /// is deterministic for a fixed graph).
    ///
    /// Returns the number of settled nodes.
    pub fn run<F: FnMut(Settled)>(
        &mut self,
        graph: &Graph,
        dir: Direction,
        seeds: impl IntoIterator<Item = NodeId>,
        radius: Weight,
        visit: F,
    ) -> usize {
        self.run_guarded(graph, dir, seeds, radius, &RunGuard::unlimited(), visit)
            // xtask-allow: no_panics — RunGuard::unlimited() has no budgets, so Interrupted is unreachable
            .expect("unlimited guard never trips")
    }

    /// Like [`run`](Self::run), but consults `guard` once per settled node.
    ///
    /// On interruption the sweep stops before settling (or reporting) any
    /// further node and returns the guard's reason; nodes already passed to
    /// `visit` form a valid prefix of the unguarded settle order. Engine
    /// scratch state is epoch-stamped, so an interrupted engine is safe to
    /// reuse.
    pub fn run_guarded<F: FnMut(Settled)>(
        &mut self,
        graph: &Graph,
        dir: Direction,
        seeds: impl IntoIterator<Item = NodeId>,
        radius: Weight,
        guard: &RunGuard,
        mut visit: F,
    ) -> Result<usize, InterruptReason> {
        self.ensure_capacity(graph.node_count());
        self.fresh();
        for seed in seeds {
            if self.relax(seed, Weight::ZERO, seed, seed) {
                self.heap.push(Reverse((Weight::ZERO, seed)));
            }
        }
        let mut settled_count = 0;
        while let Some(Reverse((d, u))) = self.heap.pop() {
            let i = u.index();
            if self.settled[i] || d > self.dist[i] {
                continue; // lazily deleted entry
            }
            guard.note_settled(1)?;
            self.settled[i] = true;
            settled_count += 1;
            let source = NodeId(self.source[i]);
            visit(Settled {
                node: u,
                dist: d,
                source,
                parent: NodeId(self.parent[i]),
            });
            for (v, w) in graph.neighbors(u, dir) {
                let nd = d + w;
                if nd <= radius && self.relax(v, nd, source, u) {
                    self.heap.push(Reverse((nd, v)));
                }
            }
        }
        Ok(settled_count)
    }

    /// Like [`run`](Self::run) but materializes per-node `(dist, src)`
    /// arrays of length `n`, with `Weight::INFINITY` / `None` for nodes
    /// beyond the radius. This is the exact output shape of the paper's
    /// `Neighbor()` (`min(N_i, u)` and `src(N_i, u)`).
    pub fn run_into(
        &mut self,
        graph: &Graph,
        dir: Direction,
        seeds: impl IntoIterator<Item = NodeId>,
        radius: Weight,
        out_dist: &mut [Weight],
        out_src: &mut [Option<NodeId>],
    ) -> usize {
        let n = graph.node_count();
        assert!(out_dist.len() >= n && out_src.len() >= n);
        out_dist[..n].fill(Weight::INFINITY);
        out_src[..n].fill(None);
        self.run(graph, dir, seeds, radius, |s| {
            out_dist[s.node.index()] = s.dist;
            out_src[s.node.index()] = Some(s.source);
        })
    }

    /// Single-source distances to every node (untruncated), as a dense
    /// vector. Convenience used by tests and examples.
    pub fn distances(&mut self, graph: &Graph, dir: Direction, from: NodeId) -> Vec<Weight> {
        let mut dist = vec![Weight::INFINITY; graph.node_count()];
        self.run(graph, dir, [from], Weight::INFINITY, |s| {
            dist[s.node.index()] = s.dist;
        });
        dist
    }
}

/// One-shot single-source shortest distances. The engine scratch state is
/// borrowed from [`EnginePool::global`](crate::EnginePool::global), so
/// repeated one-shot calls stop paying the `O(n)` allocation after the
/// first.
pub fn shortest_distances(graph: &Graph, dir: Direction, from: NodeId) -> Vec<Weight> {
    crate::pool::EnginePool::global()
        .acquire(graph.node_count())
        .distances(graph, dir, from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::graph_from_edges;
    use crate::reference::all_pairs_shortest;

    fn line() -> Graph {
        graph_from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)])
    }

    #[test]
    fn single_source_forward() {
        let g = line();
        let d = shortest_distances(&g, Direction::Forward, NodeId(0));
        assert_eq!(d[0], Weight::ZERO);
        assert_eq!(d[1], Weight::new(1.0));
        assert_eq!(d[2], Weight::new(3.0));
        assert_eq!(d[3], Weight::new(7.0));
    }

    #[test]
    fn single_source_reverse() {
        let g = line();
        let d = shortest_distances(&g, Direction::Reverse, NodeId(3));
        // Reverse from 3 gives dist(u, 3) for each u.
        assert_eq!(d[0], Weight::new(7.0));
        assert_eq!(d[3], Weight::ZERO);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = graph_from_edges(3, &[(0, 1, 1.0)]);
        let d = shortest_distances(&g, Direction::Forward, NodeId(0));
        assert!(!d[2].is_finite());
    }

    #[test]
    fn radius_truncation() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let mut reached = Vec::new();
        eng.run(&g, Direction::Forward, [NodeId(0)], Weight::new(3.0), |s| {
            reached.push((s.node, s.dist));
        });
        assert_eq!(
            reached,
            vec![
                (NodeId(0), Weight::ZERO),
                (NodeId(1), Weight::new(1.0)),
                (NodeId(2), Weight::new(3.0)),
            ]
        );
    }

    #[test]
    fn multi_source_nearest_seed_wins() {
        // 0 -> 1 -> 2 <- 3, seeds {0, 3}: node 2 is closer to 3.
        let g = graph_from_edges(4, &[(0, 1, 1.0), (1, 2, 5.0), (3, 2, 2.0)]);
        let mut eng = DijkstraEngine::new(4);
        let mut dist = vec![Weight::INFINITY; 4];
        let mut src = vec![None; 4];
        eng.run_into(
            &g,
            Direction::Forward,
            [NodeId(0), NodeId(3)],
            Weight::INFINITY,
            &mut dist,
            &mut src,
        );
        assert_eq!(dist[2], Weight::new(2.0));
        assert_eq!(src[2], Some(NodeId(3)));
        assert_eq!(src[1], Some(NodeId(0)));
        assert_eq!(src[0], Some(NodeId(0)));
    }

    #[test]
    fn engine_reuse_across_runs() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let d1 = eng.distances(&g, Direction::Forward, NodeId(0));
        let d2 = eng.distances(&g, Direction::Forward, NodeId(2));
        assert_eq!(d1[3], Weight::new(7.0));
        assert_eq!(d2[3], Weight::new(4.0));
        assert!(!d2[0].is_finite());
        // And a third run still agrees with a fresh engine.
        let d3 = eng.distances(&g, Direction::Reverse, NodeId(3));
        let d3_fresh = shortest_distances(&g, Direction::Reverse, NodeId(3));
        assert_eq!(d3, d3_fresh);
    }

    #[test]
    fn settle_order_is_nondecreasing() {
        let g = graph_from_edges(
            5,
            &[
                (0, 1, 3.0),
                (0, 2, 1.0),
                (2, 1, 1.0),
                (1, 3, 1.0),
                (2, 4, 10.0),
            ],
        );
        let mut eng = DijkstraEngine::new(5);
        let mut last = Weight::ZERO;
        eng.run(&g, Direction::Forward, [NodeId(0)], Weight::INFINITY, |s| {
            assert!(s.dist >= last);
            last = s.dist;
        });
    }

    #[test]
    fn zero_weight_cycles_terminate() {
        let g = graph_from_edges(3, &[(0, 1, 0.0), (1, 0, 0.0), (1, 2, 1.0)]);
        let d = shortest_distances(&g, Direction::Forward, NodeId(0));
        assert_eq!(d[1], Weight::ZERO);
        assert_eq!(d[2], Weight::new(1.0));
    }

    #[test]
    fn matches_floyd_warshall_on_grid() {
        // Deterministic pseudo-random sparse graph, checked both directions.
        let n = 40usize;
        let mut edges = Vec::new();
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..200 {
            let u = next() % n as u32;
            let v = next() % n as u32;
            let w = f64::from(next() % 10) + 1.0;
            edges.push((u, v, w));
        }
        let g = graph_from_edges(n, &edges);
        let apsp = all_pairs_shortest(&g, Direction::Forward);
        let mut eng = DijkstraEngine::new(n);
        for s in 0..n as u32 {
            let d = eng.distances(&g, Direction::Forward, NodeId(s));
            for t in 0..n {
                assert_eq!(d[t], apsp[s as usize][t], "mismatch {s}->{t}");
            }
        }
        // Reverse direction equals APSP of the transposed relation.
        let d_rev = eng.distances(&g, Direction::Reverse, NodeId(0));
        for (u, du) in d_rev.iter().enumerate() {
            assert_eq!(*du, apsp[u][0], "reverse mismatch {u}->0");
        }
    }

    #[test]
    fn run_returns_settle_count() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let count = eng.run(
            &g,
            Direction::Forward,
            [NodeId(0)],
            Weight::new(3.0),
            |_| {},
        );
        assert_eq!(count, 3);
    }

    #[test]
    fn guarded_run_matches_unguarded_when_untripped() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let mut a = Vec::new();
        eng.run(&g, Direction::Forward, [NodeId(0)], Weight::INFINITY, |s| {
            a.push(s)
        });
        let mut b = Vec::new();
        let n = eng
            .run_guarded(
                &g,
                Direction::Forward,
                [NodeId(0)],
                Weight::INFINITY,
                &RunGuard::new(),
                |s| b.push(s),
            )
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(n, a.len());
    }

    #[test]
    fn guarded_run_stops_at_settled_budget_with_prefix_output() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let mut full = Vec::new();
        eng.run(&g, Direction::Forward, [NodeId(0)], Weight::INFINITY, |s| {
            full.push(s)
        });
        for budget in 0..full.len() as u64 {
            let guard = RunGuard::new().with_settled_budget(budget);
            let mut part = Vec::new();
            let err = eng
                .run_guarded(
                    &g,
                    Direction::Forward,
                    [NodeId(0)],
                    Weight::INFINITY,
                    &guard,
                    |s| part.push(s),
                )
                .unwrap_err();
            assert_eq!(err, InterruptReason::SettledBudgetExhausted);
            assert_eq!(part, full[..budget as usize]);
            // The engine stays reusable after an interrupted sweep.
            let d = eng.distances(&g, Direction::Forward, NodeId(0));
            assert_eq!(d[3], Weight::new(7.0));
        }
    }

    #[test]
    fn empty_seed_set() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let count = eng.run(
            &g,
            Direction::Forward,
            std::iter::empty(),
            Weight::INFINITY,
            |_| {},
        );
        assert_eq!(count, 0);
    }
}
