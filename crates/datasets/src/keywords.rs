//! Keyword planting at exact keyword frequencies (KWF).
//!
//! The paper's Tables II–V sweep the *keyword frequency*: the fraction of
//! database tuples containing a query keyword (.0003 … .0015). The real
//! datasets have organic frequencies; our synthetic substitutes plant each
//! benchmark keyword into exactly `round(kwf · total_tuples)` title-bearing
//! tuples, so the KWF axis of Figs. 9–11 is exact rather than approximate.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A keyword to plant and its target frequency.
#[derive(Clone, Debug)]
pub struct PlantSpec {
    /// The keyword token (must not collide with filler vocabulary).
    pub keyword: String,
    /// Target fraction of *all* tuples containing the keyword.
    pub kwf: f64,
    /// Optional topic cluster the keyword concentrates in. Real titles are
    /// topically correlated ("database", "optimization" co-occur in the
    /// same sub-community of authors); planting uniformly at random would
    /// make multi-keyword communities vanishingly rare at small scale.
    pub topic: Option<usize>,
}

/// Plants keywords into a set of title strings.
///
/// `titles` are the mutable titles of the title-bearing tuples (papers /
/// movies); `total_tuples` is the whole database's tuple count, the KWF
/// denominator. Each keyword is appended to `round(kwf · total_tuples)`
/// distinct titles (a title may host several different keywords).
///
/// For a spec with a `topic`, a `co_bias` fraction of its plantings first
/// target titles that already host another keyword of the *same topic*
/// (keyword co-occurrence — "database support environment" is one title),
/// then a `topic_bias` fraction goes to titles whose `title_topics` entry
/// matches, and the remainder is uniform. With `topic: None` (or an empty
/// `title_topics`), planting is uniform.
/// Panics if a keyword needs more host titles than exist.
pub fn plant_keywords(
    titles: &mut [String],
    title_topics: &[usize],
    topic_bias: f64,
    co_bias: f64,
    total_tuples: usize,
    specs: &[PlantSpec],
    seed: u64,
) {
    assert!(title_topics.is_empty() || title_topics.len() == titles.len());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    // Titles already hosting some keyword, per topic cluster.
    let mut hosts_by_topic: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for spec in specs {
        let want = (spec.kwf * total_tuples as f64).round() as usize;
        assert!(
            want <= titles.len(),
            "keyword {:?} at kwf {} needs {} host titles but only {} exist",
            spec.keyword,
            spec.kwf,
            want,
            titles.len()
        );
        let mut chosen: Vec<usize> = Vec::with_capacity(want);
        let mut chosen_set: std::collections::HashSet<usize> =
            std::collections::HashSet::with_capacity(want);
        let push = |chosen: &mut Vec<usize>,
                    chosen_set: &mut std::collections::HashSet<usize>,
                    i: usize| {
            if chosen_set.insert(i) {
                chosen.push(i);
            }
        };
        if let (Some(topic), false) = (spec.topic, title_topics.is_empty()) {
            // 1. Co-occurrence plantings on earlier same-topic hosts.
            if let Some(prior) = hosts_by_topic.get(&topic) {
                let co_n = ((want as f64) * co_bias).round() as usize;
                let mut order = prior.clone();
                order.shuffle(&mut rng);
                for i in order {
                    if chosen.len() >= co_n {
                        break;
                    }
                    push(&mut chosen, &mut chosen_set, i);
                }
            }
            // 2. Topical plantings.
            let in_topic: Vec<usize> = (0..titles.len())
                .filter(|&i| title_topics[i] == topic)
                .collect();
            let topical = (((want as f64) * topic_bias).round() as usize).min(want);
            let mut order = in_topic;
            order.shuffle(&mut rng);
            for i in order {
                if chosen.len() >= topical {
                    break;
                }
                push(&mut chosen, &mut chosen_set, i);
            }
        }
        // 3. Uniform remainder.
        let mut order: Vec<usize> = (0..titles.len()).collect();
        order.shuffle(&mut rng);
        for &i in &order {
            if chosen.len() >= want {
                break;
            }
            push(&mut chosen, &mut chosen_set, i);
        }
        for &i in &chosen {
            titles[i].push(' ');
            titles[i].push_str(&spec.keyword);
        }
        if let Some(topic) = spec.topic {
            hosts_by_topic.entry(topic).or_default().extend(&chosen);
        }
    }
}

/// Filler vocabulary for synthetic titles — deliberately disjoint from
/// every benchmark keyword in `workload`.
pub const FILLER_WORDS: [&str; 24] = [
    "toward",
    "analysis",
    "framework",
    "study",
    "novel",
    "efficient",
    "approach",
    "method",
    "evaluation",
    "using",
    "design",
    "implementation",
    "technique",
    "results",
    "aspects",
    "principles",
    "perspective",
    "survey",
    "revisited",
    "notes",
    "theory",
    "practice",
    "advances",
    "foundations",
];

/// Generates a filler title of 2–6 words.
pub fn filler_title(rng: &mut SmallRng) -> String {
    let len = rng.gen_range(2..=6);
    let mut out = String::new();
    for i in 0..len {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(FILLER_WORDS[rng.gen_range(0..FILLER_WORDS.len())]);
    }
    out
}

/// Samples an index in `0..weights.len()` proportional to `weights + 1`
/// (preferential attachment with add-one smoothing).
pub fn preferential_pick(rng: &mut SmallRng, weights: &[u32], total_plus_n: u64) -> usize {
    debug_assert!(total_plus_n >= weights.len() as u64);
    let mut t = rng.gen_range(0..total_plus_n);
    for (i, &w) in weights.iter().enumerate() {
        let slot = u64::from(w) + 1;
        if t < slot {
            return i;
        }
        t -= slot;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plants_exact_counts() {
        let mut titles: Vec<String> = (0..1000).map(|i| format!("title {i}")).collect();
        let specs = vec![
            PlantSpec {
                keyword: "database".into(),
                kwf: 0.0009,
                topic: None,
            },
            PlantSpec {
                keyword: "fuzzy".into(),
                kwf: 0.0003,
                topic: None,
            },
        ];
        plant_keywords(&mut titles, &[], 0.0, 0.0, 10_000, &specs, 7);
        let count = |kw: &str| {
            titles
                .iter()
                .filter(|t| t.split(' ').any(|w| w == kw))
                .count()
        };
        assert_eq!(count("database"), 9);
        assert_eq!(count("fuzzy"), 3);
    }

    #[test]
    fn planting_is_deterministic() {
        let mk = || {
            let mut titles: Vec<String> = (0..50).map(|i| format!("t{i}")).collect();
            plant_keywords(
                &mut titles,
                &[],
                0.0,
                0.0,
                100,
                &[PlantSpec {
                    keyword: "x".into(),
                    kwf: 0.1,
                    topic: None,
                }],
                42,
            );
            titles
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "host titles")]
    fn overflow_rejected() {
        let mut titles = vec![String::from("only one")];
        plant_keywords(
            &mut titles,
            &[],
            0.0,
            0.0,
            1000,
            &[PlantSpec {
                keyword: "x".into(),
                kwf: 0.5,
                topic: None,
            }],
            1,
        );
    }

    #[test]
    fn filler_never_collides_with_benchmark_keywords() {
        use crate::workload::{DBLP_KEYWORD_GROUPS, IMDB_KEYWORD_GROUPS};
        for group in DBLP_KEYWORD_GROUPS.iter().chain(IMDB_KEYWORD_GROUPS) {
            for kw in group.keywords {
                assert!(
                    !FILLER_WORDS.contains(kw),
                    "benchmark keyword {kw:?} collides with filler vocabulary"
                );
            }
        }
    }

    #[test]
    fn topical_planting_concentrates() {
        let n = 1000;
        let mut titles: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let topics: Vec<usize> = (0..n).map(|i| i % 10).collect();
        plant_keywords(
            &mut titles,
            &topics,
            0.8,
            0.0,
            10_000,
            &[PlantSpec {
                keyword: "clustered".into(),
                kwf: 0.005, // 50 plantings
                topic: Some(3),
            }],
            9,
        );
        let hosts: Vec<usize> = (0..n)
            .filter(|&i| titles[i].split(' ').any(|w| w == "clustered"))
            .collect();
        assert_eq!(hosts.len(), 50);
        let in_topic = hosts.iter().filter(|&&i| topics[i] == 3).count();
        assert!(in_topic >= 40, "only {in_topic}/50 in topic");
    }

    #[test]
    fn co_occurrence_stacks_keywords() {
        let n = 2000;
        let mut titles: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let topics: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let spec = |kw: &str| PlantSpec {
            keyword: kw.into(),
            kwf: 0.02, // 40 plantings each
            topic: Some(1),
        };
        plant_keywords(
            &mut titles,
            &topics,
            0.9,
            0.5,
            2000,
            &[spec("alpha"), spec("beta"), spec("gammaa")],
            11,
        );
        let both = titles
            .iter()
            .filter(|t| {
                let words: Vec<&str> = t.split(' ').collect();
                words.contains(&"alpha") && words.contains(&"beta")
            })
            .count();
        assert!(both >= 10, "only {both} co-occurrences");
    }

    #[test]
    fn preferential_pick_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let weights = [0, 5, 1];
        let total: u64 = weights.iter().map(|&w| u64::from(w) + 1).sum();
        let mut histogram = [0usize; 3];
        for _ in 0..3000 {
            histogram[preferential_pick(&mut rng, &weights, total)] += 1;
        }
        // Index 1 (weight 5+1=6) should dominate index 0 (weight 1).
        assert!(histogram[1] > histogram[0] * 2);
        assert!(histogram.iter().all(|&h| h > 0));
    }

    #[test]
    fn filler_title_shape() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let t = filler_title(&mut rng);
            let words = t.split(' ').count();
            assert!((2..=6).contains(&words), "bad title {t:?}");
        }
    }
}
