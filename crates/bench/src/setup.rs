//! Canonical benchmark datasets: generation + index build + projection.
//!
//! When the `COMM_BENCH_CACHE` environment variable names a directory,
//! the built projection index is persisted there inside a CGPH v2 bundle
//! (graph + keyword map + serialized index) and reloaded on the next run
//! — generation still happens (the relational database itself is not
//! cached) but the index build, the dominant cost at paper scale, is
//! skipped. [`Prepared::index_source`] records which path ran.

use comm_core::{ProjectedQuery, ProjectionIndex};
use comm_datasets::cache::{bundle_path, cache_dir, load_bundle, save_bundle_with_index};
use comm_datasets::workload::{
    query_keywords, KeywordGroup, ParameterGrid, DBLP_GRID, DBLP_KEYWORD_GROUPS, IMDB_GRID,
    IMDB_KEYWORD_GROUPS,
};
use comm_datasets::{generate_dblp, generate_imdb, DblpConfig, GeneratedDataset, ImdbConfig};
use comm_graph::{NodeId, Weight};
use std::path::Path;
use std::time::{Duration, Instant};

/// Where [`Prepared::index`] came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexSource {
    /// Built from scratch this run.
    Built,
    /// Decoded from a cached bundle (`COMM_BENCH_CACHE`).
    Cache,
}

/// A generated dataset with its projection index, ready for queries.
pub struct Prepared {
    /// `"imdb"` or `"dblp"`.
    pub name: &'static str,
    /// The generated database + graph.
    pub dataset: GeneratedDataset,
    /// The parameter grid (Table II / IV).
    pub grid: &'static ParameterGrid,
    /// The keyword buckets (Table III / V).
    pub groups: &'static [KeywordGroup],
    /// The inverted indexes of Sec. VI, built at the grid's maximum Rmax
    /// over every benchmark keyword.
    pub index: ProjectionIndex,
    /// Wall-clock time to build (or decode) the index.
    pub index_build: Duration,
    /// Wall-clock time to generate + materialize the dataset.
    pub generation: Duration,
    /// Whether the index was built fresh or served from the bundle cache.
    pub index_source: IndexSource,
}

/// The scale knob: `quick` shrinks datasets so the full harness runs in
/// well under a minute (used by tests); `full` is the canonical scale used
/// for EXPERIMENTS.md; `paper` is the real datasets' size (DBLP: 4.1M
/// tuples — generation ≈ 1 min; used by `repro --paper`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny datasets for smoke runs.
    Quick,
    /// The canonical benchmark scale.
    Full,
    /// The paper's full dataset scale.
    Paper,
}

/// The canonical IMDB-like configuration (see DESIGN.md's substitutions).
pub fn imdb_config(scale: Scale) -> ImdbConfig {
    match scale {
        Scale::Full => ImdbConfig::default(),
        Scale::Quick => {
            let mut c = ImdbConfig::default().scaled(0.4);
            c.avg_ratings_per_user = 25.0;
            c
        }
        // Tuple-relative KWF planting saturates movie titles at the full
        // MovieLens scale (see EXPERIMENTS.md), so paper-scale runs use
        // DBLP; this arm keeps the canonical IMDB if requested anyway.
        Scale::Paper => ImdbConfig::paper_scale(),
    }
}

/// The canonical DBLP-like configuration.
pub fn dblp_config(scale: Scale) -> DblpConfig {
    match scale {
        Scale::Full => {
            let mut c = DblpConfig::default().scaled(2.0);
            c.co_occurrence = 0.5;
            c
        }
        Scale::Quick => DblpConfig::default().scaled(0.3),
        Scale::Paper => DblpConfig::paper_scale(),
    }
}

impl Prepared {
    /// Generates the IMDB-like benchmark dataset and its index, reusing a
    /// `COMM_BENCH_CACHE`d index when one matches.
    pub fn imdb(scale: Scale) -> Prepared {
        Prepared::imdb_with_cache(scale, cache_dir().as_deref())
    }

    /// [`Prepared::imdb`] with an explicit cache directory (`None`
    /// disables caching; exposed for tests).
    pub fn imdb_with_cache(scale: Scale, cache: Option<&Path>) -> Prepared {
        let t0 = Instant::now();
        let dataset = generate_imdb(&imdb_config(scale));
        let generation = t0.elapsed();
        Prepared::finish(
            "imdb",
            scale,
            dataset,
            generation,
            &IMDB_GRID,
            IMDB_KEYWORD_GROUPS,
            cache,
        )
    }

    /// Generates the DBLP-like benchmark dataset and its index, reusing a
    /// `COMM_BENCH_CACHE`d index when one matches.
    pub fn dblp(scale: Scale) -> Prepared {
        Prepared::dblp_with_cache(scale, cache_dir().as_deref())
    }

    /// [`Prepared::dblp`] with an explicit cache directory (`None`
    /// disables caching; exposed for tests).
    pub fn dblp_with_cache(scale: Scale, cache: Option<&Path>) -> Prepared {
        let t0 = Instant::now();
        let dataset = generate_dblp(&dblp_config(scale));
        let generation = t0.elapsed();
        Prepared::finish(
            "dblp",
            scale,
            dataset,
            generation,
            &DBLP_GRID,
            DBLP_KEYWORD_GROUPS,
            cache,
        )
    }

    fn finish(
        name: &'static str,
        scale: Scale,
        dataset: GeneratedDataset,
        generation: Duration,
        grid: &'static ParameterGrid,
        groups: &'static [KeywordGroup],
        cache: Option<&Path>,
    ) -> Prepared {
        let rmax = Weight::new(*grid.rmax.last().expect("non-empty rmax grid"));
        let key = format!("{name}-{scale:?}-bench").to_lowercase();
        let t0 = Instant::now();
        if let Some(index) = cache.and_then(|dir| Self::cached_index(dir, &key, &dataset, rmax)) {
            return Prepared {
                name,
                dataset,
                grid,
                groups,
                index,
                index_build: t0.elapsed(),
                generation,
                index_source: IndexSource::Cache,
            };
        }
        let entries: Vec<(&str, &[NodeId])> = groups
            .iter()
            .flat_map(|g| {
                g.keywords
                    .iter()
                    .map(|&kw| (kw, dataset.graph.keyword_nodes(kw)))
            })
            .collect();
        let index = ProjectionIndex::build(&dataset.graph.graph, entries.iter().copied(), rmax);
        let index_build = t0.elapsed();
        if let Some(dir) = cache {
            // Best-effort persistence: an unwritable cache directory
            // degrades to rebuild-next-time, never to a failed run.
            if std::fs::create_dir_all(dir).is_ok() {
                save_bundle_with_index(
                    bundle_path(dir, &key),
                    &dataset.graph.graph,
                    entries.iter().copied(),
                    Some(&index.encode()),
                )
                .ok();
            }
        }
        Prepared {
            name,
            dataset,
            grid,
            groups,
            index,
            index_build,
            generation,
            index_source: IndexSource::Built,
        }
    }

    /// Tries to decode a cached projection index for `key`, validating it
    /// against the freshly generated dataset. Any mismatch (different
    /// radius, different graph size, corrupt file) silently falls back to
    /// a rebuild, which overwrites the stale bundle.
    fn cached_index(
        dir: &Path,
        key: &str,
        dataset: &GeneratedDataset,
        rmax: Weight,
    ) -> Option<ProjectionIndex> {
        let bundle = load_bundle(bundle_path(dir, key)).ok()?;
        if bundle.graph.node_count() != dataset.graph.graph.node_count()
            || bundle.graph.edge_count() != dataset.graph.graph.edge_count()
        {
            return None;
        }
        let index = ProjectionIndex::decode(bundle.index_blob.as_deref()?).ok()?;
        (index.radius() == rmax).then_some(index)
    }

    /// The query keywords for a KWF bucket and keyword count.
    pub fn keywords(&self, kwf: f64, l: usize) -> Vec<&'static str> {
        query_keywords(self.groups, kwf, l)
    }

    /// Projects the query subgraph for a grid cell (Algorithm 6), exactly
    /// as Sec. VII does before running any algorithm.
    pub fn project(&self, kwf: f64, l: usize, rmax: f64) -> ProjectedQuery {
        let kws = self.keywords(kwf, l);
        self.index
            .project(&kws, Weight::new(rmax))
            .expect("benchmark keywords are always indexed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_imdb_prepares_and_projects() {
        let p = Prepared::imdb(Scale::Quick);
        assert!(p.dataset.graph.graph.node_count() > 1000);
        let (kwf, l, rmax, _) = p.grid.defaults;
        let pq = p.project(kwf, l, rmax);
        assert!(pq.projected.graph.node_count() > 0);
        assert!(pq.projected.graph.node_count() < p.dataset.graph.graph.node_count());
        assert_eq!(pq.spec.l(), l);
    }

    #[test]
    fn quick_dblp_prepares_and_projects() {
        let p = Prepared::dblp(Scale::Quick);
        let (kwf, l, rmax, _) = p.grid.defaults;
        let pq = p.project(kwf, l, rmax);
        assert!(pq.projected.graph.node_count() < p.dataset.graph.graph.node_count());
    }

    #[test]
    fn warm_cache_skips_the_index_build_and_projects_identically() {
        let dir = std::env::temp_dir().join(format!(
            "comm_bench_setup_warm_{}_{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let cold = Prepared::dblp_with_cache(Scale::Quick, Some(&dir));
        assert_eq!(cold.index_source, IndexSource::Built);
        let warm = Prepared::dblp_with_cache(Scale::Quick, Some(&dir));
        assert_eq!(warm.index_source, IndexSource::Cache);

        let (kwf, l, rmax, _) = cold.grid.defaults;
        let a = cold.project(kwf, l, rmax);
        let b = warm.project(kwf, l, rmax);
        assert_eq!(
            a.projected.graph.node_count(),
            b.projected.graph.node_count()
        );
        assert_eq!(
            a.projected.graph.edge_count(),
            b.projected.graph.edge_count()
        );
        assert_eq!(a.projected.original_ids, b.projected.original_ids);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_cache_entry_falls_back_to_a_rebuild() {
        let dir = std::env::temp_dir().join(format!(
            "comm_bench_setup_stale_{}_{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        // A corrupt bundle under the key the run will use must be repaired.
        std::fs::write(
            comm_datasets::cache::bundle_path(&dir, "dblp-quick-bench"),
            b"junk",
        )
        .unwrap();
        let p = Prepared::dblp_with_cache(Scale::Quick, Some(&dir));
        assert_eq!(p.index_source, IndexSource::Built);
        let again = Prepared::dblp_with_cache(Scale::Quick, Some(&dir));
        assert_eq!(again.index_source, IndexSource::Cache);
        std::fs::remove_dir_all(&dir).ok();
    }
}
