//! The benchmark parameter grids and keyword sets of Tables II–V.

/// One KWF bucket with its benchmark keywords (Tables III and V).
#[derive(Clone, Copy, Debug)]
pub struct KeywordGroup {
    /// The keyword frequency of every keyword in this bucket.
    pub kwf: f64,
    /// The keywords the paper queries at this frequency.
    pub keywords: &'static [&'static str],
}

/// Table III: the DBLP keyword buckets.
pub const DBLP_KEYWORD_GROUPS: &[KeywordGroup] = &[
    KeywordGroup {
        kwf: 0.0003,
        keywords: &["scalable", "protocols", "distance", "discovery"],
    },
    KeywordGroup {
        kwf: 0.0006,
        keywords: &["space", "graph", "routing", "scheme"],
    },
    KeywordGroup {
        kwf: 0.0009,
        keywords: &[
            "environment",
            "database",
            "support",
            "development",
            "optimization",
            "fuzzy",
        ],
    },
    KeywordGroup {
        kwf: 0.0012,
        keywords: &["dynamic", "application", "modeling", "logic"],
    },
    KeywordGroup {
        kwf: 0.0015,
        keywords: &["web", "parallel", "control", "algorithms"],
    },
];

/// Table V: the IMDB keyword buckets.
pub const IMDB_KEYWORD_GROUPS: &[KeywordGroup] = &[
    KeywordGroup {
        kwf: 0.0003,
        keywords: &["summer", "bride", "game", "dream"],
    },
    KeywordGroup {
        kwf: 0.0006,
        keywords: &["friday", "heaven", "street", "party"],
    },
    KeywordGroup {
        kwf: 0.0009,
        keywords: &["star", "death", "all", "girl", "lost", "blood"],
    },
    KeywordGroup {
        kwf: 0.0012,
        keywords: &["city", "american", "blue", "world"],
    },
    KeywordGroup {
        kwf: 0.0015,
        keywords: &["night", "story", "king", "house"],
    },
];

/// The parameter grid of Table II (DBLP) / Table IV (IMDB).
#[derive(Clone, Debug)]
pub struct ParameterGrid {
    /// KWF sweep values.
    pub kwf: &'static [f64],
    /// Number-of-keywords sweep.
    pub l: &'static [usize],
    /// Radius sweep.
    pub rmax: &'static [f64],
    /// Top-k sweep.
    pub k: &'static [usize],
    /// Defaults: (kwf, l, rmax, k).
    pub defaults: (f64, usize, f64, usize),
}

/// Table II: DBLP parameters.
pub const DBLP_GRID: ParameterGrid = ParameterGrid {
    kwf: &[0.0003, 0.0006, 0.0009, 0.0012, 0.0015],
    l: &[2, 3, 4, 5, 6],
    rmax: &[4.0, 5.0, 6.0, 7.0, 8.0],
    k: &[50, 100, 150, 200, 250],
    defaults: (0.0009, 4, 6.0, 150),
};

/// Table IV: IMDB parameters.
pub const IMDB_GRID: ParameterGrid = ParameterGrid {
    kwf: &[0.0003, 0.0006, 0.0009, 0.0012, 0.0015],
    l: &[2, 3, 4, 5, 6],
    rmax: &[9.0, 10.0, 11.0, 12.0, 13.0],
    k: &[50, 100, 150, 200, 250],
    defaults: (0.0009, 4, 11.0, 150),
};

/// Selects the `l` query keywords for a KWF bucket, as the paper does:
/// take them from that bucket's keyword set (cycling if `l` exceeds the
/// bucket size, which only happens for l = 5, 6 on 4-keyword buckets).
pub fn query_keywords(groups: &[KeywordGroup], kwf: f64, l: usize) -> Vec<&'static str> {
    let group = groups
        .iter()
        .find(|g| (g.kwf - kwf).abs() < 1e-12)
        // xtask-allow: no_panics — the kwf grid is a compile-time constant; a miss is a caller bug
        .unwrap_or_else(|| panic!("no keyword group at kwf {kwf}"));
    (0..l)
        .map(|i| group.keywords[i % group.keywords.len()])
        .collect()
}

/// Every distinct benchmark keyword with its KWF, planted uniformly.
pub fn all_plant_specs(groups: &[KeywordGroup]) -> Vec<crate::keywords::PlantSpec> {
    groups
        .iter()
        .flat_map(|g| {
            g.keywords.iter().map(|&k| crate::keywords::PlantSpec {
                keyword: k.to_owned(),
                kwf: g.kwf,
                topic: None,
            })
        })
        .collect()
}

/// Like [`all_plant_specs`], but every keyword of KWF bucket `i`
/// concentrates in topic cluster `i` — the topical correlation real titles
/// exhibit (queries combine keywords from one bucket, and those co-occur
/// in one research sub-community).
pub fn topical_plant_specs(groups: &[KeywordGroup]) -> Vec<crate::keywords::PlantSpec> {
    groups
        .iter()
        .enumerate()
        .flat_map(|(i, g)| {
            g.keywords.iter().map(move |&k| crate::keywords::PlantSpec {
                keyword: k.to_owned(),
                kwf: g.kwf,
                topic: Some(i),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_tables() {
        assert_eq!(DBLP_GRID.defaults, (0.0009, 4, 6.0, 150));
        assert_eq!(IMDB_GRID.defaults, (0.0009, 4, 11.0, 150));
        assert_eq!(DBLP_GRID.rmax, &[4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(IMDB_GRID.rmax, &[9.0, 10.0, 11.0, 12.0, 13.0]);
        assert_eq!(DBLP_KEYWORD_GROUPS.len(), 5);
        assert_eq!(IMDB_KEYWORD_GROUPS.len(), 5);
    }

    #[test]
    fn default_bucket_supports_l_6() {
        // The .0009 buckets have six keywords so the l-sweep never cycles
        // at the default KWF.
        let q = query_keywords(DBLP_KEYWORD_GROUPS, 0.0009, 6);
        assert_eq!(q.len(), 6);
        let dedup: std::collections::BTreeSet<_> = q.iter().collect();
        assert_eq!(dedup.len(), 6);
    }

    #[test]
    fn cycling_for_small_buckets() {
        let q = query_keywords(DBLP_KEYWORD_GROUPS, 0.0003, 6);
        assert_eq!(q[4], q[0]);
        assert_eq!(q[5], q[1]);
    }

    #[test]
    fn plant_specs_cover_all_keywords() {
        let specs = all_plant_specs(IMDB_KEYWORD_GROUPS);
        assert_eq!(
            specs.len(),
            IMDB_KEYWORD_GROUPS
                .iter()
                .map(|g| g.keywords.len())
                .sum::<usize>()
        );
    }

    #[test]
    #[should_panic(expected = "no keyword group")]
    fn unknown_kwf_panics() {
        query_keywords(DBLP_KEYWORD_GROUPS, 0.5, 2);
    }
}
