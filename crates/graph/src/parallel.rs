//! Deterministic fork–join parallelism for data-independent sweeps.
//!
//! [`Parallelism`] is an explicit thread-count config plus a small scoped-
//! thread executor ([`map`](Parallelism::map) / [`map_init`](Parallelism::map_init)).
//! It is built on `std::thread::scope` only — no external runtime — so the
//! workspace stays dependency-free and `Parallelism::serial()` is a true
//! inline fallback: with one thread every task runs on the calling thread,
//! in order, with zero synchronization.
//!
//! Results are returned **by task index**, never by completion order, so a
//! parallel run observes the same outputs as the serial one whenever the
//! tasks themselves are deterministic and independent. That is the
//! contract the parallel `Neighbor()` / projection-build paths in
//! `comm-core` rely on for bit-identical serial/parallel results.
//!
//! Cancellation composes through [`RunGuard`](crate::RunGuard): guards are
//! `Sync` and clones share one trip flag, so handing the same guard to
//! every task makes a single trip (deadline, budget, cancel) interrupt all
//! in-flight sweeps at their next per-node check.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Conventional env var pinning the worker count (`RAYON_NUM_THREADS`),
/// honored by [`Parallelism::auto`] so CI lanes can force determinism
/// without code changes.
pub const THREADS_ENV: &str = "RAYON_NUM_THREADS";

/// See [`pool::lock`](crate::pool): the task/result slots protect no
/// cross-field invariants, so a poisoned mutex is safe to recover.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An explicit thread-count configuration for the parallel sweep paths.
///
/// * [`Parallelism::serial`] (1 thread) runs tasks inline on the calling
///   thread — the exact historical code path, usable under Miri;
/// * [`Parallelism::new`]`(n)` uses up to `n` worker threads;
/// * [`Parallelism::auto`] uses `RAYON_NUM_THREADS` if set, otherwise all
///   available cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// One thread: every task runs inline, in order, on the caller.
    pub fn serial() -> Parallelism {
        Parallelism { threads: 1 }
    }

    /// Up to `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Parallelism {
        Parallelism {
            threads: threads.max(1),
        }
    }

    /// [`THREADS_ENV`] if set to a positive integer, else available cores,
    /// else serial.
    pub fn auto() -> Parallelism {
        if let Some(n) = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
        {
            return Parallelism::new(n);
        }
        Parallelism::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The configured worker count (≥ 1).
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Whether this config runs tasks inline on the calling thread.
    pub fn is_serial(self) -> bool {
        self.threads == 1
    }

    /// Runs every task and returns the results in task order.
    ///
    /// With one thread (or one task) the tasks run inline, sequentially.
    /// Otherwise `min(threads, tasks)` scoped workers pull tasks from a
    /// shared cursor; results land in their task's slot, so the output
    /// order is independent of scheduling. A panicking task propagates to
    /// the caller once all workers have stopped (via `std::thread::scope`).
    pub fn map<T, F>(self, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        self.map_init(
            || (),
            tasks
                .into_iter()
                .map(|f| move |_state: &mut ()| f())
                .collect(),
        )
    }

    /// Like [`map`](Self::map), with per-worker scratch state built by
    /// `init` — e.g. a [`PooledEngine`](crate::PooledEngine) borrowed once
    /// per worker instead of once per task.
    pub fn map_init<S, T, F>(self, init: impl Fn() -> S + Sync, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce(&mut S) -> T + Send,
        T: Send,
    {
        let n_tasks = tasks.len();
        let workers = self.threads.min(n_tasks);
        if workers <= 1 {
            let mut state = init();
            return tasks.into_iter().map(|f| f(&mut state)).collect();
        }
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        let task = lock(&slots[i]).take();
                        if let Some(f) = task {
                            let out = f(&mut state);
                            *lock(&results[i]) = Some(out);
                        }
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                lock(&slot)
                    .take()
                    // xtask-allow: no_panics — a task that failed to fill its slot panicked, and scope() already propagated that panic
                    .expect("every task index was claimed and completed")
            })
            .collect()
    }
}

impl Default for Parallelism {
    /// The default is [`auto`](Self::auto): all cores (or the env pin).
    fn default() -> Parallelism {
        Parallelism::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn thread_counts_clamp() {
        assert_eq!(Parallelism::serial().threads(), 1);
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(4).threads(), 4);
        assert!(!Parallelism::new(4).is_serial());
        assert!(Parallelism::auto().threads() >= 1);
        assert!(Parallelism::default().threads() >= 1);
    }

    #[test]
    fn map_preserves_task_order() {
        for par in [
            Parallelism::serial(),
            Parallelism::new(2),
            Parallelism::new(8),
        ] {
            let tasks: Vec<_> = (0..37u64).map(|i| move || i * i).collect();
            let got = par.map(tasks);
            let expect: Vec<u64> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, expect, "threads={}", par.threads());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let par = Parallelism::new(4);
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(par.map(empty).is_empty());
        assert_eq!(par.map(vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn map_init_builds_one_state_per_worker() {
        let builds = AtomicU64::new(0);
        let par = Parallelism::new(3);
        let tasks: Vec<_> = (0..64u64).map(|i| move |s: &mut u64| i + *s * 0).collect();
        let out = par.map_init(
            || {
                builds.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            tasks,
        );
        assert_eq!(out, (0..64).collect::<Vec<u64>>());
        let built = builds.load(Ordering::Relaxed);
        assert!(
            (1..=3).contains(&built),
            "one state per live worker, got {built}"
        );
    }

    #[test]
    fn serial_map_init_reuses_single_state() {
        let par = Parallelism::serial();
        let tasks: Vec<_> = (0..5u64)
            .map(|_| {
                |s: &mut u64| {
                    *s += 1;
                    *s
                }
            })
            .collect();
        // Inline execution threads one state through all tasks, in order.
        assert_eq!(par.map_init(|| 0u64, tasks), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn more_threads_than_tasks() {
        let par = Parallelism::new(16);
        let tasks: Vec<_> = (0..3u32).map(|i| move || i).collect();
        assert_eq!(par.map(tasks), vec![0, 1, 2]);
    }

    #[test]
    fn guard_trip_is_visible_across_tasks() {
        use crate::guard::{InterruptReason, RunGuard};
        let guard = RunGuard::new();
        let par = Parallelism::new(4);
        guard.cancel();
        let g = &guard;
        let tasks: Vec<_> = (0..8).map(|_| move || g.check().err()).collect();
        for r in par.map(tasks) {
            assert_eq!(r, Some(InterruptReason::Cancelled));
        }
    }
}
