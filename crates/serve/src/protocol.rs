//! The length-prefixed binary wire protocol.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by exactly that many payload bytes. Frames are capped at
//! [`MAX_FRAME_BYTES`] so a corrupt or hostile length prefix cannot make
//! the peer allocate unbounded memory. Inside the payload, all integers
//! are little-endian, strings are `u16` length + UTF-8 bytes, and costs
//! travel as raw `f64` bit patterns (`f64::to_bits`) so the cached-answer
//! contract — *bit-identical* replies for identical queries — survives
//! serialization.
//!
//! Request payload layout:
//!
//! ```text
//! u8 version | u8 kind | u64 request-id | kind-specific body
//! Query body: u8 priority | u16 #keywords | (u16 len, bytes)* | u64 rmax-bits | u32 k
//! ```
//!
//! Response payload layout:
//!
//! ```text
//! u8 version | u8 status | u64 request-id (echo) | status-specific body
//! ```
//!
//! Decoding is strict: unknown versions/kinds, truncated bodies, and
//! trailing garbage are all [`ProtocolError`]s, never partial parses — the
//! same contract the graph loader's truncated-frame corpus enforces.

use std::fmt;
use std::io::{self, Read, Write};

/// Wire protocol version.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on a frame payload (16 MiB).
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Request priority: maps server-side to RunGuard deadlines and budgets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Best-effort: half the normal deadline and budgets.
    Low,
    /// The default service level.
    Normal,
    /// Latency-tolerant but answer-critical: double deadline/budgets.
    High,
}

impl Priority {
    fn code(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    fn from_code(b: u8) -> Result<Priority, ProtocolError> {
        match b {
            0 => Ok(Priority::Low),
            1 => Ok(Priority::Normal),
            2 => Ok(Priority::High),
            _ => Err(ProtocolError::BadPriority(b)),
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        })
    }
}

/// A client → server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run (or replay from cache) a top-k community query.
    Query {
        /// Idempotency key: retries reuse the id, the server replays the
        /// recorded reply instead of re-executing.
        id: u64,
        /// Service level, mapped to RunGuard limits by admission control.
        priority: Priority,
        /// Query keywords (resolved to node sets server-side).
        keywords: Vec<String>,
        /// The radius bound `Rmax`.
        rmax: f64,
        /// How many top-ranked communities to return.
        k: u32,
    },
    /// Liveness probe.
    Ping {
        /// Echoed back in the `Pong`.
        id: u64,
    },
    /// Snapshot the server counters.
    Stats {
        /// Echoed back in the reply.
        id: u64,
    },
    /// Ask the daemon to stop accepting connections and exit.
    Shutdown {
        /// Echoed back in the reply.
        id: u64,
    },
}

impl Request {
    /// The request id (every request carries one).
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// One community in a reply: the core, its cost (raw bits), and the
/// member breakdown. Node ids refer to the server's graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommunitySummary {
    /// The core `C = [c_1, …, c_l]`.
    pub core: Vec<u32>,
    /// `cost(R)` as raw `f64` bits — bit-identical across cache replays.
    pub cost_bits: u64,
    /// The community's centers.
    pub centers: Vec<u32>,
    /// Total nodes in the community subgraph.
    pub node_count: u32,
    /// Total edges in the community subgraph.
    pub edge_count: u32,
}

/// A server → client message. The `id` always echoes the request.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The full top-k answer.
    Complete {
        /// Echo of the request id.
        id: u64,
        /// The ranked communities.
        communities: Vec<CommunitySummary>,
    },
    /// The guard tripped; `communities` is a certified exact prefix of the
    /// complete answer (possibly empty when the trip hit the projection).
    Interrupted {
        /// Echo of the request id.
        id: u64,
        /// Why the run was cut short (display form of `InterruptReason`).
        reason: String,
        /// The exact ranked prefix produced before the trip.
        communities: Vec<CommunitySummary>,
    },
    /// Admission control shed the request without executing it.
    Overloaded {
        /// Echo of the request id.
        id: u64,
        /// Suggested client back-off before retrying.
        retry_after_ms: u32,
    },
    /// The request was rejected (bad keywords, bad radius, …).
    Error {
        /// Echo of the request id.
        id: u64,
        /// Human-readable rejection reason.
        message: String,
    },
    /// Reply to [`Request::Ping`].
    Pong {
        /// Echo of the request id.
        id: u64,
    },
    /// Reply to [`Request::Stats`]: named counter snapshot.
    Stats {
        /// Echo of the request id.
        id: u64,
        /// `(counter name, value)` pairs.
        counters: Vec<(String, u64)>,
    },
    /// Reply to [`Request::Shutdown`].
    ShuttingDown {
        /// Echo of the request id.
        id: u64,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Complete { id, .. }
            | Response::Interrupted { id, .. }
            | Response::Overloaded { id, .. }
            | Response::Error { id, .. }
            | Response::Pong { id }
            | Response::Stats { id, .. }
            | Response::ShuttingDown { id } => *id,
        }
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed (includes timeouts and EOF).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge(u32),
    /// The payload declared a protocol version this build does not speak.
    BadVersion(u8),
    /// Unknown request/response discriminant.
    BadKind(u8),
    /// Unknown priority byte.
    BadPriority(u8),
    /// The payload ended before the declared structure did.
    Truncated,
    /// The payload has bytes left over after the declared structure.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A variable-length field exceeds its length-prefix type.
    FieldTooLong(usize),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::FrameTooLarge(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            ProtocolError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::BadKind(k) => write!(f, "unknown message kind {k}"),
            ProtocolError::BadPriority(p) => write!(f, "unknown priority {p}"),
            ProtocolError::Truncated => write!(f, "payload truncated mid-structure"),
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtocolError::FieldTooLong(n) => {
                write!(f, "field of {n} elements exceeds its length prefix")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> ProtocolError {
        ProtocolError::Io(e)
    }
}

impl ProtocolError {
    /// Whether this error came from the transport (retryable) rather than
    /// from malformed bytes (not retryable).
    pub fn is_transport(&self) -> bool {
        matches!(self, ProtocolError::Io(_))
    }
}

// ---- primitive encoding ------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), ProtocolError> {
    let len = u16::try_from(s.len()).map_err(|_| ProtocolError::FieldTooLong(s.len()))?;
    put_u16(buf, len);
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_u32_slice(buf: &mut Vec<u8>, xs: &[u32]) -> Result<(), ProtocolError> {
    let len = u32::try_from(xs.len()).map_err(|_| ProtocolError::FieldTooLong(xs.len()))?;
    put_u32(buf, len);
    for &x in xs {
        put_u32(buf, x);
    }
    Ok(())
}

// ---- primitive decoding ------------------------------------------------

/// A strict, bounds-checked reader over one frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtocolError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        // xtask-allow: no_panics — take(2) returned exactly 2 bytes
        Ok(u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        // xtask-allow: no_panics — take(4) returned exactly 4 bytes
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        // xtask-allow: no_panics — take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, ProtocolError> {
        let len = self.u32()?;
        // Pre-check against the remaining payload before allocating, so a
        // hostile length cannot force an oversized reservation.
        let len = usize::try_from(len).map_err(|_| ProtocolError::Truncated)?;
        if len.saturating_mul(4) > self.buf.len() - self.pos {
            return Err(ProtocolError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::TrailingBytes(self.buf.len() - self.pos));
        }
        Ok(())
    }
}

// ---- framing -----------------------------------------------------------

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    let len =
        u32::try_from(payload.len()).map_err(|_| ProtocolError::FieldTooLong(payload.len()))?;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame payload, enforcing the [`MAX_FRAME_BYTES`] cap before
/// allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtocolError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let len = usize::try_from(len).map_err(|_| ProtocolError::FrameTooLarge(u32::MAX))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---- request encode/decode ---------------------------------------------

const KIND_QUERY: u8 = 1;
const KIND_PING: u8 = 2;
const KIND_STATS: u8 = 3;
const KIND_SHUTDOWN: u8 = 4;

/// Encodes a request into a frame payload.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, ProtocolError> {
    let mut buf = Vec::with_capacity(64);
    buf.push(PROTOCOL_VERSION);
    match req {
        Request::Query {
            id,
            priority,
            keywords,
            rmax,
            k,
        } => {
            buf.push(KIND_QUERY);
            put_u64(&mut buf, *id);
            buf.push(priority.code());
            let count = u16::try_from(keywords.len())
                .map_err(|_| ProtocolError::FieldTooLong(keywords.len()))?;
            put_u16(&mut buf, count);
            for kw in keywords {
                put_str(&mut buf, kw)?;
            }
            put_u64(&mut buf, rmax.to_bits());
            put_u32(&mut buf, *k);
        }
        Request::Ping { id } => {
            buf.push(KIND_PING);
            put_u64(&mut buf, *id);
        }
        Request::Stats { id } => {
            buf.push(KIND_STATS);
            put_u64(&mut buf, *id);
        }
        Request::Shutdown { id } => {
            buf.push(KIND_SHUTDOWN);
            put_u64(&mut buf, *id);
        }
    }
    Ok(buf)
}

/// Decodes a request frame payload (strict: trailing bytes are an error).
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::BadVersion(version));
    }
    let kind = c.u8()?;
    let id = c.u64()?;
    let req = match kind {
        KIND_QUERY => {
            let priority = Priority::from_code(c.u8()?)?;
            let count = usize::from(c.u16()?);
            let mut keywords = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                keywords.push(c.string()?);
            }
            let rmax = f64::from_bits(c.u64()?);
            let k = c.u32()?;
            Request::Query {
                id,
                priority,
                keywords,
                rmax,
                k,
            }
        }
        KIND_PING => Request::Ping { id },
        KIND_STATS => Request::Stats { id },
        KIND_SHUTDOWN => Request::Shutdown { id },
        other => return Err(ProtocolError::BadKind(other)),
    };
    c.finish()?;
    Ok(req)
}

// ---- response encode/decode --------------------------------------------

const STATUS_COMPLETE: u8 = 0;
const STATUS_INTERRUPTED: u8 = 1;
const STATUS_OVERLOADED: u8 = 2;
const STATUS_ERROR: u8 = 3;
const STATUS_PONG: u8 = 4;
const STATUS_STATS: u8 = 5;
const STATUS_SHUTTING_DOWN: u8 = 6;

fn put_communities(buf: &mut Vec<u8>, cs: &[CommunitySummary]) -> Result<(), ProtocolError> {
    let count = u32::try_from(cs.len()).map_err(|_| ProtocolError::FieldTooLong(cs.len()))?;
    put_u32(buf, count);
    for c in cs {
        put_u32_slice(buf, &c.core)?;
        put_u64(buf, c.cost_bits);
        put_u32_slice(buf, &c.centers)?;
        put_u32(buf, c.node_count);
        put_u32(buf, c.edge_count);
    }
    Ok(())
}

fn take_communities(c: &mut Cursor<'_>) -> Result<Vec<CommunitySummary>, ProtocolError> {
    let count = c.u32()?;
    let count = usize::try_from(count).map_err(|_| ProtocolError::Truncated)?;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        out.push(CommunitySummary {
            core: c.u32_vec()?,
            cost_bits: c.u64()?,
            centers: c.u32_vec()?,
            node_count: c.u32()?,
            edge_count: c.u32()?,
        });
    }
    Ok(out)
}

/// Encodes a response into a frame payload.
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, ProtocolError> {
    let mut buf = Vec::with_capacity(64);
    buf.push(PROTOCOL_VERSION);
    match resp {
        Response::Complete { id, communities } => {
            buf.push(STATUS_COMPLETE);
            put_u64(&mut buf, *id);
            put_communities(&mut buf, communities)?;
        }
        Response::Interrupted {
            id,
            reason,
            communities,
        } => {
            buf.push(STATUS_INTERRUPTED);
            put_u64(&mut buf, *id);
            put_str(&mut buf, reason)?;
            put_communities(&mut buf, communities)?;
        }
        Response::Overloaded { id, retry_after_ms } => {
            buf.push(STATUS_OVERLOADED);
            put_u64(&mut buf, *id);
            put_u32(&mut buf, *retry_after_ms);
        }
        Response::Error { id, message } => {
            buf.push(STATUS_ERROR);
            put_u64(&mut buf, *id);
            put_str(&mut buf, message)?;
        }
        Response::Pong { id } => {
            buf.push(STATUS_PONG);
            put_u64(&mut buf, *id);
        }
        Response::Stats { id, counters } => {
            buf.push(STATUS_STATS);
            put_u64(&mut buf, *id);
            let count = u32::try_from(counters.len())
                .map_err(|_| ProtocolError::FieldTooLong(counters.len()))?;
            put_u32(&mut buf, count);
            for (name, value) in counters {
                put_str(&mut buf, name)?;
                put_u64(&mut buf, *value);
            }
        }
        Response::ShuttingDown { id } => {
            buf.push(STATUS_SHUTTING_DOWN);
            put_u64(&mut buf, *id);
        }
    }
    Ok(buf)
}

/// Decodes a response frame payload (strict: trailing bytes are an error).
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::BadVersion(version));
    }
    let status = c.u8()?;
    let id = c.u64()?;
    let resp = match status {
        STATUS_COMPLETE => Response::Complete {
            id,
            communities: take_communities(&mut c)?,
        },
        STATUS_INTERRUPTED => {
            let reason = c.string()?;
            Response::Interrupted {
                id,
                reason,
                communities: take_communities(&mut c)?,
            }
        }
        STATUS_OVERLOADED => Response::Overloaded {
            id,
            retry_after_ms: c.u32()?,
        },
        STATUS_ERROR => Response::Error {
            id,
            message: c.string()?,
        },
        STATUS_PONG => Response::Pong { id },
        STATUS_STATS => {
            let count = c.u32()?;
            let count = usize::try_from(count).map_err(|_| ProtocolError::Truncated)?;
            let mut counters = Vec::with_capacity(count.min(256));
            for _ in 0..count {
                let name = c.string()?;
                let value = c.u64()?;
                counters.push((name, value));
            }
            Response::Stats { id, counters }
        }
        STATUS_SHUTTING_DOWN => Response::ShuttingDown { id },
        other => return Err(ProtocolError::BadKind(other)),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let payload = encode_request(&req).unwrap();
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let payload = encode_response(&resp).unwrap();
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    fn sample_communities() -> Vec<CommunitySummary> {
        vec![
            CommunitySummary {
                core: vec![4, 13, 2],
                cost_bits: 7.5f64.to_bits(),
                centers: vec![1, 2],
                node_count: 9,
                edge_count: 14,
            },
            CommunitySummary {
                core: vec![0, 0, 0],
                cost_bits: f64::INFINITY.to_bits(),
                centers: vec![],
                node_count: 1,
                edge_count: 0,
            },
        ]
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Query {
            id: u64::MAX,
            priority: Priority::High,
            keywords: vec!["alice".into(), "böb".into(), "".into()],
            rmax: 7.25,
            k: 10,
        });
        roundtrip_request(Request::Ping { id: 0 });
        roundtrip_request(Request::Stats { id: 1 });
        roundtrip_request(Request::Shutdown { id: 2 });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Complete {
            id: 9,
            communities: sample_communities(),
        });
        roundtrip_response(Response::Interrupted {
            id: 10,
            reason: "deadline exceeded".into(),
            communities: sample_communities(),
        });
        roundtrip_response(Response::Overloaded {
            id: 11,
            retry_after_ms: 250,
        });
        roundtrip_response(Response::Error {
            id: 12,
            message: "unknown keyword \"zzz\"".into(),
        });
        roundtrip_response(Response::Pong { id: 13 });
        roundtrip_response(Response::Stats {
            id: 14,
            counters: vec![("requests".into(), 42), ("shed".into(), 7)],
        });
        roundtrip_response(Response::ShuttingDown { id: 15 });
    }

    #[test]
    fn rmax_bits_survive_roundtrip_exactly() {
        for rmax in [0.0, -0.0, 0.1, 1e300, f64::MIN_POSITIVE] {
            let req = Request::Query {
                id: 1,
                priority: Priority::Normal,
                keywords: vec!["a".into()],
                rmax,
                k: 1,
            };
            let payload = encode_request(&req).unwrap();
            match decode_request(&payload).unwrap() {
                Request::Query { rmax: got, .. } => {
                    assert_eq!(got.to_bits(), rmax.to_bits());
                }
                other => panic!("wrong kind: {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_of_a_request_is_a_clean_error() {
        let payload = encode_request(&Request::Query {
            id: 77,
            priority: Priority::Low,
            keywords: vec!["alpha".into(), "beta".into()],
            rmax: 3.5,
            k: 4,
        })
        .unwrap();
        for cut in 0..payload.len() {
            let err =
                decode_request(&payload[..cut]).expect_err("truncated payload must not decode");
            assert!(
                matches!(err, ProtocolError::Truncated | ProtocolError::BadKind(_)),
                "cut at {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn every_truncation_of_a_response_is_a_clean_error() {
        let payload = encode_response(&Response::Interrupted {
            id: 3,
            reason: "settled-node budget exhausted".into(),
            communities: sample_communities(),
        })
        .unwrap();
        for cut in 0..payload.len() {
            assert!(
                decode_response(&payload[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request::Ping { id: 5 }).unwrap();
        payload.push(0);
        assert!(matches!(
            decode_request(&payload),
            Err(ProtocolError::TrailingBytes(1))
        ));
    }

    #[test]
    fn bad_version_kind_priority_are_rejected() {
        let mut payload = encode_request(&Request::Ping { id: 5 }).unwrap();
        payload[0] = 99;
        assert!(matches!(
            decode_request(&payload),
            Err(ProtocolError::BadVersion(99))
        ));
        let mut payload = encode_request(&Request::Ping { id: 5 }).unwrap();
        payload[1] = 200;
        assert!(matches!(
            decode_request(&payload),
            Err(ProtocolError::BadKind(200))
        ));
        let mut payload = encode_request(&Request::Query {
            id: 5,
            priority: Priority::Normal,
            keywords: vec![],
            rmax: 1.0,
            k: 1,
        })
        .unwrap();
        payload[10] = 9; // the priority byte follows version/kind/id
        assert!(matches!(
            decode_request(&payload),
            Err(ProtocolError::BadPriority(9))
        ));
    }

    #[test]
    fn hostile_length_prefix_does_not_overallocate() {
        // A u32-vec claiming 1 billion elements inside a 30-byte payload
        // must fail before reserving gigabytes.
        let mut buf = vec![PROTOCOL_VERSION, STATUS_COMPLETE];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // one community
        buf.extend_from_slice(&1_000_000_000u32.to_le_bytes()); // core len
        assert!(decode_response(&buf).is_err());
    }

    #[test]
    fn frame_io_roundtrips_and_caps() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        let mut reader = &wire[..];
        assert_eq!(read_frame(&mut reader).unwrap(), b"hello");

        // An oversized length prefix is rejected before allocation.
        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        let mut reader = &huge[..];
        assert!(matches!(
            read_frame(&mut reader),
            Err(ProtocolError::FrameTooLarge(_))
        ));

        // A truncated frame body is a clean transport error.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut reader = &wire[..];
        assert!(matches!(read_frame(&mut reader), Err(ProtocolError::Io(_))));
    }
}
