//! Tokenization and the relational full-text index.
//!
//! The paper assumes "the full text index [1]" to map each query keyword
//! `k_i` to the node set `V_i` (Algorithm 1, line 2). We build it over every
//! column marked `full_text` in the schema.

use crate::database::{Database, TupleRef};
use std::collections::HashMap;

/// Splits text into lowercase alphanumeric tokens.
///
/// ```
/// use comm_rdb::tokenize;
/// let toks: Vec<_> = tokenize("Keyword Search, on relational-databases!").collect();
/// assert_eq!(toks, vec!["keyword", "search", "on", "relational", "databases"]);
/// ```
pub fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
}

/// Keyword → tuples containing it, over every full-text column.
#[derive(Default)]
pub struct FullTextIndex {
    postings: HashMap<String, Vec<TupleRef>>,
}

impl FullTextIndex {
    /// Builds the index by scanning the whole database once.
    pub fn build(db: &Database) -> FullTextIndex {
        let mut postings: HashMap<String, Vec<TupleRef>> = HashMap::new();
        for table_id in db.tables() {
            let table = db.table(table_id);
            let ft_cols: Vec<_> = table.schema().full_text_columns().collect();
            if ft_cols.is_empty() {
                continue;
            }
            for row in table.rows() {
                for &col in &ft_cols {
                    if let Some(text) = table.cell(row, col).as_text() {
                        for token in tokenize(text) {
                            let list = postings.entry(token).or_default();
                            let tref = TupleRef {
                                table: table_id,
                                row,
                            };
                            // A tuple mentioning the token twice is posted once.
                            if list.last() != Some(&tref) {
                                list.push(tref);
                            }
                        }
                    }
                }
            }
        }
        for list in postings.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        FullTextIndex { postings }
    }

    /// The tuples containing `keyword` (lowercased exact token match).
    pub fn lookup(&self, keyword: &str) -> &[TupleRef] {
        self.postings
            .get(&keyword.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct indexed keywords.
    pub fn keyword_count(&self) -> usize {
        self.postings.len()
    }

    /// Iterates `(keyword, postings)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[TupleRef])> {
        self.postings
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// The *keyword frequency* of the paper's Tables II–V: the fraction of
    /// all tuples that contain `keyword`.
    pub fn keyword_frequency(&self, keyword: &str, total_tuples: usize) -> f64 {
        if total_tuples == 0 {
            0.0
        } else {
            self.lookup(keyword).len() as f64 / total_tuples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::{ColumnType, Value};

    fn tiny_db() -> Database {
        let mut db = Database::new();
        let t = db.create_table(
            TableSchema::new(
                "Paper",
                vec![
                    ColumnDef::new("Pid", ColumnType::Int),
                    ColumnDef::full_text("Title"),
                ],
            )
            .with_primary_key("Pid"),
        );
        db.insert(
            t,
            &[Value::Int(1), Value::from("Keyword Search in Databases")],
        )
        .unwrap();
        db.insert(
            t,
            &[Value::Int(2), Value::from("Graph search and search trees")],
        )
        .unwrap();
        db.insert(t, &[Value::Int(3), Value::from("Community detection")])
            .unwrap();
        db
    }

    #[test]
    fn tokenizer_basics() {
        let toks: Vec<_> = tokenize("Top-K  queries (fast)").collect();
        assert_eq!(toks, vec!["top", "k", "queries", "fast"]);
        assert_eq!(tokenize("").count(), 0);
        assert_eq!(tokenize("---").count(), 0);
    }

    #[test]
    fn lookup_case_insensitive() {
        let db = tiny_db();
        let idx = FullTextIndex::build(&db);
        assert_eq!(idx.lookup("SEARCH").len(), 2);
        assert_eq!(idx.lookup("search").len(), 2);
        assert_eq!(idx.lookup("community").len(), 1);
        assert_eq!(idx.lookup("missing").len(), 0);
    }

    #[test]
    fn duplicate_token_posted_once() {
        let db = tiny_db();
        let idx = FullTextIndex::build(&db);
        // "search" appears twice in row 2 but is posted once.
        assert_eq!(idx.lookup("search").len(), 2);
    }

    #[test]
    fn keyword_frequency() {
        let db = tiny_db();
        let idx = FullTextIndex::build(&db);
        let f = idx.keyword_frequency("search", db.tuple_count());
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(idx.keyword_frequency("x", 0), 0.0);
    }

    #[test]
    fn keyword_count_and_iter() {
        let db = tiny_db();
        let idx = FullTextIndex::build(&db);
        assert!(idx.keyword_count() >= 7);
        let total: usize = idx.iter().map(|(_, p)| p.len()).sum();
        assert!(total >= idx.keyword_count());
    }
}
