//! The running examples of the paper, reconstructed from the published
//! constraints.
//!
//! # Fig. 4 — the 13-node database graph
//!
//! The paper's figure itself only states `w_e((v1,v2)) = 5` explicitly, but
//! the surrounding text pins the topology down almost completely:
//!
//! * the keyword assignment (`a ∈ {v4,v13}`, `b ∈ {v2,v8}`,
//!   `c ∈ {v3,v6,v9,v11}`);
//! * the three `Rmax = 8` neighbor sets and their intersection (Sec. IV);
//! * all five communities with their cores, centers, and costs
//!   (Table I: 7, 10, 11, 14, 15);
//! * the pinned neighbor sets of the `Next()` walkthrough
//!   (`N1({v4}) = {v1,v4,v5,v7}`, `N2({v8})`, `N3({v6})`,
//!   `N3({v3,v9,v11})`, `N2({v2}) = {v1,v2,v5}`);
//! * `cost(R5)`'s decomposition `11 = (2+3) + 0 + (3+3)` and
//!   `14 = (3+2+3) + 3 + 3`, fixing `v11→v10 = 2`, `v10→v8 = 3`,
//!   `v11↔v12 = 3`, `v12→v13 = 3`;
//! * `GetCommunity([v13,v8,v11])`'s output `V_c = {v11,v12}`,
//!   `V_p = {v10}` (Fig. 7).
//!
//! [`fig4_graph`] satisfies **every** one of those facts; the unit tests in
//! `comm-core` re-verify them mechanically.
//!
//! # Fig. 1 — the co-authorship graph
//!
//! [`fig1_graph`] is the 5-node Kate/Smith example (2 papers, 3 authors)
//! with the author-order edge weights described in the introduction.

use comm_graph::{Graph, GraphBuilder, NodeId, Weight};

/// The three keywords of the paper's running 3-keyword query.
pub const FIG4_KEYWORDS: [&str; 3] = ["a", "b", "c"];

/// The paper's default radius for the running example.
pub const FIG4_RMAX: f64 = 8.0;

/// Builds the Fig. 4 database graph: 14 node ids (node 0 is an isolated
/// placeholder so ids match the paper's 1-based `v1..v13`).
pub fn fig4_graph() -> Graph {
    let mut b = GraphBuilder::new(14);
    for (u, v, w) in FIG4_EDGES {
        b.add_edge(NodeId(u), NodeId(v), Weight::new(w));
    }
    b.build()
}

/// The reconstructed directed, weighted edge list of Fig. 4.
pub const FIG4_EDGES: [(u32, u32, f64); 20] = [
    (1, 2, 5.0), // given in the paper
    (1, 3, 3.0),
    (1, 4, 6.0),
    (5, 2, 5.0),
    (5, 9, 4.0),
    (5, 4, 6.0),
    (4, 7, 2.0),
    (7, 4, 2.0),
    (7, 6, 2.0),
    (4, 6, 3.0),
    (7, 8, 3.0),
    (9, 8, 5.0),
    (9, 13, 5.0),
    (11, 10, 2.0),
    (10, 8, 3.0),
    (11, 12, 3.0),
    (12, 11, 3.0),
    (12, 13, 3.0),
    (8, 13, 6.0),
    (2, 3, 7.0),
];

/// The keyword→nodes map of Fig. 4: `a`, `b`, `c` in order.
pub fn fig4_keyword_nodes() -> Vec<Vec<NodeId>> {
    vec![
        vec![NodeId(4), NodeId(13)],
        vec![NodeId(2), NodeId(8)],
        vec![NodeId(3), NodeId(6), NodeId(9), NodeId(11)],
    ]
}

/// Table I ground truth: `(rank, core [a,b,c], cost, centers)`.
pub fn fig4_table1() -> Vec<(usize, [u32; 3], f64, Vec<u32>)> {
    vec![
        (1, [4, 8, 6], 7.0, vec![4, 7]),
        (2, [13, 8, 9], 10.0, vec![9]),
        (3, [13, 8, 11], 11.0, vec![11, 12]),
        (4, [4, 2, 3], 14.0, vec![1]),
        (5, [4, 2, 9], 15.0, vec![5]),
    ]
}

/// Node ids of Fig. 1's co-author graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fig1Node {
    /// Author "John Smith".
    JohnSmith = 0,
    /// Author "Jim Smith".
    JimSmith = 1,
    /// Author "Kate Green".
    KateGreen = 2,
    /// `paper1`, co-authored by John Smith and Kate Green, cites `paper2`.
    Paper1 = 3,
    /// `paper2`, co-authored by Kate Green, John Smith and Jim Smith.
    Paper2 = 4,
}

fn nid(v: Fig1Node) -> NodeId {
    // xtask-allow: narrowing_cast — C-like discriminants 0..=4 always fit u32
    NodeId(v as u32)
}

/// Builds Fig. 1(a): papers link to their authors with author-order weights
/// (1 for first author, 2 for second, …) and `paper1` cites `paper2` with
/// weight 4. Edges are bi-directed so that both trees and communities exist.
pub fn fig1_graph() -> Graph {
    use Fig1Node::*;
    let mut b = GraphBuilder::new(5);
    let mut bi = |u: Fig1Node, v: Fig1Node, w: f64| {
        b.add_bidirected_edge(nid(u), nid(v), Weight::new(w));
    };
    bi(Paper1, JohnSmith, 1.0);
    bi(Paper1, KateGreen, 2.0);
    bi(Paper2, KateGreen, 1.0);
    bi(Paper2, JohnSmith, 2.0);
    bi(Paper2, JimSmith, 3.0);
    bi(Paper1, Paper2, 4.0);
    b.build()
}

/// Fig. 1's 2-keyword query: `kate` matches Kate Green, `smith` matches
/// John Smith and Jim Smith.
pub fn fig1_keyword_nodes() -> Vec<Vec<NodeId>> {
    use Fig1Node::*;
    vec![vec![nid(KateGreen)], vec![nid(JohnSmith), nid(JimSmith)]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm_graph::{shortest_distances, Direction};

    #[test]
    fn fig4_sizes() {
        let g = fig4_graph();
        assert_eq!(g.node_count(), 14);
        assert_eq!(g.edge_count(), 20);
    }

    #[test]
    fn fig4_r5_cost_decomposition() {
        // Paper: from v11: (2+3) + 0 + (3+3) = 11; from v12: (3+2+3)+3+3 = 14.
        let g = fig4_graph();
        let d11 = shortest_distances(&g, Direction::Forward, NodeId(11));
        assert_eq!(d11[8], Weight::new(5.0));
        assert_eq!(d11[13], Weight::new(6.0));
        let d12 = shortest_distances(&g, Direction::Forward, NodeId(12));
        assert_eq!(d12[8], Weight::new(8.0));
        assert_eq!(d12[11], Weight::new(3.0));
        assert_eq!(d12[13], Weight::new(3.0));
    }

    #[test]
    fn fig4_table1_center_sums() {
        let g = fig4_graph();
        for (_, core, cost, centers) in fig4_table1() {
            let mut best = f64::INFINITY;
            for &c in &centers {
                let d = shortest_distances(&g, Direction::Forward, NodeId(c));
                let sum: f64 = core.iter().map(|&k| d[k as usize].get()).sum();
                // Every center reaches every knode within Rmax = 8.
                for &k in &core {
                    assert!(d[k as usize].get() <= FIG4_RMAX, "center v{c} knode v{k}");
                }
                best = best.min(sum);
            }
            assert_eq!(best, cost, "cost of core {core:?}");
        }
    }

    #[test]
    fn fig1_tree_t1_weight() {
        // T1: paper1 connects Kate Green (2) and John Smith (1): total 3.
        let g = fig1_graph();
        let d = shortest_distances(&g, Direction::Forward, NodeId(Fig1Node::Paper1 as u32));
        assert_eq!(d[Fig1Node::JohnSmith as usize], Weight::new(1.0));
        assert_eq!(d[Fig1Node::KateGreen as usize], Weight::new(2.0));
        // The citation edge paper1 → paper2 weighs 4, and the path through
        // it to Kate Green costs 4 + 1 = 5 (< 6) — the fact the intro uses
        // to include the citation edge in community R1. (The *shortest*
        // paper1→paper2 distance is 3, via Kate Green, in the bi-directed
        // graph.)
        let g = fig1_graph();
        assert_eq!(
            g.edge_weight(
                NodeId(Fig1Node::Paper1 as u32),
                NodeId(Fig1Node::Paper2 as u32)
            ),
            Some(Weight::new(4.0))
        );
        assert_eq!(d[Fig1Node::Paper2 as usize], Weight::new(3.0));
    }

    #[test]
    fn fig1_keywords() {
        let kn = fig1_keyword_nodes();
        assert_eq!(kn[0].len(), 1);
        assert_eq!(kn[1].len(), 2);
    }
}
