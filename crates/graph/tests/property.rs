//! Property tests for the graph substrate: both Dijkstra engines against
//! the Floyd–Warshall oracle, truncation semantics, and induced subgraphs.

use comm_graph::reference::all_pairs_shortest;
use comm_graph::{
    graph_from_edges, DijkstraEngine, Direction, FibDijkstraEngine, Graph, Kernel, NodeId, Weight,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomGraph {
    n: usize,
    edges: Vec<(u32, u32, u32)>,
}

fn random_graph() -> impl Strategy<Value = RandomGraph> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0u32..9), 0..n * 4)
            .prop_map(move |edges| RandomGraph { n, edges })
    })
}

fn build(rg: &RandomGraph) -> Graph {
    let edges: Vec<(u32, u32, f64)> = rg
        .edges
        .iter()
        .map(|&(u, v, w)| (u, v, f64::from(w)))
        .collect();
    graph_from_edges(rg.n, &edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn binary_dijkstra_matches_floyd_warshall(rg in random_graph(), dir_fwd in any::<bool>()) {
        let g = build(&rg);
        let dir = if dir_fwd { Direction::Forward } else { Direction::Reverse };
        let oracle = all_pairs_shortest(&g, dir);
        let mut engine = DijkstraEngine::new(g.node_count());
        for s in g.nodes() {
            let d = engine.distances(&g, dir, s);
            prop_assert_eq!(&d, &oracle[s.index()], "source {}", s);
        }
    }

    #[test]
    fn fib_engine_equals_binary_engine(rg in random_graph(), seed_count in 1usize..4, radius in 0u32..30) {
        let g = build(&rg);
        let seeds: Vec<NodeId> = (0..seed_count.min(rg.n))
            .map(|i| NodeId((i * 7 % rg.n) as u32))
            .collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let r = Weight::from(radius);
        let mut bin = DijkstraEngine::new(g.node_count());
        let mut fib = FibDijkstraEngine::new(g.node_count());
        for dir in [Direction::Forward, Direction::Reverse] {
            let mut a = Vec::new();
            bin.run(&g, dir, sorted.iter().copied(), r, |s| a.push(s));
            let mut b = Vec::new();
            fib.run(&g, dir, sorted.iter().copied(), r, |s| b.push(s));
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn bucket_kernel_equals_heap_kernel(
        rg in random_graph(),
        seed_count in 1usize..4,
        radius in 0u32..30,
        quarter in any::<bool>(),
    ) {
        // Optionally shrink every weight to a quarter so distances land
        // off the integer grid and stress the bucket-boundary rounding.
        let scale = if quarter { 0.25 } else { 1.0 };
        let edges: Vec<(u32, u32, f64)> = rg
            .edges
            .iter()
            .map(|&(u, v, w)| (u, v, f64::from(w) * scale))
            .collect();
        let g = graph_from_edges(rg.n, &edges);
        let mut seeds: Vec<NodeId> = (0..seed_count.min(rg.n))
            .map(|i| NodeId((i * 7 % rg.n) as u32))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        let r = Weight::new(f64::from(radius) * scale);
        let mut heap = DijkstraEngine::with_kernel(g.node_count(), Kernel::Heap);
        let mut bucket = DijkstraEngine::with_kernel(g.node_count(), Kernel::Bucket);
        for dir in [Direction::Forward, Direction::Reverse] {
            let mut a = Vec::new();
            heap.run(&g, dir, seeds.iter().copied(), r, |s| a.push(s));
            let mut b = Vec::new();
            bucket.run(&g, dir, seeds.iter().copied(), r, |s| b.push(s));
            // The whole settle stream — node, dist, source, AND parent —
            // must be bit-identical, not merely the distance table.
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn truncation_is_prefix_of_full_run(rg in random_graph(), radius in 0u32..20) {
        let g = build(&rg);
        let mut engine = DijkstraEngine::new(g.node_count());
        let r = Weight::from(radius);
        let mut truncated = Vec::new();
        engine.run(&g, Direction::Forward, [NodeId(0)], r, |s| truncated.push(s));
        let mut full = Vec::new();
        engine.run(&g, Direction::Forward, [NodeId(0)], Weight::INFINITY, |s| {
            full.push(s)
        });
        // Every truncated settle appears in the full run with equal dist,
        // and the truncated set is exactly the ≤ radius prefix.
        let within: Vec<_> = full.iter().copied().filter(|s| s.dist <= r).collect();
        prop_assert_eq!(truncated, within);
    }

    #[test]
    fn induced_subgraph_is_consistent(rg in random_graph(), pick in proptest::collection::vec(any::<bool>(), 2..30)) {
        let g = build(&rg);
        let nodes: Vec<NodeId> = g
            .nodes()
            .filter(|u| pick.get(u.index()).copied().unwrap_or(false))
            .collect();
        let ind = g.induce(&nodes);
        prop_assert_eq!(ind.graph.node_count(), nodes.len());
        // Mapping is a bijection on the selected nodes.
        for (i, &orig) in ind.original_ids.iter().enumerate() {
            prop_assert_eq!(ind.to_local(orig), Some(NodeId(i as u32)));
        }
        // Edge count equals the number of G edges inside the selection.
        let expect = g
            .edges()
            .filter(|&(u, v, _)| nodes.contains(&u) && nodes.contains(&v))
            .count();
        prop_assert_eq!(ind.graph.edge_count(), expect);
        // And every induced edge preserves some original weight.
        for (lu, lv, w) in ind.graph.edges() {
            let (ou, ov) = (ind.to_original(lu), ind.to_original(lv));
            prop_assert!(g.edges().any(|(a, b, wo)| (a, b, wo) == (ou, ov, w)));
        }
    }

    #[test]
    fn degrees_sum_to_edge_count(rg in random_graph()) {
        let g = build(&rg);
        let out: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let inn: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(out, g.edge_count());
        prop_assert_eq!(inn, g.edge_count());
    }
}
