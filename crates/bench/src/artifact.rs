//! Provenance-guarded benchmark-artifact writes.
//!
//! Every `BENCH_*.json` document carries a [`MachineInfo`] block so its
//! numbers are never read out of context. That block also orders runs:
//! a report recorded on the multi-core CI host should not be silently
//! clobbered by a rerun on a 1-CPU laptop, or the committed numbers
//! would drift toward whatever machine last touched them. Benchmark
//! binaries therefore write through [`write_artifact`], which refuses to
//! replace an existing artifact of *better provenance* unless the caller
//! passes `--force`.
//!
//! "Better provenance" is deliberately coarse: more CPUs wins (timing
//! fidelity scales with available parallelism); ties always overwrite
//! (same-machine reruns refresh freely). Documents without a readable
//! `machine.cpus` never block anything.

use crate::parallel::MachineInfo;
use std::path::Path;

/// The outcome of a guarded artifact write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactWrite {
    /// The document replaced (or created) the file.
    Written,
    /// An existing artifact had better provenance and `force` was off;
    /// the payload holds the refusal message (existing vs new CPUs).
    Refused(String),
}

/// CPU count recorded in an artifact document, if readable.
fn recorded_cpus(doc: &serde_json::Value) -> Option<u64> {
    doc.get("machine")?.get("cpus")?.as_u64()
}

/// Writes `json` (a full `BENCH_*.json` document) to `path` unless the
/// file already holds a report from a machine with strictly more CPUs
/// than `machine`. `force` overrides the guard. IO errors reading the
/// existing file are treated as "no usable artifact" (the write
/// proceeds); IO errors writing are returned.
pub fn write_artifact(
    path: impl AsRef<Path>,
    json: &str,
    machine: &MachineInfo,
    force: bool,
) -> std::io::Result<ArtifactWrite> {
    let path = path.as_ref();
    if !force {
        if let Some(existing) = std::fs::read_to_string(path)
            .ok()
            .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
            .and_then(|doc| recorded_cpus(&doc))
        {
            if existing > machine.cpus as u64 {
                return Ok(ArtifactWrite::Refused(format!(
                    "{} was recorded on a {existing}-CPU machine; this host has {} — \
                     refusing to overwrite with worse provenance (pass --force to override)",
                    path.display(),
                    machine.cpus,
                )));
            }
        }
    }
    let mut body = json.to_owned();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    std::fs::write(path, body)?;
    Ok(ArtifactWrite::Written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(cpus: usize) -> MachineInfo {
        MachineInfo {
            os: "linux",
            arch: "x86_64",
            cpus,
            threads_env: None,
            generated_unix: 0,
        }
    }

    fn doc(cpus: usize) -> String {
        format!("{{\"machine\":{{\"cpus\":{cpus}}},\"x\":1}}")
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("comm_artifact_{}_{name}.json", std::process::id()))
    }

    #[test]
    fn fresh_path_always_writes() {
        let p = tmp("fresh");
        std::fs::remove_file(&p).ok();
        let got = write_artifact(&p, &doc(1), &machine(1), false).unwrap();
        assert_eq!(got, ArtifactWrite::Written);
        assert!(std::fs::read_to_string(&p).unwrap().ends_with('\n'));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn better_provenance_blocks_without_force() {
        let p = tmp("block");
        std::fs::write(&p, doc(16)).unwrap();
        match write_artifact(&p, &doc(1), &machine(1), false).unwrap() {
            ArtifactWrite::Refused(msg) => {
                assert!(
                    msg.contains("16-CPU"),
                    "message names the better host: {msg}"
                );
            }
            ArtifactWrite::Written => panic!("1-CPU rerun must not clobber a 16-CPU artifact"),
        }
        // The file is untouched...
        assert!(std::fs::read_to_string(&p).unwrap().contains("16"));
        // ...until --force.
        let got = write_artifact(&p, &doc(1), &machine(1), true).unwrap();
        assert_eq!(got, ArtifactWrite::Written);
        assert!(std::fs::read_to_string(&p).unwrap().contains("\"cpus\":1"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn equal_or_worse_provenance_overwrites_freely() {
        let p = tmp("equal");
        std::fs::write(&p, doc(4)).unwrap();
        assert_eq!(
            write_artifact(&p, &doc(4), &machine(4), false).unwrap(),
            ArtifactWrite::Written
        );
        std::fs::write(&p, doc(2)).unwrap();
        assert_eq!(
            write_artifact(&p, &doc(8), &machine(8), false).unwrap(),
            ArtifactWrite::Written
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn unreadable_existing_artifact_never_blocks() {
        let p = tmp("garbled");
        std::fs::write(&p, "not json").unwrap();
        assert_eq!(
            write_artifact(&p, &doc(1), &machine(1), false).unwrap(),
            ArtifactWrite::Written
        );
        std::fs::remove_file(&p).ok();
    }
}
