//! `comm-serve`: a resident community-query daemon over the engine.
//!
//! The paper's engine answers one query per call; this crate keeps the
//! expensive state — the graph, projection indexes, Dijkstra scratch —
//! hot behind a long-running TCP daemon and adds the robustness layer a
//! shared service needs:
//!
//! * **wire protocol** ([`protocol`]): length-prefixed binary frames,
//!   hand-rolled and strictly decoded — truncation is an error, never a
//!   partial parse;
//! * **admission control** ([`admission`]): a bounded wait queue plus a
//!   priority → `RunGuard` degradation ladder, so overload produces
//!   certified exact-prefix answers and explicit `Overloaded` sheds
//!   instead of unbounded queueing;
//! * **guarded caches** ([`cache`], [`engine`]): an LRU of projection
//!   indexes and an exact-hit answer cache with a bit-identical
//!   cached-vs-uncached contract;
//! * **resilient client** ([`client`]): timeouts everywhere, bounded
//!   jittered retry, idempotent request ids the server deduplicates;
//! * **chaos harness** ([`chaos`], [`load`]): deterministic fault
//!   injection on the serving path plus an open-loop load generator that
//!   proves every request terminates in one of the declared states.
//!
//! The crate is std-only beyond the in-repo engine crates, so the daemon
//! and its chaos tests build with no registry access.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod engine;
pub mod load;
pub mod protocol;
pub mod server;
pub mod workload;

pub use admission::{Admission, AdmissionConfig, AdmissionGate, Permit};
pub use cache::{AnswerKey, IndexKey, Lru};
pub use chaos::{ChaosConfig, ChaosState};
pub use client::{next_request_id, Client, ClientConfig, ClientError};
pub use engine::{summarize, EngineConfig, QueryEngine};
pub use load::{run_load, LatencySummary, LoadConfig, LoadReport};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    CommunitySummary, Priority, ProtocolError, Request, Response, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
pub use server::{counter, spawn, ServerConfig, ServerHandle};
pub use workload::{synthetic_engine, synthetic_mix, QueryMix, KEYWORDS};
