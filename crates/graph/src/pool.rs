//! A shared pool of reusable [`DijkstraEngine`] scratch states.
//!
//! Every sweep in the paper needs `O(n)` scratch arrays. A single-threaded
//! caller amortizes that by owning one engine; concurrent sweeps (parallel
//! keyword dimensions, batch query drivers) would either share a lock or
//! allocate per call. [`EnginePool`] removes both costs: engines are parked
//! in size-class buckets keyed by graph size, [`acquire`](EnginePool::acquire)
//! pops one (or builds it on first use), and the [`PooledEngine`] guard
//! returns it on drop. Engines reset their touched scratch at the start of
//! every sweep, so a recycled engine never observes stale state from a
//! previous one.
//!
//! The pool also carries the process-wide default [`Kernel`]: every
//! acquired engine is stamped with it, so `NeighborSets`, `get_community`,
//! projection builds, the serve engine, and the baselines all switch
//! queue kernels through one [`set_kernel`](EnginePool::set_kernel) call
//! (or the `COMM_KERNEL` environment variable for the global pool) with
//! no call-site changes.

use crate::dijkstra::DijkstraEngine;
use crate::kernel::Kernel;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Environment variable naming the global pool's queue kernel
/// (`heap` / `bucket` / `auto`); unset or unparsable means `auto`.
pub const KERNEL_ENV: &str = "COMM_KERNEL";

/// Engines parked per size class beyond this count are dropped instead of
/// pooled, bounding the pool's memory to `CLASSES × PER_CLASS_CAP` engines.
const PER_CLASS_CAP: usize = 64;

/// Size classes cover capacities `2^0 .. 2^63`; class `c` holds engines
/// built for up to `2^c` nodes.
const CLASSES: usize = 64;

/// The size class for a graph of `n` nodes: the smallest `c` with
/// `2^c ≥ n`. All engines in one class have the same rounded capacity, so
/// a recycled engine never needs to grow for a same-class request.
fn size_class(n: usize) -> usize {
    n.next_power_of_two().trailing_zeros() as usize
}

/// The rounded capacity engines of class `c` are built with.
fn class_capacity(c: usize) -> usize {
    1usize << c
}

/// A mutex-sharded pool of [`DijkstraEngine`]s keyed by graph size.
///
/// Engines are bucketed by the power-of-two size class of the graph they
/// were built for. Acquiring for `n` nodes pops an engine from class
/// `⌈log2 n⌉` — each class's engines are interchangeable, so a concurrent
/// sweep never allocates `O(n)` vectors on the hot path after warm-up —
/// and releases push it back (up to a per-class cap).
///
/// ```
/// use comm_graph::{graph_from_edges, Direction, EnginePool, NodeId, Weight};
///
/// let g = graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
/// let pool = EnginePool::new();
/// let d = pool.acquire(g.node_count()).distances(&g, Direction::Forward, NodeId(0));
/// assert_eq!(d[2], Weight::new(3.0));
/// assert_eq!(pool.pooled_engines(), 1); // parked again after the call
/// ```
pub struct EnginePool {
    classes: Box<[Mutex<Vec<DijkstraEngine>>]>,
    /// The queue kernel stamped onto every acquired engine
    /// ([`Kernel`] via its `u8` encoding).
    kernel: AtomicU8,
    /// Engines created because the class bucket was empty (telemetry).
    misses: AtomicUsize,
    /// Successful bucket pops (telemetry).
    hits: AtomicUsize,
    /// Shards recovered after a panicking thread poisoned their mutex.
    poison_recoveries: AtomicUsize,
    /// Engines whose scratch was trimmed back to class capacity on
    /// release after an outsized sweep (telemetry).
    trims: AtomicUsize,
}

impl EnginePool {
    /// Creates an empty pool with the default [`Kernel::Auto`] selection.
    pub fn new() -> EnginePool {
        EnginePool::with_kernel(Kernel::Auto)
    }

    /// Creates an empty pool whose engines run on `kernel`.
    pub fn with_kernel(kernel: Kernel) -> EnginePool {
        EnginePool {
            classes: (0..CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
            kernel: AtomicU8::new(kernel.to_u8()),
            misses: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            poison_recoveries: AtomicUsize::new(0),
            trims: AtomicUsize::new(0),
        }
    }

    /// The queue kernel engines from this pool currently run on.
    pub fn kernel(&self) -> Kernel {
        Kernel::from_u8(self.kernel.load(Ordering::Relaxed))
    }

    /// Switches the queue kernel for every engine acquired from now on.
    /// Results are bit-identical across kernels, so this is safe to flip
    /// at any time, including between the sweeps of one query.
    pub fn set_kernel(&self, kernel: Kernel) {
        self.kernel.store(kernel.to_u8(), Ordering::Relaxed);
    }

    /// Locks one size-class shard, recovering it if a panicking thread
    /// poisoned the mutex. Recovery discards the shard's parked engines —
    /// an unwinding thread may have left one mid-sweep with stale scratch
    /// for the epoch it never finished — and clears the poison flag so the
    /// shard pools engines again instead of degrading forever. A shared
    /// pool must never propagate an unrelated thread's panic to its
    /// callers.
    fn lock_shard(&self, class: usize) -> MutexGuard<'_, Vec<DijkstraEngine>> {
        let m = &self.classes[class];
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                g.clear();
                m.clear_poison();
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                g
            }
        }
    }

    /// The process-wide shared pool. One-shot helpers and parallel sweeps
    /// without an explicit pool borrow from here. Its initial kernel comes
    /// from the `COMM_KERNEL` environment variable (CI's kernel lane runs
    /// the whole suite under each value); [`set_kernel`](Self::set_kernel)
    /// can still override it later.
    pub fn global() -> &'static EnginePool {
        static GLOBAL: OnceLock<EnginePool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let kernel = std::env::var(KERNEL_ENV)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_default();
            EnginePool::with_kernel(kernel)
        })
    }

    /// Borrows an engine sized for graphs of `n` nodes. The engine returns
    /// to the pool when the guard drops.
    pub fn acquire(&self, n: usize) -> PooledEngine<'_> {
        let class = size_class(n).min(CLASSES - 1);
        let engine = self.lock_shard(class).pop();
        let mut engine = match engine {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                e
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                DijkstraEngine::new(class_capacity(class).max(n))
            }
        };
        engine.set_kernel(self.kernel());
        PooledEngine {
            pool: self,
            class,
            engine: Some(engine),
        }
    }

    /// Engines currently parked across all size classes.
    pub fn pooled_engines(&self) -> usize {
        (0..CLASSES).map(|c| self.lock_shard(c).len()).sum()
    }

    /// `(hits, misses)`: acquires served from the pool vs fresh builds.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// How many times a poisoned shard was recovered (scratch discarded,
    /// poison cleared). Surfaced in the serving daemon's stats so chaos
    /// runs can prove recovery actually happened.
    pub fn poison_recoveries(&self) -> usize {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// How many released engines had their scratch trimmed back to class
    /// capacity after growing beyond it in an outsized sweep.
    pub fn trims(&self) -> usize {
        self.trims.load(Ordering::Relaxed)
    }

    /// Resident scratch bytes currently parked across all size classes —
    /// the quantity [`release`](Self::release)'s trimming bounds.
    pub fn retained_bytes(&self) -> usize {
        (0..CLASSES)
            .map(|c| {
                self.lock_shard(c)
                    .iter()
                    .map(DijkstraEngine::scratch_bytes)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Chaos-testing hook: poisons the shard serving graphs of `n` nodes
    /// by panicking on a scratch thread while it holds the shard lock.
    /// The next `acquire`/`release` touching the shard must recover it.
    #[doc(hidden)]
    pub fn poison_shard_for_chaos(&self, n: usize) {
        let class = size_class(n).min(CLASSES - 1);
        // A scoped thread bounds the poisoning panic to this call.
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _guard = self.classes[class].lock();
                // xtask-allow: no_panics — deliberate poison injection for chaos tests
                panic!("chaos: poisoning EnginePool shard {class}");
            });
            // The scratch thread's panic is the point; swallow its unwind.
            let _ = handle.join();
        });
    }

    fn release(&self, class: usize, mut engine: DijkstraEngine) {
        // An engine can outgrow its size class mid-borrow (a batched
        // multi-dimension sweep sizes scratch for `l·n` virtual nodes).
        // Trim it back before parking so the pool retains at most
        // `class_capacity` worth of scratch per engine forever, rather
        // than pinning the worst sweep ever seen.
        if engine.capacity() > class_capacity(class) {
            engine.trim_scratch(class_capacity(class));
            self.trims.fetch_add(1, Ordering::Relaxed);
        }
        let mut bucket = self.lock_shard(class);
        if bucket.len() < PER_CLASS_CAP {
            bucket.push(engine);
        }
    }
}

impl Default for EnginePool {
    fn default() -> EnginePool {
        EnginePool::new()
    }
}

/// A [`DijkstraEngine`] borrowed from an [`EnginePool`]; derefs to the
/// engine and parks it back in its size class on drop.
pub struct PooledEngine<'p> {
    pool: &'p EnginePool,
    class: usize,
    engine: Option<DijkstraEngine>,
}

impl std::ops::Deref for PooledEngine<'_> {
    type Target = DijkstraEngine;
    fn deref(&self) -> &DijkstraEngine {
        // xtask-allow: no_panics — `engine` is only vacated in drop()
        self.engine.as_ref().expect("engine present until drop")
    }
}

impl std::ops::DerefMut for PooledEngine<'_> {
    fn deref_mut(&mut self) -> &mut DijkstraEngine {
        // xtask-allow: no_panics — `engine` is only vacated in drop()
        self.engine.as_mut().expect("engine present until drop")
    }
}

impl Drop for PooledEngine<'_> {
    fn drop(&mut self) {
        if let Some(engine) = self.engine.take() {
            self.pool.release(self.class, engine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{graph_from_edges, Direction, NodeId};
    use crate::kernel::Kernel;
    use crate::weight::Weight;

    #[test]
    fn size_classes_round_up() {
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(3), 2);
        assert_eq!(size_class(1024), 10);
        assert_eq!(size_class(1025), 11);
        assert!(class_capacity(size_class(777)) >= 777);
    }

    #[test]
    fn acquire_release_reuses_engine() {
        let pool = EnginePool::new();
        assert_eq!(pool.pooled_engines(), 0);
        {
            let _e = pool.acquire(100);
            assert_eq!(pool.pooled_engines(), 0, "borrowed engine is not parked");
        }
        assert_eq!(pool.pooled_engines(), 1);
        {
            let _e = pool.acquire(120); // same class (128): must reuse
        }
        assert_eq!(pool.pooled_engines(), 1);
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn different_classes_do_not_share() {
        let pool = EnginePool::new();
        drop(pool.acquire(10));
        drop(pool.acquire(10_000));
        assert_eq!(pool.pooled_engines(), 2);
        assert_eq!(pool.stats(), (0, 2));
        // A third acquire in each class hits.
        drop(pool.acquire(12));
        drop(pool.acquire(9_000));
        assert_eq!(pool.stats(), (2, 2));
    }

    #[test]
    fn pooled_engine_runs_sweeps() {
        let g = graph_from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)]);
        let pool = EnginePool::new();
        let d1 = pool.acquire(4).distances(&g, Direction::Forward, NodeId(0));
        // The recycled engine must produce identical results.
        let d2 = pool.acquire(4).distances(&g, Direction::Forward, NodeId(0));
        assert_eq!(d1, d2);
        assert_eq!(d1[3], Weight::new(7.0));
    }

    #[test]
    fn concurrent_acquires_get_distinct_engines() {
        let pool = EnginePool::new();
        let a = pool.acquire(50);
        let b = pool.acquire(50);
        drop(a);
        drop(b);
        assert_eq!(pool.pooled_engines(), 2);
    }

    #[test]
    fn global_pool_is_shared() {
        let p1 = EnginePool::global() as *const EnginePool;
        let p2 = EnginePool::global() as *const EnginePool;
        assert_eq!(p1, p2);
    }

    #[test]
    fn per_class_cap_bounds_memory() {
        let pool = EnginePool::new();
        let engines: Vec<_> = (0..PER_CLASS_CAP + 8).map(|_| pool.acquire(16)).collect();
        drop(engines);
        assert_eq!(pool.pooled_engines(), PER_CLASS_CAP);
    }

    #[test]
    fn poisoned_shard_recovers_and_keeps_serving() {
        let pool = EnginePool::new();
        drop(pool.acquire(100)); // park one engine in the 128-class
        assert_eq!(pool.pooled_engines(), 1);
        pool.poison_shard_for_chaos(100);
        assert_eq!(pool.poison_recoveries(), 0, "recovery happens lazily");
        // The first touch after the poison clears the shard (stale scratch
        // is discarded) instead of panicking.
        let d = {
            let g = graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
            pool.acquire(100)
                .distances(&g, Direction::Forward, NodeId(0))
        };
        assert_eq!(d[2], Weight::new(3.0));
        assert_eq!(pool.poison_recoveries(), 1);
        // The shard pools engines again: poison was cleared, not latched.
        assert_eq!(pool.pooled_engines(), 1);
        drop(pool.acquire(100));
        assert_eq!(
            pool.poison_recoveries(),
            1,
            "a recovered shard must not keep counting recoveries"
        );
    }

    #[test]
    fn acquired_engines_carry_the_pool_kernel() {
        let pool = EnginePool::with_kernel(Kernel::Bucket);
        assert_eq!(pool.kernel(), Kernel::Bucket);
        assert_eq!(pool.acquire(8).kernel(), Kernel::Bucket);
        pool.set_kernel(Kernel::Heap);
        // A recycled engine is re-stamped on every acquire.
        assert_eq!(pool.acquire(8).kernel(), Kernel::Heap);
        assert_eq!(EnginePool::new().kernel(), Kernel::Auto);
    }

    #[test]
    fn kernel_switch_keeps_results_identical() {
        let g = graph_from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)]);
        let pool = EnginePool::new();
        let mut answers = Vec::new();
        for k in [Kernel::Heap, Kernel::Bucket, Kernel::Auto] {
            pool.set_kernel(k);
            answers.push(pool.acquire(4).distances(&g, Direction::Forward, NodeId(0)));
        }
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[0], answers[2]);
    }

    #[test]
    fn outsized_engines_are_trimmed_on_release() {
        let pool = EnginePool::new();
        {
            let mut e = pool.acquire(100); // class 128
            e.ensure_capacity(1_000_000); // outsized batched sweep
        }
        assert_eq!(pool.trims(), 1);
        assert_eq!(pool.pooled_engines(), 1);
        // The parked engine retains at most class capacity.
        assert!(pool.retained_bytes() <= class_capacity(size_class(100)) * 64);
        {
            let _e = pool.acquire(100); // in-class reuse: no trim
        }
        assert_eq!(pool.trims(), 1);
    }

    #[test]
    fn poison_recovery_discards_parked_engines() {
        let pool = EnginePool::new();
        drop(pool.acquire(40));
        drop(pool.acquire(10_000));
        assert_eq!(pool.pooled_engines(), 2);
        pool.poison_shard_for_chaos(40);
        // Only the poisoned shard is cleared; the other class is intact.
        assert_eq!(pool.pooled_engines(), 1);
        assert_eq!(pool.poison_recoveries(), 1);
    }
}
