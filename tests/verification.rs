//! End-to-end certification: the independent verifier in
//! `comm_core::verify` (a self-contained binary-heap Dijkstra sharing no
//! code with the optimized engines) must certify COMM-all / COMM-k output
//! on the paper's running example and on a sampled synthetic DBLP
//! workload, and COMM-k must rank as a prefix of COMM-all.

use communities::datasets::paper_example::{fig4_graph, fig4_keyword_nodes, FIG4_RMAX};
use communities::datasets::workload::{query_keywords, DBLP_KEYWORD_GROUPS};
use communities::datasets::{generate_dblp, DblpConfig};
use communities::graph::Weight;
use communities::search::verify::{
    check_community, check_enumeration, check_ranking, check_topk_prefix,
};
use communities::search::{comm_all, comm_k, CostFn, QuerySpec};

#[test]
fn paper_example_enumeration_certifies() {
    let g = fig4_graph();
    let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
    let all = comm_all(&g, &spec);
    assert_eq!(all.len(), 5, "Table I lists five communities");
    check_enumeration(&g, &spec, &all).unwrap();
    // Table I rank 1: cost 7.
    let min = all.iter().map(|c| c.cost).min().unwrap();
    assert_eq!(min, Weight::new(7.0));
}

#[test]
fn paper_example_topk_is_a_prefix_of_comm_all() {
    let g = fig4_graph();
    let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
    let all = comm_all(&g, &spec);
    for k in 1..=all.len() {
        let topk = comm_k(&g, &spec, k);
        assert_eq!(topk.len(), k);
        check_enumeration(&g, &spec, &topk).unwrap();
        check_ranking(&topk).unwrap();
        check_topk_prefix(&topk, &all).unwrap();
    }
}

#[test]
fn paper_example_max_distance_certifies() {
    let g = fig4_graph();
    let spec =
        QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX)).with_cost(CostFn::MaxDistance);
    let all = comm_all(&g, &spec);
    assert!(!all.is_empty());
    check_enumeration(&g, &spec, &all).unwrap();
}

#[test]
fn dblp_sampled_workload_certifies() {
    let ds = generate_dblp(&DblpConfig::default().scaled(0.4));
    let keywords = query_keywords(DBLP_KEYWORD_GROUPS, 0.0009, 3);
    let spec = QuerySpec::new(
        keywords
            .iter()
            .map(|&kw| ds.graph.keyword_nodes(kw).to_vec())
            .collect(),
        Weight::new(6.0),
    );
    let g = &ds.graph.graph;
    let all = comm_all(g, &spec);
    assert!(!all.is_empty(), "workload should produce communities");

    // Certify a slice of the enumeration individually (log-in-degree
    // weights exercise the float-exact cost recomputation) …
    for c in all.iter().take(25) {
        check_community(g, &spec, c).unwrap();
    }
    // … plus core-distinctness over that slice.
    check_enumeration(g, &spec, &all[..all.len().min(25)]).unwrap();

    let k = all.len().min(10);
    let topk = comm_k(g, &spec, k);
    assert_eq!(topk.len(), k);
    check_ranking(&topk).unwrap();
    check_topk_prefix(&topk, &all).unwrap();
}
