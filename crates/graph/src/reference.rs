//! Brute-force reference algorithms used to cross-check the optimized
//! implementations in tests and property tests. These are `O(n^3)` /
//! exponential and intended for small graphs only.

use crate::csr::{Direction, Graph};
use crate::weight::Weight;

/// Floyd–Warshall all-pairs shortest distances.
///
/// `result[u][v]` is the shortest distance from `u` to `v` following the
/// given direction's edges (for [`Direction::Reverse`], that is the
/// distance in the transposed graph).
pub fn all_pairs_shortest(graph: &Graph, dir: Direction) -> Vec<Vec<Weight>> {
    let n = graph.node_count();
    let mut d = vec![vec![Weight::INFINITY; n]; n];
    for u in graph.nodes() {
        d[u.index()][u.index()] = Weight::ZERO;
        for (v, w) in graph.neighbors(u, dir) {
            if w < d[u.index()][v.index()] {
                d[u.index()][v.index()] = w;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            if !d[i][k].is_finite() {
                continue;
            }
            for j in 0..n {
                let through = d[i][k] + d[k][j];
                if through < d[i][j] {
                    d[i][j] = through;
                }
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{graph_from_edges, NodeId};

    #[test]
    fn small_triangle() {
        let g = graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]);
        let d = all_pairs_shortest(&g, Direction::Forward);
        assert_eq!(d[0][2], Weight::new(2.0));
        assert_eq!(d[2][0], Weight::INFINITY);
        let dr = all_pairs_shortest(&g, Direction::Reverse);
        assert_eq!(dr[2][0], Weight::new(2.0));
        assert_eq!(dr[0][2], Weight::INFINITY);
        let _ = NodeId(0);
    }
}
