//! The resilient client: connect/read/write timeouts, bounded retry with
//! jittered exponential backoff, and idempotent request ids.
//!
//! Retry correctness leans on the server's idempotency table: every
//! attempt of one logical request reuses the same id, so a retry after a
//! mid-request disconnect *replays* the recorded reply instead of
//! re-executing the query. `Overloaded` replies are retryable (the server
//! explicitly did not execute); backoff honors the server's retry-after
//! hint when it is longer than the local schedule.
//!
//! Jitter is a hand-rolled xorshift PRNG — deterministic per seed, no
//! external dependency — applied as "equal jitter": each delay is
//! `base/2 + uniform(0, base/2)`, which de-synchronizes retry herds
//! without ever collapsing the delay to zero.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, Priority, ProtocolError, Request,
    Response,
};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Client tunables.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (a reply slower than this is a failed attempt).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Retries after the first attempt (`0` = fail fast).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry (before jitter).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(1),
            max_retries: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

/// Why a request ultimately failed after retries.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure on the final attempt.
    Io(io::Error),
    /// The server sent bytes this client cannot decode.
    Protocol(ProtocolError),
    /// Every attempt was shed; the last `Overloaded` hint is attached.
    Overloaded {
        /// Attempts made (including the first).
        attempts: u32,
        /// The server's last retry-after hint.
        retry_after_ms: u32,
    },
    /// The reply echoed a different request id than the one sent.
    IdMismatch {
        /// The id sent.
        sent: u64,
        /// The id echoed.
        got: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed after retries: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Overloaded {
                attempts,
                retry_after_ms,
            } => write!(
                f,
                "server overloaded after {attempts} attempts (retry after {retry_after_ms} ms)"
            ),
            ClientError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        match e {
            ProtocolError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other),
        }
    }
}

/// Process-wide request-id source: ids must be unique per logical request
/// (they key the server's idempotency table) but stable across retries.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Per-process base the counter is offset by. Without this, every
/// short-lived client process would count up from 1 and collide in the
/// server's idempotency table — a `query` from one CLI invocation would
/// *replay another invocation's recorded reply* instead of executing.
static ID_BASE: OnceLock<u64> = OnceLock::new();

/// Allocates a fresh request id: a per-process entropy base (wall clock ⊕
/// pid, scrambled splitmix-style so consecutive process starts land in
/// distant ranges of the 64-bit space) plus a process-local counter.
pub fn next_request_id() -> u64 {
    let base = *ID_BASE.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map_or(0, |d| {
                u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0)
            });
        splitmix64(nanos ^ (u64::from(std::process::id()) << 32) ^ 0x9e37_79b9_7f4a_7c15)
    });
    base.wrapping_add(NEXT_ID.fetch_add(1, Ordering::Relaxed))
}

/// SplitMix64 finalizer: every input bit avalanches across the output, so
/// inputs differing in a single low bit land far apart.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A connection-caching client for one server address.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<TcpStream>,
    rng: u64,
    /// Attempts made across all calls (telemetry for the load generator).
    attempts: u64,
    /// Reconnects performed across all calls.
    reconnects: u64,
}

impl Client {
    /// Builds a client (no connection is made until the first call).
    pub fn new(addr: SocketAddr, cfg: ClientConfig) -> Client {
        // Seed the jitter stream from the address and a fresh id so
        // concurrent clients de-synchronize. The id is scrambled first:
        // consecutive ids differ only in low bits, and `| 1` below would
        // erase a bit-0-only difference, locking two clients in step.
        // xorshift needs a non-zero seed.
        let seed = 0x9e37_79b9_7f4a_7c15u64
            ^ (u64::from(addr.port()) << 32)
            ^ splitmix64(next_request_id());
        Client {
            addr,
            cfg,
            conn: None,
            rng: seed | 1,
            attempts: 0,
            reconnects: 0,
        }
    }

    /// `(attempts, reconnects)` across the client's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.attempts, self.reconnects)
    }

    fn rand_u64(&mut self) -> u64 {
        // xorshift64*: tiny, deterministic, plenty for jitter.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Equal-jitter backoff for `attempt` (0-based): half deterministic,
    /// half uniform, capped at `max_backoff`, never below `floor`.
    fn backoff(&mut self, attempt: u32, floor: Duration) -> Duration {
        let base = self
            .cfg
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cfg.max_backoff);
        let half = base / 2;
        let jitter_nanos = if half.is_zero() {
            0
        } else {
            self.rand_u64() % u64::try_from(half.as_nanos().max(1)).unwrap_or(u64::MAX)
        };
        (half + Duration::from_nanos(jitter_nanos)).max(floor)
    }

    fn connect(&mut self) -> io::Result<&mut TcpStream> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
            stream.set_read_timeout(Some(self.cfg.read_timeout))?;
            stream.set_write_timeout(Some(self.cfg.write_timeout))?;
            stream.set_nodelay(true)?;
            self.reconnects += 1;
            self.conn = Some(stream);
        }
        // xtask-allow: no_panics — just populated above when None
        Ok(self.conn.as_mut().expect("connection populated"))
    }

    /// One wire round trip (no retry).
    fn attempt(&mut self, frame: &[u8]) -> Result<Response, ClientError> {
        self.attempts += 1;
        let stream = self.connect().map_err(ClientError::Io)?;
        let result: Result<Response, ProtocolError> = (|| {
            write_frame(stream, frame)?;
            let payload = read_frame(stream)?;
            decode_response(&payload)
        })();
        match result {
            Ok(resp) => Ok(resp),
            Err(e) => {
                // Any wire failure invalidates the cached connection.
                self.conn = None;
                Err(e.into())
            }
        }
    }

    /// Sends `req`, retrying transport failures and `Overloaded` replies
    /// with jittered exponential backoff. All attempts reuse the request's
    /// id, so the server never double-executes.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let frame = encode_request(req).map_err(ClientError::from)?;
        let sent_id = req.id();
        let mut last_overload_hint = 0u32;
        let mut overloaded_attempts = 0u32;
        for attempt in 0..=self.cfg.max_retries {
            match self.attempt(&frame) {
                Ok(Response::Overloaded { id, retry_after_ms }) => {
                    if id != sent_id {
                        return Err(ClientError::IdMismatch {
                            sent: sent_id,
                            got: id,
                        });
                    }
                    last_overload_hint = retry_after_ms;
                    overloaded_attempts = attempt + 1;
                    if attempt == self.cfg.max_retries {
                        break;
                    }
                    // Honor the server's hint when it exceeds our schedule.
                    let floor = Duration::from_millis(u64::from(retry_after_ms));
                    let delay = self.backoff(attempt, floor);
                    std::thread::sleep(delay);
                }
                Ok(resp) => {
                    if resp.id() != sent_id {
                        return Err(ClientError::IdMismatch {
                            sent: sent_id,
                            got: resp.id(),
                        });
                    }
                    return Ok(resp);
                }
                Err(ClientError::Io(e)) => {
                    if attempt == self.cfg.max_retries {
                        return Err(ClientError::Io(e));
                    }
                    let delay = self.backoff(attempt, Duration::ZERO);
                    std::thread::sleep(delay);
                }
                Err(other) => return Err(other), // protocol errors are not retryable
            }
        }
        Err(ClientError::Overloaded {
            attempts: overloaded_attempts,
            retry_after_ms: last_overload_hint,
        })
    }

    /// Convenience: a top-k community query with a fresh request id.
    pub fn query(
        &mut self,
        keywords: &[&str],
        rmax: f64,
        k: u32,
        priority: Priority,
    ) -> Result<Response, ClientError> {
        let req = Request::Query {
            id: next_request_id(),
            priority,
            keywords: keywords.iter().map(|s| s.to_string()).collect(),
            rmax,
            k,
        };
        self.call(&req)
    }

    /// Convenience: liveness probe.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.call(&Request::Ping {
            id: next_request_id(),
        })
    }

    /// Convenience: counter snapshot.
    pub fn stats_snapshot(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.call(&Request::Stats {
            id: next_request_id(),
        })? {
            Response::Stats { counters, .. } => Ok(counters),
            other => Err(ClientError::Protocol(ProtocolError::BadKind(match other {
                Response::Complete { .. } => 0,
                Response::Interrupted { .. } => 1,
                Response::Overloaded { .. } => 2,
                Response::Error { .. } => 3,
                Response::Pong { .. } => 4,
                Response::Stats { .. } => 5,
                Response::ShuttingDown { .. } => 6,
            }))),
        }
    }

    /// Convenience: ask the daemon to shut down.
    pub fn shutdown_server(&mut self) -> Result<Response, ClientError> {
        self.call(&Request::Shutdown {
            id: next_request_id(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> Client {
        Client::new(
            SocketAddr::from(([127, 0, 0, 1], 1)),
            ClientConfig::default(),
        )
    }

    #[test]
    fn request_ids_are_unique_within_the_process() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        assert_eq!(b.wrapping_sub(a), 1, "ids count up from a per-process base");
    }

    #[test]
    fn backoff_grows_stays_bounded_and_jitters() {
        let mut c = client();
        let mut prev_base = Duration::ZERO;
        for attempt in 0..10 {
            let d = c.backoff(attempt, Duration::ZERO);
            assert!(d <= c.cfg.max_backoff, "attempt {attempt}: {d:?} over cap");
            // Equal jitter keeps at least half the exponential base.
            let base = c
                .cfg
                .base_backoff
                .saturating_mul(1u32 << attempt.min(16))
                .min(c.cfg.max_backoff);
            assert!(d >= base / 2, "attempt {attempt}: {d:?} under half-base");
            assert!(base >= prev_base, "base must be monotone");
            prev_base = base;
        }
    }

    #[test]
    fn backoff_honors_server_floor() {
        let mut c = client();
        let floor = Duration::from_millis(400);
        for attempt in 0..3 {
            assert!(c.backoff(attempt, floor) >= floor);
        }
    }

    #[test]
    fn jitter_streams_differ_between_clients() {
        let mut a = client();
        let mut b = client();
        let da: Vec<Duration> = (0..4).map(|i| a.backoff(i, Duration::ZERO)).collect();
        let db: Vec<Duration> = (0..4).map(|i| b.backoff(i, Duration::ZERO)).collect();
        assert_ne!(da, db, "two clients should not retry in lockstep");
    }

    #[test]
    fn connect_to_dead_port_fails_fast() {
        let mut c = Client::new(
            SocketAddr::from(([127, 0, 0, 1], 1)), // reserved, nothing listens
            ClientConfig {
                max_retries: 1,
                base_backoff: Duration::from_millis(1),
                connect_timeout: Duration::from_millis(100),
                ..ClientConfig::default()
            },
        );
        match c.ping() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected transport failure, got {other:?}"),
        }
        let (attempts, _) = c.stats();
        assert_eq!(attempts, 2, "one retry after the first attempt");
    }
}
