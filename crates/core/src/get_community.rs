//! `GetCommunity()` (Algorithm 4): materializing the unique community of a
//! core.
//!
//! Given a core `C`, the community `R(V, E)` is determined in three sweeps:
//!
//! 1. **centers** `V_c`: one reverse Dijkstra per distinct knode `c ∈ C`
//!    accumulating `u.sum` / `u.count`; `u` is a center iff it reaches every
//!    knode within `Rmax` (`u.count == l`);
//! 2. **forward** distances `dist(s, u)` from a virtual source `s` hooked to
//!    all centers with zero-weight edges (one multi-source Dijkstra);
//! 3. **backward** distances `dist(u, t)` to a virtual sink `t` hooked from
//!    all knodes (one reverse multi-source Dijkstra);
//!
//! and `V = { u | dist(s,u) + dist(u,t) ≤ Rmax }` — centers, knodes, and all
//! path nodes. The induced subgraph over `V` is the community.

use crate::error::{validate_radius, QueryError};
use crate::types::{Community, Core, CostFn};
use comm_graph::weight::index_to_u32;
use comm_graph::{
    DijkstraEngine, Direction, EnginePool, Graph, InterruptReason, NodeId, Parallelism,
    PooledEngine, RunGuard, Weight,
};

/// Materializes the community uniquely determined by `core`, costing it
/// with the paper's default sum cost.
///
/// Returns `None` if the core admits no center within `rmax` (never the
/// case for cores produced by `BestCore()`, but possible for arbitrary
/// caller-supplied cores).
pub fn get_community(
    graph: &Graph,
    engine: &mut DijkstraEngine,
    core: &Core,
    rmax: Weight,
) -> Option<Community> {
    get_community_with(graph, engine, core, rmax, CostFn::SumDistances)
}

/// [`get_community`] under an arbitrary cost function.
pub fn get_community_with(
    graph: &Graph,
    engine: &mut DijkstraEngine,
    core: &Core,
    rmax: Weight,
    cost_fn: CostFn,
) -> Option<Community> {
    get_community_guarded(graph, engine, core, rmax, cost_fn, &RunGuard::unlimited())
        // xtask-allow: no_panics — an unlimited guard can never interrupt the sweep
        .expect("unlimited guard never trips")
}

/// [`get_community_with`] validating the core (node range, radius) up
/// front and reporting guard trips as [`QueryError::Interrupted`] instead
/// of panicking anywhere.
pub fn try_get_community(
    graph: &Graph,
    engine: &mut DijkstraEngine,
    core: &Core,
    rmax: Weight,
    cost_fn: CostFn,
    guard: &RunGuard,
) -> Result<Option<Community>, QueryError> {
    if core.is_empty() {
        return Err(QueryError::NoKeywords);
    }
    validate_radius(rmax.get())?;
    for (dim, &node) in core.0.iter().enumerate() {
        if node.index() >= graph.node_count() {
            return Err(QueryError::NodeOutOfRange {
                dim,
                node,
                node_count: graph.node_count(),
            });
        }
    }
    Ok(get_community_guarded(
        graph, engine, core, rmax, cost_fn, guard,
    )?)
}

/// [`get_community_with`] under a [`RunGuard`], consulted per settled node
/// of the three sweeps. There is no meaningful partial community, so an
/// interrupted materialization returns the bare reason.
pub fn get_community_guarded(
    graph: &Graph,
    engine: &mut DijkstraEngine,
    core: &Core,
    rmax: Weight,
    cost_fn: CostFn,
    guard: &RunGuard,
) -> Result<Option<Community>, InterruptReason> {
    let n = graph.node_count();
    let l = core.len();
    debug_assert!(l > 0);

    // Step 1: centers. A knode carrying several keywords counts once per
    // keyword (Definition 2.1 aggregates over i = 1..l), so we accumulate
    // per distinct knode and weight by multiplicity.
    let distinct = core.distinct_nodes();
    let mut sum = vec![0.0f64; n];
    let mut maxd = vec![Weight::ZERO; n];
    let mut count = vec![0usize; n];
    for &c in &distinct {
        let multiplicity = core.0.iter().filter(|&&x| x == c).count();
        engine.run_guarded(graph, Direction::Reverse, [c], rmax, guard, |s| {
            let u = s.node.index();
            sum[u] += s.dist.get() * multiplicity as f64;
            if s.dist > maxd[u] {
                maxd[u] = s.dist;
            }
            count[u] += multiplicity;
        })?;
    }
    finish_from_accumulators(
        graph, engine, core, distinct, &sum, &maxd, &count, rmax, cost_fn, guard,
    )
}

/// [`get_community_guarded`] with the per-knode center sweeps of step 1
/// fanned out across `par`'s workers, each borrowing an engine from
/// `pool`. Per-knode distance arrays are merged in the sorted
/// distinct-knode order the serial loop visits, so the accumulated
/// `sum`/`maxd`/`count` — and the resulting community — are bit-identical
/// to the serial path for every thread count.
#[allow(clippy::too_many_arguments)]
pub fn get_community_par_guarded(
    graph: &Graph,
    pool: &EnginePool,
    core: &Core,
    rmax: Weight,
    cost_fn: CostFn,
    guard: &RunGuard,
    par: Parallelism,
) -> Result<Option<Community>, InterruptReason> {
    let n = graph.node_count();
    let distinct = core.distinct_nodes();
    if par.is_serial() || distinct.len() == 1 {
        let mut engine = pool.acquire(n);
        return get_community_guarded(graph, &mut engine, core, rmax, cost_fn, guard);
    }
    // Step 1, parallel: one truncated reverse sweep per distinct knode
    // into its own distance array.
    let sweep_tasks: Vec<_> = distinct
        .iter()
        .map(|&c| {
            move |engine: &mut PooledEngine<'_>| -> Result<Vec<Weight>, InterruptReason> {
                let mut d = vec![Weight::INFINITY; n];
                engine.run_guarded(graph, Direction::Reverse, [c], rmax, guard, |s| {
                    d[s.node.index()] = s.dist;
                })?;
                Ok(d)
            }
        })
        .collect();
    let mut per_knode: Vec<Vec<Weight>> = Vec::with_capacity(distinct.len());
    for swept in par.map_init(|| pool.acquire(n), sweep_tasks) {
        // xtask-allow: unbounded_alloc — one entry per distinct keyword; sweeps are guard-governed in the tasks
        per_knode.push(swept?);
    }
    // Merge in distinct order — the exact serial accumulation order.
    let mut sum = vec![0.0f64; n];
    let mut maxd = vec![Weight::ZERO; n];
    let mut count = vec![0usize; n];
    for (&c, d) in distinct.iter().zip(&per_knode) {
        let multiplicity = core.0.iter().filter(|&&x| x == c).count();
        for u in 0..n {
            if d[u].is_finite() {
                sum[u] += d[u].get() * multiplicity as f64;
                if d[u] > maxd[u] {
                    maxd[u] = d[u];
                }
                count[u] += multiplicity;
            }
        }
    }
    let mut engine = pool.acquire(n);
    finish_from_accumulators(
        graph,
        &mut engine,
        core,
        distinct,
        &sum,
        &maxd,
        &count,
        rmax,
        cost_fn,
        guard,
    )
}

/// Steps 1b–3 of Algorithm 4, shared by the serial and parallel paths:
/// scan the accumulators for centers, then run the forward/backward
/// double sweep and assemble the community.
#[allow(clippy::too_many_arguments)]
fn finish_from_accumulators(
    graph: &Graph,
    engine: &mut DijkstraEngine,
    core: &Core,
    distinct: Vec<NodeId>,
    sum: &[f64],
    maxd: &[Weight],
    count: &[usize],
    rmax: Weight,
    cost_fn: CostFn,
    guard: &RunGuard,
) -> Result<Option<Community>, InterruptReason> {
    let n = graph.node_count();
    let l = core.len();
    let mut centers: Vec<NodeId> = Vec::new();
    let mut cost = Weight::INFINITY;
    for u in 0..n {
        if count[u] == l {
            // xtask-allow: unbounded_alloc — bounded by n, matching the preallocated scratch
            centers.push(NodeId(index_to_u32(u)));
            let s = match cost_fn {
                CostFn::SumDistances => Weight::new(sum[u]),
                CostFn::MaxDistance => maxd[u],
            };
            if s < cost {
                cost = s;
            }
        }
    }
    if centers.is_empty() {
        return Ok(None);
    }

    // Step 2: forward sweep from the virtual source over the centers.
    let mut dist_s = vec![Weight::INFINITY; n];
    engine.run_guarded(
        graph,
        Direction::Forward,
        centers.iter().copied(),
        rmax,
        guard,
        |s| {
            dist_s[s.node.index()] = s.dist;
        },
    )?;

    // Step 3: backward sweep from the virtual sink over the knodes.
    let mut members: Vec<NodeId> = Vec::new();
    engine.run_guarded(
        graph,
        Direction::Reverse,
        distinct.iter().copied(),
        rmax,
        guard,
        |s| {
            let u = s.node.index();
            if dist_s[u].is_finite() && dist_s[u] + s.dist <= rmax {
                members.push(s.node);
            }
        },
    )?;
    members.sort_unstable();

    debug_assert!(centers.iter().all(|c| members.binary_search(c).is_ok()));
    debug_assert!(distinct.iter().all(|c| members.binary_search(c).is_ok()));

    let subgraph = graph.induce(&members);
    let path_nodes: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|u| centers.binary_search(u).is_err() && distinct.binary_search(u).is_err())
        .collect();

    Ok(Some(Community {
        core: core.clone(),
        cost,
        centers,
        knodes: distinct,
        path_nodes,
        subgraph,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm_datasets::paper_example::{fig4_graph, FIG4_RMAX};

    fn comm(core: &[u32], rmax: f64) -> Option<Community> {
        let g = fig4_graph();
        let mut eng = DijkstraEngine::new(g.node_count());
        get_community(
            &g,
            &mut eng,
            &Core(core.iter().map(|&c| NodeId(c)).collect()),
            Weight::new(rmax),
        )
    }

    #[test]
    fn r5_matches_paper_fig7() {
        // Core [v13, v8, v11]: V_c = {v11, v12}, V_p = {v10} (paper Fig. 7).
        let c = comm(&[13, 8, 11], FIG4_RMAX).unwrap();
        assert_eq!(c.centers, vec![NodeId(11), NodeId(12)]);
        assert_eq!(c.path_nodes, vec![NodeId(10)]);
        assert_eq!(c.cost, Weight::new(11.0));
        assert_eq!(
            c.nodes(),
            &[NodeId(8), NodeId(10), NodeId(11), NodeId(12), NodeId(13)]
        );
        // knodes sorted & deduped.
        assert_eq!(c.knodes, vec![NodeId(8), NodeId(11), NodeId(13)]);
    }

    #[test]
    fn r3_centers_and_cost() {
        // Table I rank 1: core [v4, v8, v6], centers {v4, v7}, cost 7.
        let c = comm(&[4, 8, 6], FIG4_RMAX).unwrap();
        assert_eq!(c.centers, vec![NodeId(4), NodeId(7)]);
        assert_eq!(c.cost, Weight::new(7.0));
    }

    #[test]
    fn all_table1_communities() {
        for (_, core, cost, centers) in comm_datasets::paper_example::fig4_table1() {
            let c = comm(&core, FIG4_RMAX).unwrap();
            assert_eq!(c.cost, Weight::new(cost), "core {core:?}");
            let got: Vec<u32> = c.centers.iter().map(|n| n.0).collect();
            assert_eq!(got, centers, "centers of {core:?}");
        }
    }

    #[test]
    fn centerless_core_returns_none() {
        // v2 and v13 have no common ancestor within 8.
        assert!(comm(&[13, 2, 9], FIG4_RMAX).is_none());
    }

    #[test]
    fn community_subgraph_is_induced() {
        let g = fig4_graph();
        let c = comm(&[13, 8, 11], FIG4_RMAX).unwrap();
        // Every G_D edge between community members must be present.
        let members = c.nodes();
        let mut expect = 0;
        for &u in members {
            for (v, _) in g.out_neighbors(u) {
                if members.binary_search(&v).is_ok() {
                    expect += 1;
                }
            }
        }
        assert_eq!(c.edge_count(), expect);
        assert_eq!(c.node_count(), 5);
        // Includes the v11→v12 / v12→v11 pair and v12→v13 etc.
        let local_11 = c.subgraph.to_local(NodeId(11)).unwrap();
        let local_12 = c.subgraph.to_local(NodeId(12)).unwrap();
        assert!(c.subgraph.graph.has_edge(local_11, local_12));
        assert!(c.subgraph.graph.has_edge(local_12, local_11));
    }

    #[test]
    fn duplicate_keyword_node_counts_twice() {
        // Core [v6, v6]: a node carrying both keywords. Center v7 has
        // sum = 2·dist(v7, v6) = 4.
        let c = comm(&[6, 6], FIG4_RMAX).unwrap();
        assert!(c.centers.contains(&NodeId(6)));
        assert_eq!(c.cost, Weight::ZERO); // v6 itself is a zero-cost center
        assert_eq!(c.knodes, vec![NodeId(6)]);
    }

    #[test]
    fn max_distance_cost() {
        // Core [v13, v8, v11]: center v11 has per-knode distances
        // {6, 5, 0} → max 6; center v12 has {3, 8, 3} → max 8. Cost = 6.
        let g = fig4_graph();
        let mut eng = DijkstraEngine::new(g.node_count());
        let c = super::get_community_with(
            &g,
            &mut eng,
            &Core(vec![NodeId(13), NodeId(8), NodeId(11)]),
            Weight::new(FIG4_RMAX),
            CostFn::MaxDistance,
        )
        .unwrap();
        assert_eq!(c.cost, Weight::new(6.0));
        // Membership is cost-independent.
        assert_eq!(c.centers, vec![NodeId(11), NodeId(12)]);
    }

    #[test]
    fn radius_shrinks_community() {
        let big = comm(&[13, 8, 11], 8.0).unwrap();
        // With Rmax = 6, v12 can no longer reach v8 (dist 8): only v11
        // remains a center (5 + 0 + 6 = 11 > ... per-knode bound is 6: v11
        // reaches v8 at 5, v13 at 6, itself at 0 — still a center).
        let small = comm(&[13, 8, 11], 6.0).unwrap();
        assert_eq!(small.centers, vec![NodeId(11)]);
        assert!(small.node_count() <= big.node_count());
    }

    #[test]
    fn parallel_step1_matches_serial_exactly() {
        let g = fig4_graph();
        let pool = EnginePool::new();
        let mut eng = DijkstraEngine::new(g.node_count());
        let cores: [&[u32]; 4] = [&[13, 8, 11], &[4, 8, 6], &[6, 6], &[13, 2, 9]];
        for ids in cores {
            let core = Core(ids.iter().map(|&c| NodeId(c)).collect());
            for cost_fn in [CostFn::SumDistances, CostFn::MaxDistance] {
                let serial = get_community_guarded(
                    &g,
                    &mut eng,
                    &core,
                    Weight::new(FIG4_RMAX),
                    cost_fn,
                    &RunGuard::unlimited(),
                )
                .unwrap();
                for threads in [1usize, 2, 4] {
                    let par = get_community_par_guarded(
                        &g,
                        &pool,
                        &core,
                        Weight::new(FIG4_RMAX),
                        cost_fn,
                        &RunGuard::unlimited(),
                        Parallelism::new(threads),
                    )
                    .unwrap();
                    match (&serial, &par) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert_eq!(a.core, b.core, "core {ids:?} threads={threads}");
                            assert_eq!(a.cost, b.cost, "cost {ids:?} threads={threads}");
                            assert_eq!(a.centers, b.centers);
                            assert_eq!(a.knodes, b.knodes);
                            assert_eq!(a.path_nodes, b.path_nodes);
                            assert_eq!(a.nodes(), b.nodes());
                            assert_eq!(a.edge_count(), b.edge_count());
                        }
                        _ => panic!("serial/parallel disagree on {ids:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_step1_respects_guard() {
        let g = fig4_graph();
        let pool = EnginePool::new();
        let core = Core(vec![NodeId(13), NodeId(8), NodeId(11)]);
        let err = get_community_par_guarded(
            &g,
            &pool,
            &core,
            Weight::new(FIG4_RMAX),
            CostFn::SumDistances,
            &RunGuard::new().with_settled_budget(1),
            Parallelism::new(4),
        )
        .unwrap_err();
        assert_eq!(err, InterruptReason::SettledBudgetExhausted);
    }

    #[test]
    fn path_node_inclusion_respects_radius() {
        // For core [v13, v8, v11] with Rmax = 8, v10 qualifies because
        // dist(s, v10) + dist(v10, t) = 2 + 3 = 5 ≤ 8.
        let c = comm(&[13, 8, 11], 8.0).unwrap();
        assert!(c.path_nodes.contains(&NodeId(10)));
        // v9 reaches v8/v13 but is unreachable FROM the centers → excluded.
        assert!(!c.nodes().contains(&NodeId(9)));
    }
}
