//! Warm-start contract: an engine loaded from a CGPH v2 container must be
//! indistinguishable — bit for bit — from the engine whose state was saved.

use comm_graph::container::save_container;
use comm_graph::{NodeId, RunGuard};
use comm_serve::{summarize, synthetic_engine, EngineConfig, QueryEngine, KEYWORDS};

fn unique_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "comm_serve_warm_{tag}_{}_{}",
        std::process::id(),
        line!()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn container_backed_engine_matches_the_built_engine_bit_for_bit() {
    let built = synthetic_engine(12, EngineConfig::default()).unwrap();
    let keywords: Vec<(&str, &[NodeId])> = KEYWORDS
        .iter()
        .map(|&kw| (kw, built.keyword_nodes(kw).unwrap()))
        .collect();
    let dir = unique_dir("bitident");
    let path = dir.join("torus.cgph");
    save_container(&path, built.graph(), keywords, None).unwrap();

    let warm = QueryEngine::from_container(&path, EngineConfig::default()).unwrap();
    assert_eq!(warm.graph().node_count(), built.graph().node_count());
    assert_eq!(warm.graph().edge_count(), built.graph().edge_count());
    #[cfg(unix)]
    assert!(
        warm.graph().is_mapped(),
        "the warm engine must serve the mapped CSR arrays in place"
    );

    let guard = RunGuard::unlimited();
    for (kws, rmax, k) in [
        (vec!["alpha", "beta"], 4.0, 5u32),
        (vec!["gamma", "delta"], 6.0, 3),
        (vec!["alpha", "gamma", "delta"], 6.0, 8),
    ] {
        let kws: Vec<String> = kws.into_iter().map(str::to_owned).collect();
        let a = built.answer(&kws, rmax, k, &guard).unwrap();
        let b = warm.answer(&kws, rmax, k, &guard).unwrap();
        assert!(a.is_complete() && b.is_complete());
        let a: Vec<_> = a.value().iter().map(summarize).collect();
        let b: Vec<_> = b.value().iter().map(summarize).collect();
        assert_eq!(a, b, "mapped and heap answers diverged for {kws:?}");
        assert!(!a.is_empty(), "the torus has communities for {kws:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn from_container_reports_missing_and_corrupt_files_cleanly() {
    let dir = unique_dir("errors");
    let missing = dir.join("nope.cgph");
    assert!(QueryEngine::from_container(&missing, EngineConfig::default()).is_err());
    let corrupt = dir.join("bad.cgph");
    std::fs::write(&corrupt, b"CGPH but not really").unwrap();
    assert!(QueryEngine::from_container(&corrupt, EngineConfig::default()).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
