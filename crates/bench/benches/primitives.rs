//! Criterion micro-benchmarks for the algorithmic primitives: the
//! Dijkstra engine, `Neighbor()`, `BestCore()`, `GetCommunity()`, the
//! Fibonacci heap, and graph projection.

use comm_bench::{Prepared, Scale};
use comm_core::{get_community, NeighborSets, QuerySpec};
use comm_datasets::workload::query_keywords;
use comm_fibheap::FibHeap;
use comm_graph::{DijkstraEngine, Direction, FibDijkstraEngine, NodeId, Weight};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_fibheap(c: &mut Criterion) {
    let mut g = c.benchmark_group("fibheap");
    g.bench_function("push_pop_10k", |b| {
        b.iter_batched(
            || (),
            |()| {
                let mut h = FibHeap::with_capacity(10_000);
                for i in 0..10_000u64 {
                    h.push((i * 2_654_435_761) % 65_536, i);
                }
                let mut sum = 0u64;
                while let Some((_, v)) = h.pop_min() {
                    sum = sum.wrapping_add(v);
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("decrease_key_5k", |b| {
        b.iter_batched(
            || {
                let mut h = FibHeap::with_capacity(5_000);
                let handles: Vec<_> = (0..5_000u64).map(|i| h.push(1_000_000 + i, i)).collect();
                (h, handles)
            },
            |(mut h, handles)| {
                for (i, r) in handles.into_iter().enumerate() {
                    h.decrease_key(r, i as u64).unwrap();
                }
                black_box(h.pop_min())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn setup_cell() -> (comm_graph::Graph, QuerySpec, Vec<Vec<NodeId>>) {
    let p = Prepared::imdb(Scale::Quick);
    let (kwf, l, rmax, _) = p.grid.defaults;
    let pq = p.project(kwf, l, rmax);
    let sets = pq.spec.keyword_nodes.clone();
    (pq.projected.graph, pq.spec, sets)
}

fn bench_dijkstra(c: &mut Criterion) {
    let (g, spec, sets) = setup_cell();
    let mut group = c.benchmark_group("dijkstra");
    group.bench_function("multi_source_truncated", |b| {
        let mut engine = DijkstraEngine::new(g.node_count());
        b.iter(|| {
            let mut touched = 0usize;
            engine.run(
                &g,
                Direction::Reverse,
                sets[0].iter().copied(),
                spec.rmax,
                |_| touched += 1,
            );
            black_box(touched)
        })
    });
    group.bench_function("single_source_full", |b| {
        let mut engine = DijkstraEngine::new(g.node_count());
        b.iter(|| black_box(engine.distances(&g, Direction::Forward, NodeId(0))))
    });
    // The heap ablation: binary heap w/ lazy deletion vs Fibonacci heap w/
    // decrease-key, identical semantics (verified by property tests).
    group.bench_function("binary_heap_multi_source", |b| {
        let mut engine = DijkstraEngine::new(g.node_count());
        b.iter(|| {
            let mut n = 0usize;
            engine.run(
                &g,
                Direction::Reverse,
                sets[0].iter().copied(),
                spec.rmax,
                |_| n += 1,
            );
            black_box(n)
        })
    });
    group.bench_function("fib_heap_multi_source", |b| {
        let mut engine = FibDijkstraEngine::new(g.node_count());
        b.iter(|| {
            let mut n = 0usize;
            engine.run(
                &g,
                Direction::Reverse,
                sets[0].iter().copied(),
                spec.rmax,
                |_| n += 1,
            );
            black_box(n)
        })
    });
    group.finish();
}

fn bench_neighbor_bestcore(c: &mut Criterion) {
    let (g, spec, sets) = setup_cell();
    let l = spec.l();
    let mut group = c.benchmark_group("neighbor");
    group.bench_function("recompute_dim", |b| {
        let mut engine = DijkstraEngine::new(g.node_count());
        let mut ns = NeighborSets::new(l, g.node_count());
        for (i, s) in sets.iter().enumerate() {
            ns.recompute_dim(&g, &mut engine, i, s.iter().copied(), spec.rmax);
        }
        b.iter(|| {
            ns.recompute_dim(&g, &mut engine, 0, sets[0].iter().copied(), spec.rmax);
        })
    });
    group.bench_function("best_core_scan", |b| {
        let mut engine = DijkstraEngine::new(g.node_count());
        let mut ns = NeighborSets::new(l, g.node_count());
        for (i, s) in sets.iter().enumerate() {
            ns.recompute_dim(&g, &mut engine, i, s.iter().copied(), spec.rmax);
        }
        b.iter(|| black_box(ns.best_core()))
    });
    group.finish();
}

fn bench_get_community(c: &mut Criterion) {
    let (g, spec, _) = setup_cell();
    let core = comm_core::CommK::new(&g, &spec)
        .next()
        .expect("default cell has communities")
        .core;
    c.bench_function("get_community", |b| {
        let mut engine = DijkstraEngine::new(g.node_count());
        b.iter(|| black_box(get_community(&g, &mut engine, &core, spec.rmax)))
    });
}

fn bench_projection(c: &mut Criterion) {
    let p = Prepared::imdb(Scale::Quick);
    let (kwf, l, rmax, _) = p.grid.defaults;
    let kws = query_keywords(p.groups, kwf, l);
    let mut group = c.benchmark_group("projection");
    group.bench_function("project_default_query", |b| {
        b.iter(|| black_box(p.index.project(&kws, Weight::new(rmax))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fibheap,
    bench_dijkstra,
    bench_neighbor_bestcore,
    bench_get_community,
    bench_projection
);
criterion_main!(benches);
