//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Sec. VII), plus mechanism ablations. See the `repro` binary
//! for the command-line entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod experiments;
pub mod parallel;
pub mod setup;
pub mod table;

pub use artifact::{write_artifact, ArtifactWrite};
pub use parallel::{BatchQuery, BatchReport, BatchRunner, LatencyStats, MachineInfo};
pub use setup::{IndexSource, Prepared, Scale};
pub use table::Table;
