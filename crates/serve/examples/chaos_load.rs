//! Generates `BENCH_serve.json`: spins up the daemon on a loopback port,
//! drives it with the open-loop load generator under fault injection, and
//! writes the latency/outcome breakdown.
//!
//! Std-only on purpose — it runs in the offline container the same way
//! the CI smoke lane does:
//!
//! ```text
//! cargo run --release -p comm-serve --example chaos_load [OUT.json]
//! ```

use comm_serve::{
    counter, run_load, spawn, AdmissionConfig, ChaosConfig, ClientConfig, EngineConfig, LoadConfig,
    QueryEngine, ServerConfig,
};
use std::sync::Arc;
use std::time::Duration;

fn engine() -> Arc<QueryEngine> {
    // 16×16 torus: heavy enough that deadlines and budgets bite, small
    // enough that the run stays in seconds on one CPU.
    let built = comm_serve::synthetic_engine(
        16,
        EngineConfig {
            parallelism: comm_graph::Parallelism::new(2),
            ..EngineConfig::default()
        },
    );
    match built {
        Ok(e) => Arc::new(e),
        Err(e) => panic!("synthetic engine failed to build: {e}"),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let handle = match spawn(
        engine(),
        ServerConfig {
            admission: AdmissionConfig {
                max_inflight: 1,
                max_queue: 1,
                queue_wait: Duration::from_millis(5),
                base_deadline: Duration::from_millis(500),
                base_settled_budget: 500_000,
                retry_after: Duration::from_millis(5),
            },
            io_timeout: Duration::from_millis(250),
            chaos: ChaosConfig {
                trip_queries_after: Some(20_000),
                disconnect_every: Some(9),
                delay_every: Some((13, Duration::from_millis(10))),
                poison_pool_every: Some(17),
            },
            ..ServerConfig::default()
        },
    ) {
        Ok(h) => h,
        Err(e) => panic!("daemon failed to bind: {e}"),
    };

    let report = run_load(
        handle.addr(),
        &LoadConfig {
            connections: 8,
            requests: 400,
            interarrival: Duration::from_micros(500),
            mix: comm_serve::synthetic_mix(6.0),
            client: ClientConfig {
                max_retries: 3,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(50),
                ..ClientConfig::default()
            },
            slow_client_every: Some(50),
            slow_client_stall: Duration::from_millis(400),
        },
    );

    let counters = handle.counters();
    handle.shutdown();

    // Fold the server-side counters into the report JSON so the bench
    // artifact records both sides of the run.
    let mut json = report.to_json();
    json.pop(); // strip the closing brace
    json.push_str(",\n  \"server\": {\n");
    let picks = [
        "requests",
        "completed",
        "degraded",
        "rejected",
        "admitted",
        "shed",
        "protocol_errors",
        "dedupe_replays",
        "index_cache_hits",
        "index_cache_misses",
        "answer_cache_hits",
        "answer_cache_misses",
        "chaos_disconnects",
        "chaos_delays",
        "chaos_poisons",
        "pool_poison_recoveries",
    ];
    for (i, name) in picks.iter().enumerate() {
        let sep = if i + 1 == picks.len() { "\n" } else { ",\n" };
        json.push_str(&format!(
            "    \"{name}\": {}{sep}",
            counter(&counters, name)
        ));
    }
    json.push_str("  }\n}");

    eprintln!("{json}");
    let healthy = report.fully_classified() && report.protocol_errors == 0;
    if let Err(e) = std::fs::write(&out_path, json + "\n") {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "wrote {out_path}: {} sent, {} complete, {} degraded, {} overloaded",
        report.sent, report.complete, report.degraded, report.overloaded
    );
    if !healthy {
        eprintln!("run was NOT fully classified or had protocol errors");
        std::process::exit(1);
    }
}
