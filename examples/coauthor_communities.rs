//! Keyword community search over a bibliographic database — the paper's
//! motivating scenario (Sec. I): "how are the authors and papers matching
//! these keywords related, beyond a single connecting tree?"
//!
//! Builds a relational database with the DBLP schema (Author / Paper /
//! Write / Cite), materializes the database graph with the paper's
//! `log2(1 + N_in)` edge weights, builds the projection index, and runs an
//! l-keyword query, printing each community with its tuples resolved back
//! to names and titles.
//!
//! ```bash
//! cargo run --release --example coauthor_communities [keyword ...]
//! ```

use communities::datasets::{generate_dblp, DblpConfig};
use communities::graph::Weight;
use communities::rdb::{ColumnId, TableId};
use communities::search::{CommK, ProjectionIndex, QuerySpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let keywords: Vec<&str> = if args.is_empty() {
        vec!["database", "optimization", "support"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let rmax = 6.0;

    // 1. A bibliographic database (synthetic stand-in for DBLP 2008).
    let ds = generate_dblp(&DblpConfig::default());
    println!(
        "DBLP-like database: {} tuples → G_D with {} nodes / {} edges",
        ds.db.tuple_count(),
        ds.graph.graph.node_count(),
        ds.graph.graph.edge_count()
    );

    // 2. Resolve keywords to node sets via the full-text index.
    let keyword_nodes: Vec<_> = keywords
        .iter()
        .map(|kw| ds.graph.keyword_nodes(kw).to_vec())
        .collect();
    for (kw, nodes) in keywords.iter().zip(&keyword_nodes) {
        println!("  keyword {kw:?}: {} matching tuples", nodes.len());
        if nodes.is_empty() {
            println!("  (no matches — try Table III keywords like 'database', 'fuzzy')");
            return;
        }
    }

    // 3. Project the query subgraph (Sec. VI) and search on it.
    let entries: Vec<(&str, &[communities::graph::NodeId])> = keywords
        .iter()
        .map(|&kw| (kw, ds.graph.keyword_nodes(kw)))
        .collect();
    let index = ProjectionIndex::build(&ds.graph.graph, entries, Weight::new(8.0));
    let pq = index
        .project(&keywords, Weight::new(rmax))
        .expect("keywords indexed");
    println!(
        "projected graph: {} nodes ({:.3}% of G_D)\n",
        pq.projected.graph.node_count(),
        100.0 * index.projection_ratio(&pq)
    );

    // 4. Top-5 communities, with tuples resolved to readable text.
    let spec = QuerySpec::new(pq.spec.keyword_nodes.clone(), pq.spec.rmax);
    let describe = |orig: communities::graph::NodeId| -> String {
        let tref = ds.graph.tuple_of(orig);
        let table = ds.db.table(tref.table);
        match table.schema().name.as_str() {
            "Author" => format!("Author({})", table.cell(tref.row, ColumnId(1))),
            "Paper" => format!("Paper(\"{}\")", table.cell(tref.row, ColumnId(1))),
            "Write" => "Write".to_owned(),
            _ => "Cite".to_owned(),
        }
    };
    let _ = TableId(0); // (typed ids are how rdb addresses tables)
    for (rank, c) in CommK::new(&pq.projected.graph, &spec).take(5).enumerate() {
        println!("── community #{} (cost {:.2}) ──", rank + 1, c.cost.get());
        for (i, &local) in c.core.0.iter().enumerate() {
            println!(
                "  keyword {:?} ← {}",
                keywords[i],
                describe(pq.projected.to_original(local))
            );
        }
        let centers: Vec<String> = c
            .centers
            .iter()
            .map(|&v| describe(pq.projected.to_original(v)))
            .collect();
        println!("  {} centers: {}", c.centers.len(), centers.join(", "));
        println!(
            "  community subgraph: {} nodes / {} edges\n",
            c.node_count(),
            c.edge_count()
        );
    }
}
