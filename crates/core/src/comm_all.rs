//! `COMM-all` (Algorithm 1): polynomial-delay enumeration of *all*
//! communities, complete and duplication-free.
//!
//! The enumerator is a depth-first Lawler-style traversal over the search
//! space `V_1 × … × V_l`. The global candidate sets `S_i` (line 3 of
//! Algorithm 1) encode the DFS state implicitly: when `Next()` fails to
//! find a core in the subspace at dimension `i` it resets `S_i ← V_i`
//! (line 19) and "pops" to dimension `i − 1`; when it succeeds the
//! accumulated removals carry over to the next call.
//!
//! Per emitted community the work is `l` pinned `Neighbor()` calls, at most
//! `2l` subspace `Neighbor()` calls, `l` `O(n)` `BestCore()` scans, and one
//! `GetCommunity()` — `O(l · (n log n + m))`, the paper's Theorem IV.1 —
//! using `O(l·n + m)` space.

use crate::error::QueryError;
use crate::get_community::get_community_guarded;
use crate::neighbor::NeighborSets;
use crate::types::{Community, Core, CostFn, QuerySpec};
use comm_graph::{
    DijkstraEngine, EnginePool, Graph, InterruptReason, NodeId, Outcome, Parallelism, RunGuard,
    Weight,
};
use std::collections::BTreeSet;

/// Polynomial-delay iterator over all communities of an l-keyword query.
///
/// ```
/// use comm_core::{CommAll, QuerySpec};
/// use comm_datasets::paper_example::{fig4_graph, fig4_keyword_nodes, FIG4_RMAX};
/// use comm_graph::Weight;
///
/// let graph = fig4_graph();
/// let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
/// let all: Vec<_> = CommAll::new(&graph, &spec).collect();
/// assert_eq!(all.len(), 5); // the paper's five communities (Fig. 5)
/// ```
pub struct CommAll<'g> {
    graph: &'g Graph,
    rmax: Weight,
    cost_fn: CostFn,
    l: usize,
    /// `V_i`, immutable.
    v_sets: Vec<Vec<NodeId>>,
    /// `S_i`: the currently admissible subset of `V_i` (global DFS state).
    s_sets: Vec<BTreeSet<NodeId>>,
    ns: NeighborSets,
    engine: DijkstraEngine,
    /// The core to emit on the next `next()` call.
    pending: Option<Core>,
    emitted: usize,
    peak_bytes: usize,
    started: bool,
    guard: RunGuard,
    /// Thread count for the initial keyword sweeps (default: serial).
    parallelism: Parallelism,
    /// Set once the guard trips; the iterator then yields `None` forever.
    interrupted: Option<InterruptReason>,
}

impl<'g> CommAll<'g> {
    /// Prepares the enumeration (runs the initial `Neighbor()` sweeps and
    /// finds the first best core lazily on first `next()`).
    pub fn new(graph: &'g Graph, spec: &QuerySpec) -> CommAll<'g> {
        let l = spec.l();
        assert!(l > 0, "need at least one keyword");
        CommAll {
            graph,
            rmax: spec.rmax,
            cost_fn: spec.cost,
            l,
            v_sets: spec.keyword_nodes.clone(),
            s_sets: spec
                .keyword_nodes
                .iter()
                .map(|v| v.iter().copied().collect())
                .collect(),
            ns: NeighborSets::new(l, graph.node_count()),
            engine: DijkstraEngine::new(graph.node_count()),
            pending: None,
            emitted: 0,
            peak_bytes: 0,
            started: false,
            guard: RunGuard::unlimited(),
            parallelism: Parallelism::serial(),
            interrupted: None,
        }
    }

    /// Like [`new`](Self::new), but validates the spec against the graph
    /// instead of panicking on malformed input.
    pub fn try_new(graph: &'g Graph, spec: &QuerySpec) -> Result<CommAll<'g>, QueryError> {
        spec.validate_for(graph)?;
        Ok(CommAll::new(graph, spec))
    }

    /// Sets the thread count for the `l` initial `Neighbor(V_i, Rmax)`
    /// sweeps, which are data-independent. The enumeration output is
    /// bit-identical for every thread count (see
    /// [`NeighborSets::recompute_all_guarded`]); the per-community DFS
    /// recomputations stay sequential because each depends on the previous
    /// subspace. Default: [`Parallelism::serial`].
    pub fn with_parallelism(mut self, par: Parallelism) -> CommAll<'g> {
        self.parallelism = par;
        self
    }

    /// Attaches an execution governor. The guard is consulted per settled
    /// Dijkstra node, per emitted community, and on memory high-water
    /// marks; when it trips the iterator stops (yielding a prefix of the
    /// unguarded enumeration) and [`interrupted`](Self::interrupted)
    /// reports why.
    pub fn with_guard(mut self, guard: RunGuard) -> CommAll<'g> {
        self.guard = guard;
        self
    }

    /// Why enumeration stopped early, if the guard tripped.
    pub fn interrupted(&self) -> Option<InterruptReason> {
        self.interrupted
    }

    /// Number of communities emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Peak logical bytes held by algorithm-owned structures (the
    /// `O(l·n)` neighbor table plus the `S_i` sets).
    pub fn peak_memory_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Total `Neighbor()` sweeps run so far (the paper's per-answer cost
    /// unit: `O(l)` sweeps per community for this algorithm).
    pub fn neighbor_sweeps(&self) -> usize {
        self.ns.sweeps()
    }

    fn track_memory(&mut self) -> Result<(), InterruptReason> {
        let s_bytes: usize = self
            .s_sets
            .iter()
            .map(|s| s.len() * std::mem::size_of::<NodeId>() * 2)
            .sum();
        let bytes = self.ns.byte_size() + s_bytes;
        if bytes > self.peak_bytes {
            self.peak_bytes = bytes;
        }
        self.guard.check_bytes(bytes)
    }

    fn recompute_from_s(&mut self, i: usize) -> Result<(), InterruptReason> {
        let seeds: Vec<NodeId> = self.s_sets[i].iter().copied().collect();
        self.ns.recompute_dim_guarded(
            self.graph,
            &mut self.engine,
            i,
            seeds,
            self.rmax,
            &self.guard,
        )
    }

    /// Lines 1–5 of Algorithm 1: initialize `S_i = V_i`, compute all
    /// neighbor sets (fanned out per [`with_parallelism`](Self::with_parallelism)),
    /// and find the first best core.
    fn start(&mut self) -> Result<(), InterruptReason> {
        self.started = true;
        let seeds: Vec<Vec<NodeId>> = self
            .s_sets
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        self.ns.recompute_all_guarded(
            self.graph,
            EnginePool::global(),
            &seeds,
            self.rmax,
            &self.guard,
            self.parallelism,
        )?;
        self.pending = self.ns.best_core_with(self.cost_fn).map(|b| b.core);
        self.track_memory()
    }

    /// The `Next()` procedure (lines 10–21).
    fn next_core(&mut self, current: &Core) -> Result<Option<Core>, InterruptReason> {
        // Preparation: pin every dimension's neighbor set to the current
        // core node (lines 11–12).
        for i in 0..self.l {
            self.ns.recompute_dim_guarded(
                self.graph,
                &mut self.engine,
                i,
                [current.get(i)],
                self.rmax,
                &self.guard,
            )?;
        }
        // Search: subdivide from the last dimension down (lines 13–20).
        for i in (0..self.l).rev() {
            self.s_sets[i].remove(&current.get(i));
            self.recompute_from_s(i)?;
            if let Some(best) = self.ns.best_core_with(self.cost_fn) {
                self.track_memory()?;
                return Ok(Some(best.core));
            }
            self.s_sets[i] = self.v_sets[i].iter().copied().collect();
            self.recompute_from_s(i)?;
        }
        self.track_memory()?;
        Ok(None)
    }

    /// Records a guard trip; subsequent `next()` calls yield `None`.
    fn trip(&mut self, reason: InterruptReason) {
        self.interrupted = Some(reason);
        self.pending = None;
    }
}

impl<'g> Iterator for CommAll<'g> {
    type Item = Community;

    fn next(&mut self) -> Option<Community> {
        if self.interrupted.is_some() {
            return None;
        }
        if !self.started {
            if let Err(reason) = self.start() {
                self.trip(reason);
                return None;
            }
        }
        let core = self.pending.take()?;
        // Candidate budget k ⇒ exactly k communities emitted.
        if let Err(reason) = self.guard.note_candidate() {
            self.trip(reason);
            return None;
        }
        let community = match get_community_guarded(
            self.graph,
            &mut self.engine,
            &core,
            self.rmax,
            self.cost_fn,
            &self.guard,
        ) {
            // xtask-allow: no_panics — BestCore only returns cores certified by a center
            Ok(c) => c.expect("a core returned by BestCore always has a center"),
            Err(reason) => {
                self.trip(reason);
                return None;
            }
        };
        // If the guard trips while advancing the DFS, the community already
        // materialized is still emitted: output stays an exact prefix.
        match self.next_core(&core) {
            Ok(next) => self.pending = next,
            Err(reason) => self.trip(reason),
        }
        self.emitted += 1;
        Some(community)
    }
}

/// Convenience: all communities as a vector.
pub fn comm_all(graph: &Graph, spec: &QuerySpec) -> Vec<Community> {
    CommAll::new(graph, spec).collect()
}

/// [`comm_all`] validating the spec and running under `guard`.
///
/// An interrupted run returns `Outcome::Interrupted` carrying the
/// communities emitted before the trip — always an exact prefix of the
/// unguarded enumeration order.
pub fn comm_all_guarded(
    graph: &Graph,
    spec: &QuerySpec,
    guard: RunGuard,
) -> Result<Outcome<Vec<Community>>, QueryError> {
    let mut it = CommAll::try_new(graph, spec)?.with_guard(guard);
    let mut out = Vec::new();
    for c in &mut it {
        // xtask-allow: unbounded_alloc — with_guard charges per candidate inside the iterator
        out.push(c);
    }
    Ok(match it.interrupted() {
        None => Outcome::Complete(out),
        Some(reason) => Outcome::Interrupted {
            reason,
            partial: out,
        },
    })
}

/// [`comm_all`] with up-front validation and no execution limits.
pub fn try_comm_all(graph: &Graph, spec: &QuerySpec) -> Result<Vec<Community>, QueryError> {
    Ok(comm_all_guarded(graph, spec, RunGuard::unlimited())?.into_value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm_datasets::paper_example::{
        fig1_graph, fig1_keyword_nodes, fig4_graph, fig4_keyword_nodes, fig4_table1, FIG4_RMAX,
    };
    use std::collections::BTreeSet as Set;

    fn fig4_spec(rmax: f64) -> QuerySpec {
        QuerySpec::new(fig4_keyword_nodes(), Weight::new(rmax))
    }

    #[test]
    fn finds_exactly_the_five_paper_communities() {
        let g = fig4_graph();
        let all = comm_all(&g, &fig4_spec(FIG4_RMAX));
        assert_eq!(all.len(), 5);
        let got: Set<Vec<u32>> = all
            .iter()
            .map(|c| c.core.0.iter().map(|n| n.0).collect())
            .collect();
        let expect: Set<Vec<u32>> = fig4_table1()
            .into_iter()
            .map(|(_, core, _, _)| core.to_vec())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn first_community_is_the_best_one() {
        // Algorithm 1 finds the *best* core first (line 5), then walks DFS.
        let g = fig4_graph();
        let first = CommAll::new(&g, &fig4_spec(FIG4_RMAX)).next().unwrap();
        assert_eq!(first.core, Core(vec![NodeId(4), NodeId(8), NodeId(6)]));
        assert_eq!(first.cost, Weight::new(7.0));
    }

    #[test]
    fn costs_and_centers_match_table1() {
        let g = fig4_graph();
        let all = comm_all(&g, &fig4_spec(FIG4_RMAX));
        for (_, core, cost, centers) in fig4_table1() {
            let c = all
                .iter()
                .find(|c| c.core.0.iter().map(|n| n.0).collect::<Vec<_>>() == core)
                .unwrap_or_else(|| panic!("missing core {core:?}"));
            assert_eq!(c.cost, Weight::new(cost));
            assert_eq!(c.centers.iter().map(|n| n.0).collect::<Vec<_>>(), centers);
        }
    }

    #[test]
    fn duplication_free() {
        let g = fig4_graph();
        let all = comm_all(&g, &fig4_spec(FIG4_RMAX));
        let mut seen = Set::new();
        for c in &all {
            assert!(seen.insert(c.core.clone()), "duplicate core {:?}", c.core);
        }
    }

    #[test]
    fn larger_radius_finds_superset() {
        let g = fig4_graph();
        let small: Set<Core> = comm_all(&g, &fig4_spec(6.0))
            .into_iter()
            .map(|c| c.core)
            .collect();
        let large: Set<Core> = comm_all(&g, &fig4_spec(10.0))
            .into_iter()
            .map(|c| c.core)
            .collect();
        assert!(small.is_subset(&large));
        assert!(small.len() < large.len() || small == large);
    }

    #[test]
    fn empty_keyword_set_yields_nothing() {
        let g = fig4_graph();
        let spec = QuerySpec::new(vec![vec![NodeId(4)], vec![]], Weight::new(8.0));
        assert_eq!(comm_all(&g, &spec).len(), 0);
    }

    #[test]
    fn single_keyword_query() {
        // l = 1: every keyword node is its own community core.
        let g = fig4_graph();
        let spec = QuerySpec::new(vec![vec![NodeId(4), NodeId(13)]], Weight::new(8.0));
        let all = comm_all(&g, &spec);
        let cores: Set<Vec<u32>> = all
            .iter()
            .map(|c| c.core.0.iter().map(|n| n.0).collect())
            .collect();
        assert_eq!(cores, Set::from([vec![4], vec![13]]));
    }

    #[test]
    fn two_keyword_fig1_query() {
        // Kate + Smith on Fig. 1 with radius 6: cores are
        // [Kate, JohnSmith] and [Kate, JimSmith].
        let g = fig1_graph();
        let spec = QuerySpec::new(fig1_keyword_nodes(), Weight::new(6.0));
        let all = comm_all(&g, &spec);
        assert_eq!(all.len(), 2);
        // The John Smith community is the multi-center one from Fig. 3:
        // both papers are centers.
        let john = all
            .iter()
            .find(|c| c.core.get(1) == NodeId(0))
            .expect("john smith community");
        assert!(john.centers.len() >= 2, "centers: {:?}", john.centers);
    }

    #[test]
    fn emitted_counter_and_memory() {
        let g = fig4_graph();
        let mut it = CommAll::new(&g, &fig4_spec(FIG4_RMAX));
        assert_eq!(it.emitted(), 0);
        while it.next().is_some() {}
        assert_eq!(it.emitted(), 5);
        assert!(it.peak_memory_bytes() > 0);
    }

    #[test]
    fn candidate_budget_emits_exact_prefix() {
        let g = fig4_graph();
        let spec = fig4_spec(FIG4_RMAX);
        let full = comm_all(&g, &spec);
        for k in 0..=full.len() {
            let guard = RunGuard::new().with_candidate_budget(k as u64);
            let out = comm_all_guarded(&g, &spec, guard).unwrap();
            if k < full.len() {
                assert_eq!(
                    out.reason(),
                    Some(InterruptReason::CandidateBudgetExhausted)
                );
            } else {
                assert!(out.is_complete());
            }
            let got = out.into_value();
            assert_eq!(got.len(), k.min(full.len()));
            for (a, b) in got.iter().zip(&full) {
                assert_eq!(a.core, b.core, "prefix order diverged at budget {k}");
            }
        }
    }

    #[test]
    fn try_comm_all_rejects_bad_specs() {
        let g = fig4_graph();
        let bad = QuerySpec::new(vec![vec![NodeId(999)]], Weight::new(8.0));
        assert!(matches!(
            try_comm_all(&g, &bad),
            Err(QueryError::NodeOutOfRange { dim: 0, .. })
        ));
        let ok = try_comm_all(&g, &fig4_spec(FIG4_RMAX)).unwrap();
        assert_eq!(ok.len(), 5);
    }

    #[test]
    fn zero_radius_query() {
        // Rmax = 0: a community needs a single node carrying all keywords.
        let g = fig4_graph();
        let spec = QuerySpec::new(
            vec![vec![NodeId(4), NodeId(6)], vec![NodeId(6)]],
            Weight::ZERO,
        );
        let all = comm_all(&g, &spec);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].core, Core(vec![NodeId(6), NodeId(6)]));
        assert_eq!(all[0].cost, Weight::ZERO);
    }
}
