//! Saves the synthetic torus engine's graph + vocabulary as a CGPH v2
//! container, so the CI warm-start lane can restart the daemon against it
//! (`comm-explore serve --graph PATH`) without rebuilding anything:
//!
//! ```text
//! cargo run --release -p comm-serve --example warm_bundle -- [SIDE] OUT.cgph
//! ```

use comm_graph::container::save_container;
use comm_graph::NodeId;
use comm_serve::{synthetic_engine, EngineConfig, KEYWORDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (side, out) = match args.as_slice() {
        [side, out] => (
            side.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("SIDE: '{side}' is not a number");
                std::process::exit(2);
            }),
            out.as_str(),
        ),
        [out] => (16, out.as_str()),
        _ => {
            eprintln!("usage: warm_bundle [SIDE] OUT.cgph");
            std::process::exit(2);
        }
    };

    let engine = synthetic_engine(side, EngineConfig::default()).unwrap_or_else(|e| {
        eprintln!("engine build failed: {e}");
        std::process::exit(1);
    });
    let keywords: Vec<(&str, &[NodeId])> = KEYWORDS
        .iter()
        .filter_map(|&kw| engine.keyword_nodes(kw).map(|nodes| (kw, nodes)))
        .collect();
    if let Err(e) = save_container(out, engine.graph(), keywords, None) {
        eprintln!("could not save {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "saved {out}: n={} m={} keywords={}",
        engine.graph().node_count(),
        engine.graph().edge_count(),
        KEYWORDS.len()
    );
}
