//! The paper's introduction, from scratch: build the Kate/Smith
//! co-authorship database (Fig. 1) as a *relational database*, materialize
//! it into a database graph, and contrast what a 2-keyword query returns —
//! the five connected trees of Fig. 2 give fragments; the community of
//! Fig. 3 gives the whole picture at once.
//!
//! ```bash
//! cargo run --example kate_and_smith
//! ```

use communities::graph::Weight;
use communities::rdb::{
    ColumnDef, ColumnType, Database, DatabaseGraph, EdgeMode, TableSchema, Value, WeightScheme,
};
use communities::search::{comm_all, QuerySpec};

fn main() {
    // Author(Aid, Name), Paper(Pid, Title), Write(Aid, Pid, Pos), Cite(Pid1, Pid2)
    let mut db = Database::new();
    let author = db.create_table(
        TableSchema::new(
            "Author",
            vec![
                ColumnDef::new("Aid", ColumnType::Int),
                ColumnDef::full_text("Name"),
            ],
        )
        .with_primary_key("Aid"),
    );
    let paper = db.create_table(
        TableSchema::new(
            "Paper",
            vec![
                ColumnDef::new("Pid", ColumnType::Int),
                ColumnDef::full_text("Title"),
            ],
        )
        .with_primary_key("Pid"),
    );
    let write = db.create_table(
        TableSchema::new(
            "Write",
            vec![
                ColumnDef::new("Aid", ColumnType::Int),
                ColumnDef::new("Pid", ColumnType::Int),
                ColumnDef::new("Pos", ColumnType::Int),
            ],
        )
        .with_foreign_key("Aid", author)
        .with_foreign_key("Pid", paper),
    );
    let cite = db.create_table(
        TableSchema::new(
            "Cite",
            vec![
                ColumnDef::new("Pid1", ColumnType::Int),
                ColumnDef::new("Pid2", ColumnType::Int),
            ],
        )
        .with_foreign_key("Pid1", paper)
        .with_foreign_key("Pid2", paper),
    );

    for (aid, name) in [(1, "John Smith"), (2, "Jim Smith"), (3, "Kate Green")] {
        db.insert(author, &[Value::Int(aid), Value::from(name)])
            .unwrap();
    }
    db.insert(paper, &[Value::Int(1), Value::from("paper1")])
        .unwrap();
    db.insert(paper, &[Value::Int(2), Value::from("paper2")])
        .unwrap();
    // Author order is recorded in Pos (1 = first author, …).
    for (aid, pid, pos) in [(1, 1, 1), (3, 1, 2), (3, 2, 1), (1, 2, 2), (2, 2, 3)] {
        db.insert(write, &[Value::Int(aid), Value::Int(pid), Value::Int(pos)])
            .unwrap();
    }
    db.insert(cite, &[Value::Int(1), Value::Int(2)]).unwrap();
    println!(
        "relational database: {} tables, {} tuples",
        db.table_count(),
        db.tuple_count()
    );

    // Materialize G_D. (The intro's hand-drawn figure collapses Write
    // tuples into weighted author↔paper edges; the materialized graph
    // keeps the Write tuples as nodes, which only lengthens paths.)
    let dg = DatabaseGraph::materialize(&db, WeightScheme::LogInDegree, EdgeMode::BiDirected);
    println!(
        "database graph: {} nodes, {} edges (bi-directed FK references)\n",
        dg.graph.node_count(),
        dg.graph.edge_count()
    );

    // The 2-keyword query {kate, smith}.
    let spec = QuerySpec::new(
        vec![
            dg.keyword_nodes("kate").to_vec(),
            dg.keyword_nodes("smith").to_vec(),
        ],
        Weight::new(8.0),
    );
    println!("2-keyword query {{kate, smith}}, Rmax = 8:\n");
    for c in comm_all(&dg.graph, &spec) {
        let name_of = |n: communities::graph::NodeId| {
            let t = dg.tuple_of(n);
            let table = db.table(t.table);
            match table.schema().name.as_str() {
                "Author" | "Paper" => table.row(t.row)[1].to_string(),
                other => other.to_owned(),
            }
        };
        println!(
            "community (cost {:.2}): kate = {:?}, smith = {:?}",
            c.cost.get(),
            name_of(c.core.get(0)),
            name_of(c.core.get(1)),
        );
        println!(
            "  {} centers, {} path nodes, {} total nodes — the single community \
             subsumes every connecting tree between these two authors",
            c.centers.len(),
            c.path_nodes.len(),
            c.node_count()
        );
    }
}
