//! Serial-vs-parallel benchmark: `parallel [--quick] [--out PATH]`.
//!
//! Measures, on the DBLP-like dataset:
//!
//! 1. `NeighborSets` initialization (the enumerators' initial keyword
//!    sweeps) at 1/2/4/8 threads;
//! 2. `ProjectionIndex` construction at 1/2/4/8 threads;
//! 3. the [`BatchRunner`] driving a 4-keyword top-k workload at each
//!    thread count,
//!
//! and writes everything — with machine metadata — to
//! `BENCH_parallel.json` (or `--out PATH`).

use comm_bench::parallel::{MachineInfo, ParallelBenchReport, SpeedupSample};
use comm_bench::{BatchQuery, BatchRunner, Prepared, Scale};
use comm_core::{EnginePool, NeighborSets, Parallelism, ProjectionIndex, RunGuard};
use comm_graph::{NodeId, Weight};
use std::time::{Duration, Instant};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Best-of-`reps` wall clock for `f`, in milliseconds.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

/// One micro-benchmark axis: run `f(threads)` per sweep point and derive
/// speedups against the 1-thread sample.
fn sweep(name: &str, reps: usize, mut f: impl FnMut(usize)) -> Vec<SpeedupSample> {
    let mut out = Vec::new();
    let mut serial_ms = f64::NAN;
    for &threads in &THREAD_SWEEP {
        let ms = best_ms(reps, || f(threads));
        if threads == 1 {
            serial_ms = ms;
        }
        let sample = SpeedupSample {
            name: name.to_owned(),
            threads,
            best_ms: ms,
            speedup: serial_ms / ms,
        };
        println!(
            "  {name:24} threads={threads}  {ms:9.2} ms  speedup {:.2}x",
            sample.speedup
        );
        out.push(sample);
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let force = args.iter().any(|a| a == "--force");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_parallel.json", String::as_str);
    let scale = if quick { Scale::Quick } else { Scale::Full };

    let t0 = Instant::now();
    let p = Prepared::dblp(scale);
    let graph = &p.dataset.graph.graph;
    let n = graph.node_count();
    let dataset = format!("dblp ({scale:?}): n={} m={}", n, graph.edge_count());
    println!("[setup] {dataset} in {:?}", t0.elapsed());

    let (kwf, l, rmax, k) = p.grid.defaults;
    let pool = EnginePool::new();
    let mut microbench = Vec::new();

    // 1. NeighborSets init: the l initial keyword sweeps + sum/count
    // rebuild, exactly what CommAll/CommK::start() runs.
    let kws = p.keywords(kwf, l);
    let seeds: Vec<Vec<NodeId>> = kws
        .iter()
        .map(|kw| p.dataset.graph.keyword_nodes(kw).to_vec())
        .collect();
    println!("[bench] neighbor_sets_init over {kws:?} (l={l}, rmax={rmax})");
    microbench.extend(sweep("neighbor_sets_init", 3, |threads| {
        let mut ns = NeighborSets::new(l, n);
        ns.recompute_all(
            graph,
            &pool,
            &seeds,
            Weight::new(rmax),
            Parallelism::new(threads),
        );
    }));

    // 2. ProjectionIndex build over every benchmark keyword, at the grid's
    // maximum radius — the setup cost the index pays once per dataset.
    let entries: Vec<(&str, &[NodeId])> = p
        .groups
        .iter()
        .flat_map(|g| {
            g.keywords
                .iter()
                .map(|&kw| (kw, p.dataset.graph.keyword_nodes(kw)))
        })
        .collect();
    let radius = Weight::new(*p.grid.rmax.last().expect("non-empty rmax grid"));
    println!("[bench] projection_build over {} keywords", entries.len());
    microbench.extend(sweep("projection_build", 2, |threads| {
        let idx = ProjectionIndex::build_par_guarded(
            graph,
            entries.iter().copied(),
            radius,
            &RunGuard::unlimited(),
            &pool,
            Parallelism::new(threads),
        )
        .expect("unlimited build");
        std::hint::black_box(idx.keyword_count());
    }));

    // 3. The batch driver: every KWF bucket's 4-keyword query, replicated
    // to a steady workload, at each thread count.
    let mut queries = Vec::new();
    let replicas = if quick { 2 } else { 4 };
    for round in 0..replicas {
        for &bucket_kwf in p.grid.kwf {
            let kws = p.keywords(bucket_kwf, 4);
            queries.push(BatchQuery {
                label: format!("r{round}-kwf{bucket_kwf}-{}", kws.join("+")),
                keyword_nodes: kws
                    .iter()
                    .map(|kw| p.dataset.graph.keyword_nodes(kw).to_vec())
                    .collect(),
                rmax,
                k,
            });
        }
    }
    println!(
        "[bench] batch driver: {} 4-keyword queries, k={k}",
        queries.len()
    );
    let mut batches = Vec::new();
    for &threads in &THREAD_SWEEP {
        let report = BatchRunner::new(Parallelism::new(threads))
            .with_deadline(Duration::from_secs(60))
            .run(graph, &queries);
        println!(
            "  batch threads={threads}  wall {:9.2} ms  {:.2} q/s  p50 {:.0} µs  p99 {:.0} µs  ({} ok / {} int / {} bad)",
            report.wall_ms,
            report.qps,
            report.latency.p50_us,
            report.latency.p99_us,
            report.completed,
            report.interrupted,
            report.invalid
        );
        batches.push(report);
    }
    if let (Some(serial), Some(four)) = (
        batches.iter().find(|b| b.threads == 1),
        batches.iter().find(|b| b.threads == 4),
    ) {
        println!(
            "[summary] 4-keyword batch speedup at 4 threads: {:.2}x",
            serial.wall_ms / four.wall_ms
        );
    }

    let machine = MachineInfo::capture();
    let report = ParallelBenchReport {
        machine: machine.clone(),
        dataset,
        microbench,
        batches,
    };
    match serde_json::to_string_pretty(&report) {
        // The provenance guard keeps a 1-CPU rerun from clobbering the
        // committed multi-core numbers; CI records with --force.
        Ok(json) => match comm_bench::write_artifact(out_path, &json, &machine, force) {
            Ok(comm_bench::ArtifactWrite::Written) => {
                println!("[done] wrote {out_path} in {:?}", t0.elapsed());
            }
            Ok(comm_bench::ArtifactWrite::Refused(msg)) => {
                eprintln!("warning: {msg}");
                std::process::exit(1);
            }
            Err(e) => eprintln!("warning: could not write {out_path}: {e}"),
        },
        Err(e) => eprintln!("warning: could not serialize report: {e}"),
    }
}
