//! Quickstart: the paper's running example end-to-end.
//!
//! Builds the Fig. 4 database graph, runs the 3-keyword query {a, b, c}
//! with Rmax = 8, and prints all five communities in rank order — the
//! paper's Table I.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use communities::datasets::paper_example::{fig4_graph, fig4_keyword_nodes, FIG4_RMAX};
use communities::graph::Weight;
use communities::search::{CommK, QuerySpec};

fn main() {
    let graph = fig4_graph();
    println!(
        "database graph G_D: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // An l-keyword query is a set of node sets V_1..V_l plus a radius.
    let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
    println!("3-keyword query {{a, b, c}} with Rmax = {FIG4_RMAX}\n");

    println!(
        "{:<6} {:<18} {:<6} {:<14} {:<10}",
        "rank", "core [a,b,c]", "cost", "centers", "path nodes"
    );
    for (rank, community) in CommK::new(&graph, &spec).enumerate() {
        println!(
            "{:<6} {:<18} {:<6} {:<14} {:<10}",
            rank + 1,
            format!("{:?}", community.core),
            format!("{}", community.cost),
            format!("{:?}", community.centers),
            format!("{:?}", community.path_nodes),
        );
    }

    // A community is an induced subgraph; inspect the top one.
    let top = CommK::new(&graph, &spec)
        .next()
        .expect("five communities exist");
    println!(
        "\ntop community: {} nodes, {} edges, knodes {:?}",
        top.node_count(),
        top.edge_count(),
        top.knodes
    );
}
