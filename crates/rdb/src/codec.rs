//! Row encoding.
//!
//! Tuples are stored as compact byte rows (tag + payload per cell) in a
//! per-table arena, rather than as `Vec<Value>` — at DBLP scale (millions of
//! tuples) the pointer-per-cell representation would dominate memory.
//!
//! Encoding validates before writing (no partial rows on error), and
//! decoding is fully checked: a corrupted arena slice yields
//! [`RdbError::CorruptRow`] instead of a panic or an out-of-bounds slice.

use crate::error::RdbError;
use crate::value::Value;
use bytes::{BufMut, BytesMut};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_TEXT: u8 = 2;
const TAG_FLOAT: u8 = 3;

/// Encodes one tuple into `buf`.
///
/// Fails with [`RdbError::OversizedText`] — before writing anything — when a
/// text cell exceeds the `u32` length prefix.
pub fn encode_row(values: &[Value], buf: &mut BytesMut) -> Result<(), RdbError> {
    for v in values {
        if let Value::Text(s) = v {
            if u32::try_from(s.len()).is_err() {
                return Err(RdbError::OversizedText { len: s.len() });
            }
        }
    }
    for v in values {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Text(s) => {
                buf.put_u8(TAG_TEXT);
                // Validated above; `as`-free thanks to the pre-scan.
                let len = u32::try_from(s.len()).unwrap_or_default();
                buf.put_u32_le(len);
                buf.put_slice(s.as_bytes());
            }
            Value::Float(x) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_f64_le(*x);
            }
        }
    }
    Ok(())
}

/// Decodes a full row of `arity` cells from an arena slice.
pub fn decode_row(mut bytes: &[u8], arity: usize) -> Result<Vec<Value>, RdbError> {
    let mut out = Vec::with_capacity(arity);
    for _ in 0..arity {
        out.push(decode_value(&mut bytes)?);
    }
    if !bytes.is_empty() {
        return Err(corrupt("trailing bytes after row decode"));
    }
    Ok(out)
}

/// Decodes only the cell at `column`, skipping the others cheaply.
pub fn decode_cell(mut bytes: &[u8], column: usize) -> Result<Value, RdbError> {
    for _ in 0..column {
        skip_value(&mut bytes)?;
    }
    decode_value(&mut bytes)
}

fn corrupt(detail: &str) -> RdbError {
    RdbError::CorruptRow {
        detail: detail.to_owned(),
    }
}

fn take_u8(bytes: &mut &[u8]) -> Result<u8, RdbError> {
    let (&first, rest) = bytes
        .split_first()
        .ok_or_else(|| corrupt("row truncated at cell tag"))?;
    *bytes = rest;
    Ok(first)
}

fn take<'a>(bytes: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], RdbError> {
    if bytes.len() < n {
        return Err(corrupt(what));
    }
    let (head, rest) = bytes.split_at(n);
    *bytes = rest;
    Ok(head)
}

fn take_array<const N: usize>(bytes: &mut &[u8], what: &str) -> Result<[u8; N], RdbError> {
    let head = take(bytes, N, what)?;
    let mut arr = [0u8; N];
    arr.copy_from_slice(head);
    Ok(arr)
}

fn decode_value(bytes: &mut &[u8]) -> Result<Value, RdbError> {
    match take_u8(bytes)? {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(i64::from_le_bytes(take_array(
            bytes,
            "row truncated inside Int cell",
        )?))),
        TAG_TEXT => {
            let len32 = u32::from_le_bytes(take_array(bytes, "row truncated at Text length")?);
            let len = usize::try_from(len32)
                .map_err(|_| corrupt("text length exceeds host address width"))?;
            let raw = take(bytes, len, "row truncated inside Text cell")?;
            let text =
                std::str::from_utf8(raw).map_err(|_| corrupt("text cell is not valid UTF-8"))?;
            Ok(Value::Text(text.to_owned()))
        }
        TAG_FLOAT => Ok(Value::Float(f64::from_le_bytes(take_array(
            bytes,
            "row truncated inside Float cell",
        )?))),
        _ => Err(corrupt("unknown cell tag")),
    }
}

fn skip_value(bytes: &mut &[u8]) -> Result<(), RdbError> {
    match take_u8(bytes)? {
        TAG_NULL => Ok(()),
        TAG_INT => take(bytes, 8, "row truncated inside Int cell").map(|_| ()),
        TAG_TEXT => {
            let len32 = u32::from_le_bytes(take_array(bytes, "row truncated at Text length")?);
            let len = usize::try_from(len32)
                .map_err(|_| corrupt("text length exceeds host address width"))?;
            take(bytes, len, "row truncated inside Text cell").map(|_| ())
        }
        TAG_FLOAT => take(bytes, 8, "row truncated inside Float cell").map(|_| ()),
        _ => Err(corrupt("unknown cell tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(vals: Vec<Value>) {
        let mut buf = BytesMut::new();
        encode_row(&vals, &mut buf).unwrap();
        let decoded = decode_row(&buf, vals.len()).unwrap();
        assert_eq!(decoded, vals);
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(vec![
            Value::Int(42),
            Value::Text("community search".into()),
            Value::Null,
            Value::Float(2.5),
        ]);
    }

    #[test]
    fn roundtrip_empty_text() {
        roundtrip(vec![Value::Text(String::new())]);
    }

    #[test]
    fn roundtrip_negative_int() {
        roundtrip(vec![Value::Int(-7)]);
    }

    #[test]
    fn decode_single_cell() {
        let vals = vec![Value::Int(1), Value::Text("skip me".into()), Value::Int(99)];
        let mut buf = BytesMut::new();
        encode_row(&vals, &mut buf).unwrap();
        assert_eq!(decode_cell(&buf, 0).unwrap(), Value::Int(1));
        assert_eq!(decode_cell(&buf, 1).unwrap(), Value::Text("skip me".into()));
        assert_eq!(decode_cell(&buf, 2).unwrap(), Value::Int(99));
    }

    #[test]
    fn unicode_text() {
        roundtrip(vec![Value::Text("数据库 communauté".into())]);
    }

    #[test]
    fn unknown_tag_is_an_error_not_a_panic() {
        let err = decode_row(&[9u8], 1).unwrap_err();
        assert!(matches!(err, RdbError::CorruptRow { .. }));
        assert!(err.to_string().contains("unknown cell tag"));
        let err = decode_cell(&[9u8, TAG_INT], 1).unwrap_err();
        assert!(matches!(err, RdbError::CorruptRow { .. }));
    }

    #[test]
    fn truncated_cells_are_errors() {
        // Int tag with only 3 payload bytes.
        assert!(decode_row(&[TAG_INT, 1, 2, 3], 1).is_err());
        // Text claiming 10 bytes but carrying 2.
        let mut buf = vec![TAG_TEXT];
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"ab");
        assert!(decode_row(&buf, 1).is_err());
        // Empty slice.
        assert!(decode_row(&[], 1).is_err());
        // Skipping over a truncated cell fails too.
        assert!(decode_cell(&[TAG_FLOAT, 0], 1).is_err());
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut buf = vec![TAG_TEXT];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = decode_row(&buf, 1).unwrap_err();
        assert!(err.to_string().contains("UTF-8"));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut buf = BytesMut::new();
        encode_row(&[Value::Int(1)], &mut buf).unwrap();
        buf.put_u8(0);
        assert!(decode_row(&buf, 1).is_err());
    }
}
