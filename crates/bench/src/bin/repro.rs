//! Regenerates the paper's evaluation: `repro [--quick] [experiment ...]`.
//!
//! Experiments: `table1 index fig9 fig10 fig11 fig12 ablations` or `all`
//! (default). Markdown goes to stdout and to `results/<experiment>.md`;
//! JSON rows to `results/<experiment>.json`.

use comm_bench::experiments::{
    ablation_density, ablation_heap, ablation_lawler, ablation_projection, comm_all_figure,
    comm_k_figure, index_stats, interactive_figure, table1, Caps,
};
use comm_bench::{Prepared, Scale, Table};
use std::io::Write;
use std::time::Instant;

fn emit(tables: &[Table]) {
    std::fs::create_dir_all("results").ok();
    for t in tables {
        println!("{}", t.to_markdown());
        let md = std::fs::File::create(format!("results/{}.md", t.id))
            .and_then(|mut f| f.write_all(t.to_markdown().as_bytes()));
        let json = serde_json::to_string_pretty(t)
            .map_err(std::io::Error::other)
            .and_then(|s| std::fs::write(format!("results/{}.json", t.id), s));
        if let Err(e) = md.and(json) {
            eprintln!("warning: could not write results for {}: {e}", t.id);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let paper = args.iter().any(|a| a == "--paper");
    let scale = if paper {
        Scale::Paper
    } else if quick {
        Scale::Quick
    } else {
        Scale::Full
    };
    let caps = Caps::for_scale(scale);
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| wanted.is_empty() || wanted.contains(&"all") || wanted.contains(&name);

    let t_start = Instant::now();
    println!("# Reproduction run ({scale:?} scale)\n");

    if want("table1") {
        emit(&[table1()]);
    }

    // Paper scale is DBLP-only (see EXPERIMENTS.md on IMDB keyword
    // saturation at full MovieLens size).
    let needs_imdb = !paper
        && ["index", "fig9", "fig10", "fig12", "ablations"]
            .iter()
            .any(|e| want(e));
    let needs_dblp = ["index", "fig11", "fig12", "ablations", "fig10-dblp"]
        .iter()
        .any(|e| want(e));

    let imdb = needs_imdb.then(|| {
        let t0 = Instant::now();
        let p = Prepared::imdb(scale);
        eprintln!(
            "[setup] imdb: n={} m={} generated+indexed in {:?}",
            p.dataset.graph.graph.node_count(),
            p.dataset.graph.graph.edge_count(),
            t0.elapsed()
        );
        p
    });
    let dblp = needs_dblp.then(|| {
        let t0 = Instant::now();
        let p = Prepared::dblp(scale);
        eprintln!(
            "[setup] dblp: n={} m={} generated+indexed in {:?}",
            p.dataset.graph.graph.node_count(),
            p.dataset.graph.graph.edge_count(),
            t0.elapsed()
        );
        p
    });

    if want("index") {
        if let Some(p) = &imdb {
            emit(&[index_stats(p)]);
        }
        if let Some(p) = &dblp {
            emit(&[index_stats(p)]);
        }
    }
    if want("fig9") {
        if let Some(p) = &imdb {
            emit(&comm_all_figure(p, caps, "fig9"));
        }
    }
    if want("fig10") {
        if let Some(p) = &imdb {
            emit(&comm_k_figure(p, caps, "fig10"));
        }
    }
    if want("fig11") {
        if let Some(p) = &dblp {
            emit(&comm_all_figure(p, caps, "fig11"));
            // The paper reports DBLP top-k "shows similar trends" in text;
            // regenerate it as an extra table.
            emit(&comm_k_figure(p, caps, "fig11-topk"));
        }
    }
    if want("fig12") {
        if let Some(p) = &imdb {
            emit(&[interactive_figure(p, caps)]);
        }
        if let Some(p) = &dblp {
            emit(&[interactive_figure(p, caps)]);
        }
    }
    if want("ablations") {
        if !paper {
            emit(&[ablation_density(scale, caps)]);
        }
        if let Some(p) = &imdb {
            emit(&[
                ablation_projection(p),
                ablation_heap(p),
                ablation_lawler(p, caps),
            ]);
        }
        if let Some(p) = &dblp {
            emit(&[
                ablation_projection(p),
                ablation_heap(p),
                ablation_lawler(p, caps),
            ]);
        }
    }
    eprintln!("[done] total {:?}", t_start.elapsed());
}
