//! Weighted directed graph substrate for keyword community search.
//!
//! This crate provides the database-graph machinery the ICDE'09 paper
//! ("Querying Communities in Relational Databases") builds on:
//!
//! * [`Graph`]: CSR storage with both forward and reverse adjacency,
//!   modeling the database graph `G_D = (V, E)` whose nodes are tuples and
//!   whose edges are foreign-key references;
//! * [`Weight`]: totally ordered non-negative edge weights (the paper uses
//!   `w_e((u,v)) = log2(1 + N_in(v))`);
//! * [`DijkstraEngine`]: reusable radius-bounded multi-source Dijkstra, the
//!   workhorse behind `Neighbor()`, `GetCommunity()` and `GraphProjection`;
//! * [`RunGuard`]: cooperative execution governor (cancellation, deadlines,
//!   work/memory budgets) threaded through every sweep and enumeration;
//! * [`EnginePool`] / [`Parallelism`]: a size-class pool of engine scratch
//!   states plus a deterministic fork–join executor, the substrate for the
//!   parallel sweep paths in `comm-core` and the batch driver in
//!   `comm-bench`;
//! * [`InducedGraph`]: induced-subgraph extraction with id mapping;
//! * [`mod@reference`]: brute-force oracles for tests.
//!
//! # Example
//! ```
//! use comm_graph::{graph_from_edges, shortest_distances, Direction, NodeId, Weight};
//!
//! let g = graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
//! let d = shortest_distances(&g, Direction::Forward, NodeId(0));
//! assert_eq!(d[2], Weight::new(3.0));
//! ```

// `deny`, not `forbid`: `storage.rs` is the single module allowed to opt
// back in (`#![allow(unsafe_code)]`) for the mmap FFI and the Pod slice
// reinterpret; `cargo xtask lint` (rule `unsafe_confined`) enforces that
// no other file in the workspace's library crates contains `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
pub mod container;
mod csr;
mod dijkstra;
mod dijkstra_fib;
pub mod guard;
pub mod io;
pub mod kernel;
pub mod parallel;
pub mod pool;
pub mod reference;
pub mod storage;
pub mod verify;
pub mod weight;

pub use container::{load_container, save_container, Container};
pub use csr::{graph_from_edges, Direction, Graph, GraphBuilder, InducedGraph, NodeId};
pub use dijkstra::{shortest_distances, DijkstraEngine, Settled};
pub use dijkstra_fib::FibDijkstraEngine;
pub use guard::{InterruptReason, Outcome, RunGuard};
pub use kernel::{Kernel, UnknownKernel};
pub use parallel::Parallelism;
pub use pool::{EnginePool, PooledEngine, KERNEL_ENV};
pub use verify::GraphInvariantError;
pub use weight::Weight;
