//! `comm-explore` — interactive explorer for keyword community search.
//!
//! ```bash
//! cargo run --release -p comm-cli --bin comm-explore
//! communities> load dblp 0.5
//! communities> query database optimization k=3
//! communities> more 5
//! communities> trees 5
//! ```
//!
//! Commands can also be piped on stdin for scripted use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commands;
mod session;

use commands::{parse, Command, HELP};
use session::Session;
use std::io::{BufRead, Write};

fn main() {
    let mut session = Session::new();
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!("keyword community search explorer — 'help' for commands");
    }
    let mut line = String::new();
    loop {
        if interactive {
            print!("communities> ");
            std::io::stdout().flush().ok();
        }
        line.clear();
        let Ok(n) = stdin.lock().read_line(&mut line) else {
            break;
        };
        if n == 0 {
            break; // EOF
        }
        match parse(&line) {
            Ok(None) => {}
            Ok(Some(cmd)) => match run(&mut session, cmd) {
                Flow::Continue(output) => {
                    if !output.is_empty() {
                        println!("{output}");
                    }
                }
                Flow::Quit => break,
            },
            Err(e) => println!("error: {e}"),
        }
    }
}

enum Flow {
    Continue(String),
    Quit,
}

fn run(session: &mut Session, cmd: Command) -> Flow {
    let result = match cmd {
        Command::Load { dataset, scale } => Ok(session.load(&dataset, scale)),
        Command::Query {
            keywords,
            rmax,
            k,
            max_cost,
        } => session.query(&keywords, rmax, k, max_cost),
        Command::More(n) => session.more(n),
        Command::Trees(n) => session.trees(n),
        Command::Dot { rank, path } => session.dot(rank, path.as_deref()),
        Command::Stats => session.stats(),
        Command::Help => Ok(HELP.to_owned()),
        Command::Quit => return Flow::Quit,
    };
    Flow::Continue(match result {
        Ok(s) => s,
        Err(e) => format!("error: {e}"),
    })
}

/// Crude interactivity check without extra dependencies: piped stdin on
/// Linux is not a tty; we only use this to decide whether to print prompts.
fn atty_stdin() -> bool {
    std::fs::metadata("/proc/self/fd/0")
        .map(|m| {
            use std::os::unix::fs::FileTypeExt;
            !m.file_type().is_fifo() && !m.file_type().is_file()
        })
        .unwrap_or(false)
}
