//! Persistence certification: graphs loaded from CGPH v2 containers by
//! `mmap` must be indistinguishable from their heap-built originals.
//!
//! Three guarantees:
//!
//! 1. **Bit-identical answers** — `COMM-all` / `COMM-k` over a mapped
//!    graph produce byte-for-byte the same communities (costs compared as
//!    raw `f64` bits) as over the heap graph they were saved from, on the
//!    paper's running example and on a sampled synthetic DBLP workload,
//!    and those answers still certify under the independent
//!    `comm_core::verify` checker.
//! 2. **Lossless migration** — for arbitrary graphs, the v1 edge-list
//!    file migrated through [`migrate_graph_v1`] loads back with exactly
//!    the original edge triples (weights compared as bits).
//! 3. **Format dispatch** — [`load_graph_any`] routes v1 and v2 files to
//!    the right loader.

use communities::datasets::paper_example::{fig4_graph, fig4_keyword_nodes, FIG4_RMAX};
use communities::datasets::workload::{query_keywords, DBLP_KEYWORD_GROUPS};
use communities::datasets::{generate_dblp, DblpConfig};
use communities::graph::container::{
    load_container, load_graph_any, migrate_graph_v1, peek_version, save_container,
};
use communities::graph::io::save_graph;
use communities::graph::{graph_from_edges, Graph, NodeId, Weight};
use communities::search::verify::{check_community, check_enumeration, check_ranking};
use communities::search::{comm_all, comm_k, Community, QuerySpec};
use proptest::prelude::*;
use std::path::PathBuf;

/// A fresh scratch directory per call site (pid + line defeat collisions
/// between parallel test binaries and within one).
fn unique_dir(line: u32) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("comm_persist_{}_{line}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Everything observable about a community: core, cost (as raw bits, so
/// the comparison is bit-exact rather than float-approximate), centers,
/// path nodes, member ids, and subgraph edge count.
type Fingerprint = (
    Vec<NodeId>,
    u64,
    Vec<NodeId>,
    Vec<NodeId>,
    Vec<NodeId>,
    usize,
);

fn fingerprint(c: &Community) -> Fingerprint {
    (
        c.core.0.clone(),
        c.cost.get().to_bits(),
        c.centers.clone(),
        c.path_nodes.clone(),
        c.subgraph.original_ids.clone(),
        c.subgraph.graph.edge_count(),
    )
}

fn fingerprints(cs: &[Community]) -> Vec<Fingerprint> {
    cs.iter().map(fingerprint).collect()
}

/// Saves `graph` + keyword sets, loads the container back, and returns the
/// mapped graph after checking the keyword map round-tripped.
fn roundtrip(dir: &std::path::Path, graph: &Graph, keyword_nodes: &[Vec<NodeId>]) -> Graph {
    let named: Vec<(String, Vec<NodeId>)> = keyword_nodes
        .iter()
        .enumerate()
        .map(|(i, nodes)| {
            let mut nodes = nodes.clone();
            nodes.sort_unstable();
            nodes.dedup();
            (format!("kw{i}"), nodes)
        })
        .collect();
    let path = dir.join("graph.v2.cgph");
    save_container(
        &path,
        graph,
        named.iter().map(|(k, v)| (k.as_str(), v.as_slice())),
        None,
    )
    .expect("save container");
    let c = load_container(&path).expect("load container");
    #[cfg(unix)]
    assert!(c.graph.is_mapped(), "v2 load must mmap on unix");
    for (k, v) in &named {
        assert_eq!(c.keyword_nodes(k), v.as_slice(), "keyword map round-trip");
    }
    c.graph
}

#[test]
fn paper_example_answers_are_bit_identical_on_the_mapped_graph() {
    let dir = unique_dir(line!());
    let heap = fig4_graph();
    let mapped = roundtrip(&dir, &heap, &fig4_keyword_nodes());

    let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
    let all_heap = comm_all(&heap, &spec);
    let all_mapped = comm_all(&mapped, &spec);
    assert_eq!(all_heap.len(), 5, "Table I lists five communities");
    assert_eq!(fingerprints(&all_heap), fingerprints(&all_mapped));

    // The mapped graph's answers certify under the independent verifier —
    // checked against the mapped graph itself, which exercises every CSR
    // accessor over the mapped storage.
    check_enumeration(&mapped, &spec, &all_mapped).unwrap();

    for k in 1..=all_heap.len() {
        let topk_heap = comm_k(&heap, &spec, k);
        let topk_mapped = comm_k(&mapped, &spec, k);
        assert_eq!(fingerprints(&topk_heap), fingerprints(&topk_mapped));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sampled_dblp_answers_are_bit_identical_on_the_mapped_graph() {
    let dir = unique_dir(line!());
    let ds = generate_dblp(&DblpConfig::default().scaled(0.3));
    let keywords = query_keywords(DBLP_KEYWORD_GROUPS, 0.0009, 3);
    let keyword_nodes: Vec<Vec<NodeId>> = keywords
        .iter()
        .map(|&kw| ds.graph.keyword_nodes(kw).to_vec())
        .collect();

    // Persist with the real keyword vocabulary and resolve the query from
    // the *container's* map, so the keyword section is load-bearing.
    let path = dir.join("dblp.v2.cgph");
    save_container(&path, &ds.graph.graph, ds.graph.keywords(), None).expect("save container");
    let c = load_container(&path).expect("load container");
    let mapped_nodes: Vec<Vec<NodeId>> = keywords
        .iter()
        .map(|&kw| c.keyword_nodes(kw).to_vec())
        .collect();
    assert_eq!(keyword_nodes, mapped_nodes);

    let spec = QuerySpec::new(keyword_nodes, Weight::new(6.0));
    let k = 10;
    let topk_heap = comm_k(&ds.graph.graph, &spec, k);
    let topk_mapped = comm_k(&c.graph, &spec, k);
    assert!(!topk_heap.is_empty(), "workload should produce communities");
    assert_eq!(fingerprints(&topk_heap), fingerprints(&topk_mapped));

    // Certify the mapped answers independently (log-in-degree weights
    // exercise the float-exact cost recomputation over mapped storage).
    check_ranking(&topk_mapped).unwrap();
    for community in topk_mapped.iter().take(5) {
        check_community(&ds.graph.graph, &spec, community).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_graph_any_dispatches_on_the_version_field() {
    let dir = unique_dir(line!());
    let g = graph_from_edges(3, &[(0, 1, 1.5), (1, 2, 2.5)]);
    let v1 = dir.join("g.v1.cgph");
    let v2 = dir.join("g.v2.cgph");
    save_graph(&g, &v1).unwrap();
    save_container(&v2, &g, std::iter::empty::<(&str, &[NodeId])>(), None).unwrap();
    assert_eq!(peek_version(&v1).unwrap(), 1);
    assert_eq!(peek_version(&v2).unwrap(), 2);
    for p in [&v1, &v2] {
        let loaded = load_graph_any(p).unwrap();
        assert_eq!(loaded.node_count(), 3);
        assert_eq!(loaded.edge_count(), 2);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Arbitrary small graphs: up to 24 nodes, up to 120 distinct directed
/// edges with finite positive weights across several orders of magnitude.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..24).prop_flat_map(|n| {
        let n32 = u32::try_from(n).unwrap();
        prop::collection::vec((0..n32, 0..n32, 1e-3..1e6f64), 0..120).prop_map(move |mut edges| {
            edges.sort_by_key(|&(u, v, _)| (u, v));
            edges.dedup_by_key(|&mut (u, v, _)| (u, v));
            graph_from_edges(n, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// v1 → v2 migration is lossless: the migrated container loads back
    /// with exactly the original edge triples, weights compared as bits.
    #[test]
    fn migration_preserves_every_edge_bit_for_bit(g in arb_graph(), salt in 0u32..1_000_000) {
        let dir = std::env::temp_dir().join(format!(
            "comm_persist_mig_{}_{salt}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        let v1 = dir.join("g.v1.cgph");
        let v2 = dir.join("g.v2.cgph");
        save_graph(&g, &v1).expect("v1 save");
        migrate_graph_v1(&v1, &v2).expect("migrate");
        prop_assert_eq!(peek_version(&v2).expect("peek"), 2);

        let loaded = load_graph_any(&v2).expect("v2 load");
        prop_assert_eq!(loaded.node_count(), g.node_count());
        prop_assert_eq!(loaded.edge_count(), g.edge_count());
        let bits = |g: &Graph| -> Vec<(NodeId, NodeId, u64)> {
            g.edges().map(|(u, v, w)| (u, v, w.get().to_bits())).collect()
        };
        prop_assert_eq!(bits(&g), bits(&loaded));
        std::fs::remove_dir_all(&dir).ok();
    }
}
