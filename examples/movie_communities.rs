//! Multi-center communities on a dense rating graph (the paper's IMDB /
//! MovieLens scenario) — and a comparison of all three top-k engines.
//!
//! Dense bipartite graphs are where communities shine over connected
//! trees: the same keyword movies are connected through *many* raters, and
//! a community captures all of those centers at once while a tree shows
//! only one.
//!
//! ```bash
//! cargo run --release --example movie_communities
//! ```

use communities::datasets::{generate_imdb, ImdbConfig};
use communities::graph::{NodeId, Weight};
use communities::search::{bu_topk, td_topk, CommK, ProjectionIndex, QuerySpec};
use std::time::Instant;

fn main() {
    let keywords = ["star", "death", "girl"];
    let rmax = 11.0;
    let k = 25;

    let ds = generate_imdb(&ImdbConfig::default());
    println!(
        "IMDB-like database: {} tuples → G_D with {} nodes / {} edges",
        ds.db.tuple_count(),
        ds.graph.graph.node_count(),
        ds.graph.graph.edge_count()
    );

    let entries: Vec<(&str, &[NodeId])> = keywords
        .iter()
        .map(|&kw| (kw, ds.graph.keyword_nodes(kw)))
        .collect();
    let index = ProjectionIndex::build(&ds.graph.graph, entries, Weight::new(13.0));
    let pq = index
        .project(&keywords, Weight::new(rmax))
        .expect("keywords indexed");
    let g = &pq.projected.graph;
    println!(
        "projected graph for {keywords:?}: {} nodes / {} edges\n",
        g.node_count(),
        g.edge_count()
    );
    let spec = QuerySpec::new(pq.spec.keyword_nodes.clone(), pq.spec.rmax);

    // Multi-center structure: how many centers do the top communities have?
    let t0 = Instant::now();
    let top: Vec<_> = CommK::new(g, &spec).take(k).collect();
    let t_pd = t0.elapsed();
    let avg_centers: f64 =
        top.iter().map(|c| c.centers.len() as f64).sum::<f64>() / top.len().max(1) as f64;
    println!("top-{k} communities ({t_pd:?} with PDk):");
    println!(
        "  cost range: {:.2} … {:.2}",
        top.first().map(|c| c.cost.get()).unwrap_or(0.0),
        top.last().map(|c| c.cost.get()).unwrap_or(0.0)
    );
    println!("  average centers per community: {avg_centers:.1}");
    let max_c = top
        .iter()
        .max_by_key(|c| c.centers.len())
        .expect("non-empty");
    println!(
        "  widest community: {} centers, {} total nodes — a connected tree would show 1 path\n",
        max_c.centers.len(),
        max_c.node_count()
    );

    // The same top-k through the expanding baselines.
    let t0 = Instant::now();
    let bu = bu_topk(g, &spec, k, None);
    let t_bu = t0.elapsed();
    let t0 = Instant::now();
    let td = td_topk(g, &spec, k, None);
    let t_td = t0.elapsed();
    println!("engine comparison for the identical top-{k}:");
    println!("  PDk (polynomial delay): {t_pd:?}  — explores only what the ranking needs");
    println!(
        "  BUk (bottom-up):        {t_bu:?}  — {} candidate cores generated",
        bu.stats.candidates
    );
    println!(
        "  TDk (top-down):         {t_td:?}  — {} candidate cores generated",
        td.stats.candidates
    );
    let costs =
        |cs: &[communities::search::Community]| cs.iter().map(|c| c.cost).collect::<Vec<_>>();
    assert_eq!(costs(&top), costs(&bu.communities));
    assert_eq!(costs(&top), costs(&td.communities));
    println!("  all three agree on the ranking ✓");
}
