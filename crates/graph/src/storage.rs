//! Backing storage for CSR arrays: owned heap vectors or zero-copy views
//! into a memory-mapped container file.
//!
//! The CGPH v2 container (see [`crate::container`]) lays the built CSR
//! arrays out as fixed-width little-endian sections so a warm load is one
//! `mmap` plus validation — no parsing, no `GraphBuilder` re-sort. To let
//! `Dijkstra`, `NeighborSets`, and the engine pool run unchanged on mapped
//! data, every CSR array is a [`Storage<T>`], which derefs to `&[T]`
//! whether the elements live in an owned `Vec<T>` or inside a shared
//! [`MapRegion`].
//!
//! # Safety argument
//!
//! This is the **only** module in the crate (and the workspace's library
//! crates) allowed to contain `unsafe` — the crate root carries
//! `#![deny(unsafe_code)]` and `cargo xtask lint` (rule
//! `unsafe_confined`) fails if `unsafe` appears anywhere else. The two
//! uses are:
//!
//! 1. reinterpreting a validated byte range of a region as `&[T]` for a
//!    sealed set of [`Pod`] element types (`u32`, `NodeId`, `Weight`) that
//!    are `#[repr(transparent)]` over `u32`/`f64`: fixed size, alignment
//!    ≤ 8, no padding, and every bit pattern inhabits the type (semantic
//!    checks — finite weights, in-range ids — happen at load, on top of
//!    this type-level soundness);
//! 2. the `mmap`/`munmap` FFI pair behind [`MapRegion::map_file`], gated
//!    to `unix` and compiled out under Miri (Miri exercises the owned
//!    fallback instead).
//!
//! Alignment holds by construction: a mapped region starts page-aligned,
//! the owned fallback buffer is backed by `Vec<u64>` (8-aligned), and
//! [`Storage::mapped`] rejects any byte offset that is not a multiple of
//! 8, which covers every `Pod` type's alignment requirement.
#![allow(unsafe_code)]

use crate::csr::NodeId;
use crate::weight::Weight;
use std::io;
use std::ops::Deref;
use std::sync::Arc;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for crate::csr::NodeId {}
    impl Sealed for crate::weight::Weight {}
}

/// Element types that may be viewed directly inside a mapped byte region.
///
/// Sealed: implemented exactly for `u32`, [`NodeId`] (`repr(transparent)`
/// over `u32`), and [`Weight`] (`repr(transparent)` over `f64`). All three
/// have no padding, alignment ≤ 8, and are inhabited by every bit pattern,
/// which is what makes the reinterpret in [`Storage::deref`] sound.
pub trait Pod: sealed::Sealed + Copy + 'static {}

impl Pod for u32 {}
impl Pod for NodeId {}
impl Pod for Weight {}

#[cfg(all(unix, not(miri)))]
mod sys {
    //! Minimal libc surface for read-only private file mappings. `std`
    //! already links libc on unix targets, so declaring the two symbols
    //! here adds no dependency.
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// How a [`MapRegion`]'s bytes are held.
enum Backing {
    /// A live read-only `mmap` of a file; unmapped on drop.
    #[cfg(all(unix, not(miri)))]
    Mmap { ptr: *const u8, len: usize },
    /// Heap fallback (non-unix hosts, Miri, or `mmap` failure): the file's
    /// bytes copied into a `Vec<u64>` so the base stays 8-aligned.
    Heap { buf: Vec<u64>, len: usize },
}

/// An immutable, 8-aligned byte region holding a loaded container file.
///
/// Shared via `Arc` between every [`Storage`] view cut from it; the bytes
/// are unmapped/freed when the last view drops.
pub struct MapRegion {
    backing: Backing,
}

// SAFETY: the region is immutable for its whole lifetime (PROT_READ
// private mapping or a never-mutated heap buffer) and has no interior
// mutability, so shared references may cross threads freely.
unsafe impl Send for MapRegion {}
unsafe impl Sync for MapRegion {}

impl MapRegion {
    /// Wraps raw bytes in an 8-aligned heap region (copies once).
    pub fn from_bytes(bytes: &[u8]) -> MapRegion {
        let words = bytes.len().div_ceil(8);
        let mut buf = vec![0u64; words];
        // SAFETY: `buf` owns `words * 8 >= bytes.len()` initialized bytes;
        // u64 -> u8 reinterpretation is always valid.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), words * 8) };
        dst[..bytes.len()].copy_from_slice(bytes);
        MapRegion {
            backing: Backing::Heap {
                buf,
                len: bytes.len(),
            },
        }
    }

    /// Maps `path` read-only. On unix (outside Miri) this is a zero-copy
    /// `mmap(MAP_PRIVATE)`; elsewhere — or if the mapping fails — the file
    /// is read into an aligned heap buffer instead.
    pub fn map_file(path: &std::path::Path) -> io::Result<MapRegion> {
        #[cfg(all(unix, not(miri)))]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len64 = file.metadata()?.len();
            let Some(len) = crate::weight::try_u64_to_usize(len64) else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "file exceeds host address width",
                ));
            };
            if len > 0 {
                // SAFETY: requesting a fresh PROT_READ private mapping of
                // `len` bytes backed by `file`; the kernel either returns a
                // valid page-aligned mapping of exactly `len` bytes (owned
                // by the returned region until `munmap` in drop) or
                // MAP_FAILED, which we check.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr as isize != -1 {
                    return Ok(MapRegion {
                        backing: Backing::Mmap {
                            ptr: ptr.cast_const().cast::<u8>(),
                            len,
                        },
                    });
                }
                // Fall through to the read-into-heap path below.
            }
        }
        Ok(MapRegion::from_bytes(&std::fs::read(path)?))
    }

    /// The region's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, not(miri)))]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until this region drops.
            Backing::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap { buf, len } => {
                // SAFETY: `buf` owns `buf.len() * 8 >= *len` initialized
                // bytes; u64 -> u8 reinterpretation is always valid.
                let all =
                    unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), buf.len() * 8) };
                &all[..*len]
            }
        }
    }

    /// Total byte length.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(all(unix, not(miri)))]
            Backing::Mmap { len, .. } => *len,
            Backing::Heap { len, .. } => *len,
        }
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes are a live `mmap` (false for the heap fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, not(miri)))]
            Backing::Mmap { .. } => true,
            Backing::Heap { .. } => false,
        }
    }
}

impl Drop for MapRegion {
    fn drop(&mut self) {
        #[cfg(all(unix, not(miri)))]
        if let Backing::Mmap { ptr, len } = &self.backing {
            // SAFETY: `ptr`/`len` came from a successful mmap owned by
            // this region and are unmapped exactly once, here.
            unsafe {
                sys::munmap((*ptr).cast_mut().cast(), *len);
            }
        }
    }
}

impl std::fmt::Debug for MapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MapRegion({} bytes, {})",
            self.len(),
            if self.is_mapped() { "mmap" } else { "heap" }
        )
    }
}

enum Repr<T: Pod> {
    Owned(Vec<T>),
    Mapped {
        region: Arc<MapRegion>,
        byte_offset: usize,
        len: usize,
    },
}

/// A CSR array: an owned `Vec<T>` or a zero-copy `&[T]` view into a shared
/// [`MapRegion`]. Derefs to `&[T]`, so algorithms are oblivious to which.
pub struct Storage<T: Pod>(Repr<T>);

impl<T: Pod> Storage<T> {
    /// A view of `len` elements starting `byte_offset` bytes into
    /// `region`. Rejects out-of-bounds ranges and offsets that are not
    /// 8-aligned (the container format aligns every section to 8 bytes,
    /// which covers every `Pod` alignment).
    pub fn mapped(
        region: Arc<MapRegion>,
        byte_offset: usize,
        len: usize,
    ) -> io::Result<Storage<T>> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg);
        if !byte_offset.is_multiple_of(8) {
            return Err(bad("section byte offset is not 8-aligned"));
        }
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .ok_or_else(|| bad("section length overflows"))?;
        let end = byte_offset
            .checked_add(bytes)
            .ok_or_else(|| bad("section range overflows"))?;
        if end > region.len() {
            return Err(bad("section range exceeds the region"));
        }
        debug_assert_eq!(
            region.bytes()[byte_offset..]
                .as_ptr()
                .align_offset(std::mem::align_of::<T>()),
            0
        );
        Ok(Storage(Repr::Mapped {
            region,
            byte_offset,
            len,
        }))
    }

    /// Whether the elements live in a shared region rather than a `Vec`.
    pub fn is_mapped(&self) -> bool {
        matches!(self.0, Repr::Mapped { .. })
    }

    /// Mutable access, converting a mapped view into an owned copy first
    /// (copy-on-write; used by tests that corrupt arrays in place).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Repr::Mapped { .. } = self.0 {
            self.0 = Repr::Owned(self.as_ref().to_vec());
        }
        match &mut self.0 {
            Repr::Owned(v) => v,
            Repr::Mapped { .. } => unreachable!("storage was just converted to owned"),
        }
    }
}

impl<T: Pod> Deref for Storage<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match &self.0 {
            Repr::Owned(v) => v,
            Repr::Mapped {
                region,
                byte_offset,
                len,
            } => {
                let bytes =
                    &region.bytes()[*byte_offset..*byte_offset + *len * std::mem::size_of::<T>()];
                // SAFETY: the range was bounds- and alignment-checked in
                // `Storage::mapped`; `T: Pod` is sealed to padding-free
                // types inhabited by every bit pattern, so reinterpreting
                // these initialized bytes as `len` elements is sound. The
                // region is immutable and outlives `self` via the Arc.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), *len) }
            }
        }
    }
}

impl<T: Pod> AsRef<[T]> for Storage<T> {
    #[inline]
    fn as_ref(&self) -> &[T] {
        self
    }
}

impl<T: Pod> Default for Storage<T> {
    fn default() -> Storage<T> {
        Storage(Repr::Owned(Vec::new()))
    }
}

impl<T: Pod> Clone for Storage<T> {
    fn clone(&self) -> Storage<T> {
        match &self.0 {
            Repr::Owned(v) => Storage(Repr::Owned(v.clone())),
            Repr::Mapped {
                region,
                byte_offset,
                len,
            } => Storage(Repr::Mapped {
                region: Arc::clone(region),
                byte_offset: *byte_offset,
                len: *len,
            }),
        }
    }
}

impl<T: Pod> From<Vec<T>> for Storage<T> {
    fn from(v: Vec<T>) -> Storage<T> {
        Storage(Repr::Owned(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region_of(bytes: &[u8]) -> Arc<MapRegion> {
        Arc::new(MapRegion::from_bytes(bytes))
    }

    #[test]
    fn heap_region_roundtrips_bytes() {
        let data = [1u8, 2, 3, 4, 5];
        let r = MapRegion::from_bytes(&data);
        assert_eq!(r.bytes(), &data);
        assert_eq!(r.len(), 5);
        assert!(!r.is_mapped());
        assert!(!r.is_empty());
        assert!(MapRegion::from_bytes(&[]).is_empty());
    }

    #[test]
    fn mapped_storage_views_u32s() {
        let mut bytes = Vec::new();
        for v in [7u32, 11, 13] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let s: Storage<u32> = Storage::mapped(region_of(&bytes), 0, 3).unwrap();
        assert_eq!(&*s, &[7, 11, 13]);
        assert!(s.is_mapped());
        let c = s.clone();
        assert_eq!(&*c, &[7, 11, 13]);
    }

    #[test]
    fn mapped_storage_views_weights_and_node_ids() {
        let mut bytes = vec![0u8; 8]; // one alignment pad word
        bytes.extend_from_slice(&2.5f64.to_le_bytes());
        bytes.extend_from_slice(&0.0f64.to_le_bytes());
        let r = region_of(&bytes);
        let w: Storage<Weight> = Storage::mapped(Arc::clone(&r), 8, 2).unwrap();
        assert_eq!(&*w, &[Weight::new(2.5), Weight::ZERO]);
        let ids: Storage<NodeId> = Storage::mapped(r, 8, 2).unwrap();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn misaligned_or_oversized_views_are_rejected() {
        let r = region_of(&[0u8; 32]);
        assert!(Storage::<u32>::mapped(Arc::clone(&r), 4, 1).is_err());
        assert!(Storage::<u32>::mapped(Arc::clone(&r), 0, 9).is_err());
        assert!(Storage::<u32>::mapped(Arc::clone(&r), 32, 1).is_err());
        assert!(Storage::<u32>::mapped(Arc::clone(&r), usize::MAX - 7, 1).is_err());
        assert!(Storage::<u32>::mapped(r, 0, usize::MAX / 2).is_err());
    }

    #[test]
    fn to_mut_copies_mapped_data_on_write() {
        let mut bytes = Vec::new();
        for v in [1u32, 2] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let mut s: Storage<u32> = Storage::mapped(region_of(&bytes), 0, 2).unwrap();
        s.to_mut()[0] = 99;
        assert!(!s.is_mapped());
        assert_eq!(&*s, &[99, 2]);
        // Owned storage hands out its vec directly.
        let mut o: Storage<u32> = vec![5u32].into();
        o.to_mut().push(6);
        assert_eq!(&*o, &[5, 6]);
    }

    #[test]
    fn default_is_empty_owned() {
        let s: Storage<u32> = Storage::default();
        assert!(s.is_empty());
        assert!(!s.is_mapped());
    }

    #[cfg(all(unix, not(miri)))]
    #[test]
    fn map_file_is_zero_copy_on_unix() {
        let dir = std::env::temp_dir().join(format!("comm_graph_storage_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.bin");
        let data: Vec<u8> = (0..64u8).collect();
        std::fs::write(&path, &data).unwrap();
        let r = MapRegion::map_file(&path).unwrap();
        assert!(r.is_mapped());
        assert_eq!(r.bytes(), &data[..]);
        drop(r);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn map_file_handles_empty_files() {
        let dir = std::env::temp_dir().join(format!("comm_graph_storage_e_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let r = MapRegion::map_file(&path).unwrap();
        assert!(r.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
