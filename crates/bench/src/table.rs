//! Result tables: the harness's output unit, printable as markdown and
//! serializable to JSON for EXPERIMENTS.md regeneration.

use serde::Serialize;
use std::fmt::Write as _;

/// One regenerated table or figure series.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Stable id, e.g. `"fig9a"`.
    pub id: String,
    /// Human title, e.g. `"Fig. 9(a) IMDB COMM-all: average delay vs KWF"`.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (formatted strings).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (truncation caps, DNFs, substitutions).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Table {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Appends a note shown under the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(1)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(line, " {c:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n> {note}");
        }
        out
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_ms(ms: f64) -> String {
    if ms.is_nan() {
        "n/a".to_owned()
    } else if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.1} µs", ms * 1000.0)
    }
}

/// Formats a byte count in adaptive units.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("t1", "demo", &["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.note("a note");
        let md = t.to_markdown();
        assert!(md.contains("### t1 — demo"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("> a note"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_ms(1500.0), "1.50 s");
        assert_eq!(fmt_ms(2.5), "2.50 ms");
        assert_eq!(fmt_ms(0.25), "250.0 µs");
        assert_eq!(fmt_ms(f64::NAN), "n/a");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MB");
    }
}
