//! Radius-bounded single/multi-source Dijkstra.
//!
//! Every subroutine in the paper reduces to a shortest-path sweep:
//!
//! * `Neighbor(G_D, V_i, Rmax)` (Algorithm 2) = multi-source Dijkstra on the
//!   *reverse* graph seeded from `V_i` at distance 0 (the virtual sink `t`
//!   with zero-weight edges), truncated at `Rmax`;
//! * `GetCommunity` (Algorithm 4) = one forward sweep from the virtual
//!   source `s` over the centers plus one reverse sweep from `t` over the
//!   core;
//! * the expanding baselines = truncated sweeps per keyword node / per
//!   candidate center.
//!
//! [`DijkstraEngine`] owns flat per-node scratch arrays (SoA: `dist`,
//! `source`, `parent`, `settled`) and recycles them across runs with an
//! explicit touched-list reset: every first write to a node records its
//! index, and the next sweep restores exactly those entries before
//! seeding. The hot relaxation loop therefore carries no epoch-check
//! branch — "untouched" is simply `dist == INFINITY` — and a sweep costs
//! `O(n_reached · log n_reached + m_reached)` with no per-run allocation
//! beyond queue growth.
//!
//! Two priority-queue kernels sit behind the same API, selected by
//! [`Kernel`]: the classic lazy-deletion binary heap, and a radius-aware
//! bucket queue ([`crate::bucket`]) that is bit-identical by construction.
//! [`DijkstraEngine::run_batched_guarded`] additionally fuses many
//! per-dimension sweeps into one pass over a shared frontier of virtual
//! `(dimension, node)` ids — the kernel behind the batched
//! `NeighborSets` recompute in `comm-core`.

use crate::bucket::BucketQueue;
use crate::csr::{Direction, Graph, NodeId};
use crate::guard::{InterruptReason, RunGuard};
use crate::kernel::{Kernel, ResolvedKernel};
use crate::weight::{index_to_u32, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Marker for "no source recorded".
const NO_SOURCE: u32 = u32::MAX;

/// A settled node reported by [`DijkstraEngine::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Settled {
    /// The settled node.
    pub node: NodeId,
    /// Shortest distance from the nearest seed (seeds are at distance 0).
    pub dist: Weight,
    /// The seed the shortest path starts from — the paper's `src(N_i, u)`.
    pub source: NodeId,
    /// The previous hop on that shortest path (the node itself for seeds).
    /// Following `parent` repeatedly reaches `source`.
    pub parent: NodeId,
}

/// The priority queues pluggable under one sweep loop. Both pop entries
/// in exact globally sorted `(dist, node)` order — the bit-identical
/// contract between kernels rests on that shared property.
trait Frontier {
    fn push(&mut self, d: Weight, v: NodeId);
    fn pop(&mut self) -> Option<(Weight, NodeId)>;
}

impl Frontier for BinaryHeap<Reverse<(Weight, NodeId)>> {
    #[inline]
    fn push(&mut self, d: Weight, v: NodeId) {
        BinaryHeap::push(self, Reverse((d, v)));
    }

    #[inline]
    fn pop(&mut self) -> Option<(Weight, NodeId)> {
        BinaryHeap::pop(self).map(|Reverse(e)| e)
    }
}

impl Frontier for BucketQueue {
    #[inline]
    fn push(&mut self, d: Weight, v: NodeId) {
        BucketQueue::push(self, d, v);
    }

    #[inline]
    fn pop(&mut self) -> Option<(Weight, NodeId)> {
        BucketQueue::pop(self)
    }
}

/// Reusable Dijkstra state for one graph size.
pub struct DijkstraEngine {
    dist: Vec<Weight>,
    source: Vec<u32>,
    parent: Vec<u32>,
    settled: Vec<bool>,
    /// Indices written since the last reset; the next sweep restores
    /// exactly these entries instead of stamping epochs per node.
    touched: Vec<u32>,
    heap: BinaryHeap<Reverse<(Weight, NodeId)>>,
    bucket: BucketQueue,
    kernel: Kernel,
}

impl DijkstraEngine {
    /// Creates an engine for graphs with up to `n` nodes, with the
    /// default [`Kernel::Auto`] queue selection.
    pub fn new(n: usize) -> DijkstraEngine {
        DijkstraEngine::with_kernel(n, Kernel::Auto)
    }

    /// Creates an engine with an explicit queue kernel.
    pub fn with_kernel(n: usize, kernel: Kernel) -> DijkstraEngine {
        DijkstraEngine {
            dist: vec![Weight::INFINITY; n],
            source: vec![NO_SOURCE; n],
            parent: vec![NO_SOURCE; n],
            settled: vec![false; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
            bucket: BucketQueue::default(),
            kernel,
        }
    }

    /// The queue kernel sweeps currently run on.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Selects the queue kernel for subsequent sweeps. Results are
    /// bit-identical across kernels; only the constant factor changes.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// The node capacity the scratch arrays are sized for.
    pub fn capacity(&self) -> usize {
        self.dist.len()
    }

    /// Resident scratch bytes across the SoA arrays and both queues —
    /// what [`crate::EnginePool`] charges and trims.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.dist.capacity() * size_of::<Weight>()
            + self.source.capacity() * size_of::<u32>()
            + self.parent.capacity() * size_of::<u32>()
            + self.settled.capacity()
            + self.touched.capacity() * size_of::<u32>()
            + self.heap.capacity() * size_of::<Reverse<(Weight, NodeId)>>()
            + self.bucket.retained_bytes()
    }

    /// Grows the engine to accommodate `n` nodes (no-op if large enough).
    /// Returns whether the scratch actually grew, so guarded callers can
    /// re-charge their byte budget only on growth.
    pub fn ensure_capacity(&mut self, n: usize) -> bool {
        if self.dist.len() >= n {
            return false;
        }
        self.dist.resize(n, Weight::INFINITY);
        self.source.resize(n, NO_SOURCE);
        self.parent.resize(n, NO_SOURCE);
        self.settled.resize(n, false);
        true
    }

    /// Shrinks scratch retained beyond `cap` nodes back to `cap`, and
    /// releases queue allocations. The pool calls this when an engine
    /// returns from an outsized sweep, so one huge graph stops pinning
    /// worst-case scratch in every recycled engine.
    ///
    /// The touched-list reset runs first: its indices may point past
    /// `cap`, so truncating before restoring would leave stale finite
    /// distances behind (and the list itself dangling).
    pub fn trim_scratch(&mut self, cap: usize) {
        self.reset_scratch();
        if self.dist.len() > cap {
            self.dist.truncate(cap);
            self.dist.shrink_to_fit();
            self.source.truncate(cap);
            self.source.shrink_to_fit();
            self.parent.truncate(cap);
            self.parent.shrink_to_fit();
            self.settled.truncate(cap);
            self.settled.shrink_to_fit();
        }
        self.touched = Vec::new();
        self.heap = BinaryHeap::new();
        self.bucket.trim();
    }

    /// Restores every touched scratch entry to its pristine state.
    /// `source`/`parent` need no restore: they are only read for settled
    /// nodes, and settling requires a prior [`relax`](Self::relax) that
    /// rewrites both.
    fn reset_scratch(&mut self) {
        for &i in &self.touched {
            let i = i as usize;
            self.dist[i] = Weight::INFINITY;
            self.settled[i] = false;
        }
        self.touched.clear();
    }

    #[inline]
    fn relax(&mut self, node: NodeId, dist: Weight, source: NodeId, parent: NodeId) -> bool {
        let i = node.index();
        if self.settled[i] || dist >= self.dist[i] {
            return false;
        }
        if self.dist[i] == Weight::INFINITY {
            self.touched.push(node.0);
        }
        self.dist[i] = dist;
        self.source[i] = source.0;
        self.parent[i] = parent.0;
        true
    }

    /// Runs a truncated multi-source Dijkstra.
    ///
    /// Seeds start at distance `0`. Nodes with shortest distance `≤ radius`
    /// are settled and passed to `visit` in non-decreasing distance order.
    /// Each settled node carries the seed its shortest path leaves from
    /// (ties broken by which seed reaches it first through the queue, which
    /// is deterministic for a fixed graph).
    ///
    /// Returns the number of settled nodes.
    pub fn run<F: FnMut(Settled)>(
        &mut self,
        graph: &Graph,
        dir: Direction,
        seeds: impl IntoIterator<Item = NodeId>,
        radius: Weight,
        visit: F,
    ) -> usize {
        self.run_guarded(graph, dir, seeds, radius, &RunGuard::unlimited(), visit)
            // xtask-allow: no_panics — RunGuard::unlimited() has no budgets, so Interrupted is unreachable
            .expect("unlimited guard never trips")
    }

    /// Like [`run`](Self::run), but consults `guard` once per settled node.
    ///
    /// On interruption the sweep stops before settling (or reporting) any
    /// further node and returns the guard's reason; nodes already passed to
    /// `visit` form a valid prefix of the unguarded settle order. The
    /// touched list survives interruption, so an interrupted engine resets
    /// itself on the next sweep and is safe to reuse.
    pub fn run_guarded<F: FnMut(Settled)>(
        &mut self,
        graph: &Graph,
        dir: Direction,
        seeds: impl IntoIterator<Item = NodeId>,
        radius: Weight,
        guard: &RunGuard,
        mut visit: F,
    ) -> Result<usize, InterruptReason> {
        if self.ensure_capacity(graph.node_count()) {
            guard.check_bytes(self.scratch_bytes())?;
        }
        self.reset_scratch();
        match self.kernel.resolve(graph, radius) {
            ResolvedKernel::Heap => {
                // The queue is taken out of `self` for the duration of the
                // sweep so the sweep loop can borrow scratch mutably; it is
                // restored (drained) even on the interrupt path. After a
                // panicking `visit` the field holds a fresh empty queue.
                let mut queue = std::mem::take(&mut self.heap);
                queue.clear();
                for seed in seeds {
                    if self.relax(seed, Weight::ZERO, seed, seed) {
                        Frontier::push(&mut queue, Weight::ZERO, seed);
                    }
                }
                let out = self.sweep(graph, dir, radius, guard, &mut queue, &mut visit);
                queue.clear();
                self.heap = queue;
                out
            }
            ResolvedKernel::Bucket(plan) => {
                let mut queue = std::mem::take(&mut self.bucket);
                queue.clear();
                queue.begin(&plan);
                for seed in seeds {
                    if self.relax(seed, Weight::ZERO, seed, seed) {
                        Frontier::push(&mut queue, Weight::ZERO, seed);
                    }
                }
                let out = self.sweep(graph, dir, radius, guard, &mut queue, &mut visit);
                queue.clear();
                self.bucket = queue;
                out
            }
        }
    }

    /// The kernel-generic settle loop shared by both queues.
    fn sweep<Q: Frontier, F: FnMut(Settled)>(
        &mut self,
        graph: &Graph,
        dir: Direction,
        radius: Weight,
        guard: &RunGuard,
        queue: &mut Q,
        visit: &mut F,
    ) -> Result<usize, InterruptReason> {
        let mut settled_count = 0;
        while let Some((d, u)) = queue.pop() {
            let i = u.index();
            if self.settled[i] || d > self.dist[i] {
                continue; // lazily deleted entry
            }
            guard.note_settled(1)?;
            self.settled[i] = true;
            settled_count += 1;
            let source = NodeId(self.source[i]);
            visit(Settled {
                node: u,
                dist: d,
                source,
                parent: NodeId(self.parent[i]),
            });
            for (v, w) in graph.neighbors(u, dir) {
                let nd = d + w;
                if nd <= radius && self.relax(v, nd, source, u) {
                    queue.push(nd, v);
                }
            }
        }
        Ok(settled_count)
    }

    /// Fuses `seeds.len()` independent per-dimension sweeps into one pass
    /// over a shared frontier. Dimension `k`'s sweep runs in the virtual
    /// id space `k·n .. (k+1)·n`; edges never cross dimensions, and the
    /// queue's exact `(dist, virtual id)` order projects onto each
    /// dimension as exactly that dimension's standalone `(dist, node)`
    /// settle order — so per-dimension results (distances, sources,
    /// parents) are bit-identical to `seeds.len()` separate
    /// [`run_guarded`](Self::run_guarded) calls, while the graph's
    /// adjacency is streamed through one queue with one scratch reset.
    ///
    /// `visit` receives `(dimension, settled)` with node/source/parent
    /// already mapped back to real ids. The guard is consulted once per
    /// settled `(dimension, node)` pair; on interruption the visited
    /// pairs form a valid prefix of the fused settle order (dimensions
    /// interleaved by distance).
    ///
    /// The caller must ensure `seeds.len() · graph.node_count()` fits the
    /// `u32` id space (the batched `NeighborSets` path gates on this and
    /// falls back to per-dimension sweeps otherwise).
    pub fn run_batched_guarded<F: FnMut(usize, Settled)>(
        &mut self,
        graph: &Graph,
        dir: Direction,
        seeds: &[Vec<NodeId>],
        radius: Weight,
        guard: &RunGuard,
        mut visit: F,
    ) -> Result<usize, InterruptReason> {
        let n = graph.node_count();
        if self.ensure_capacity(seeds.len() * n) {
            guard.check_bytes(self.scratch_bytes())?;
        }
        self.reset_scratch();
        let seed_all = |eng: &mut DijkstraEngine, queue: &mut dyn Frontier| {
            for (dim, dim_seeds) in seeds.iter().enumerate() {
                let base = dim * n;
                for &s in dim_seeds {
                    let vid = NodeId(index_to_u32(base + s.index()));
                    if eng.relax(vid, Weight::ZERO, vid, vid) {
                        queue.push(Weight::ZERO, vid);
                    }
                }
            }
        };
        match self.kernel.resolve(graph, radius) {
            ResolvedKernel::Heap => {
                let mut queue = std::mem::take(&mut self.heap);
                queue.clear();
                seed_all(self, &mut queue);
                let out = self.sweep_batched(graph, dir, n, radius, guard, &mut queue, &mut visit);
                queue.clear();
                self.heap = queue;
                out
            }
            ResolvedKernel::Bucket(plan) => {
                let mut queue = std::mem::take(&mut self.bucket);
                queue.clear();
                queue.begin(&plan);
                seed_all(self, &mut queue);
                let out = self.sweep_batched(graph, dir, n, radius, guard, &mut queue, &mut visit);
                queue.clear();
                self.bucket = queue;
                out
            }
        }
    }

    /// The settle loop of the fused pass: like [`sweep`](Self::sweep) but
    /// over virtual `(dimension, node)` ids, translating adjacency through
    /// the dimension's base offset.
    #[allow(clippy::too_many_arguments)]
    fn sweep_batched<Q: Frontier, F: FnMut(usize, Settled)>(
        &mut self,
        graph: &Graph,
        dir: Direction,
        n: usize,
        radius: Weight,
        guard: &RunGuard,
        queue: &mut Q,
        visit: &mut F,
    ) -> Result<usize, InterruptReason> {
        let mut settled_count = 0;
        while let Some((d, vu)) = queue.pop() {
            let i = vu.index();
            if self.settled[i] || d > self.dist[i] {
                continue; // lazily deleted entry
            }
            guard.note_settled(1)?;
            self.settled[i] = true;
            settled_count += 1;
            let dim = i / n;
            let base = dim * n;
            let u = NodeId(index_to_u32(i - base));
            let source = NodeId(self.source[i]);
            visit(
                dim,
                Settled {
                    node: u,
                    dist: d,
                    source: NodeId(index_to_u32(source.index() - base)),
                    parent: NodeId(index_to_u32(self.parent[i] as usize - base)),
                },
            );
            for (v, w) in graph.neighbors(u, dir) {
                let nd = d + w;
                if nd <= radius {
                    let vv = NodeId(index_to_u32(base + v.index()));
                    if self.relax(vv, nd, source, vu) {
                        queue.push(nd, vv);
                    }
                }
            }
        }
        Ok(settled_count)
    }

    /// Like [`run`](Self::run) but materializes per-node `(dist, src)`
    /// arrays of length `n`, with `Weight::INFINITY` / `None` for nodes
    /// beyond the radius. This is the exact output shape of the paper's
    /// `Neighbor()` (`min(N_i, u)` and `src(N_i, u)`).
    pub fn run_into(
        &mut self,
        graph: &Graph,
        dir: Direction,
        seeds: impl IntoIterator<Item = NodeId>,
        radius: Weight,
        out_dist: &mut [Weight],
        out_src: &mut [Option<NodeId>],
    ) -> usize {
        let n = graph.node_count();
        assert!(out_dist.len() >= n && out_src.len() >= n);
        out_dist[..n].fill(Weight::INFINITY);
        out_src[..n].fill(None);
        self.run(graph, dir, seeds, radius, |s| {
            out_dist[s.node.index()] = s.dist;
            out_src[s.node.index()] = Some(s.source);
        })
    }

    /// Single-source distances to every node (untruncated), as a dense
    /// vector. Convenience used by tests and examples.
    pub fn distances(&mut self, graph: &Graph, dir: Direction, from: NodeId) -> Vec<Weight> {
        let mut dist = vec![Weight::INFINITY; graph.node_count()];
        self.run(graph, dir, [from], Weight::INFINITY, |s| {
            dist[s.node.index()] = s.dist;
        });
        dist
    }
}

/// One-shot single-source shortest distances. The engine scratch state is
/// borrowed from [`EnginePool::global`](crate::EnginePool::global), so
/// repeated one-shot calls stop paying the `O(n)` allocation after the
/// first.
pub fn shortest_distances(graph: &Graph, dir: Direction, from: NodeId) -> Vec<Weight> {
    crate::pool::EnginePool::global()
        .acquire(graph.node_count())
        .distances(graph, dir, from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::graph_from_edges;
    use crate::reference::all_pairs_shortest;

    fn line() -> Graph {
        graph_from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)])
    }

    #[test]
    fn single_source_forward() {
        let g = line();
        let d = shortest_distances(&g, Direction::Forward, NodeId(0));
        assert_eq!(d[0], Weight::ZERO);
        assert_eq!(d[1], Weight::new(1.0));
        assert_eq!(d[2], Weight::new(3.0));
        assert_eq!(d[3], Weight::new(7.0));
    }

    #[test]
    fn single_source_reverse() {
        let g = line();
        let d = shortest_distances(&g, Direction::Reverse, NodeId(3));
        // Reverse from 3 gives dist(u, 3) for each u.
        assert_eq!(d[0], Weight::new(7.0));
        assert_eq!(d[3], Weight::ZERO);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = graph_from_edges(3, &[(0, 1, 1.0)]);
        let d = shortest_distances(&g, Direction::Forward, NodeId(0));
        assert!(!d[2].is_finite());
    }

    #[test]
    fn radius_truncation() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let mut reached = Vec::new();
        eng.run(&g, Direction::Forward, [NodeId(0)], Weight::new(3.0), |s| {
            reached.push((s.node, s.dist));
        });
        assert_eq!(
            reached,
            vec![
                (NodeId(0), Weight::ZERO),
                (NodeId(1), Weight::new(1.0)),
                (NodeId(2), Weight::new(3.0)),
            ]
        );
    }

    #[test]
    fn multi_source_nearest_seed_wins() {
        // 0 -> 1 -> 2 <- 3, seeds {0, 3}: node 2 is closer to 3.
        let g = graph_from_edges(4, &[(0, 1, 1.0), (1, 2, 5.0), (3, 2, 2.0)]);
        let mut eng = DijkstraEngine::new(4);
        let mut dist = vec![Weight::INFINITY; 4];
        let mut src = vec![None; 4];
        eng.run_into(
            &g,
            Direction::Forward,
            [NodeId(0), NodeId(3)],
            Weight::INFINITY,
            &mut dist,
            &mut src,
        );
        assert_eq!(dist[2], Weight::new(2.0));
        assert_eq!(src[2], Some(NodeId(3)));
        assert_eq!(src[1], Some(NodeId(0)));
        assert_eq!(src[0], Some(NodeId(0)));
    }

    #[test]
    fn engine_reuse_across_runs() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let d1 = eng.distances(&g, Direction::Forward, NodeId(0));
        let d2 = eng.distances(&g, Direction::Forward, NodeId(2));
        assert_eq!(d1[3], Weight::new(7.0));
        assert_eq!(d2[3], Weight::new(4.0));
        assert!(!d2[0].is_finite());
        // And a third run still agrees with a fresh engine.
        let d3 = eng.distances(&g, Direction::Reverse, NodeId(3));
        let d3_fresh = shortest_distances(&g, Direction::Reverse, NodeId(3));
        assert_eq!(d3, d3_fresh);
    }

    #[test]
    fn settle_order_is_nondecreasing() {
        let g = graph_from_edges(
            5,
            &[
                (0, 1, 3.0),
                (0, 2, 1.0),
                (2, 1, 1.0),
                (1, 3, 1.0),
                (2, 4, 10.0),
            ],
        );
        let mut eng = DijkstraEngine::new(5);
        let mut last = Weight::ZERO;
        eng.run(&g, Direction::Forward, [NodeId(0)], Weight::INFINITY, |s| {
            assert!(s.dist >= last);
            last = s.dist;
        });
    }

    #[test]
    fn zero_weight_cycles_terminate() {
        let g = graph_from_edges(3, &[(0, 1, 0.0), (1, 0, 0.0), (1, 2, 1.0)]);
        let d = shortest_distances(&g, Direction::Forward, NodeId(0));
        assert_eq!(d[1], Weight::ZERO);
        assert_eq!(d[2], Weight::new(1.0));
    }

    #[test]
    fn matches_floyd_warshall_on_grid() {
        // Deterministic pseudo-random sparse graph, checked both directions.
        let n = 40usize;
        let mut edges = Vec::new();
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..200 {
            let u = next() % n as u32;
            let v = next() % n as u32;
            let w = f64::from(next() % 10) + 1.0;
            edges.push((u, v, w));
        }
        let g = graph_from_edges(n, &edges);
        let apsp = all_pairs_shortest(&g, Direction::Forward);
        let mut eng = DijkstraEngine::new(n);
        for s in 0..n as u32 {
            let d = eng.distances(&g, Direction::Forward, NodeId(s));
            for t in 0..n {
                assert_eq!(d[t], apsp[s as usize][t], "mismatch {s}->{t}");
            }
        }
        // Reverse direction equals APSP of the transposed relation.
        let d_rev = eng.distances(&g, Direction::Reverse, NodeId(0));
        for (u, du) in d_rev.iter().enumerate() {
            assert_eq!(*du, apsp[u][0], "reverse mismatch {u}->0");
        }
    }

    #[test]
    fn run_returns_settle_count() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let count = eng.run(
            &g,
            Direction::Forward,
            [NodeId(0)],
            Weight::new(3.0),
            |_| {},
        );
        assert_eq!(count, 3);
    }

    #[test]
    fn guarded_run_matches_unguarded_when_untripped() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let mut a = Vec::new();
        eng.run(&g, Direction::Forward, [NodeId(0)], Weight::INFINITY, |s| {
            a.push(s)
        });
        let mut b = Vec::new();
        let n = eng
            .run_guarded(
                &g,
                Direction::Forward,
                [NodeId(0)],
                Weight::INFINITY,
                &RunGuard::new(),
                |s| b.push(s),
            )
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(n, a.len());
    }

    #[test]
    fn guarded_run_stops_at_settled_budget_with_prefix_output() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let mut full = Vec::new();
        eng.run(&g, Direction::Forward, [NodeId(0)], Weight::INFINITY, |s| {
            full.push(s)
        });
        for budget in 0..full.len() as u64 {
            let guard = RunGuard::new().with_settled_budget(budget);
            let mut part = Vec::new();
            let err = eng
                .run_guarded(
                    &g,
                    Direction::Forward,
                    [NodeId(0)],
                    Weight::INFINITY,
                    &guard,
                    |s| part.push(s),
                )
                .unwrap_err();
            assert_eq!(err, InterruptReason::SettledBudgetExhausted);
            assert_eq!(part, full[..budget as usize]);
            // The engine stays reusable after an interrupted sweep.
            let d = eng.distances(&g, Direction::Forward, NodeId(0));
            assert_eq!(d[3], Weight::new(7.0));
        }
    }

    #[test]
    fn empty_seed_set() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let count = eng.run(
            &g,
            Direction::Forward,
            std::iter::empty(),
            Weight::INFINITY,
            |_| {},
        );
        assert_eq!(count, 0);
    }

    /// Collects the full settle trace of one sweep under a given kernel.
    fn trace(
        eng: &mut DijkstraEngine,
        g: &Graph,
        seeds: &[NodeId],
        radius: Weight,
    ) -> Vec<Settled> {
        let mut out = Vec::new();
        eng.run(g, Direction::Forward, seeds.iter().copied(), radius, |s| {
            out.push(s)
        });
        out
    }

    #[test]
    fn bucket_kernel_is_bit_identical_to_heap() {
        let g = graph_from_edges(
            7,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0), // tie: 1 and 2 both at dist 1
                (1, 3, 0.5),
                (2, 3, 0.5), // tie through two parents
                (3, 4, 0.0), // zero-weight edge within a bucket
                (4, 5, 2.25),
                (1, 6, 3.75),
            ],
        );
        let mut heap_eng = DijkstraEngine::with_kernel(7, Kernel::Heap);
        let mut bucket_eng = DijkstraEngine::with_kernel(7, Kernel::Bucket);
        for radius in [0.0, 1.0, 1.5, 4.0, 100.0] {
            let r = Weight::new(radius);
            let seeds = [NodeId(0), NodeId(2)];
            assert_eq!(
                trace(&mut heap_eng, &g, &seeds, r),
                trace(&mut bucket_eng, &g, &seeds, r),
                "kernels diverged at radius {radius}"
            );
        }
    }

    #[test]
    fn bucket_kernel_interruption_prefix_matches_heap() {
        let g = line();
        let mut heap_eng = DijkstraEngine::with_kernel(4, Kernel::Heap);
        let mut bucket_eng = DijkstraEngine::with_kernel(4, Kernel::Bucket);
        let r = Weight::new(10.0);
        let full = trace(&mut heap_eng, &g, &[NodeId(0)], r);
        for budget in 0..full.len() as u64 {
            let guard = RunGuard::new().with_settled_budget(budget);
            let mut part = Vec::new();
            let err = bucket_eng
                .run_guarded(&g, Direction::Forward, [NodeId(0)], r, &guard, |s| {
                    part.push(s)
                })
                .unwrap_err();
            assert_eq!(err, InterruptReason::SettledBudgetExhausted);
            assert_eq!(part, full[..budget as usize]);
        }
    }

    #[test]
    fn auto_kernel_matches_heap_on_truncated_and_open_sweeps() {
        let g = graph_from_edges(5, &[(0, 1, 1.5), (1, 2, 0.5), (2, 3, 2.0), (0, 4, 0.0)]);
        let mut auto_eng = DijkstraEngine::new(5);
        let mut heap_eng = DijkstraEngine::with_kernel(5, Kernel::Heap);
        for radius in [Weight::new(2.0), Weight::INFINITY] {
            assert_eq!(
                trace(&mut auto_eng, &g, &[NodeId(0)], radius),
                trace(&mut heap_eng, &g, &[NodeId(0)], radius),
            );
        }
        assert_eq!(auto_eng.kernel(), Kernel::Auto);
    }

    #[test]
    fn kernel_can_be_switched_between_sweeps() {
        let g = line();
        let mut eng = DijkstraEngine::with_kernel(4, Kernel::Heap);
        let a = trace(&mut eng, &g, &[NodeId(0)], Weight::new(7.0));
        eng.set_kernel(Kernel::Bucket);
        assert_eq!(eng.kernel(), Kernel::Bucket);
        let b = trace(&mut eng, &g, &[NodeId(0)], Weight::new(7.0));
        assert_eq!(a, b);
    }

    #[test]
    fn batched_sweep_matches_per_dimension_sweeps() {
        let g = graph_from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (3, 0, 0.5),
                (4, 2, 1.5),
                (2, 5, 1.0),
            ],
        );
        let seeds = vec![
            vec![NodeId(0)],
            vec![NodeId(4), NodeId(3)],
            vec![], // an empty dimension must stay empty
        ];
        for kernel in Kernel::ALL {
            let mut eng = DijkstraEngine::with_kernel(6, kernel);
            let radius = Weight::new(4.0);
            // Reference: one standalone sweep per dimension.
            let per_dim: Vec<Vec<Settled>> = seeds
                .iter()
                .map(|dim_seeds| {
                    let mut out = Vec::new();
                    eng.run(
                        &g,
                        Direction::Forward,
                        dim_seeds.iter().copied(),
                        radius,
                        |s| out.push(s),
                    );
                    out
                })
                .collect();
            let mut batched: Vec<Vec<Settled>> = vec![Vec::new(); seeds.len()];
            let total = eng
                .run_batched_guarded(
                    &g,
                    Direction::Forward,
                    &seeds,
                    radius,
                    &RunGuard::unlimited(),
                    |dim, s| batched[dim].push(s),
                )
                .unwrap();
            assert_eq!(batched, per_dim, "kernel {kernel} diverged");
            assert_eq!(total, per_dim.iter().map(Vec::len).sum::<usize>());
        }
    }

    #[test]
    fn batched_sweep_guard_counts_fused_settles() {
        let g = line();
        let seeds = vec![vec![NodeId(0)], vec![NodeId(2)]];
        let mut eng = DijkstraEngine::new(4);
        let guard = RunGuard::new().with_settled_budget(3);
        let mut seen = 0usize;
        let err = eng
            .run_batched_guarded(
                &g,
                Direction::Forward,
                &seeds,
                Weight::new(10.0),
                &guard,
                |_, _| seen += 1,
            )
            .unwrap_err();
        assert_eq!(err, InterruptReason::SettledBudgetExhausted);
        assert_eq!(seen, 3);
        // The engine recovers for ordinary sweeps afterwards.
        let d = eng.distances(&g, Direction::Forward, NodeId(0));
        assert_eq!(d[3], Weight::new(7.0));
    }

    #[test]
    fn trim_scratch_shrinks_and_keeps_answers() {
        let g = line();
        let mut eng = DijkstraEngine::new(4);
        let before = eng.distances(&g, Direction::Forward, NodeId(0));
        eng.ensure_capacity(100_000);
        assert_eq!(eng.capacity(), 100_000);
        let grown = eng.scratch_bytes();
        eng.trim_scratch(16);
        assert_eq!(eng.capacity(), 16);
        assert!(eng.scratch_bytes() < grown);
        assert_eq!(eng.distances(&g, Direction::Forward, NodeId(0)), before);
    }

    #[test]
    fn trim_scratch_after_interrupted_sweep_is_safe() {
        // An interrupted sweep leaves a populated touched list; trimming
        // below the touched indices must reset before truncating.
        let g = graph_from_edges(50, &(0..49).map(|i| (i, i + 1, 1.0)).collect::<Vec<_>>());
        let mut eng = DijkstraEngine::new(50);
        let guard = RunGuard::new().with_settled_budget(5);
        let _ = eng.run_guarded(
            &g,
            Direction::Forward,
            [NodeId(0)],
            Weight::INFINITY,
            &guard,
            |_| {},
        );
        eng.trim_scratch(8);
        assert_eq!(eng.capacity(), 8);
        let small = graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let d = eng.distances(&small, Direction::Forward, NodeId(0));
        assert_eq!(d[2], Weight::new(2.0));
    }

    #[test]
    fn ensure_capacity_reports_growth() {
        let mut eng = DijkstraEngine::new(4);
        assert!(!eng.ensure_capacity(2));
        assert!(eng.ensure_capacity(8));
        assert!(!eng.ensure_capacity(8));
    }
}
