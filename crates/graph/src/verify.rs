//! Deep structural validation of the CSR graph.
//!
//! [`Graph::validate`] re-derives every representation invariant the rest of
//! the workspace silently relies on — well-formed offset arrays, sorted
//! adjacency runs, finite non-negative weights, and exact transpose
//! agreement between the forward and reverse CSR halves. It runs in
//! `O(m log m)` and is wired into [`GraphBuilder::build`](crate::GraphBuilder::build)
//! under `debug_assertions` or the `verify` feature, so corrupt graphs fail
//! loudly at construction instead of producing subtly wrong communities.

use crate::csr::{Csr, Direction, Graph, NodeId};
use crate::weight::{try_index_to_u32, Weight};
use std::fmt;

/// A violated structural invariant, with enough context to locate it.
///
/// Each variant corresponds to one independent invariant class so tests can
/// assert that a specific corruption produces a specific diagnosis.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphInvariantError {
    /// The node count does not fit the `u32` node-id space.
    NodeCountOverflow {
        /// The stored node count.
        n: usize,
    },
    /// An offsets array has the wrong length, a nonzero first entry, a
    /// final entry disagreeing with the edge arrays, or a decreasing step.
    MalformedOffsets {
        /// Which adjacency half is malformed.
        dir: Direction,
        /// Human-readable description of the defect.
        detail: String,
    },
    /// `targets` and `weights` disagree with each other or with the stored
    /// edge count `m`.
    EdgeArrayMismatch {
        /// Which adjacency half is malformed.
        dir: Direction,
        /// Human-readable description of the defect.
        detail: String,
    },
    /// An adjacency entry points outside `0..n`.
    TargetOutOfRange {
        /// Which adjacency half holds the bad entry.
        dir: Direction,
        /// The node whose run holds the bad entry.
        node: NodeId,
        /// The out-of-range target.
        target: NodeId,
        /// The node count it must stay below.
        n: usize,
    },
    /// An adjacency run is not sorted by `(target, weight)`.
    UnsortedAdjacency {
        /// Which adjacency half holds the unsorted run.
        dir: Direction,
        /// The node whose run is out of order.
        node: NodeId,
    },
    /// An edge weight is non-finite (infinite weights are reserved for the
    /// "unreachable" distance marker and must never appear on an edge).
    InvalidWeight {
        /// Which adjacency half holds the bad weight.
        dir: Direction,
        /// The node whose run holds the bad weight.
        node: NodeId,
        /// The offending raw weight value.
        value: f64,
    },
    /// The forward and reverse halves do not describe the same edge
    /// multiset (the reverse CSR must be exactly the transpose).
    TransposeMismatch {
        /// Human-readable description of the first disagreement.
        detail: String,
    },
}

impl fmt::Display for GraphInvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphInvariantError::NodeCountOverflow { n } => {
                write!(f, "node count {n} exceeds the u32 node-id space")
            }
            GraphInvariantError::MalformedOffsets { dir, detail } => {
                write!(f, "{dir:?} offsets malformed: {detail}")
            }
            GraphInvariantError::EdgeArrayMismatch { dir, detail } => {
                write!(f, "{dir:?} edge arrays inconsistent: {detail}")
            }
            GraphInvariantError::TargetOutOfRange {
                dir,
                node,
                target,
                n,
            } => {
                write!(
                    f,
                    "{dir:?} adjacency of {node} holds target {target} outside 0..{n}"
                )
            }
            GraphInvariantError::UnsortedAdjacency { dir, node } => {
                write!(
                    f,
                    "{dir:?} adjacency of {node} is not sorted by (target, weight)"
                )
            }
            GraphInvariantError::InvalidWeight { dir, node, value } => {
                write!(
                    f,
                    "{dir:?} adjacency of {node} holds invalid weight {value}"
                )
            }
            GraphInvariantError::TransposeMismatch { detail } => {
                write!(f, "forward/reverse adjacency disagree: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphInvariantError {}

/// Validates one CSR half in isolation (offsets shape, array lengths,
/// target ranges, per-run ordering, weight finiteness). `pub(crate)` so
/// the container loader can run the same linear checks on mapped arrays
/// without paying the full transpose comparison.
pub(crate) fn validate_csr(
    csr: &Csr,
    dir: Direction,
    n: usize,
    m: usize,
) -> Result<(), GraphInvariantError> {
    let bad_offsets = |detail: String| GraphInvariantError::MalformedOffsets { dir, detail };
    if csr.offsets.len() != n + 1 {
        return Err(bad_offsets(format!(
            "length {} but need n + 1 = {}",
            csr.offsets.len(),
            n + 1
        )));
    }
    if csr.offsets[0] != 0 {
        return Err(bad_offsets(format!(
            "first offset is {}, not 0",
            csr.offsets[0]
        )));
    }
    if let Some(i) = (0..n).find(|&i| csr.offsets[i] > csr.offsets[i + 1]) {
        return Err(bad_offsets(format!(
            "offsets decrease at node v{i}: {} > {}",
            csr.offsets[i],
            csr.offsets[i + 1]
        )));
    }
    let total = csr.offsets[n] as usize;
    if total != csr.targets.len() || csr.targets.len() != csr.weights.len() || total != m {
        return Err(GraphInvariantError::EdgeArrayMismatch {
            dir,
            detail: format!(
                "final offset {total}, {} targets, {} weights, edge count {m}",
                csr.targets.len(),
                csr.weights.len()
            ),
        });
    }
    for u in 0..n {
        let lo = csr.offsets[u] as usize;
        let hi = csr.offsets[u + 1] as usize;
        let node = NodeId(try_index_to_u32(u).unwrap_or(u32::MAX));
        let run: &[NodeId] = &csr.targets[lo..hi];
        let weights: &[Weight] = &csr.weights[lo..hi];
        for (&t, &w) in run.iter().zip(weights) {
            if t.index() >= n {
                return Err(GraphInvariantError::TargetOutOfRange {
                    dir,
                    node,
                    target: t,
                    n,
                });
            }
            if !w.get().is_finite() || w.get() < 0.0 {
                return Err(GraphInvariantError::InvalidWeight {
                    dir,
                    node,
                    value: w.get(),
                });
            }
        }
        let sorted = run
            .iter()
            .zip(weights)
            .zip(run.iter().zip(weights).skip(1))
            .all(|((t0, w0), (t1, w1))| (t0, w0) <= (t1, w1));
        if !sorted {
            return Err(GraphInvariantError::UnsortedAdjacency { dir, node });
        }
    }
    Ok(())
}

/// Flattens a CSR half into canonical `(u, v, weight-bits)` triples, with
/// the reverse half's edges flipped back to forward orientation so the two
/// halves become directly comparable.
fn edge_multiset(csr: &Csr, n: usize, flip: bool) -> Vec<(u32, u32, u64)> {
    let mut out = Vec::with_capacity(csr.targets.len());
    for u in 0..n {
        let lo = csr.offsets[u] as usize;
        let hi = csr.offsets[u + 1] as usize;
        let uid = try_index_to_u32(u).unwrap_or(u32::MAX);
        for (&t, &w) in csr.targets[lo..hi].iter().zip(&csr.weights[lo..hi]) {
            let (a, b) = if flip { (t.0, uid) } else { (uid, t.0) };
            out.push((a, b, w.get().to_bits()));
        }
    }
    out.sort_unstable();
    out
}

impl Graph {
    /// Checks every structural invariant of the CSR representation.
    ///
    /// Verified, in order:
    /// 1. the node count fits the `u32` id space;
    /// 2. both offset arrays have length `n + 1`, start at 0, are
    ///    monotone, and end at the edge count;
    /// 3. `targets`/`weights` lengths agree with the offsets and with `m`;
    /// 4. every target lies in `0..n`;
    /// 5. every weight is finite and non-negative;
    /// 6. every adjacency run is sorted by `(target, weight)` (parallel
    ///    edges are legal and kept);
    /// 7. the reverse half is *exactly* the transpose of the forward half
    ///    (same edge multiset, weights compared bit-for-bit).
    ///
    /// Runs in `O(m log m)`; returns the first violation found.
    pub fn validate(&self) -> Result<(), GraphInvariantError> {
        if try_index_to_u32(self.n).is_none() {
            return Err(GraphInvariantError::NodeCountOverflow { n: self.n });
        }
        validate_csr(&self.fwd, Direction::Forward, self.n, self.m)?;
        validate_csr(&self.rev, Direction::Reverse, self.n, self.m)?;
        let fwd = edge_multiset(&self.fwd, self.n, false);
        let rev = edge_multiset(&self.rev, self.n, true);
        if let Some((a, b)) = fwd.iter().zip(&rev).find(|(a, b)| a != b) {
            let (fu, fv, fw) = *a;
            let (ru, rv, rw) = *b;
            return Err(GraphInvariantError::TransposeMismatch {
                detail: format!(
                    "forward has (v{fu}, v{fv}, w={}) where reverse implies (v{ru}, v{rv}, w={})",
                    f64::from_bits(fw),
                    f64::from_bits(rw)
                ),
            });
        }
        Ok(())
    }

    /// Panicking wrapper around [`Graph::validate`], used as the build-time
    /// hook in debug and `verify` builds.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            // xtask-allow: no_panics — the verify hook's whole job is to abort on corruption
            panic!("graph invariant violated: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::graph_from_edges;

    fn sample() -> Graph {
        graph_from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 3, 2.0),
                (0, 2, 4.0),
                (2, 3, 8.0),
                (0, 1, 0.5),
            ],
        )
    }

    #[test]
    fn well_formed_graph_validates() {
        sample().validate().unwrap();
        graph_from_edges(0, &[]).validate().unwrap();
    }

    #[test]
    fn corrupted_offsets_are_diagnosed() {
        let mut g = sample();
        g.fwd.offsets.to_mut()[0] = 1;
        assert!(matches!(
            g.validate(),
            Err(GraphInvariantError::MalformedOffsets {
                dir: Direction::Forward,
                ..
            })
        ));

        let mut g = sample();
        g.rev.offsets.to_mut().pop();
        let err = g.validate().unwrap_err();
        assert!(matches!(
            err,
            GraphInvariantError::MalformedOffsets {
                dir: Direction::Reverse,
                ..
            }
        ));
        assert!(err.to_string().contains("n + 1"));

        // A decreasing offset pair.
        let mut g = sample();
        let bumped = g.fwd.offsets[2] + 1;
        g.fwd.offsets.to_mut()[1] = bumped;
        let err = g.validate().unwrap_err();
        assert!(err.to_string().contains("decrease"));
    }

    #[test]
    fn edge_array_mismatch_is_diagnosed() {
        let mut g = sample();
        g.fwd.weights.to_mut().pop();
        assert!(matches!(
            g.validate(),
            Err(GraphInvariantError::EdgeArrayMismatch {
                dir: Direction::Forward,
                ..
            })
        ));

        // Stored m disagreeing with the arrays.
        let mut g = sample();
        g.m += 1;
        assert!(matches!(
            g.validate(),
            Err(GraphInvariantError::EdgeArrayMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_target_is_diagnosed() {
        let mut g = sample();
        g.fwd.targets.to_mut()[0] = NodeId(99);
        assert_eq!(
            g.validate(),
            Err(GraphInvariantError::TargetOutOfRange {
                dir: Direction::Forward,
                node: NodeId(0),
                target: NodeId(99),
                n: 4,
            })
        );
    }

    #[test]
    fn unsorted_adjacency_is_diagnosed() {
        let mut g = sample();
        // Node 0's forward run is [(1, 0.5), (1, 1.0), (2, 4.0)]; swapping
        // the first two breaks (target, weight) order without changing the
        // transpose multiset.
        g.fwd.weights.to_mut().swap(0, 1);
        assert_eq!(
            g.validate(),
            Err(GraphInvariantError::UnsortedAdjacency {
                dir: Direction::Forward,
                node: NodeId(0),
            })
        );
    }

    #[test]
    fn infinite_weight_is_diagnosed() {
        let mut g = sample();
        let last = g.rev.weights.len() - 1;
        g.rev.weights.to_mut()[last] = Weight::INFINITY;
        // Caught per-half before the transpose comparison runs.
        assert!(matches!(
            g.validate(),
            Err(GraphInvariantError::InvalidWeight {
                dir: Direction::Reverse,
                ..
            })
        ));
    }

    #[test]
    fn transpose_mismatch_is_diagnosed() {
        // Swap two targets in the same run so per-half checks still pass
        // (run stays sorted) but the reverse half no longer transposes.
        let mut g = graph_from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (3, 1, 1.0)]);
        g.fwd.targets.to_mut()[1] = NodeId(3);
        g.fwd.targets.to_mut().sort();
        let err = g.validate().unwrap_err();
        assert!(matches!(err, GraphInvariantError::TransposeMismatch { .. }));
        assert!(err.to_string().contains("disagree"));
    }

    #[test]
    fn parallel_edges_are_legal() {
        let g = graph_from_edges(2, &[(0, 1, 3.0), (0, 1, 3.0), (0, 1, 5.0)]);
        g.validate().unwrap();
    }

    #[test]
    fn assert_valid_passes_on_good_graph() {
        sample().assert_valid();
    }

    #[test]
    #[should_panic(expected = "graph invariant violated")]
    fn assert_valid_panics_on_corruption() {
        let mut g = sample();
        g.fwd.targets.to_mut()[0] = NodeId(99);
        g.assert_valid();
    }
}
