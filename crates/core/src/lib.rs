//! Keyword community search over database graphs — the core algorithms of
//! "Querying Communities in Relational Databases" (ICDE 2009).
//!
//! Given a weighted directed database graph `G_D` (see `comm-graph` /
//! `comm-rdb`), an l-keyword query resolved to node sets `V_1..V_l`, and a
//! radius `Rmax`, a **community** (Definition 2.1) is the induced subgraph
//! over *knodes* (one node per keyword, the community's **core**),
//! *cnodes* (centers reaching every knode within `Rmax`), and *pnodes*
//! (nodes on qualifying center→knode paths). This crate implements:
//!
//! * [`CommAll`] — Algorithm 1: polynomial-delay enumeration of all
//!   communities, complete and duplication-free
//!   (`O(l·(n log n + m))` delay, `O(l·n + m)` space);
//! * [`CommK`] — Algorithm 5: exact top-k enumeration in cost order via a
//!   can-list + Fibonacci heap, with `k` interactively extendable at run
//!   time (`O(l²·k + l·n + m)` space);
//! * [`get_community`] — Algorithm 4: materializing the unique community
//!   of a core;
//! * [`NeighborSets`] — Algorithms 2 & 3 (`Neighbor()` / `BestCore()`);
//! * [`naive`] — the exponential nested-loop oracle of Sec. III.
//!
//! # Execution control
//!
//! Every enumeration entry point has a `try_*` / `*_guarded` variant that
//! validates the [`QuerySpec`] up front (returning [`QueryError`] instead
//! of panicking) and accepts a [`RunGuard`] — a cancel flag, deadline, and
//! budget governor threaded through every Dijkstra sweep. Interrupted runs
//! return [`Outcome::Interrupted`] carrying the communities emitted before
//! the trip, always an exact prefix of the unguarded enumeration.
//!
//! # Parallel execution
//!
//! The enumerators' initial keyword sweeps
//! ([`CommAll::with_parallelism`] / [`CommK::with_parallelism`]), index
//! construction ([`ProjectionIndex::build_par_guarded`]), and community
//! materialization ([`get_community_par_guarded`]) can fan work across a
//! [`Parallelism`] thread pool, borrowing Dijkstra scratch state from an
//! [`EnginePool`]. Every parallel path honors the shared [`RunGuard`] and
//! produces bit-identical results to the serial path for every thread
//! count.
//!
//! # Quickstart
//! ```
//! use comm_core::{comm_k, QuerySpec};
//! use comm_datasets::paper_example::{fig4_graph, fig4_keyword_nodes, FIG4_RMAX};
//! use comm_graph::Weight;
//!
//! let graph = fig4_graph();
//! let spec = QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX));
//! let top3 = comm_k(&graph, &spec, 3);
//! assert_eq!(top3[0].cost, Weight::new(7.0)); // Table I, rank 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod comm_all;
mod comm_k;
pub mod dot;
mod error;
mod get_community;
pub mod lawler;
pub mod naive;
mod neighbor;
mod projection;
pub mod trees;
mod types;
pub mod verify;

pub use baselines::{
    bu_all, bu_all_guarded, bu_topk, bu_topk_guarded, td_all, td_all_guarded, td_topk,
    td_topk_guarded, BaselineRun, BaselineStats,
};
pub use comm_all::{comm_all, comm_all_guarded, try_comm_all, CommAll};
pub use comm_k::{comm_k, comm_k_guarded, try_comm_k, CommK};
pub use error::QueryError;
pub use get_community::{
    get_community, get_community_guarded, get_community_par_guarded, get_community_with,
    try_get_community,
};
pub use lawler::LawlerK;
pub use neighbor::{BestCore, NeighborSets, MAX_KEYWORDS};
pub use projection::{comm_k_on_index, ProjectedQuery, ProjectionIndex};
pub use types::{Community, Core, CostFn, QuerySpec};
pub use verify::{
    check_community, check_enumeration, check_ranking, check_topk_prefix, CertificationError,
};

// Re-export the guard and parallelism vocabulary so downstream users need
// only this crate.
pub use comm_graph::{EnginePool, InterruptReason, Outcome, Parallelism, PooledEngine, RunGuard};
