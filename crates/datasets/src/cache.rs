//! On-disk caching of materialized query bundles.
//!
//! A *bundle* is everything the search layer needs from a dataset: the
//! database graph plus the keyword → node-set map. Paper-scale generation
//! takes ~a minute; loading the cached bundle takes ~a second, so the
//! benchmark harness caches bundles keyed by configuration (see
//! `comm-bench`'s `COMM_BENCH_CACHE`).

use comm_graph::io::{read_graph, write_graph};
use comm_graph::weight::index_to_u32;
use comm_graph::{Graph, NodeId};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"CBDL";
const VERSION: u32 = 1;

/// A graph plus its keyword map, as loaded from a cache file.
pub struct GraphBundle {
    /// The database graph.
    pub graph: Graph,
    /// Keyword → sorted node ids.
    pub keyword_nodes: HashMap<String, Vec<NodeId>>,
}

impl GraphBundle {
    /// The nodes for a keyword (empty if unknown).
    pub fn keyword_nodes(&self, keyword: &str) -> &[NodeId] {
        self.keyword_nodes
            .get(&keyword.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Saves a bundle: the graph and the given `(keyword, nodes)` pairs.
pub fn save_bundle<'a>(
    path: impl AsRef<Path>,
    graph: &Graph,
    keywords: impl IntoIterator<Item = (&'a str, &'a [NodeId])>,
) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let entries: Vec<(&str, &[NodeId])> = keywords.into_iter().collect();
    w.write_all(&index_to_u32(entries.len()).to_le_bytes())?;
    for (kw, nodes) in entries {
        let bytes = kw.as_bytes();
        w.write_all(&index_to_u32(bytes.len()).to_le_bytes())?;
        w.write_all(bytes)?;
        w.write_all(&index_to_u32(nodes.len()).to_le_bytes())?;
        for n in nodes {
            w.write_all(&n.0.to_le_bytes())?;
        }
    }
    write_graph(graph, &mut w)?;
    w.flush()
}

/// Loads a bundle written by [`save_bundle`].
pub fn load_bundle(path: impl AsRef<Path>) -> io::Result<GraphBundle> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(bad("not a CBDL bundle file"));
    }
    let mut v4 = [0u8; 4];
    r.read_exact(&mut v4)?;
    if u32::from_le_bytes(v4) != VERSION {
        return Err(bad("unsupported CBDL version"));
    }
    r.read_exact(&mut v4)?;
    let count = u32::from_le_bytes(v4) as usize;
    let mut keyword_nodes = HashMap::with_capacity(count);
    for _ in 0..count {
        r.read_exact(&mut v4)?;
        let len = u32::from_le_bytes(v4) as usize;
        if len > 1 << 20 {
            return Err(bad("implausible keyword length"));
        }
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        let kw = String::from_utf8(buf).map_err(|_| bad("keyword is not UTF-8"))?;
        r.read_exact(&mut v4)?;
        let n = u32::from_le_bytes(v4) as usize;
        let mut nodes = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            r.read_exact(&mut v4)?;
            nodes.push(NodeId(u32::from_le_bytes(v4)));
        }
        keyword_nodes.insert(kw, nodes);
    }
    let graph = read_graph(&mut r)?;
    for nodes in keyword_nodes.values() {
        if nodes.iter().any(|n| n.index() >= graph.node_count()) {
            return Err(bad("keyword node out of graph range"));
        }
    }
    Ok(GraphBundle {
        graph,
        keyword_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm_graph::graph_from_edges;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("comm_datasets_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn bundle_roundtrip() {
        let g = graph_from_edges(4, &[(0, 1, 1.0), (1, 2, 2.5), (3, 0, 4.0)]);
        let path = tmp("b1.cbdl");
        save_bundle(
            &path,
            &g,
            [
                ("alpha", [NodeId(0), NodeId(2)].as_slice()),
                ("beta", [NodeId(3)].as_slice()),
            ],
        )
        .unwrap();
        let b = load_bundle(&path).unwrap();
        assert_eq!(b.graph.edge_count(), 3);
        assert_eq!(b.keyword_nodes("alpha"), &[NodeId(0), NodeId(2)]);
        assert_eq!(b.keyword_nodes("beta"), &[NodeId(3)]);
        assert_eq!(b.keyword_nodes("missing"), &[] as &[NodeId]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("b2.cbdl");
        std::fs::write(&path, b"garbage").unwrap();
        assert!(load_bundle(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_range_keyword_node() {
        let g = graph_from_edges(2, &[(0, 1, 1.0)]);
        let path = tmp("b3.cbdl");
        save_bundle(&path, &g, [("kw", [NodeId(9)].as_slice())]).unwrap();
        assert!(load_bundle(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generated_dataset_bundle_roundtrip() {
        let ds = crate::generate_dblp(&crate::DblpConfig::default().scaled(0.05));
        let path = tmp("b4.cbdl");
        let kws: Vec<(&str, &[NodeId])> = vec![
            ("database", ds.graph.keyword_nodes("database")),
            ("fuzzy", ds.graph.keyword_nodes("fuzzy")),
        ];
        save_bundle(&path, &ds.graph.graph, kws).unwrap();
        let b = load_bundle(&path).unwrap();
        assert_eq!(b.graph.node_count(), ds.graph.graph.node_count());
        assert_eq!(
            b.keyword_nodes("database"),
            ds.graph.keyword_nodes("database")
        );
        std::fs::remove_file(&path).ok();
    }
}
