//! Priority-queue kernel selection for the Dijkstra engines.
//!
//! The paper's weight function `w_e((u,v)) = log2(1 + N_in(v))` yields
//! weights ≥ 1 on every real edge (a referenced tuple has at least one
//! in-edge), and every sweep is truncated at `Rmax` — so the reachable
//! distance range of one sweep spans at most `Rmax / w_min` "rings". That
//! is exactly the regime where a bucket queue (Dial / delta-stepping with
//! an exact in-bucket order) beats a comparison heap: most pushes become
//! an O(1) append into a narrow distance bucket, and the comparison work
//! is confined to one bucket's worth of entries at a time.
//!
//! [`Kernel`] picks the queue behind [`DijkstraEngine`](crate::DijkstraEngine):
//!
//! * [`Kernel::Heap`] — the classic lazy-deletion binary heap, the
//!   reference kernel;
//! * [`Kernel::Bucket`] — the bucket queue, **bit-identical** to the heap
//!   kernel by construction (see [`crate::bucket`] for the tie-break
//!   argument); falls back to the heap when no valid bucket width exists
//!   (untruncated sweep, zero radius with no positive weight);
//! * [`Kernel::Auto`] — bucket whenever the sweep is radius-bounded,
//!   heap otherwise. This is the default everywhere: results never depend
//!   on the choice, only the constant factor does.
//!
//! The bucket width `delta` derives from the graph's minimum positive
//! edge weight (the finest ring that can matter), narrowed by
//! [`BUCKET_REFINE`] so the in-bucket heaps stay small — measured on the
//! sampled-DBLP and 1M-torus sweeps, `w_min / 16` beats both `w_min`
//! (mini-heaps too big) and `w_min / 64` (no further gain) — and widened
//! so the bucket count stays below [`MAX_BUCKETS`] for very large
//! `Rmax / w_min` ratios. Correctness is independent of `delta` — a
//! wider bucket only moves more entries into the exact in-bucket heap.

use crate::csr::Graph;
use crate::weight::Weight;
use std::fmt;
use std::str::FromStr;

/// Upper bound on bucket-array length; beyond this the width is widened
/// (never the kernel abandoned) so engine scratch stays cache-resident.
pub const MAX_BUCKETS: usize = 1 << 16;

/// How many buckets each minimum-edge-weight "ring" is split into; see
/// the module docs for the measured tuning.
pub const BUCKET_REFINE: f64 = 16.0;

/// Which priority-queue kernel a [`DijkstraEngine`](crate::DijkstraEngine)
/// runs its sweeps on. All kernels produce bit-identical results; the
/// selection is purely a performance choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Binary heap with lazy deletion (the reference kernel).
    Heap,
    /// Radius-aware bucket queue; falls back to the heap when the sweep
    /// is untruncated (no finite radius to size buckets from).
    Bucket,
    /// Bucket when the sweep is radius-bounded, heap otherwise (default).
    #[default]
    Auto,
}

impl Kernel {
    /// All selectable kernels, for help strings and sweeps.
    pub const ALL: [Kernel; 3] = [Kernel::Heap, Kernel::Bucket, Kernel::Auto];

    /// The stable lowercase name (`heap` / `bucket` / `auto`).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Heap => "heap",
            Kernel::Bucket => "bucket",
            Kernel::Auto => "auto",
        }
    }

    /// Atomic-cell encoding for [`crate::EnginePool`]'s process-wide
    /// default (an `AtomicU8` cannot hold the enum directly).
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            Kernel::Heap => 0,
            Kernel::Bucket => 1,
            Kernel::Auto => 2,
        }
    }

    /// Inverse of [`to_u8`](Self::to_u8); unknown values decode as `Auto`.
    pub(crate) fn from_u8(v: u8) -> Kernel {
        match v {
            0 => Kernel::Heap,
            1 => Kernel::Bucket,
            _ => Kernel::Auto,
        }
    }

    /// Resolves the kernel for one sweep: the bucket width is derived from
    /// `radius` and the graph's minimum positive edge weight, and the heap
    /// is chosen when no valid width exists.
    pub(crate) fn resolve(self, graph: &Graph, radius: Weight) -> ResolvedKernel {
        if self == Kernel::Heap {
            return ResolvedKernel::Heap;
        }
        let Some(plan) = BucketPlan::for_sweep(graph, radius) else {
            return ResolvedKernel::Heap;
        };
        ResolvedKernel::Bucket(plan)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Kernel {
    type Err = UnknownKernel;

    fn from_str(s: &str) -> Result<Kernel, UnknownKernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "heap" => Ok(Kernel::Heap),
            "bucket" => Ok(Kernel::Bucket),
            "auto" => Ok(Kernel::Auto),
            _ => Err(UnknownKernel(s.to_owned())),
        }
    }
}

/// Error parsing a kernel name (`heap` / `bucket` / `auto`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownKernel(pub String);

impl fmt::Display for UnknownKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown kernel '{}' (expected heap, bucket, or auto)",
            self.0
        )
    }
}

impl std::error::Error for UnknownKernel {}

/// A kernel choice resolved against one sweep's graph and radius.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ResolvedKernel {
    Heap,
    Bucket(BucketPlan),
}

/// The bucket geometry for one sweep: `1/delta` plus the bucket count
/// implied by the radius. (The `Default` is an empty zero-bucket plan so
/// an idle [`crate::bucket::BucketQueue`] can hold one.)
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct BucketPlan {
    /// Reciprocal bucket width; a distance `d` lands in bucket
    /// `⌊d · delta_inv⌋`.
    pub(crate) delta_inv: f64,
    /// Number of buckets needed for distances in `[0, radius]`.
    pub(crate) buckets: usize,
}

impl BucketPlan {
    /// Derives the bucket width for a sweep truncated at `radius`:
    /// `delta = max(w_min⁺ / BUCKET_REFINE, radius / MAX_BUCKETS)` where
    /// `w_min⁺` is the graph's minimum positive edge weight. Returns
    /// `None` when buckets cannot be sized (untruncated sweep, or a
    /// degenerate width).
    pub(crate) fn for_sweep(graph: &Graph, radius: Weight) -> Option<BucketPlan> {
        if !radius.is_finite() {
            return None;
        }
        let r = radius.get();
        let w_min = graph.min_positive_weight().map_or(0.0, Weight::get);
        let delta = (w_min / BUCKET_REFINE).max(r / MAX_BUCKETS as f64);
        if !(delta.is_finite() && delta > 0.0) {
            // radius == 0 with no positive edge weight: every reachable
            // distance is exactly 0, one bucket suffices.
            return if r == 0.0 {
                Some(BucketPlan {
                    delta_inv: 1.0,
                    buckets: 1,
                })
            } else {
                None
            };
        }
        let delta_inv = delta.recip();
        if !delta_inv.is_finite() {
            return None;
        }
        // +2: one for the ⌊r/delta⌋ bucket itself, one of slack for the
        // float rounding of `r * delta_inv` right at the boundary.
        let buckets = ((r * delta_inv) as usize).min(MAX_BUCKETS) + 2;
        Some(BucketPlan { delta_inv, buckets })
    }

    /// The bucket a distance `d ∈ [0, radius]` lands in. Monotone in `d`
    /// (IEEE multiplication by a positive constant and `floor` both are),
    /// which is all the exactness argument in [`crate::bucket`] needs.
    #[inline]
    pub(crate) fn bucket_of(&self, d: Weight) -> usize {
        (d.get() * self.delta_inv) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::graph_from_edges;

    #[test]
    fn kernel_names_roundtrip() {
        for k in Kernel::ALL {
            assert_eq!(k.name().parse::<Kernel>().unwrap(), k);
        }
        assert_eq!("  BUCKET ".parse::<Kernel>().unwrap(), Kernel::Bucket);
        let err = "fib".parse::<Kernel>().unwrap_err();
        assert!(err.to_string().contains("fib"));
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(Kernel::default(), Kernel::Auto);
    }

    #[test]
    fn heap_never_resolves_to_bucket() {
        let g = graph_from_edges(3, &[(0, 1, 1.0)]);
        assert!(matches!(
            Kernel::Heap.resolve(&g, Weight::new(4.0)),
            ResolvedKernel::Heap
        ));
    }

    #[test]
    fn auto_buckets_bounded_sweeps_only() {
        let g = graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
        assert!(matches!(
            Kernel::Auto.resolve(&g, Weight::new(8.0)),
            ResolvedKernel::Bucket(_)
        ));
        assert!(matches!(
            Kernel::Auto.resolve(&g, Weight::INFINITY),
            ResolvedKernel::Heap
        ));
        // Explicit Bucket also falls back on untruncated sweeps.
        assert!(matches!(
            Kernel::Bucket.resolve(&g, Weight::INFINITY),
            ResolvedKernel::Heap
        ));
    }

    #[test]
    fn plan_uses_min_positive_weight() {
        let g = graph_from_edges(3, &[(0, 1, 0.0), (1, 2, 2.0)]);
        let plan = BucketPlan::for_sweep(&g, Weight::new(8.0)).unwrap();
        // delta = 2.0 / BUCKET_REFINE = 0.125 → buckets ⌊8/0.125⌋ + 2.
        assert_eq!(plan.buckets, 66);
        assert_eq!(plan.bucket_of(Weight::new(3.9)), 31);
        assert_eq!(plan.bucket_of(Weight::new(4.0)), 32);
    }

    #[test]
    fn plan_caps_bucket_count() {
        // Tiny weights and a huge radius: delta widens to radius/MAX.
        let g = graph_from_edges(2, &[(0, 1, 1e-9)]);
        let plan = BucketPlan::for_sweep(&g, Weight::new(1e6)).unwrap();
        assert!(plan.buckets <= MAX_BUCKETS + 2);
    }

    #[test]
    fn zero_radius_zero_weights_single_bucket() {
        let g = graph_from_edges(2, &[(0, 1, 0.0)]);
        let plan = BucketPlan::for_sweep(&g, Weight::ZERO).unwrap();
        assert_eq!(plan.buckets, 1);
        assert_eq!(plan.bucket_of(Weight::ZERO), 0);
    }

    #[test]
    fn bucket_of_is_monotone_on_samples() {
        let g = graph_from_edges(3, &[(0, 1, 0.5), (1, 2, 1.5)]);
        let plan = BucketPlan::for_sweep(&g, Weight::new(10.0)).unwrap();
        let mut last = 0usize;
        for i in 0..=1000 {
            let d = Weight::new(10.0 * f64::from(i) / 1000.0);
            let b = plan.bucket_of(d);
            assert!(b >= last, "bucket_of must be monotone");
            last = b;
        }
        assert!(last < plan.buckets);
    }
}
