//! `unbounded_alloc`: collection growth inside a guarded function's loops
//! must charge the `RunGuard` byte budget.
//!
//! A function that threads a `RunGuard` has opted into governed execution;
//! a loop inside it that grows a `Vec`/`HashMap`/`String` without calling
//! one of the guard's budget hooks (`check_bytes`, `note_settled`,
//! `note_candidate`, `check`) can still allocate without bound — exactly
//! the hole the governor exists to close. Charges compose both ways: an
//! inner loop that charges covers its growth even when the outer loop
//! does not, and a per-iteration charge in an outer loop bounds its inner
//! loops too (the Dijkstra settle/relax pattern).

use super::{push, FileModel, UNBOUNDED_ALLOC};
use std::path::Path;

/// Growth calls that extend a collection.
const GROWTH: [&str; 8] = [
    ".push(",
    ".insert(",
    ".extend(",
    ".extend_from_slice(",
    ".push_back(",
    ".push_str(",
    ".append(",
    ".resize(",
];

/// Budget hooks: any of these inside the loop counts as a charge.
/// A loop that mentions the guard at all (charging directly, or passing it
/// into a `*_guarded` callee that charges per unit of work) is governed —
/// its growth is interruptible, which is what the budget regime requires.
const CHARGE: [&str; 5] = [
    "check_bytes(",
    ".check(",
    "note_settled(",
    "note_candidate(",
    "charge(",
];

/// The rule applies where the guard regime applies: `crates/core` and
/// `crates/serve` library sources, plus the graph crate's persistence
/// modules (`container.rs`, `storage.rs`), whose guarded load paths
/// decode keyword maps and mapped sections under a byte budget.
pub fn in_scope(path: &Path) -> bool {
    let in_crates = path.components().any(|c| c.as_os_str() == "crates");
    let governed = path
        .components()
        .any(|c| c.as_os_str() == "core" || c.as_os_str() == "serve");
    let graph_persistence = path.components().any(|c| c.as_os_str() == "graph")
        && path
            .file_name()
            .is_some_and(|f| f == "container.rs" || f == "storage.rs");
    in_crates && (governed || graph_persistence)
}

/// Checks one file.
pub fn check(fm: &FileModel, out: &mut Vec<crate::rules::Finding>) {
    let ast = &fm.ast;
    for f in &ast.fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        // Only functions that thread a guard are in scope; unguarded
        // loops are guard_coverage's domain.
        let guarded = f
            .params
            .iter()
            .any(|(n, t)| t.contains("RunGuard") || n.to_lowercase().contains("guard"));
        if !guarded {
            continue;
        }
        // A loop is covered when it — or any loop enclosing it — charges
        // the guard: a per-iteration charge in the outer loop bounds the
        // inner loop's growth too (the Dijkstra settle/relax pattern).
        let loops = ast.loops_in(open + 1, close);
        let charged: Vec<bool> = loops
            .iter()
            .map(|&(lo, hi)| {
                let text = ast.span_text(lo, hi);
                let governed = (lo..=hi).any(|i| {
                    ast.ident(i)
                        .is_some_and(|id| id.to_ascii_lowercase().contains("guard"))
                });
                governed || CHARGE.iter().any(|c| text.contains(c))
            })
            .collect();
        // Innermost loops first: a covered inner loop claims its growth
        // sites so the outer loop is not blamed for them.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| loops[i].1 - loops[i].0);
        let mut claimed: Vec<(usize, usize)> = Vec::new();
        for li in order {
            let (lo, hi) = loops[li];
            let text = ast.span_text(lo, hi);
            let covered = loops
                .iter()
                .zip(&charged)
                .any(|(&(lo2, hi2), &ch)| ch && lo2 <= lo && hi2 >= hi);
            let mut uncharged_growth = None;
            for needle in GROWTH {
                let mut from = 0;
                while let Some(rel) = text[from..].find(needle) {
                    let pos = from + rel;
                    from = pos + needle.len();
                    let abs = ast.toks[lo].start + pos;
                    if claimed.iter().any(|&(a, b)| abs >= a && abs < b) {
                        continue;
                    }
                    if !covered {
                        uncharged_growth.get_or_insert((abs, needle));
                    }
                }
            }
            let span = (ast.toks[lo].start, ast.toks[hi].end);
            claimed.push(span);
            if let Some((abs, needle)) = uncharged_growth {
                let line = fm.source.line_of(abs);
                let call = needle.trim_start_matches('.').trim_end_matches('(');
                push(
                    &fm.source,
                    out,
                    UNBOUNDED_ALLOC,
                    line,
                    format!(
                        "`{call}` grows a collection inside a guarded loop without \
                         charging the RunGuard budget"
                    ),
                    "call `guard.check_bytes(..)` / `note_settled` in the loop, or waive \
                     with the bound that makes the growth finite",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;
    use std::path::PathBuf;

    fn live(src: &str) -> Vec<Finding> {
        let fm = FileModel::parse(PathBuf::from("crates/core/src/x.rs"), src.to_string());
        let mut out = Vec::new();
        check(&fm, &mut out);
        out.into_iter().filter(|f| !f.waived).collect()
    }

    #[test]
    fn scope_covers_core_and_serve_sources() {
        assert!(in_scope(Path::new("crates/core/src/comm_k.rs")));
        assert!(in_scope(Path::new("crates/serve/src/server.rs")));
        assert!(!in_scope(Path::new("crates/graph/src/csr.rs")));
        assert!(!in_scope(Path::new("xtask/src/main.rs")));
    }

    #[test]
    fn scope_covers_the_graph_persistence_modules() {
        assert!(in_scope(Path::new("crates/graph/src/container.rs")));
        assert!(in_scope(Path::new("crates/graph/src/storage.rs")));
        assert!(!in_scope(Path::new("crates/graph/src/dijkstra.rs")));
        assert!(!in_scope(Path::new("crates/rdb/src/container.rs")));
    }

    #[test]
    fn seeded_uncharged_growth_fails() {
        let src = "\
pub fn collect(g: &Graph, guard: &RunGuard) -> Vec<u64> {
    let mut out = Vec::new();
    for u in g.nodes() {
        out.push(u.weight());
    }
    out
}
";
        let out = live(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, UNBOUNDED_ALLOC);
    }

    #[test]
    fn charged_growth_passes() {
        let src = "\
pub fn collect(g: &Graph, guard: &RunGuard) -> Result<Vec<u64>, QueryError> {
    let mut out = Vec::new();
    for u in g.nodes() {
        guard.check_bytes(out.len() * 8)?;
        out.push(u.weight());
    }
    Ok(out)
}
";
        assert!(live(src).is_empty());
    }

    #[test]
    fn guarded_callee_in_loop_counts_as_charge() {
        let src = "\
pub fn assemble(g: &Graph, cores: &[Core], guard: &RunGuard) -> Result<Vec<Community>, QueryError> {
    let mut out = Vec::new();
    for core in cores {
        out.push(get_community_guarded(g, core, guard)?);
    }
    Ok(out)
}
";
        assert!(live(src).is_empty());
    }

    #[test]
    fn unguarded_fn_is_out_of_scope() {
        let src = "\
fn helper(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for x in xs {
        out.push(*x);
    }
    out
}
";
        assert!(live(src).is_empty());
    }

    #[test]
    fn charging_inner_loop_covers_outer() {
        let src = "\
pub fn nest(g: &Graph, guard: &RunGuard) -> Result<Vec<u64>, QueryError> {
    let mut out = Vec::new();
    for u in g.nodes() {
        for v in g.neighbors(u) {
            guard.note_settled(1)?;
            out.push(v.weight());
        }
    }
    Ok(out)
}
";
        assert!(live(src).is_empty());
    }

    #[test]
    fn charging_outer_loop_covers_inner() {
        // The Dijkstra shape: the settle charge is per outer iteration,
        // which bounds the relax pushes in the inner neighbor loop.
        let src = "\
pub fn sssp(g: &Graph, guard: &RunGuard) -> Result<Vec<u64>, QueryError> {
    let mut heap = BinaryHeap::new();
    while let Some(u) = heap.pop() {
        guard.note_settled(1)?;
        for v in g.neighbors(u) {
            heap.push(v);
        }
    }
    Ok(Vec::new())
}
";
        assert!(live(src).is_empty());
    }

    #[test]
    fn growth_without_loop_passes() {
        let src = "\
pub fn one(guard: &RunGuard) -> Vec<u64> {
    let mut out = Vec::new();
    out.push(1);
    out
}
";
        assert!(live(src).is_empty());
    }

    #[test]
    fn waiver_suppresses() {
        let src = "\
pub fn collect(g: &Graph, guard: &RunGuard) -> Vec<u64> {
    let mut out = Vec::new();
    for u in g.nodes() {
        // xtask-allow: unbounded_alloc — bounded by the 255-keyword cap
        out.push(u.weight());
    }
    out
}
";
        assert!(live(src).is_empty());
    }
}
