//! `protocol_symmetry`: every wire-protocol variant and kind/status
//! constant must appear on both sides of the codec.
//!
//! The serve wire format is hand-rolled (length-prefixed frames, explicit
//! field order), so nothing but discipline keeps `encode_request` and
//! `decode_request` in sync. This rule makes the discipline checkable:
//!
//! * every `Request` variant must be matched in `encode_request` AND
//!   constructed in `decode_request` (same for `Response` with
//!   `encode_response`/`decode_response`);
//! * every `KIND_*` constant must be referenced by both request codecs,
//!   and every `STATUS_*` constant by both response codecs — a kind that
//!   is encoded but never decoded is a silent protocol fork.

use super::{push, FileModel, PROTOCOL_SYMMETRY};
use std::path::Path;

/// The codec pairs the rule enforces.
const PAIRS: [(&str, &str, &str, &str); 2] = [
    ("Request", "encode_request", "decode_request", "KIND_"),
    ("Response", "encode_response", "decode_response", "STATUS_"),
];

/// The rule applies to the serve wire-protocol module only.
pub fn in_scope(path: &Path) -> bool {
    path.components().any(|c| c.as_os_str() == "serve")
        && path.file_name().is_some_and(|f| f == "protocol.rs")
}

/// Checks one file (the protocol module).
pub fn check(fm: &FileModel, out: &mut Vec<crate::rules::Finding>) {
    let ast = &fm.ast;
    for (enum_name, enc_name, dec_name, const_prefix) in PAIRS {
        let Some(en) = ast.enums.iter().find(|e| e.name == enum_name) else {
            continue;
        };
        let body_of = |fn_name: &str| -> Option<String> {
            let f = ast.fns.iter().find(|f| f.name == fn_name)?;
            let (open, close) = f.body?;
            Some(ast.span_text(open, close).to_string())
        };
        let (enc, dec) = (body_of(enc_name), body_of(dec_name));
        for (side, name) in [(&enc, enc_name), (&dec, dec_name)] {
            if side.is_none() {
                push(
                    &fm.source,
                    out,
                    PROTOCOL_SYMMETRY,
                    en.line,
                    format!("`{enum_name}` has no `{name}` codec in this module"),
                    "add the missing codec function (one arm per variant)",
                );
            }
        }
        let (Some(enc), Some(dec)) = (enc, dec) else {
            continue;
        };
        for (vline, variant) in &en.variants {
            let qualified = format!("{enum_name}::{variant}");
            let selfed = format!("Self::{variant}");
            for (body, fn_name, verb) in [(&enc, enc_name, "encode"), (&dec, dec_name, "decode")] {
                if !contains_path(body, &qualified) && !contains_path(body, &selfed) {
                    push(
                        &fm.source,
                        out,
                        PROTOCOL_SYMMETRY,
                        *vline,
                        format!("variant `{qualified}` has no {verb} arm in `{fn_name}`"),
                        "add the matching arm so every variant roundtrips",
                    );
                }
            }
        }
        // Kind/status constants must be referenced by both codecs.
        for i in 0..ast.toks.len() {
            if ast.ident(i) != Some("const") {
                continue;
            }
            let Some(name) = ast.ident(i + 1) else {
                continue;
            };
            if !name.starts_with(const_prefix) {
                continue;
            }
            let line = ast.line(&fm.source, i);
            for (body, fn_name) in [(&enc, enc_name), (&dec, dec_name)] {
                if !contains_path(body, name) {
                    push(
                        &fm.source,
                        out,
                        PROTOCOL_SYMMETRY,
                        line,
                        format!(
                            "`{name}` is not referenced in `{fn_name}` — wire tags \
                                 must be handled symmetrically"
                        ),
                        "reference the constant from both the encoder and the decoder",
                    );
                }
            }
        }
    }
}

/// Substring match at identifier boundaries (`KIND_PING` must not match
/// inside `KIND_PING_V2`).
fn contains_path(haystack: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        let pos = from + rel;
        from = pos + needle.len();
        let before_ok = pos == 0 || {
            let b = haystack.as_bytes()[pos - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = haystack.as_bytes().get(pos + needle.len());
        let after_ok = !after.is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_');
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;
    use std::path::PathBuf;

    fn live(src: &str) -> Vec<Finding> {
        let fm = FileModel::parse(
            PathBuf::from("crates/serve/src/protocol.rs"),
            src.to_string(),
        );
        let mut out = Vec::new();
        check(&fm, &mut out);
        out.into_iter().filter(|f| !f.waived).collect()
    }

    const SYMMETRIC: &str = "\
const KIND_QUERY: u8 = 1;
const KIND_PING: u8 = 2;
pub enum Request {
    Query { id: u64 },
    Ping { id: u64 },
}
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Query { id } => tag(KIND_QUERY, id),
        Request::Ping { id } => tag(KIND_PING, id),
    }
}
pub fn decode_request(payload: &[u8]) -> Request {
    match payload[0] {
        KIND_QUERY => Request::Query { id: take(payload) },
        KIND_PING => Request::Ping { id: take(payload) },
        _ => reject(payload),
    }
}
";

    #[test]
    fn symmetric_codec_passes() {
        assert!(live(SYMMETRIC).is_empty(), "{:?}", live(SYMMETRIC));
    }

    #[test]
    fn seeded_missing_decode_arm_fails() {
        let src = SYMMETRIC.replace(
            "        KIND_PING => Request::Ping { id: take(payload) },\n",
            "",
        );
        let out = live(&src);
        assert!(
            out.iter().any(|f| f.rule == PROTOCOL_SYMMETRY
                && f.message.contains("Request::Ping")
                && f.message.contains("decode")),
            "{out:?}"
        );
        // The orphaned KIND_PING is reported too.
        assert!(
            out.iter()
                .any(|f| f.message.contains("KIND_PING") && f.message.contains("decode_request")),
            "{out:?}"
        );
    }

    #[test]
    fn seeded_missing_encode_arm_fails() {
        let src = SYMMETRIC.replace(
            "        Request::Query { id } => tag(KIND_QUERY, id),\n",
            "",
        );
        let out = live(&src);
        assert!(
            out.iter().any(|f| f.rule == PROTOCOL_SYMMETRY
                && f.message.contains("Request::Query")
                && f.message.contains("encode")),
            "{out:?}"
        );
    }

    #[test]
    fn missing_codec_fn_fails() {
        let src = "\
pub enum Request {
    Ping { id: u64 },
}
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping { id } => ping(id),
    }
}
";
        let out = live(src);
        assert!(
            out.iter()
                .any(|f| f.message.contains("no `decode_request`")),
            "{out:?}"
        );
    }

    #[test]
    fn prefix_constants_do_not_false_match() {
        let src = SYMMETRIC.replace(
            "const KIND_PING: u8 = 2;\n",
            "const KIND_PING: u8 = 2;\nconst KIND_PIN: u8 = 9;\n",
        );
        let out = live(&src);
        // KIND_PIN is unreferenced on both sides → two findings for it,
        // and none for KIND_PING.
        assert!(
            out.iter().all(|f| !f.message.contains("`KIND_PING`")),
            "{out:?}"
        );
        assert_eq!(
            out.iter()
                .filter(|f| f.message.contains("`KIND_PIN`"))
                .count(),
            2,
            "{out:?}"
        );
    }

    #[test]
    fn out_of_scope_paths() {
        assert!(in_scope(Path::new("crates/serve/src/protocol.rs")));
        assert!(!in_scope(Path::new("crates/serve/src/server.rs")));
        assert!(!in_scope(Path::new("crates/graph/src/protocol.rs")));
    }
}
