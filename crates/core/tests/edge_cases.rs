//! Edge-case integration tests for the core enumerators: degenerate
//! graphs, exhausted iterators, overlapping keyword sets, disconnected
//! components, and parameter extremes.

use comm_core::trees::topk_trees;
use comm_core::{
    bu_all, bu_topk, comm_all, comm_k, td_all, td_topk, CommAll, CommK, Core, CostFn,
    ProjectionIndex, QuerySpec,
};
use comm_graph::{graph_from_edges, GraphBuilder, NodeId, Weight};

fn spec(sets: &[&[u32]], rmax: f64) -> QuerySpec {
    QuerySpec::new(
        sets.iter()
            .map(|s| s.iter().map(|&v| NodeId(v)).collect())
            .collect(),
        Weight::new(rmax),
    )
}

#[test]
fn singleton_graph_single_keyword() {
    let g = graph_from_edges(1, &[]);
    let all = comm_all(&g, &spec(&[&[0]], 5.0));
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].core, Core(vec![NodeId(0)]));
    assert_eq!(all[0].centers, vec![NodeId(0)]);
    assert_eq!(all[0].cost, Weight::ZERO);
    assert_eq!(all[0].node_count(), 1);
    assert_eq!(all[0].edge_count(), 0);
}

#[test]
fn exhausted_iterators_stay_exhausted() {
    let g = graph_from_edges(2, &[(0, 1, 1.0)]);
    let q = spec(&[&[0], &[1]], 3.0);
    let mut all = CommAll::new(&g, &q);
    assert!(all.next().is_some());
    assert!(all.next().is_none());
    assert!(all.next().is_none(), "CommAll must stay exhausted");
    let mut topk = CommK::new(&g, &q);
    assert!(topk.next().is_some());
    assert!(topk.next().is_none());
    assert!(topk.next().is_none(), "CommK must stay exhausted");
}

#[test]
fn same_keyword_twice_yields_diagonal_cores() {
    // Both dimensions match the same node set: cores pair every node with
    // every reachable node, including itself.
    let g = graph_from_edges(3, &[(0, 1, 1.0), (1, 0, 1.0)]);
    let q = spec(&[&[0, 1], &[0, 1]], 2.0);
    let mut cores: Vec<Vec<u32>> = comm_all(&g, &q)
        .into_iter()
        .map(|c| c.core.0.iter().map(|n| n.0).collect())
        .collect();
    cores.sort();
    assert_eq!(cores, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
}

#[test]
fn disconnected_components_enumerate_independently() {
    // Two disjoint 2-cliques, keywords on both sides.
    let g = graph_from_edges(4, &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)]);
    let q = spec(&[&[0, 2], &[1, 3]], 2.0);
    let cores: Vec<Vec<u32>> = comm_k(&g, &q, 10)
        .into_iter()
        .map(|c| c.core.0.iter().map(|n| n.0).collect())
        .collect();
    // Cross-component cores ([0,3] or [2,1]) must not appear.
    assert_eq!(cores.len(), 2);
    assert!(cores.contains(&vec![0, 1]));
    assert!(cores.contains(&vec![2, 3]));
}

#[test]
fn parallel_edges_use_the_cheaper_one() {
    let mut b = GraphBuilder::new(2);
    b.add_edge(NodeId(0), NodeId(1), Weight::new(9.0));
    b.add_edge(NodeId(0), NodeId(1), Weight::new(2.0));
    let g = b.build();
    let q = spec(&[&[1]], 5.0);
    let all = comm_all(&g, &q);
    assert_eq!(all.len(), 1);
    // Node 0 is a center via the cheap edge.
    assert!(all[0].centers.contains(&NodeId(0)));
}

#[test]
fn zero_weight_edges_are_fine() {
    let g = graph_from_edges(3, &[(0, 1, 0.0), (1, 2, 0.0)]);
    let q = spec(&[&[2]], 0.0);
    let all = comm_all(&g, &q);
    assert_eq!(all.len(), 1);
    // Everything is within radius 0 through zero-weight edges.
    assert_eq!(all[0].centers.len(), 3);
    assert_eq!(all[0].node_count(), 3);
}

#[test]
fn very_large_l_on_small_graph() {
    // l = 8 dimensions over a 3-node cycle: cross products stay correct.
    let g = graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
    let sets: Vec<&[u32]> = vec![&[0, 1, 2]; 8];
    let q = spec(&sets, 3.0);
    let pd: Vec<Weight> = CommK::new(&g, &q).map(|c| c.cost).collect();
    assert_eq!(pd.len(), 3usize.pow(8));
    let bu = bu_topk(&g, &q, 50, None);
    assert_eq!(
        bu.communities.iter().map(|c| c.cost).collect::<Vec<_>>(),
        pd[..50].to_vec()
    );
}

#[test]
fn baselines_respect_cost_fn() {
    let g = graph_from_edges(
        5,
        &[
            (0, 1, 1.0),
            (0, 2, 5.0),
            (3, 1, 3.0),
            (3, 2, 3.0),
            (4, 0, 1.0),
        ],
    );
    // Keywords at 1 and 2. Sum cost: center 0 sums 6, center 3 sums 6.
    // Max cost: center 3 (max 3) beats center 0 (max 5).
    let q_sum = spec(&[&[1]], 6.0);
    drop(q_sum);
    let q = spec(&[&[1], &[2]], 6.0).with_cost(CostFn::MaxDistance);
    let pd = comm_k(&g, &q, 1);
    assert_eq!(pd[0].cost, Weight::new(3.0));
    let bu = bu_topk(&g, &q, 1, None);
    let td = td_topk(&g, &q, 1, None);
    assert_eq!(bu.communities[0].cost, Weight::new(3.0));
    assert_eq!(td.communities[0].cost, Weight::new(3.0));
}

#[test]
fn projection_with_tiny_radius() {
    let g = graph_from_edges(4, &[(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)]);
    let idx = ProjectionIndex::build(
        &g,
        [("a", [NodeId(3)].as_slice()), ("b", [NodeId(1)].as_slice())],
        Weight::new(2.0),
    );
    // Radius 2: nothing reaches both 3 and 1 → no centers → empty projection.
    let pq = idx.project(&["a", "b"], Weight::new(2.0)).unwrap();
    assert_eq!(comm_all(&pq.projected.graph, &pq.spec).len(), 0);
}

#[test]
fn index_handles_keyword_with_no_nodes() {
    let g = graph_from_edges(2, &[(0, 1, 1.0)]);
    let idx = ProjectionIndex::build(
        &g,
        [
            ("present", [NodeId(0)].as_slice()),
            ("ghost", [].as_slice()),
        ],
        Weight::new(5.0),
    );
    assert_eq!(idx.nodes_of("ghost").len(), 0);
    let pq = idx
        .project(&["present", "ghost"], Weight::new(5.0))
        .unwrap();
    assert!(pq.spec.has_empty_keyword());
    assert!(comm_all(&pq.projected.graph, &pq.spec).is_empty());
}

#[test]
fn all_engines_agree_on_a_dense_clique() {
    // Complete bidirected K5 with unit weights, keywords everywhere.
    let mut b = GraphBuilder::new(5);
    for u in 0..5u32 {
        for v in 0..5u32 {
            if u != v {
                b.add_edge(NodeId(u), NodeId(v), Weight::new(1.0));
            }
        }
    }
    let g = b.build();
    let q = spec(&[&[0, 1], &[2, 3], &[4]], 2.0);
    let pd: Vec<Core> = comm_all(&g, &q).into_iter().map(|c| c.core).collect();
    let bu: Vec<Core> = bu_all(&g, &q, None)
        .communities
        .into_iter()
        .map(|c| c.core)
        .collect();
    let td: Vec<Core> = td_all(&g, &q, None)
        .communities
        .into_iter()
        .map(|c| c.core)
        .collect();
    let norm = |mut v: Vec<Core>| {
        v.sort();
        v
    };
    let pd = norm(pd);
    assert_eq!(pd.len(), 4, "2×2×1 cores in the clique");
    assert_eq!(pd, norm(bu));
    assert_eq!(pd, norm(td));
}

#[test]
fn trees_respect_radius() {
    let g = graph_from_edges(3, &[(0, 1, 4.0), (1, 2, 4.0)]);
    // Root 0 reaches keyword node 2 at distance 8.
    let q8 = spec(&[&[2]], 8.0);
    assert!(topk_trees(&g, &q8, 10).iter().any(|t| t.root == NodeId(0)));
    let q7 = spec(&[&[2]], 7.0);
    assert!(!topk_trees(&g, &q7, 10).iter().any(|t| t.root == NodeId(0)));
}

#[test]
fn trees_handle_zero_weight_edges() {
    // Regression: a zero-weight edge makes a node settle before its path
    // parent; tree materialization must still work (parent pointers, not
    // witness re-scans). 0 --0--> 1 --5--> 2(keyword).
    let g = graph_from_edges(3, &[(0, 1, 0.0), (1, 2, 5.0)]);
    let q = spec(&[&[2]], 6.0);
    let trees = topk_trees(&g, &q, 10);
    let t0 = trees.iter().find(|t| t.root == NodeId(0)).expect("root 0");
    assert_eq!(t0.weight, Weight::new(5.0));
    assert_eq!(t0.nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    // Path edges reconstruct the chain.
    assert_eq!(t0.edges.len(), 2);
}

#[test]
fn dijkstra_parent_pointers_reach_source() {
    use comm_graph::{DijkstraEngine, Direction};
    let g = graph_from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 4, 5.0)]);
    let mut eng = DijkstraEngine::new(5);
    let mut parent = [NodeId(0); 5];
    let mut seen = [false; 5];
    eng.run(&g, Direction::Forward, [NodeId(0)], Weight::INFINITY, |s| {
        parent[s.node.index()] = s.parent;
        seen[s.node.index()] = true;
        assert_eq!(s.source, NodeId(0));
    });
    // Walk parents from node 3 back to the seed.
    let mut u = NodeId(3);
    let mut hops = 0;
    while u != NodeId(0) {
        assert!(seen[u.index()]);
        u = parent[u.index()];
        hops += 1;
        assert!(hops <= 5, "parent chain must terminate");
    }
    assert_eq!(hops, 3);
}

#[test]
fn community_iterator_count_is_stable_across_runs() {
    // Determinism: two runs over the same inputs yield the same sequence.
    let g = graph_from_edges(
        6,
        &[
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.0),
            (3, 4, 2.0),
            (4, 5, 1.0),
            (5, 0, 2.0),
        ],
    );
    let q = spec(&[&[0, 3], &[1, 4], &[2, 5]], 9.0);
    let a: Vec<(Core, Weight)> = CommK::new(&g, &q).map(|c| (c.core, c.cost)).collect();
    let b: Vec<(Core, Weight)> = CommK::new(&g, &q).map(|c| (c.core, c.cost)).collect();
    assert_eq!(a, b);
    let c: Vec<Core> = comm_all(&g, &q).into_iter().map(|c| c.core).collect();
    let d: Vec<Core> = comm_all(&g, &q).into_iter().map(|c| c.core).collect();
    assert_eq!(c, d);
}
