//! The daemon's resident query engine: one graph, one keyword vocabulary,
//! and the two guarded caches, behind a single [`answer`] entry point.
//!
//! **Bit-identical contract.** Cached and uncached replies must match bit
//! for bit. This holds structurally rather than by re-verification on
//! every hit:
//!
//! * the uncached path is the deterministic
//!   [`comm_k_on_index`](comm_core::comm_k_on_index) pipeline
//!   (project → enumerate → lift), and
//! * the cached path replays the stored `Vec<Community>` of a previous
//!   **complete** run of that same pipeline — interrupted answers are
//!   never cached, so a cached value is always the full deterministic
//!   answer.
//!
//! **Guarded replay.** A cache hit still consults the request's
//! [`RunGuard`] once per returned community, so a tripped guard during a
//! cached-answer reply degrades to the same certified exact prefix an
//! uncached interrupted run would produce.
//!
//! **Guarded insertion.** Index construction runs under the request's
//! guard and only a fully built index is inserted; a trip mid-build
//! surfaces as [`QueryError::Interrupted`] with the cache untouched.
//!
//! [`answer`]: QueryEngine::answer

use crate::cache::{AnswerKey, CachedAnswer, CachedIndex, IndexKey, Lru, Vocabulary};
use crate::protocol::CommunitySummary;
use comm_core::{comm_k_on_index, Community, CostFn, ProjectionIndex, QueryError};
use comm_graph::weight::index_to_u32;
use comm_graph::{EnginePool, Graph, Kernel, Outcome, Parallelism, RunGuard, Weight};
use std::sync::{Arc, Mutex, MutexGuard};

/// Engine tunables.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The radius every cached projection index is built for; requests
    /// with `rmax` beyond it are rejected (projection would be lossy).
    pub index_radius: f64,
    /// Capacity of the projection-index LRU.
    pub index_cache_cap: usize,
    /// Capacity of the exact-hit answer LRU.
    pub answer_cache_cap: usize,
    /// Ranking cost function.
    pub cost: CostFn,
    /// Fan-out for index builds (per-keyword sweeps borrow engines from
    /// the shared [`EnginePool`]).
    pub parallelism: Parallelism,
    /// Dijkstra priority-queue kernel for every sweep the engine runs
    /// (stamped on the shared [`EnginePool`] at construction). All kernels
    /// are bit-identical; this is a performance knob only.
    pub kernel: Kernel,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            index_radius: 8.0,
            index_cache_cap: 8,
            answer_cache_cap: 256,
            cost: CostFn::SumDistances,
            parallelism: Parallelism::serial(),
            kernel: Kernel::Auto,
        }
    }
}

/// The resident engine shared by every connection handler.
pub struct QueryEngine {
    graph: Graph,
    vocab: Vocabulary,
    index_radius: Weight,
    cost: CostFn,
    parallelism: Parallelism,
    indexes: Mutex<Lru<IndexKey, CachedIndex>>,
    answers: Mutex<Lru<AnswerKey, CachedAnswer>>,
}

/// Recovers a cache lock from a poisoned mutex: both caches hold only
/// fully built `Arc`s (insertion happens after construction succeeds), so
/// the state is consistent even if an unwinding thread held the lock.
fn lock_cache<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl QueryEngine {
    /// Builds an engine over `graph` with the keyword → node-set
    /// vocabulary `vocab`.
    pub fn new(
        graph: Graph,
        vocab: Vocabulary,
        cfg: EngineConfig,
    ) -> Result<QueryEngine, QueryError> {
        let index_radius =
            Weight::try_new(cfg.index_radius).ok_or(QueryError::InvalidRadius(cfg.index_radius))?;
        // The pool is process-wide, so the kernel choice reaches every
        // sweep (index builds, lifts, baselines) without call-site edits.
        EnginePool::global().set_kernel(cfg.kernel);
        Ok(QueryEngine {
            graph,
            vocab,
            index_radius,
            cost: cfg.cost,
            parallelism: cfg.parallelism,
            indexes: Mutex::new(Lru::new(cfg.index_cache_cap)),
            answers: Mutex::new(Lru::new(cfg.answer_cache_cap)),
        })
    }

    /// Builds an engine straight from a CGPH v2 container on disk: the
    /// CSR arrays are memory-mapped and served in place (zero-copy on
    /// unix — daemon startup is O(1) in the graph size) and the
    /// container's keyword map becomes the vocabulary. This is the warm
    /// path pair of [`QueryEngine::new`]: a container saved from a built
    /// graph produces a bit-identical engine without re-parsing edges.
    pub fn from_container(
        path: impl AsRef<std::path::Path>,
        cfg: EngineConfig,
    ) -> std::io::Result<QueryEngine> {
        let c = comm_graph::container::load_container(path)?;
        QueryEngine::new(c.graph, c.keyword_nodes, cfg)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))
    }

    /// The served graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The maximum `Rmax` the engine accepts.
    pub fn index_radius(&self) -> Weight {
        self.index_radius
    }

    /// The node set of one vocabulary keyword (lowercased), if indexed.
    /// Exposed so callers can certify replies against the full graph.
    pub fn keyword_nodes(&self, keyword: &str) -> Option<&[comm_graph::NodeId]> {
        self.vocab.get(&keyword.to_lowercase()).map(Vec::as_slice)
    }

    /// `(index hits, index misses, answer hits, answer misses)`.
    pub fn cache_stats(&self) -> (u64, u64, u64, u64) {
        let (ih, im) = lock_cache(&self.indexes).stats();
        let (ah, am) = lock_cache(&self.answers).stats();
        (ih, im, ah, am)
    }

    /// `(cached indexes, cached answers)` — entry counts, for tests and
    /// the stats reply.
    pub fn cache_sizes(&self) -> (usize, usize) {
        (
            lock_cache(&self.indexes).len(),
            lock_cache(&self.answers).len(),
        )
    }

    /// Resolves the projection index for a keyword set: cache hit, or a
    /// guarded build inserted only on success.
    fn index_for(&self, keywords: &[String], guard: &RunGuard) -> Result<CachedIndex, QueryError> {
        let key = IndexKey::new(keywords, self.index_radius.get().to_bits());
        if let Some(idx) = lock_cache(&self.indexes).get(&key) {
            return Ok(idx);
        }
        // Resolve the vocabulary before building: an unknown keyword is a
        // client error, not a reason to burn sweep budget.
        let mut entries: Vec<(&str, &[comm_graph::NodeId])> =
            Vec::with_capacity(key.keywords.len());
        for kw in &key.keywords {
            let nodes = self
                .vocab
                .get(kw)
                .ok_or_else(|| QueryError::UnknownKeyword(kw.clone()))?;
            // xtask-allow: unbounded_alloc — bounded by the validated request keyword count
            entries.push((kw.as_str(), nodes.as_slice()));
        }
        // Build OUTSIDE the cache lock (sweeps are the expensive part);
        // a concurrent duplicate build is wasted work, never wrong. The
        // per-keyword sweeps borrow scratch from the shared EnginePool,
        // which keeps the pool — and its poison-recovery path — on the
        // serving path the chaos harness exercises.
        let built = ProjectionIndex::build_par_guarded(
            &self.graph,
            entries,
            self.index_radius,
            guard,
            EnginePool::global(),
            self.parallelism,
        )
        .map_err(QueryError::Interrupted)?;
        let idx: CachedIndex = Arc::new(built);
        lock_cache(&self.indexes).insert(key, Arc::clone(&idx));
        Ok(idx)
    }

    /// Answers a top-k community query under `guard`.
    ///
    /// * `Ok(Outcome::Complete)` — the full answer (served from cache or
    ///   computed and then cached);
    /// * `Ok(Outcome::Interrupted)` — a certified exact ranked prefix
    ///   (guard tripped during enumeration or cached replay);
    /// * `Err(QueryError::Interrupted)` — the guard tripped during
    ///   projection/index build, where no partial result exists;
    /// * other `Err`s — the request is invalid (unknown keyword, radius
    ///   beyond the index, …).
    pub fn answer(
        &self,
        keywords: &[String],
        rmax: f64,
        k: u32,
        guard: &RunGuard,
    ) -> Result<Outcome<Vec<Community>>, QueryError> {
        if keywords.is_empty() {
            return Err(QueryError::NoKeywords);
        }
        let rmax_w = Weight::try_new(rmax).ok_or(QueryError::InvalidRadius(rmax))?;
        if rmax_w > self.index_radius {
            return Err(QueryError::RadiusExceedsIndex {
                rmax,
                index_radius: self.index_radius.get(),
            });
        }
        let akey = AnswerKey::new(keywords, rmax, k);
        if let Some(cached) = lock_cache(&self.answers).get(&akey) {
            return Ok(replay(&cached, guard));
        }
        let index = self.index_for(keywords, guard)?;
        let kw_refs: Vec<&str> = akey.keywords.iter().map(String::as_str).collect();
        let out = comm_k_on_index(
            &index,
            &kw_refs,
            rmax_w,
            usize::try_from(k).unwrap_or(usize::MAX),
            self.cost,
            guard.clone(),
        )?;
        if let Outcome::Complete(communities) = &out {
            lock_cache(&self.answers).insert(akey, Arc::new(communities.clone()));
        }
        Ok(out)
    }
}

/// Replays a cached complete answer under `guard`: one candidate check
/// per community, so a trip yields the exact ranked prefix emitted so far
/// — the same degradation an uncached interrupted run produces.
fn replay(cached: &CachedAnswer, guard: &RunGuard) -> Outcome<Vec<Community>> {
    let mut out = Vec::with_capacity(cached.len());
    for c in cached.iter() {
        if let Err(reason) = guard.note_candidate() {
            return Outcome::Interrupted {
                reason,
                partial: out,
            };
        }
        out.push(c.clone());
    }
    Outcome::Complete(out)
}

/// Flattens a [`Community`] into its wire summary. Costs travel as raw
/// bits so cache replays stay bit-identical end to end.
pub fn summarize(c: &Community) -> CommunitySummary {
    CommunitySummary {
        core: c.core.0.iter().map(|n| n.0).collect(),
        cost_bits: c.cost.get().to_bits(),
        centers: c.centers.iter().map(|n| n.0).collect(),
        node_count: index_to_u32(c.node_count()),
        edge_count: index_to_u32(c.edge_count()),
    }
}
