//! Binary persistence for graphs.
//!
//! Paper-scale graphs take ~a minute to regenerate from the relational
//! layer; this compact little-endian format lets harness runs cache the
//! materialized `G_D` (and, one level up, the keyword map) on disk.
//!
//! Layout: magic `CGPH`, format version, `n`, `m`, then `m` records of
//! `(u: u32, v: u32, w: f64)`.

use crate::csr::{Graph, GraphBuilder, NodeId};
use crate::weight::{try_u64_to_usize, Weight};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"CGPH";
const VERSION: u32 = 1;
/// Header bytes: magic (4) + version (4) + n (8) + m (8).
const HEADER_BYTES: u64 = 24;
/// Bytes per edge record: u (4) + v (4) + w (8).
const EDGE_BYTES: u64 = 16;
/// Upper bound on speculative preallocation from header counts. Larger
/// (legitimate) inputs still load fine — collections just grow as records
/// actually arrive instead of trusting the header up front. Shared by
/// every on-disk reader in the workspace (`crate::container`,
/// `comm-datasets`' bundle cache) so a hostile count can never reserve
/// more than ~16 MiB before real bytes back it.
pub const PREALLOC_CAP: usize = 1 << 20;

/// Writes `graph` to `w` in the binary format.
pub fn write_graph<W: Write>(graph: &Graph, w: &mut W) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(graph.node_count() as u64).to_le_bytes())?;
    w.write_all(&(graph.edge_count() as u64).to_le_bytes())?;
    for (u, v, weight) in graph.edges() {
        w.write_all(&u.0.to_le_bytes())?;
        w.write_all(&v.0.to_le_bytes())?;
        w.write_all(&weight.get().to_le_bytes())?;
    }
    Ok(())
}

fn read_exact<const N: usize, R: Read>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads a graph previously written by [`write_graph`].
///
/// Header counts are treated as *claims*, not facts: `n` is range-checked
/// against the `u32` node-id space, and every edge record is read and
/// validated (with preallocation capped) **before** any `O(n)`/`O(m)`
/// structure is built, so a corrupted or truncated header cannot trigger a
/// multi-GB allocation.
pub fn read_graph<R: Read>(r: &mut R) -> io::Result<Graph> {
    read_graph_limited(r, None)
}

fn read_graph_limited<R: Read>(r: &mut R, stream_len: Option<u64>) -> io::Result<Graph> {
    if read_exact::<4, _>(r)? != MAGIC {
        return Err(bad("not a CGPH graph file"));
    }
    let version = u32::from_le_bytes(read_exact::<4, _>(r)?);
    if version != VERSION {
        return Err(bad("unsupported CGPH version"));
    }
    let n64 = u64::from_le_bytes(read_exact::<8, _>(r)?);
    let m64 = u64::from_le_bytes(read_exact::<8, _>(r)?);
    if n64 > u64::from(u32::MAX) + 1 {
        return Err(bad("node count exceeds the u32 node-id space"));
    }
    if let Some(len) = stream_len {
        // Where the stream length is knowable (files), the header's edge
        // count must agree with it exactly.
        let expected = m64
            .checked_mul(EDGE_BYTES)
            .and_then(|body| body.checked_add(HEADER_BYTES));
        if expected != Some(len) {
            return Err(bad("edge count disagrees with stream length"));
        }
    }
    // Checked on 32-bit hosts too: a count that fits u32 ids may still
    // exceed the host's address width.
    let n = try_u64_to_usize(n64).ok_or_else(|| bad("node count exceeds host address width"))?;
    let m = try_u64_to_usize(m64).ok_or_else(|| bad("edge count exceeds host address width"))?;
    // Read and validate every record before building the graph; capacity
    // grows with the bytes actually read, never with the claimed count.
    let mut edges = Vec::with_capacity(m.min(PREALLOC_CAP));
    for _ in 0..m {
        let u = u32::from_le_bytes(read_exact::<4, _>(r)?);
        let v = u32::from_le_bytes(read_exact::<4, _>(r)?);
        let w = f64::from_le_bytes(read_exact::<8, _>(r)?);
        if u as usize >= n || v as usize >= n {
            return Err(bad("edge endpoint out of range"));
        }
        if !(w.is_finite() && w >= 0.0) {
            return Err(bad("invalid edge weight"));
        }
        edges.push((NodeId(u), NodeId(v), Weight::new(w)));
    }
    let mut b = GraphBuilder::new(n);
    for (u, v, w) in edges {
        b.add_edge(u, v, w);
    }
    Ok(b.build())
}

/// Writes a file atomically: the payload goes to a unique temp file in the
/// same directory, is flushed and `fsync`ed, and only then renamed over
/// `path`. A crash (or guard trip) mid-write therefore leaves any previous
/// file at `path` untouched — never a half-written hybrid — and the temp
/// file is removed on error.
pub fn atomic_write(
    path: impl AsRef<Path>,
    write_fn: impl FnOnce(&mut BufWriter<std::fs::File>) -> io::Result<()>,
) -> io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = std::path::PathBuf::from(tmp_name);
    let result = (|| {
        let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
        write_fn(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Saves a graph to a file (buffered, atomic: temp file + fsync + rename).
pub fn save_graph(graph: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    atomic_write(path, |w| write_graph(graph, w))
}

/// Loads a graph from a file (buffered). The header's edge count is
/// checked against the file's actual length before any record is parsed.
pub fn load_graph(path: impl AsRef<Path>) -> io::Result<Graph> {
    let file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    read_graph_limited(&mut BufReader::new(file), Some(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::graph_from_edges;

    /// A per-test temp dir unique across processes and within a process,
    /// so parallel test runs (and stale dirs from killed runs) can never
    /// collide on fixed names.
    fn unique_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "comm_graph_io_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Graph {
        graph_from_edges(
            5,
            &[
                (0, 1, 1.5),
                (1, 2, 0.0),
                (4, 0, 2.25),
                (2, 2, 3.0),
                (0, 1, 7.0),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let h = read_graph(&mut buf.as_slice()).unwrap();
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        assert_eq!(g.edges().collect::<Vec<_>>(), h.edges().collect::<Vec<_>>());
        // Reverse adjacency rebuilt identically.
        for u in g.nodes() {
            assert_eq!(
                g.in_neighbors(u).collect::<Vec<_>>(),
                h.in_neighbors(u).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = unique_dir("roundtrip");
        let path = dir.join("g.cgph");
        let g = sample();
        save_graph(&g, &path).unwrap();
        let h = load_graph(&path).unwrap();
        assert_eq!(h.edge_count(), g.edge_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_save_leaves_previous_file_intact() {
        // A writer that dies mid-stream (crash, guard trip, full disk)
        // must neither clobber the existing file nor leave temp litter.
        let dir = unique_dir("atomic");
        let path = dir.join("g.cgph");
        let g = sample();
        save_graph(&g, &path).unwrap();
        let before = std::fs::read(&path).unwrap();
        let err = atomic_write(&path, |w| {
            w.write_all(b"half a header")?;
            Err(io::Error::other("simulated crash mid-write"))
        });
        assert!(err.is_err());
        assert_eq!(std::fs::read(&path).unwrap(), before, "old file clobbered");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|f| f.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp litter: {leftovers:?}");
        assert!(load_graph(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_graph(&mut &b"NOPE\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_input() {
        let g = sample();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_graph(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_out_of_range_edge() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CGPH");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes()); // n = 2
        buf.extend_from_slice(&1u64.to_le_bytes()); // m = 1
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&9u32.to_le_bytes()); // v = 9 out of range
        buf.extend_from_slice(&1.0f64.to_le_bytes());
        assert!(read_graph(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_nan_weight() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CGPH");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&f64::NAN.to_le_bytes());
        assert!(read_graph(&mut buf.as_slice()).is_err());
    }

    fn header(n: u64, m: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CGPH");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&m.to_le_bytes());
        buf
    }

    #[test]
    fn corrupted_edge_count_fails_without_huge_allocation() {
        // Header claims ~1.1e18 edges but carries a single record; the
        // reader must fail at the truncation, not preallocate for m.
        let mut buf = header(2, u64::MAX / EDGE_BYTES);
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1.0f64.to_le_bytes());
        let err = read_graph(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn corrupted_node_count_fails_before_preallocation() {
        // Header claims more nodes than the u32 id space can address; the
        // reader must reject it before any O(n) structure exists.
        let buf = header(u64::MAX, 0);
        let err = read_graph(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn load_graph_rejects_edge_count_disagreeing_with_file_length() {
        let dir = unique_dir("corrupt");
        let path = dir.join("corrupt.cgph");
        let g = sample();
        save_graph(&g, &path).unwrap();
        // Inflate the header's m without appending records.
        let mut bytes = std::fs::read(&path).unwrap();
        let m = (g.edge_count() as u64) + 7;
        bytes[16..24].copy_from_slice(&m.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = load_graph(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // And a truncated body is caught by the same length check.
        bytes[16..24].copy_from_slice(&(g.edge_count() as u64).to_le_bytes());
        bytes.truncate(bytes.len() - 5);
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_graph(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_frame_corpus_every_prefix_is_a_clean_error() {
        // Fuzz-gap regression: for EVERY proper prefix of a valid frame —
        // including "header fully valid, body short" cuts inside an edge
        // record — the reader must return a clean `Err`, never a partial
        // parse and never a panic. Only the full frame parses.
        let g = sample();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        assert_eq!(
            buf.len() as u64,
            HEADER_BYTES + g.edge_count() as u64 * EDGE_BYTES
        );
        for cut in 0..buf.len() {
            let prefix = &buf[..cut];
            match read_graph(&mut &prefix[..]) {
                Err(e) => assert!(
                    matches!(
                        e.kind(),
                        io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                    ),
                    "cut {cut}: unexpected error kind {:?}",
                    e.kind()
                ),
                Ok(h) => panic!(
                    "cut {cut}/{} parsed as a {}-node/{}-edge graph instead of erroring",
                    buf.len(),
                    h.node_count(),
                    h.edge_count()
                ),
            }
        }
        assert!(read_graph(&mut buf.as_slice()).is_ok());
        // The same holds through the file path, where the length pre-check
        // fires before any record is parsed.
        let dir = unique_dir("corpus");
        let path = dir.join("prefix.cgph");
        let body_short = HEADER_BYTES as usize + EDGE_BYTES as usize / 2;
        std::fs::write(&path, &buf[..body_short]).unwrap();
        let err = load_graph(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = graph_from_edges(0, &[]);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let h = read_graph(&mut buf.as_slice()).unwrap();
        assert_eq!(h.node_count(), 0);
        assert_eq!(h.edge_count(), 0);
    }
}
