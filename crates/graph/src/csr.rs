//! Compressed-sparse-row storage for the database graph `G_D`.
//!
//! Both the forward and the reverse adjacency are materialized at build time
//! because every algorithm in the paper alternates between "expand forward
//! from centers" (Algorithm 4's virtual source `s`) and "expand backward
//! from keyword nodes" (Algorithm 2's virtual sink `t`).

use crate::storage::Storage;
use crate::weight::{index_to_u32, Weight};
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a node (tuple) in a database graph.
///
/// Plain `u32` under a newtype: per-node algorithm state lives in flat
/// vectors indexed by `NodeId::index()`. `repr(transparent)` so CSR target
/// arrays can be viewed zero-copy inside a mapped container file (see
/// [`crate::storage`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> NodeId {
        NodeId(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Which adjacency to traverse.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Follow edges `(u, v)` from `u` to `v`.
    Forward,
    /// Follow edges `(u, v)` from `v` to `u` (the paper's "reverse order"
    /// trick in Algorithms 2 and 4).
    Reverse,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Reverse,
            Direction::Reverse => Direction::Forward,
        }
    }
}

/// One half (forward or reverse) of the adjacency in CSR form.
///
/// Fields are `pub(crate)` so `crate::verify` can inspect (and, in tests,
/// corrupt) the raw arrays without widening the public API. Each array is
/// a [`Storage`]: an owned `Vec` when built in memory, or a zero-copy view
/// into a mapped CGPH v2 container (see [`crate::container`]).
#[derive(Clone, Default)]
pub(crate) struct Csr {
    pub(crate) offsets: Storage<u32>,
    pub(crate) targets: Storage<NodeId>,
    pub(crate) weights: Storage<Weight>,
}

impl Csr {
    fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u.index() + 1] - self.offsets[u.index()]) as usize
    }

    fn from_edges(n: usize, edges: &[(NodeId, NodeId, Weight)], reverse: bool) -> Csr {
        let mut counts = vec![0u32; n + 1];
        for &(u, v, _) in edges {
            let from = if reverse { v } else { u };
            counts[from.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![NodeId(0); edges.len()];
        let mut weights = vec![Weight::ZERO; edges.len()];
        for &(u, v, w) in edges {
            let (from, to) = if reverse { (v, u) } else { (u, v) };
            let pos = cursor[from.index()] as usize;
            cursor[from.index()] += 1;
            targets[pos] = to;
            weights[pos] = w;
        }
        // Sort each adjacency run by target id for deterministic iteration
        // and O(log deg) edge lookup.
        for u in 0..n {
            let lo = offsets[u] as usize;
            let hi = offsets[u + 1] as usize;
            let mut run: Vec<(NodeId, Weight)> = targets[lo..hi]
                .iter()
                .copied()
                .zip(weights[lo..hi].iter().copied())
                .collect();
            run.sort_by_key(|&(t, w)| (t, w));
            for (i, (t, w)) in run.into_iter().enumerate() {
                targets[lo + i] = t;
                weights[lo + i] = w;
            }
        }
        Csr {
            offsets: offsets.into(),
            targets: targets.into(),
            weights: weights.into(),
        }
    }
}

/// A weighted directed graph in CSR form, with both adjacency directions
/// materialized. This is the paper's database graph `G_D = (V, E)`.
#[derive(Clone, Default)]
pub struct Graph {
    pub(crate) n: usize,
    pub(crate) m: usize,
    pub(crate) fwd: Csr,
    pub(crate) rev: Csr,
    /// Lazily computed minimum positive edge weight (`INFINITY` when no
    /// edge has positive weight). The bucket Dijkstra kernel sizes its
    /// distance buckets from this; `OnceLock` so the `O(m)` scan happens
    /// at most once per graph and concurrent sweeps can share it.
    pub(crate) min_pos_w: OnceLock<Weight>,
}

impl Graph {
    /// Number of nodes `n = |V(G_D)|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges `m = |E(G_D)|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Iterates all node ids, `v0..v{n-1}`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..index_to_u32(self.n)).map(NodeId)
    }

    /// Iterates the neighbors of `u` in the given direction, as
    /// `(neighbor, edge weight)` pairs sorted by neighbor id.
    #[inline]
    pub fn neighbors(
        &self,
        u: NodeId,
        dir: Direction,
    ) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        match dir {
            Direction::Forward => self.fwd.neighbors(u),
            Direction::Reverse => self.rev.neighbors(u),
        }
    }

    /// Out-neighbors of `u` (edges `(u, v)`), sorted by target id.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.fwd.neighbors(u)
    }

    /// In-neighbors of `v` (edges `(u, v)` seen from `v`), sorted by source id.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.rev.neighbors(v)
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.fwd.degree(u)
    }

    /// In-degree of `u` (the `N_in(v)` of the paper's weight function).
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.rev.degree(u)
    }

    /// The weight of edge `(u, v)`, if present. With parallel edges the
    /// smallest weight is returned.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let lo = self.fwd.offsets[u.index()] as usize;
        let hi = self.fwd.offsets[u.index() + 1] as usize;
        let run = &self.fwd.targets[lo..hi];
        let first = run.partition_point(|&t| t < v);
        let mut best: Option<Weight> = None;
        for (t, &w) in run[first..].iter().zip(&self.fwd.weights[lo + first..hi]) {
            if *t != v {
                break;
            }
            best = Some(match best {
                Some(b) if b <= w => b,
                _ => w,
            });
        }
        best
    }

    /// Whether the edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// All edges as `(u, v, w)` triples, grouped by source.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_neighbors(u).map(move |(v, w)| (u, v, w)))
    }

    /// Estimated resident size of the CSR arrays in bytes (used by the
    /// benchmark memory accounting).
    pub fn byte_size(&self) -> usize {
        let per_csr = |c: &Csr| {
            c.offsets.len() * std::mem::size_of::<u32>()
                + c.targets.len() * std::mem::size_of::<NodeId>()
                + c.weights.len() * std::mem::size_of::<Weight>()
        };
        per_csr(&self.fwd) + per_csr(&self.rev)
    }

    /// The smallest strictly positive edge weight, or `None` when the
    /// graph has no positively weighted edge. Computed once per graph by
    /// an `O(m)` scan of the forward weights and cached; both adjacency
    /// halves store the same multiset of weights, so one half suffices.
    pub fn min_positive_weight(&self) -> Option<Weight> {
        let w = *self.min_pos_w.get_or_init(|| {
            self.fwd
                .weights
                .iter()
                .copied()
                .filter(|&w| w > Weight::ZERO)
                .min()
                .unwrap_or(Weight::INFINITY)
        });
        w.is_finite().then_some(w)
    }

    /// Whether the CSR arrays are zero-copy views into a mapped container
    /// file (true after [`crate::container::load_container`] on a host
    /// where `mmap` is available) rather than owned heap vectors.
    pub fn is_mapped(&self) -> bool {
        self.fwd.offsets.is_mapped()
    }

    /// Extracts the subgraph induced by `nodes` (original ids), renumbering
    /// nodes to `0..nodes.len()`.
    ///
    /// This is the final step of the paper's `GetCommunity()` (Algorithm 4
    /// line 7) and `GraphProjection` (Algorithm 6 line 15): keep every edge
    /// of `G_D` whose both endpoints are selected.
    pub fn induce(&self, nodes: &[NodeId]) -> InducedGraph {
        let mut sorted: Vec<NodeId> = nodes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let to_local: HashMap<NodeId, NodeId> = sorted
            .iter()
            .enumerate()
            .map(|(i, &orig)| (orig, NodeId(index_to_u32(i))))
            .collect();
        let mut builder = GraphBuilder::new(sorted.len());
        for (&orig, &local) in sorted.iter().zip(sorted.iter().map(|o| &to_local[o])) {
            for (v, w) in self.out_neighbors(orig) {
                if let Some(&lv) = to_local.get(&v) {
                    builder.add_edge(local, lv, w);
                }
            }
        }
        InducedGraph {
            graph: builder.build(),
            original_ids: sorted,
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n, self.m)
    }
}

/// An induced subgraph together with the mapping back to original node ids.
#[derive(Clone, Debug)]
pub struct InducedGraph {
    /// The renumbered subgraph.
    pub graph: Graph,
    /// `original_ids[local.index()]` is the original id of local node `local`.
    pub original_ids: Vec<NodeId>,
}

impl InducedGraph {
    /// Maps a local node id back to the original graph's id.
    #[inline]
    pub fn to_original(&self, local: NodeId) -> NodeId {
        self.original_ids[local.index()]
    }

    /// Maps an original id to the local id, if the node was selected.
    pub fn to_local(&self, original: NodeId) -> Option<NodeId> {
        self.original_ids
            .binary_search(&original)
            .ok()
            .map(|i| NodeId(index_to_u32(i)))
    }
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use comm_graph::{GraphBuilder, NodeId, Weight, Direction};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1), Weight::new(2.0));
/// b.add_edge(NodeId(1), NodeId(2), Weight::new(3.0));
/// let g = b.build();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.out_degree(NodeId(0)), 1);
/// assert_eq!(g.in_degree(NodeId(2)), 1);
/// ```
#[derive(Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` nodes, ids `0..n`.
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes declared so far.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(index_to_u32(self.n));
        self.n += 1;
        id
    }

    /// Adds the directed edge `(u, v)` with weight `w`.
    ///
    /// # Panics
    /// If either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "edge ({u}, {v}) out of range for n={}",
            self.n
        );
        self.edges.push((u, v, w));
    }

    /// Adds both `(u, v)` and `(v, u)` with the same weight.
    pub fn add_bidirected_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        self.add_edge(u, v, w);
        self.add_edge(v, u, w);
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR representation.
    ///
    /// Debug and `verify` builds run the full [`Graph::validate`] pass on
    /// the result, so any construction bug surfaces at build time rather
    /// than as a wrong answer deep inside a Dijkstra sweep.
    pub fn build(self) -> Graph {
        let fwd = Csr::from_edges(self.n, &self.edges, false);
        let rev = Csr::from_edges(self.n, &self.edges, true);
        let g = Graph {
            n: self.n,
            m: self.edges.len(),
            fwd,
            rev,
            min_pos_w: OnceLock::new(),
        };
        #[cfg(any(debug_assertions, feature = "verify"))]
        g.assert_valid();
        g
    }

    /// Finalizes the CSR representation with *node weights* folded into
    /// the edges: every edge `(u, v)` gains `node_weights[v]`, so a path's
    /// distance includes the weight of every node it enters (all nodes
    /// except the start). This is the standard reduction behind the
    /// paper's footnote "our approach can support node weights".
    ///
    /// # Panics
    /// If `node_weights.len() != n`.
    pub fn build_with_node_weights(mut self, node_weights: &[Weight]) -> Graph {
        assert_eq!(
            node_weights.len(),
            self.n,
            "need one weight per node ({} nodes, {} weights)",
            self.n,
            node_weights.len()
        );
        for (_, v, w) in &mut self.edges {
            *w += node_weights[v.index()];
        }
        self.build()
    }
}

/// Builds a graph directly from an edge list (convenience for tests and
/// examples). Node count is `n`; weights are given as `f64`.
pub fn graph_from_edges(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v, w) in edges {
        b.add_edge(NodeId(u), NodeId(v), Weight::new(w));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        graph_from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 4.0), (2, 3, 8.0)])
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn forward_and_reverse_adjacency() {
        let g = diamond();
        let out0: Vec<_> = g.out_neighbors(NodeId(0)).collect();
        assert_eq!(
            out0,
            vec![(NodeId(1), Weight::new(1.0)), (NodeId(2), Weight::new(4.0))]
        );
        let in3: Vec<_> = g.in_neighbors(NodeId(3)).collect();
        assert_eq!(
            in3,
            vec![(NodeId(1), Weight::new(2.0)), (NodeId(2), Weight::new(8.0))]
        );
        // Reverse direction flips edges.
        let rev3: Vec<_> = g.neighbors(NodeId(3), Direction::Reverse).collect();
        assert_eq!(rev3, in3);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.out_degree(NodeId(3)), 0);
    }

    #[test]
    fn edge_lookup() {
        let g = diamond();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(Weight::new(1.0)));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), None);
        assert!(g.has_edge(NodeId(2), NodeId(3)));
        assert!(!g.has_edge(NodeId(3), NodeId(2)));
    }

    #[test]
    fn parallel_edges_keep_min_weight_lookup() {
        let g = graph_from_edges(2, &[(0, 1, 5.0), (0, 1, 3.0)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(Weight::new(3.0)));
    }

    #[test]
    fn bidirected_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_bidirected_edge(NodeId(0), NodeId(1), Weight::new(1.5));
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(NodeId(0), NodeId(2), Weight::new(4.0))));
    }

    #[test]
    fn induce_subgraph() {
        let g = diamond();
        // Take nodes {0, 1, 3}: edges 0->1 and 1->3 survive, 0->2->3 dropped.
        let ind = g.induce(&[NodeId(3), NodeId(0), NodeId(1)]);
        assert_eq!(ind.graph.node_count(), 3);
        assert_eq!(ind.graph.edge_count(), 2);
        assert_eq!(ind.to_original(NodeId(0)), NodeId(0));
        assert_eq!(ind.to_original(NodeId(2)), NodeId(3));
        assert_eq!(ind.to_local(NodeId(3)), Some(NodeId(2)));
        assert_eq!(ind.to_local(NodeId(2)), None);
        // Local edge 0->1 has original weight.
        assert_eq!(
            ind.graph.edge_weight(NodeId(0), NodeId(1)),
            Some(Weight::new(1.0))
        );
    }

    #[test]
    fn induce_dedups_input() {
        let g = diamond();
        let ind = g.induce(&[NodeId(1), NodeId(1), NodeId(0)]);
        assert_eq!(ind.graph.node_count(), 2);
    }

    #[test]
    fn add_node_grows() {
        let mut b = GraphBuilder::new(0);
        let a = b.add_node();
        let c = b.add_node();
        b.add_edge(a, c, Weight::new(1.0));
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(NodeId(0), NodeId(1), Weight::ZERO);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn byte_size_positive() {
        assert!(diamond().byte_size() > 0);
    }

    #[test]
    fn node_weights_fold_into_edges() {
        // 0 -1-> 1 -1-> 2 with node weights [5, 10, 20]:
        // dist(0, 2) = (1 + 10) + (1 + 20) = 32; the start's weight is free.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), Weight::new(1.0));
        b.add_edge(NodeId(1), NodeId(2), Weight::new(1.0));
        let g =
            b.build_with_node_weights(&[Weight::new(5.0), Weight::new(10.0), Weight::new(20.0)]);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(Weight::new(11.0)));
        let d = crate::dijkstra::shortest_distances(&g, Direction::Forward, NodeId(0));
        assert_eq!(d[2], Weight::new(32.0));
    }

    #[test]
    #[should_panic(expected = "one weight per node")]
    fn node_weights_length_checked() {
        let b = GraphBuilder::new(2);
        let _ = b.build_with_node_weights(&[Weight::ZERO]);
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Forward.flip(), Direction::Reverse);
        assert_eq!(Direction::Reverse.flip(), Direction::Forward);
    }
}
