//! `kernel_bench` — the Dijkstra-kernel lane: serial binary heap vs the
//! radius-aware bucket queue vs the fused batched multi-source sweep,
//! written to `BENCH_kernel.json`.
//!
//! ```bash
//! cargo run --release -p comm-bench --bin kernel_bench
//! ```
//!
//! Three workloads, per the issue's acceptance grid:
//!
//! 1. **paper** — the Fig. 4 example (13 nodes, `Rmax = 8`), timed over
//!    many repetitions; mostly a correctness anchor, the timings show the
//!    small-graph constant factors;
//! 2. **dblp** — the sampled synthetic DBLP dataset at the grid-default
//!    keyword frequency and radius: the paper-scale number the issue's
//!    acceptance criterion reads;
//! 3. **torus** — a `side × side` torus grid (side 1000 → 1M nodes by
//!    default, 100 with `--quick`), the large-diameter stress case where
//!    bucket skipping matters most.
//!
//! Every workload is **certified before it is timed**: the bucket kernel
//! and the batched sweep must reproduce the heap kernel's `NeighborSets`
//! bit for bit (`dist` and `src` over every dimension × node), and the
//! heap/bucket settle sequences — `(node, dist, source, parent)` in pop
//! order — must be element-wise identical. A certification failure aborts
//! the run; `BENCH_kernel.json` never holds timings for kernels that
//! disagree.
//!
//! The report is written through the provenance guard
//! ([`comm_bench::write_artifact`]): a run on a weaker machine (fewer
//! CPUs) than the committed artifact's refuses to overwrite it unless
//! `--force` is passed.

use comm_bench::{write_artifact, ArtifactWrite, MachineInfo, Prepared, Scale};
use comm_core::{NeighborSets, Parallelism};
use comm_datasets::paper_example::{fig4_graph, fig4_keyword_nodes, FIG4_RMAX};
use comm_graph::weight::index_to_u32;
use comm_graph::{
    graph_from_edges, Direction, EnginePool, Graph, Kernel, NodeId, RunGuard, Weight,
};
use std::time::Instant;

struct Options {
    out: String,
    quick: bool,
    force: bool,
}

const HELP: &str = "\
usage: kernel_bench [options]

Times the serial binary-heap Dijkstra kernel against the bucket-queue
kernel and the fused batched multi-source sweep, certifying bit-identical
results first, and writes BENCH_kernel.json.

options:
  --out PATH   where to write the report (default BENCH_kernel.json)
  --quick      small torus + fewer repetitions (smoke setting)
  --force      overwrite the artifact even if the existing one was
               recorded on a machine with more CPUs
  --help       this text";

fn parse(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        out: "BENCH_kernel.json".to_owned(),
        quick: false,
        force: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--quick" => opts.quick = true,
            "--force" => opts.force = true,
            "--out" => {
                opts.out = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--out needs a value".to_owned())?;
            }
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok(Some(opts))
}

/// Best-of-`reps` wall clock for `f`, in milliseconds.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

/// One timed round of the bare `l` multi-source sweeps (no table
/// rebuild) under the engine's current kernel, in milliseconds.
fn sweep_round(
    engine: &mut comm_graph::DijkstraEngine,
    graph: &Graph,
    seeds: &[Vec<NodeId>],
    rmax: Weight,
) -> f64 {
    let t0 = Instant::now();
    for s in seeds {
        engine
            .run_guarded(
                graph,
                Direction::Reverse,
                s.iter().copied(),
                rmax,
                &RunGuard::unlimited(),
                |_| {},
            )
            .expect("unlimited guard never trips");
    }
    t0.elapsed().as_secs_f64() * 1000.0
}

/// The torus of `comm_serve::workload`, rebuilt here so the bench does
/// not depend on engine plumbing: 4-regular wrap-around grid, weights
/// cycling 1.0/1.5/2.0, keyword `i` on nodes `≡ i (mod 5 + i)`.
fn torus(side: usize, l: usize) -> (Graph, Vec<Vec<NodeId>>) {
    let n = side * side;
    let id = |r: usize, c: usize| index_to_u32((r % side) * side + (c % side));
    let mut edges: Vec<(u32, u32, f64)> = Vec::with_capacity(n * 4);
    let weights = [1.0, 1.5, 2.0];
    for r in 0..side {
        for c in 0..side {
            let w1 = weights[(r + c) % weights.len()];
            let w2 = weights[(r + 2 * c) % weights.len()];
            edges.push((id(r, c), id(r, c + 1), w1));
            edges.push((id(r, c + 1), id(r, c), w1));
            edges.push((id(r, c), id(r + 1, c), w2));
            edges.push((id(r + 1, c), id(r, c), w2));
        }
    }
    let seeds = (0..l)
        .map(|i| {
            (0..n)
                .filter(|v| v % (5 + i) == i)
                .map(|v| NodeId(index_to_u32(v)))
                .collect()
        })
        .collect();
    (graph_from_edges(n, &edges), seeds)
}

/// The settle sequence of one multi-source sweep under `kernel`:
/// `(node, dist bits, source, parent)` in pop order. Two kernels are
/// bit-identical iff these sequences are equal element for element.
fn settle_sequence(
    graph: &Graph,
    seeds: &[NodeId],
    rmax: Weight,
    kernel: Kernel,
) -> Vec<(u32, u64, u32, u32)> {
    let mut engine = comm_graph::DijkstraEngine::with_kernel(graph.node_count(), kernel);
    let mut out = Vec::new();
    engine
        .run_guarded(
            graph,
            Direction::Reverse,
            seeds.iter().copied(),
            rmax,
            &RunGuard::unlimited(),
            |s| {
                out.push((s.node.0, s.dist.get().to_bits(), s.source.0, s.parent.0));
            },
        )
        .expect("unlimited guard never trips");
    out
}

/// Recomputes the full `NeighborSets` table serially under `kernel` and
/// returns the table for certification.
fn recompute(
    graph: &Graph,
    pool: &EnginePool,
    seeds: &[Vec<NodeId>],
    rmax: Weight,
    kernel: Kernel,
) -> NeighborSets {
    pool.set_kernel(kernel);
    let mut ns = NeighborSets::new(seeds.len(), graph.node_count());
    ns.recompute_all(graph, pool, seeds, rmax, Parallelism::serial());
    ns
}

/// `dist`/`src` equality over every dimension × node.
fn tables_identical(a: &NeighborSets, b: &NeighborSets, graph: &Graph) -> bool {
    let n = graph.node_count();
    (0..a.l()).all(|i| {
        (0..n).all(|u| {
            let u = NodeId(index_to_u32(u));
            a.dist(i, u) == b.dist(i, u) && a.src(i, u) == b.src(i, u)
        })
    })
}

/// Runs one workload: certify heap/bucket/batched agreement, then time
/// the three variants. Aborts the process on any disagreement.
fn run_workload(
    name: &str,
    graph: &Graph,
    seeds: &[Vec<NodeId>],
    rmax: Weight,
    reps: usize,
) -> serde_json::Value {
    let l = seeds.len();
    let total_seeds: usize = seeds.iter().map(Vec::len).sum();
    eprintln!(
        "[{name}] n={} m={} l={l} seeds={total_seeds} rmax={rmax} reps={reps}",
        graph.node_count(),
        graph.edge_count(),
    );
    let pool = EnginePool::new();

    // Certification first: engine-level settle sequences per dimension...
    for dim_seeds in seeds {
        let heap = settle_sequence(graph, dim_seeds, rmax, Kernel::Heap);
        let bucket = settle_sequence(graph, dim_seeds, rmax, Kernel::Bucket);
        assert_eq!(
            heap, bucket,
            "[{name}] bucket kernel settle sequence diverged from heap"
        );
    }
    // ...then the full NeighborSets tables for all three variants.
    let heap_ns = recompute(graph, &pool, seeds, rmax, Kernel::Heap);
    let bucket_ns = recompute(graph, &pool, seeds, rmax, Kernel::Bucket);
    pool.set_kernel(Kernel::Auto);
    let mut batched_ns = NeighborSets::new(l, graph.node_count());
    batched_ns
        .recompute_all_batched_guarded(graph, &pool, seeds, rmax, &RunGuard::unlimited())
        .expect("unlimited guard never trips");
    assert!(
        tables_identical(&heap_ns, &bucket_ns, graph),
        "[{name}] bucket kernel NeighborSets diverged from heap"
    );
    assert!(
        tables_identical(&heap_ns, &batched_ns, graph),
        "[{name}] batched sweep NeighborSets diverged from heap"
    );
    eprintln!("  certified: bucket and batched are bit-identical to heap");

    // Kernel-level timings first: the bare sweeps, heap vs bucket,
    // interleaved per round so machine drift hits both kernels alike.
    let mut engine = comm_graph::DijkstraEngine::new(graph.node_count());
    let (mut heap_sweep_ms, mut bucket_sweep_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(5) {
        engine.set_kernel(Kernel::Heap);
        heap_sweep_ms = heap_sweep_ms.min(sweep_round(&mut engine, graph, seeds, rmax));
        engine.set_kernel(Kernel::Bucket);
        bucket_sweep_ms = bucket_sweep_ms.min(sweep_round(&mut engine, graph, seeds, rmax));
    }
    eprintln!(
        "  sweeps only: heap {heap_sweep_ms:9.3} ms | bucket {bucket_sweep_ms:9.3} ms ({:.2}x)",
        heap_sweep_ms / bucket_sweep_ms,
    );

    // End-to-end `recompute_all` timings (sweeps + the O(l·n) table
    // rebuild, which is kernel-independent), same interleaving.
    let mut ns = NeighborSets::new(l, graph.node_count());
    let (mut heap_ms, mut bucket_ms, mut batched_ms) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        pool.set_kernel(Kernel::Heap);
        heap_ms = heap_ms.min(best_ms(1, || {
            ns.recompute_all(graph, &pool, seeds, rmax, Parallelism::serial());
        }));
        pool.set_kernel(Kernel::Bucket);
        bucket_ms = bucket_ms.min(best_ms(1, || {
            ns.recompute_all(graph, &pool, seeds, rmax, Parallelism::serial());
        }));
        pool.set_kernel(Kernel::Auto);
        batched_ms = batched_ms.min(best_ms(1, || {
            ns.recompute_all_batched_guarded(graph, &pool, seeds, rmax, &RunGuard::unlimited())
                .expect("unlimited guard never trips");
        }));
    }
    eprintln!(
        "  recompute_all: heap {heap_ms:9.3} ms | bucket {bucket_ms:9.3} ms ({:.2}x) | batched {batched_ms:9.3} ms ({:.2}x)",
        heap_ms / bucket_ms,
        heap_ms / batched_ms,
    );

    serde_json::json!({
        "name": name,
        "nodes": graph.node_count(),
        "edges": graph.edge_count(),
        "l": l,
        "total_seeds": total_seeds,
        "rmax": rmax.get(),
        "reps": reps,
        "certified_bit_identical": true,
        "heap_sweep_ms": round3(heap_sweep_ms),
        "bucket_sweep_ms": round3(bucket_sweep_ms),
        "bucket_sweep_speedup": round3(heap_sweep_ms / bucket_sweep_ms),
        "heap_ms": round3(heap_ms),
        "bucket_ms": round3(bucket_ms),
        "batched_ms": round3(batched_ms),
        "bucket_speedup": round3(heap_ms / bucket_ms),
        "batched_speedup": round3(heap_ms / batched_ms),
    })
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{HELP}");
            return;
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut workloads = Vec::new();

    // 1. The paper's running example.
    let paper = fig4_graph();
    let paper_seeds = fig4_keyword_nodes();
    workloads.push(run_workload(
        "paper-fig4",
        &paper,
        &paper_seeds,
        Weight::new(FIG4_RMAX),
        if opts.quick { 50 } else { 200 },
    ));

    // 2. Sampled synthetic DBLP at the grid defaults.
    let scale = if opts.quick {
        Scale::Quick
    } else {
        Scale::Full
    };
    let p = Prepared::dblp(scale);
    let (kwf, l, rmax, _k) = p.grid.defaults;
    let kws = p.keywords(kwf, l);
    let dblp_seeds: Vec<Vec<NodeId>> = kws
        .iter()
        .map(|kw| p.dataset.graph.keyword_nodes(kw).to_vec())
        .collect();
    workloads.push(run_workload(
        "dblp-synthetic",
        &p.dataset.graph.graph,
        &dblp_seeds,
        Weight::new(rmax),
        if opts.quick { 3 } else { 5 },
    ));

    // 3. The large-diameter torus (1M nodes unless --quick).
    let side = if opts.quick { 100 } else { 1000 };
    let (torus_graph, torus_seeds) = torus(side, 4);
    workloads.push(run_workload(
        &format!("torus-{side}x{side}"),
        &torus_graph,
        &torus_seeds,
        Weight::new(6.0),
        if opts.quick { 3 } else { 3 },
    ));

    let machine = MachineInfo::capture();
    let doc = serde_json::json!({
        "machine": machine,
        "quick": opts.quick,
        "workloads": workloads,
    });
    let json = match serde_json::to_string_pretty(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            std::process::exit(1);
        }
    };
    match write_artifact(&opts.out, &json, &machine, opts.force) {
        Ok(ArtifactWrite::Written) => println!("wrote {}", opts.out),
        Ok(ArtifactWrite::Refused(msg)) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: could not write {}: {e}", opts.out);
            std::process::exit(1);
        }
    }
}
