//! A classic Fibonacci heap (Fredman & Tarjan) with `O(1)` amortized
//! `push`/`decrease_key`/`meld` and `O(log n)` amortized `pop_min`.
//!
//! The ICDE'09 community-search paper uses a Fibonacci heap to order the
//! *can-list* of core candidates in `COMM-k` (its Algorithm 5 relies on
//! `enheap` being `O(1)` and `deheap` being `O(log(p·l))`), and the same
//! structure doubles as a priority queue for Dijkstra with decrease-key.
//!
//! Nodes live in a slab arena; [`FibHeap::push`] returns a [`NodeRef`]
//! handle that stays valid until the node is popped or the heap cleared.
//! Handles are generation-checked, so using a stale handle returns an error
//! instead of corrupting the heap.
//!
//! # Example
//! ```
//! use comm_fibheap::FibHeap;
//!
//! let mut h = FibHeap::new();
//! let a = h.push(5u64, "a");
//! let _b = h.push(3, "b");
//! h.decrease_key(a, 1).unwrap();
//! assert_eq!(h.pop_min().map(|(k, v)| (k, v)), Some((1, "a")));
//! assert_eq!(h.pop_min().map(|(k, v)| (k, v)), Some((3, "b")));
//! assert!(h.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

/// A handle to a live heap node, returned by [`FibHeap::push`].
///
/// The handle is invalidated when its node is popped; a stale handle is
/// detected via a generation counter and rejected by the mutating methods.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef {
    slot: u32,
    gen: u32,
}

impl NodeRef {
    /// Translates a handle issued by a heap that was later melded *into*
    /// another heap (see [`FibHeap::meld`]): pass the slot offset `meld`
    /// returned. Handles of the receiving heap stay valid unchanged.
    ///
    /// An offset that would overflow the slot space yields a handle that
    /// fails the staleness check instead of aliasing another node.
    #[must_use]
    pub fn rebased(self, offset: u32) -> NodeRef {
        NodeRef {
            slot: self.slot.checked_add(offset).unwrap_or(NIL),
            gen: self.gen,
        }
    }
}

impl fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeRef({}@{})", self.slot, self.gen)
    }
}

/// Errors returned by handle-based operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The handle refers to a node that was already removed.
    StaleHandle,
    /// `decrease_key` was called with a key greater than the current key.
    KeyNotDecreased,
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::StaleHandle => write!(f, "stale Fibonacci-heap handle"),
            HeapError::KeyNotDecreased => {
                write!(f, "decrease_key called with a larger key")
            }
        }
    }
}

impl std::error::Error for HeapError {}

/// A violated structural invariant, reported by [`FibHeap::validate`].
///
/// Each variant is one independent invariant class, so tests can corrupt a
/// heap in a specific way and assert the matching diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapInvariantError {
    /// A sibling ring is broken: a pointer leaves the arena, lands on a
    /// retired slot, or left/right are not mutual.
    BrokenRing {
        /// The slot at which the defect was detected.
        slot: u32,
        /// What exactly is wrong with the ring there.
        detail: &'static str,
    },
    /// A node is reachable through two different paths (trees must be
    /// disjoint).
    NodeRevisited {
        /// The doubly-reached slot.
        slot: u32,
    },
    /// A child's key is smaller than its parent's (min-heap order).
    HeapOrderViolation {
        /// The parent slot.
        parent: u32,
        /// The offending child slot.
        child: u32,
    },
    /// A node's stored degree disagrees with its actual child count.
    WrongDegree {
        /// The slot with the bad degree.
        slot: u32,
        /// The stored degree.
        stored: u32,
        /// The number of children actually present.
        actual: usize,
    },
    /// A node's parent pointer does not match the tree it sits in (root
    /// with a parent, or child pointing at the wrong parent).
    WrongParentPointer {
        /// The slot with the bad parent pointer.
        slot: u32,
    },
    /// A root is marked; this implementation clears marks on every path to
    /// the root ring, so a marked root means lost bookkeeping.
    MarkedRoot {
        /// The marked root slot.
        slot: u32,
    },
    /// A node's degree exceeds the Fibonacci bound `log_φ(len)`.
    DegreeBoundExceeded {
        /// The slot with the oversized degree.
        slot: u32,
        /// Its stored degree.
        degree: u32,
        /// The heap size bounding the degree.
        len: usize,
    },
    /// A subtree is smaller than `F(degree + 2)` — the size lower bound
    /// that makes Fibonacci-heap amortization work.
    SubtreeTooSmall {
        /// The subtree's root slot.
        slot: u32,
        /// Its degree.
        degree: u32,
        /// The actual subtree size.
        size: usize,
    },
    /// `len`, the number of live slots, and the number of reachable nodes
    /// disagree.
    LengthMismatch {
        /// The stored `len`.
        stored: usize,
        /// The count actually found.
        found: usize,
        /// Which count disagreed ("live slots" or "reachable nodes").
        what: &'static str,
    },
    /// The free list and the set of retired slots disagree.
    FreeListCorrupt {
        /// What exactly is wrong.
        detail: &'static str,
    },
    /// `min` does not point at a smallest-key root.
    MinNotMinimum {
        /// The root whose key undercuts `min`'s.
        better: u32,
    },
}

impl fmt::Display for HeapInvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapInvariantError::BrokenRing { slot, detail } => {
                write!(f, "broken sibling ring at slot {slot}: {detail}")
            }
            HeapInvariantError::NodeRevisited { slot } => {
                write!(f, "slot {slot} is reachable via two paths")
            }
            HeapInvariantError::HeapOrderViolation { parent, child } => {
                write!(f, "child {child} has a smaller key than parent {parent}")
            }
            HeapInvariantError::WrongDegree {
                slot,
                stored,
                actual,
            } => write!(
                f,
                "slot {slot} stores degree {stored} but has {actual} children"
            ),
            HeapInvariantError::WrongParentPointer { slot } => {
                write!(f, "slot {slot} has a wrong parent pointer")
            }
            HeapInvariantError::MarkedRoot { slot } => {
                write!(f, "root {slot} is marked")
            }
            HeapInvariantError::DegreeBoundExceeded { slot, degree, len } => {
                write!(
                    f,
                    "slot {slot} has degree {degree}, above the Fibonacci bound for len {len}"
                )
            }
            HeapInvariantError::SubtreeTooSmall { slot, degree, size } => {
                write!(
                    f,
                    "subtree at slot {slot} has degree {degree} but only {size} nodes"
                )
            }
            HeapInvariantError::LengthMismatch {
                stored,
                found,
                what,
            } => write!(f, "len is {stored} but found {found} {what}"),
            HeapInvariantError::FreeListCorrupt { detail } => {
                write!(f, "free list corrupt: {detail}")
            }
            HeapInvariantError::MinNotMinimum { better } => {
                write!(f, "min pointer skips the smaller-keyed root {better}")
            }
        }
    }
}

impl std::error::Error for HeapInvariantError {}

struct Node<K, V> {
    /// `Some` while the node is live; taken on pop so slots stay stable
    /// (handle slots are never relocated).
    data: Option<(K, V)>,
    parent: u32,
    child: u32,
    left: u32,
    right: u32,
    degree: u32,
    gen: u32,
    mark: bool,
}

/// A min-ordered Fibonacci heap mapping keys `K` to payloads `V`.
pub struct FibHeap<K, V> {
    nodes: Vec<Node<K, V>>,
    free: Vec<u32>,
    min: u32,
    len: usize,
}

impl<K: Ord, V> Default for FibHeap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> FibHeap<K, V> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        FibHeap {
            nodes: Vec::new(),
            free: Vec::new(),
            min: NIL,
            len: 0,
        }
    }

    /// Creates an empty heap with room for `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        FibHeap {
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            min: NIL,
            len: 0,
        }
    }

    /// Number of elements currently in the heap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every element. Outstanding handles all become stale.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.min = NIL;
        self.len = 0;
    }

    fn alloc(&mut self, key: K, value: V) -> u32 {
        if let Some(slot) = self.free.pop() {
            let gen = self.nodes[slot as usize].gen;
            self.nodes[slot as usize] = Node {
                data: Some((key, value)),
                parent: NIL,
                child: NIL,
                left: slot,
                right: slot,
                degree: 0,
                gen,
                mark: false,
            };
            slot
        } else {
            let slot = u32::try_from(self.nodes.len())
                .ok()
                .filter(|&s| s != NIL)
                // xtask-allow: no_panics — NodeRef slots are u32 with NIL = u32::MAX; a larger arena is unsupported
                .expect("fibheap arena exceeds the u32 slot space");
            self.nodes.push(Node {
                data: Some((key, value)),
                parent: NIL,
                child: NIL,
                left: slot,
                right: slot,
                degree: 0,
                gen: 0,
                mark: false,
            });
            slot
        }
    }

    #[inline]
    fn key_of(&self, i: u32) -> &K {
        // xtask-allow: no_panics — key_of is only called on nodes reachable from the root/child rings, which are live
        &self.nodes[i as usize].data.as_ref().expect("live node").0
    }

    /// Splices node `x` (a singleton ring) into the ring containing `at`.
    fn splice_into_ring(&mut self, at: u32, x: u32) {
        let at_right = self.nodes[at as usize].right;
        self.nodes[x as usize].left = at;
        self.nodes[x as usize].right = at_right;
        self.nodes[at as usize].right = x;
        self.nodes[at_right as usize].left = x;
    }

    /// Unlinks node `x` from its sibling ring, leaving it a singleton.
    fn unlink(&mut self, x: u32) {
        let l = self.nodes[x as usize].left;
        let r = self.nodes[x as usize].right;
        self.nodes[l as usize].right = r;
        self.nodes[r as usize].left = l;
        self.nodes[x as usize].left = x;
        self.nodes[x as usize].right = x;
    }

    /// Inserts `(key, value)` and returns a handle to the new node.
    /// Amortized `O(1)`.
    pub fn push(&mut self, key: K, value: V) -> NodeRef {
        let slot = self.alloc(key, value);
        if self.min == NIL {
            self.min = slot;
        } else {
            self.splice_into_ring(self.min, slot);
            if self.key_of(slot) < self.key_of(self.min) {
                self.min = slot;
            }
        }
        self.len += 1;
        NodeRef {
            slot,
            gen: self.nodes[slot as usize].gen,
        }
    }

    /// Returns the minimum key/value without removing it.
    pub fn peek_min(&self) -> Option<(&K, &V)> {
        if self.min == NIL {
            None
        } else {
            let (k, v) = self.nodes[self.min as usize].data.as_ref()?;
            Some((k, v))
        }
    }

    fn check(&self, r: NodeRef) -> Result<(), HeapError> {
        let n = self
            .nodes
            .get(r.slot as usize)
            .ok_or(HeapError::StaleHandle)?;
        if n.data.is_none() || n.gen != r.gen {
            return Err(HeapError::StaleHandle);
        }
        Ok(())
    }

    /// Reads the key of a live node.
    pub fn key(&self, r: NodeRef) -> Result<&K, HeapError> {
        self.check(r)?;
        Ok(self.key_of(r.slot))
    }

    /// Reads the payload of a live node.
    pub fn value(&self, r: NodeRef) -> Result<&V, HeapError> {
        self.check(r)?;
        Ok(&self.nodes[r.slot as usize]
            .data
            .as_ref()
            // xtask-allow: no_panics — check() verified the handle, so the slot is live
            .expect("live node")
            .1)
    }

    /// Cuts `x` from its parent and moves it to the root ring.
    fn cut(&mut self, x: u32, parent: u32) {
        // Fix parent's child pointer / degree.
        if self.nodes[parent as usize].child == x {
            let r = self.nodes[x as usize].right;
            self.nodes[parent as usize].child = if r == x { NIL } else { r };
        }
        self.unlink(x);
        self.nodes[parent as usize].degree -= 1;
        self.nodes[x as usize].parent = NIL;
        self.nodes[x as usize].mark = false;
        self.splice_into_ring(self.min, x);
    }

    fn cascading_cut(&mut self, mut y: u32) {
        loop {
            let p = self.nodes[y as usize].parent;
            if p == NIL {
                return;
            }
            if !self.nodes[y as usize].mark {
                self.nodes[y as usize].mark = true;
                return;
            }
            self.cut(y, p);
            y = p;
        }
    }

    /// Lowers the key of the node behind `r` to `new_key`.
    /// Amortized `O(1)`. Fails if the handle is stale or the key larger.
    pub fn decrease_key(&mut self, r: NodeRef, new_key: K) -> Result<(), HeapError> {
        self.check(r)?;
        let x = r.slot;
        if &new_key > self.key_of(x) {
            return Err(HeapError::KeyNotDecreased);
        }
        // xtask-allow: no_panics — check() verified the handle, so the slot is live
        self.nodes[x as usize].data.as_mut().expect("live node").0 = new_key;
        let parent = self.nodes[x as usize].parent;
        if parent != NIL && self.key_of(x) < self.key_of(parent) {
            self.cut(x, parent);
            self.cascading_cut(parent);
        }
        if self.key_of(x) < self.key_of(self.min) {
            self.min = x;
        }
        Ok(())
    }

    /// Removes and returns the minimum `(key, value)`.
    /// Amortized `O(log n)`.
    pub fn pop_min(&mut self) -> Option<(K, V)> {
        if self.min == NIL {
            return None;
        }
        let z = self.min;

        // Promote z's children to the root ring.
        let mut child = self.nodes[z as usize].child;
        while child != NIL {
            let next = {
                let r = self.nodes[child as usize].right;
                if r == child {
                    NIL
                } else {
                    r
                }
            };
            self.unlink(child);
            self.nodes[child as usize].parent = NIL;
            self.nodes[child as usize].mark = false;
            self.splice_into_ring(z, child);
            child = next;
        }
        self.nodes[z as usize].child = NIL;

        // Remove z from the root ring.
        let ring_rest = {
            let r = self.nodes[z as usize].right;
            if r == z {
                NIL
            } else {
                r
            }
        };
        self.unlink(z);
        self.len -= 1;

        if ring_rest == NIL {
            self.min = NIL;
        } else {
            self.min = ring_rest;
            self.consolidate(ring_rest);
        }

        // Retire slot z: take the payload, bump the generation so stale
        // handles are detected, and recycle the slot.
        let node = &mut self.nodes[z as usize];
        // xtask-allow: no_panics — min was reachable, hence live; pop transitions it to retired exactly once
        let data = node.data.take().expect("popped node was live");
        node.gen = node.gen.wrapping_add(1);
        self.free.push(z);
        Some(data)
    }

    fn consolidate(&mut self, start: u32) {
        // Collect roots first (the ring is mutated during linking).
        let mut roots = Vec::new();
        let mut cur = start;
        loop {
            roots.push(cur);
            cur = self.nodes[cur as usize].right;
            if cur == start {
                break;
            }
        }

        let max_degree = 2 + (usize::BITS - (self.len.max(1)).leading_zeros()) as usize * 2;
        let mut by_degree: Vec<u32> = vec![NIL; max_degree + 2];

        for mut x in roots {
            let mut d = self.nodes[x as usize].degree as usize;
            while by_degree[d] != NIL {
                let mut y = by_degree[d];
                by_degree[d] = NIL;
                if self.key_of(y) < self.key_of(x) {
                    std::mem::swap(&mut x, &mut y);
                }
                // Link y under x.
                self.unlink(y);
                self.nodes[y as usize].parent = x;
                self.nodes[y as usize].mark = false;
                let c = self.nodes[x as usize].child;
                if c == NIL {
                    self.nodes[x as usize].child = y;
                } else {
                    self.splice_into_ring(c, y);
                }
                self.nodes[x as usize].degree += 1;
                d += 1;
            }
            by_degree[d] = x;
        }

        // Find new min among the remaining roots.
        let mut min = NIL;
        for &root in by_degree.iter() {
            if root == NIL {
                continue;
            }
            if min == NIL || self.key_of(root) < self.key_of(min) {
                min = root;
            }
        }
        self.min = min;
    }

    /// Merges `other` into `self` in `O(other.arena)` time (no comparisons
    /// beyond the two minima; the root rings are spliced, as in the
    /// textbook `meld`).
    ///
    /// Returns the slot offset by which `other`'s nodes were shifted:
    /// handles issued by `other` stay usable against `self` after
    /// [`NodeRef::rebased`]`(offset)`.
    pub fn meld(&mut self, other: FibHeap<K, V>) -> u32 {
        let offset = u32::try_from(self.nodes.len())
            .ok()
            .filter(|o| (*o as usize) + other.nodes.len() <= NIL as usize)
            // xtask-allow: no_panics — NodeRef slots are u32 with NIL = u32::MAX; a larger combined arena is unsupported
            .expect("melded fibheap arenas exceed the u32 slot space");
        let shift = |p: u32| if p == NIL { NIL } else { p + offset };
        for n in other.nodes {
            self.nodes.push(Node {
                data: n.data,
                parent: shift(n.parent),
                child: shift(n.child),
                left: shift(n.left),
                right: shift(n.right),
                degree: n.degree,
                gen: n.gen,
                mark: n.mark,
            });
        }
        self.free.extend(other.free.iter().map(|&s| s + offset));
        let other_min = shift(other.min);
        if other_min != NIL {
            if self.min == NIL {
                self.min = other_min;
            } else {
                // Splice the two root rings: cut each ring open after its
                // min and cross-link the loose ends.
                let a = self.min;
                let b = other_min;
                let ar = self.nodes[a as usize].right;
                let br = self.nodes[b as usize].right;
                self.nodes[a as usize].right = br;
                self.nodes[br as usize].left = a;
                self.nodes[b as usize].right = ar;
                self.nodes[ar as usize].left = b;
                if self.key_of(b) < self.key_of(a) {
                    self.min = b;
                }
            }
        }
        self.len += other.len;
        offset
    }

    /// Fetches a node for validation, diagnosing out-of-arena pointers and
    /// links to retired slots.
    fn live_node(&self, slot: u32) -> Result<&Node<K, V>, HeapInvariantError> {
        let n = self
            .nodes
            .get(slot as usize)
            .ok_or(HeapInvariantError::BrokenRing {
                slot,
                detail: "pointer leaves the arena",
            })?;
        if n.data.is_none() {
            return Err(HeapInvariantError::BrokenRing {
                slot,
                detail: "pointer lands on a retired slot",
            });
        }
        Ok(n)
    }

    /// Walks the sibling ring starting at `start`, checking left/right
    /// mutuality and liveness, and returns the ring's members.
    fn collect_ring(&self, start: u32) -> Result<Vec<u32>, HeapInvariantError> {
        let mut out = Vec::new();
        let mut cur = start;
        loop {
            let n = self.live_node(cur)?;
            let right = n.right;
            let rnode = self.live_node(right)?;
            if rnode.left != cur {
                return Err(HeapInvariantError::BrokenRing {
                    slot: cur,
                    detail: "left/right pointers are not mutual",
                });
            }
            out.push(cur);
            if out.len() > self.nodes.len() {
                return Err(HeapInvariantError::BrokenRing {
                    slot: start,
                    detail: "ring does not close",
                });
            }
            cur = right;
            if cur == start {
                return Ok(out);
            }
        }
    }

    /// Checks every structural invariant of the heap in `O(n)`:
    ///
    /// 1. `len` equals the number of live slots *and* of nodes reachable
    ///    from the root ring;
    /// 2. the free list holds exactly the retired slots, without
    ///    duplicates;
    /// 3. every sibling ring is mutually linked and closes;
    /// 4. every tree is parent-consistent, min-heap ordered, and each
    ///    node's stored degree equals its child count;
    /// 5. no root is marked (every path to the root ring clears marks in
    ///    this implementation);
    /// 6. degrees respect the Fibonacci bound and every subtree of degree
    ///    `d` holds at least `F(d + 2)` nodes;
    /// 7. `min` points at a smallest-key root.
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), HeapInvariantError> {
        let live = self.nodes.iter().filter(|n| n.data.is_some()).count();
        if live != self.len {
            return Err(HeapInvariantError::LengthMismatch {
                stored: self.len,
                found: live,
                what: "live slots",
            });
        }
        let mut on_free = vec![false; self.nodes.len()];
        for &s in &self.free {
            match self.nodes.get(s as usize) {
                None => {
                    return Err(HeapInvariantError::FreeListCorrupt {
                        detail: "free slot outside the arena",
                    })
                }
                Some(n) if n.data.is_some() => {
                    return Err(HeapInvariantError::FreeListCorrupt {
                        detail: "free slot is live",
                    })
                }
                Some(_) => {}
            }
            if on_free[s as usize] {
                return Err(HeapInvariantError::FreeListCorrupt {
                    detail: "slot listed twice",
                });
            }
            on_free[s as usize] = true;
        }
        if self.free.len() != self.nodes.len() - live {
            return Err(HeapInvariantError::FreeListCorrupt {
                detail: "retired slot missing from the free list",
            });
        }
        if self.min == NIL {
            return if self.len == 0 {
                Ok(())
            } else {
                Err(HeapInvariantError::LengthMismatch {
                    stored: self.len,
                    found: 0,
                    what: "reachable nodes",
                })
            };
        }

        // Smallest subtree size per degree: need[d] = F(d + 2).
        let mut need: Vec<usize> = vec![1, 2];
        while *need.last().unwrap_or(&usize::MAX) <= self.len {
            let k = need.len();
            need.push(need[k - 1].saturating_add(need[k - 2]));
        }
        let min_size = |d: u32| need.get(d as usize).copied().unwrap_or(usize::MAX);

        let roots = self.collect_ring(self.min)?;
        for &r in &roots {
            let n = &self.nodes[r as usize];
            if n.parent != NIL {
                return Err(HeapInvariantError::WrongParentPointer { slot: r });
            }
            if n.mark {
                return Err(HeapInvariantError::MarkedRoot { slot: r });
            }
            if self.key_of(r) < self.key_of(self.min) {
                return Err(HeapInvariantError::MinNotMinimum { better: r });
            }
        }

        // DFS every tree, collecting a pre-order so subtree sizes can be
        // accumulated leaf-to-root afterwards.
        let mut visited = vec![false; self.nodes.len()];
        let mut order: Vec<u32> = Vec::with_capacity(self.len);
        let mut stack: Vec<u32> = roots.clone();
        for &r in &roots {
            if visited[r as usize] {
                return Err(HeapInvariantError::NodeRevisited { slot: r });
            }
            visited[r as usize] = true;
        }
        while let Some(x) = stack.pop() {
            order.push(x);
            let n = &self.nodes[x as usize];
            let kids = if n.child == NIL {
                Vec::new()
            } else {
                self.collect_ring(n.child)?
            };
            if kids.len() != n.degree as usize {
                return Err(HeapInvariantError::WrongDegree {
                    slot: x,
                    stored: n.degree,
                    actual: kids.len(),
                });
            }
            if min_size(n.degree) > self.len {
                return Err(HeapInvariantError::DegreeBoundExceeded {
                    slot: x,
                    degree: n.degree,
                    len: self.len,
                });
            }
            for &c in &kids {
                if visited[c as usize] {
                    return Err(HeapInvariantError::NodeRevisited { slot: c });
                }
                visited[c as usize] = true;
                if self.nodes[c as usize].parent != x {
                    return Err(HeapInvariantError::WrongParentPointer { slot: c });
                }
                if self.key_of(c) < self.key_of(x) {
                    return Err(HeapInvariantError::HeapOrderViolation {
                        parent: x,
                        child: c,
                    });
                }
                stack.push(c);
            }
        }
        if order.len() != self.len {
            return Err(HeapInvariantError::LengthMismatch {
                stored: self.len,
                found: order.len(),
                what: "reachable nodes",
            });
        }

        let mut size = vec![1usize; self.nodes.len()];
        for &x in order.iter().rev() {
            let p = self.nodes[x as usize].parent;
            if p != NIL {
                size[p as usize] += size[x as usize];
            }
        }
        for &x in &order {
            let d = self.nodes[x as usize].degree;
            if size[x as usize] < min_size(d) {
                return Err(HeapInvariantError::SubtreeTooSmall {
                    slot: x,
                    degree: d,
                    size: size[x as usize],
                });
            }
        }
        Ok(())
    }

    /// Drains the heap in ascending key order.
    pub fn into_sorted_vec(mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(kv) = self.pop_min() {
            out.push(kv);
        }
        out
    }
}

impl<K: Ord + fmt::Debug, V> fmt::Debug for FibHeap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FibHeap(len={}", self.len)?;
        if let Some((k, _)) = self.peek_min() {
            write!(f, ", min={k:?}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_heap() {
        let mut h: FibHeap<u32, ()> = FibHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.peek_min(), None);
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn push_pop_ordering() {
        let mut h = FibHeap::new();
        for k in [5, 1, 4, 2, 3] {
            h.push(k, k * 10);
        }
        assert_eq!(h.len(), 5);
        let out: Vec<_> = h.into_sorted_vec();
        assert_eq!(out, vec![(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]);
    }

    #[test]
    fn duplicate_keys() {
        let mut h = FibHeap::new();
        h.push(1, "a");
        h.push(1, "b");
        h.push(0, "c");
        assert_eq!(h.pop_min().unwrap().0, 0);
        assert_eq!(h.pop_min().unwrap().0, 1);
        assert_eq!(h.pop_min().unwrap().0, 1);
    }

    #[test]
    fn decrease_key_moves_to_front() {
        let mut h = FibHeap::new();
        let _a = h.push(10, "a");
        let b = h.push(20, "b");
        h.push(5, "c");
        // Force some tree structure.
        assert_eq!(h.pop_min().unwrap().1, "c");
        h.decrease_key(b, 1).unwrap();
        assert_eq!(h.pop_min().unwrap(), (1, "b"));
        assert_eq!(h.pop_min().unwrap(), (10, "a"));
    }

    #[test]
    fn decrease_key_rejects_increase() {
        let mut h = FibHeap::new();
        let a = h.push(10, ());
        assert_eq!(h.decrease_key(a, 11), Err(HeapError::KeyNotDecreased));
        // Equal key is allowed (no-op).
        assert_eq!(h.decrease_key(a, 10), Ok(()));
    }

    #[test]
    fn stale_handle_detected() {
        let mut h = FibHeap::new();
        let a = h.push(1, ());
        assert_eq!(h.pop_min(), Some((1, ())));
        assert_eq!(h.decrease_key(a, 0), Err(HeapError::StaleHandle));
        assert_eq!(h.key(a), Err(HeapError::StaleHandle));
    }

    #[test]
    fn handle_reads() {
        let mut h = FibHeap::new();
        let a = h.push(7, "x");
        assert_eq!(h.key(a), Ok(&7));
        assert_eq!(h.value(a), Ok(&"x"));
    }

    #[test]
    fn clear_invalidates() {
        let mut h = FibHeap::new();
        let a = h.push(7, "x");
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.key(a), Err(HeapError::StaleHandle));
        // Heap remains usable.
        h.push(3, "y");
        assert_eq!(h.pop_min(), Some((3, "y")));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut h = FibHeap::new();
        h.push(4, 4);
        h.push(2, 2);
        assert_eq!(h.pop_min().unwrap().0, 2);
        h.push(1, 1);
        h.push(3, 3);
        assert_eq!(h.pop_min().unwrap().0, 1);
        assert_eq!(h.pop_min().unwrap().0, 3);
        assert_eq!(h.pop_min().unwrap().0, 4);
        assert!(h.pop_min().is_none());
    }

    #[test]
    fn slot_reuse_after_pop() {
        let mut h = FibHeap::new();
        for i in 0..100 {
            h.push(i, i);
        }
        for i in 0..50 {
            assert_eq!(h.pop_min().unwrap().0, i);
        }
        for i in 0..50 {
            h.push(i, i);
        }
        let out = h.into_sorted_vec();
        let keys: Vec<_> = out.iter().map(|&(k, _)| k).collect();
        let mut expect: Vec<_> = (0..50).chain(50..100).collect();
        expect.sort_unstable();
        assert_eq!(keys, expect);
    }

    #[test]
    fn heap_sort_large_random() {
        // Deterministic LCG so the test needs no rand dependency wiring here.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut h = FibHeap::new();
        let mut keys = Vec::new();
        // Miri runs the same logic at a size it can interpret in seconds.
        let count = if cfg!(miri) { 300 } else { 5000 };
        for _ in 0..count {
            let k = next() % 10_000;
            keys.push(k);
            h.push(k, ());
        }
        keys.sort_unstable();
        let drained: Vec<u32> = h.into_sorted_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(drained, keys);
    }

    #[test]
    fn decrease_key_stress_matches_reference() {
        // Mirror operations against a simple sorted-vec reference model.
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut h = FibHeap::new();
        let mut live: Vec<(NodeRef, u32)> = Vec::new();
        let mut model: Vec<u32> = Vec::new();
        let steps = if cfg!(miri) { 500 } else { 20_000u32 };
        for step in 0..steps {
            match next() % 4 {
                0 | 1 => {
                    let k = next() % 1_000_000;
                    let r = h.push(k, step);
                    live.push((r, k));
                    model.push(k);
                }
                2 if !live.is_empty() => {
                    let i = (next() as usize) % live.len();
                    let (r, old) = live[i];
                    let nk = old / 2;
                    if h.decrease_key(r, nk).is_ok() {
                        live[i].1 = nk;
                        let pos = model.iter().position(|&m| m == old).unwrap();
                        model[pos] = nk;
                    }
                }
                _ => {
                    let got = h.pop_min().map(|(k, _)| k);
                    model.sort_unstable();
                    let want = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0))
                    };
                    assert_eq!(got, want, "mismatch at step {step}");
                    if let Some(k) = got {
                        // Drop one matching live handle (it is now stale).
                        if let Some(p) = live.iter().position(|&(_, lk)| lk == k) {
                            live.swap_remove(p);
                        }
                    }
                }
            }
            assert_eq!(h.len(), model.len());
        }
    }

    #[test]
    fn validate_accepts_evolving_heap() {
        let mut h = FibHeap::new();
        h.validate().unwrap();
        let mut handles = Vec::new();
        for k in [9, 3, 7, 1, 8, 2, 6, 4, 5, 0] {
            handles.push(h.push(k, k));
            h.validate().unwrap();
        }
        h.pop_min();
        h.validate().unwrap();
        h.decrease_key(handles[2], 0).unwrap();
        h.validate().unwrap();
        while h.pop_min().is_some() {
            h.validate().unwrap();
        }
    }

    /// Builds a heap with real tree structure (a pop forces consolidation).
    fn consolidated(n: u32) -> FibHeap<u32, u32> {
        let mut h = FibHeap::new();
        for k in 0..n {
            h.push(k, k);
        }
        h.pop_min();
        h
    }

    #[test]
    fn validate_detects_marked_root() {
        let mut h = consolidated(8);
        let root = h.min;
        h.nodes[root as usize].mark = true;
        assert_eq!(
            h.validate(),
            Err(HeapInvariantError::MarkedRoot { slot: root })
        );
    }

    #[test]
    fn validate_detects_heap_order_violation() {
        let mut h = consolidated(8);
        // Find a parent/child pair and invert their keys by hand.
        let (p, c) = h
            .nodes
            .iter()
            .enumerate()
            .find_map(|(i, n)| (n.data.is_some() && n.parent != NIL).then(|| (n.parent, i as u32)))
            .expect("consolidated heap has at least one child");
        let parent_key = h.key_of(p).to_owned();
        h.nodes[c as usize].data.as_mut().unwrap().0 = parent_key - 1;
        assert!(matches!(
            h.validate(),
            Err(HeapInvariantError::HeapOrderViolation { .. })
        ));
    }

    #[test]
    fn validate_detects_wrong_degree() {
        let mut h = consolidated(8);
        let root = h.min;
        h.nodes[root as usize].degree += 1;
        assert!(matches!(
            h.validate(),
            Err(HeapInvariantError::WrongDegree { .. })
                | Err(HeapInvariantError::DegreeBoundExceeded { .. })
        ));
    }

    #[test]
    fn validate_detects_length_mismatch() {
        let mut h = consolidated(8);
        h.len += 1;
        assert!(matches!(
            h.validate(),
            Err(HeapInvariantError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn validate_detects_broken_ring() {
        let mut h = FibHeap::new();
        h.push(1, ());
        h.push(2, ());
        h.push(3, ());
        // Snap one root's left pointer.
        let r = h.nodes[h.min as usize].right;
        h.nodes[r as usize].left = r;
        assert!(matches!(
            h.validate(),
            Err(HeapInvariantError::BrokenRing { .. })
        ));
    }

    #[test]
    fn validate_detects_free_list_corruption() {
        let mut h = consolidated(4);
        // pop_min retired a slot; hide it from the free list.
        assert!(!h.free.is_empty());
        h.free.pop();
        assert_eq!(
            h.validate(),
            Err(HeapInvariantError::FreeListCorrupt {
                detail: "retired slot missing from the free list",
            })
        );
    }

    #[test]
    fn validate_detects_min_not_minimum() {
        let mut h = FibHeap::new();
        h.push(5, ());
        h.push(1, ());
        // Point min at the larger root.
        let wrong = h.nodes[h.min as usize].right;
        h.min = wrong;
        assert!(matches!(
            h.validate(),
            Err(HeapInvariantError::MinNotMinimum { .. })
        ));
    }

    #[test]
    fn meld_merges_and_orders() {
        let mut a = FibHeap::new();
        let mut b = FibHeap::new();
        for k in [5, 1, 9] {
            a.push(k, "a");
        }
        for k in [4, 0, 8] {
            b.push(k, "b");
        }
        let _off = a.meld(b);
        a.validate().unwrap();
        assert_eq!(a.len(), 6);
        let keys: Vec<u32> = a.into_sorted_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0, 1, 4, 5, 8, 9]);
    }

    #[test]
    fn meld_rebases_handles() {
        let mut a = FibHeap::new();
        a.push(10, "a");
        let mut b = FibHeap::new();
        let hb = b.push(20, "b");
        let off = a.meld(b);
        let hb = hb.rebased(off);
        assert_eq!(a.key(hb), Ok(&20));
        a.decrease_key(hb, 1).unwrap();
        a.validate().unwrap();
        assert_eq!(a.pop_min(), Some((1, "b")));
        assert_eq!(a.key(hb), Err(HeapError::StaleHandle));
    }

    #[test]
    fn meld_with_empty_either_way() {
        let mut a: FibHeap<u32, ()> = FibHeap::new();
        let mut b = FibHeap::new();
        b.push(3, ());
        a.meld(b);
        a.validate().unwrap();
        assert_eq!(a.len(), 1);

        let mut c = FibHeap::new();
        c.push(2, ());
        let d: FibHeap<u32, ()> = FibHeap::new();
        c.meld(d);
        c.validate().unwrap();
        assert_eq!(c.pop_min(), Some((2, ())));
    }

    #[test]
    fn meld_preserves_structure_under_load() {
        let mut a = FibHeap::new();
        let mut b = FibHeap::new();
        let mut expect = Vec::new();
        for k in 0..40u32 {
            let key = (k * 17) % 101;
            expect.push(key);
            if k % 2 == 0 {
                a.push(key, ());
            } else {
                b.push(key, ());
            }
        }
        // Give both heaps tree structure before the meld.
        expect.sort_unstable();
        let la = a.pop_min().unwrap().0;
        let lb = b.pop_min().unwrap().0;
        expect.retain({
            let mut seen = (false, false);
            move |&k| {
                if k == la && !seen.0 {
                    seen.0 = true;
                    false
                } else if k == lb && !seen.1 {
                    seen.1 = true;
                    false
                } else {
                    true
                }
            }
        });
        a.meld(b);
        a.validate().unwrap();
        let keys: Vec<u32> = a.into_sorted_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, expect);
    }
}
