//! Interactive top-k (the paper's Exp-3): a user browses communities page
//! by page, repeatedly asking for more — the polynomial-delay enumerator
//! resumes where it stopped, while the expanding baselines would recompute
//! the whole query for every enlargement of k.
//!
//! ```bash
//! cargo run --release --example interactive_topk
//! ```

use communities::datasets::{generate_imdb, ImdbConfig};
use communities::graph::{NodeId, Weight};
use communities::search::{bu_topk, CommK, ProjectionIndex, QuerySpec};
use std::time::Instant;

fn main() {
    let keywords = ["night", "story", "king", "house"];
    let page = 50;
    let pages = 5;

    let ds = generate_imdb(&ImdbConfig::default());
    let entries: Vec<(&str, &[NodeId])> = keywords
        .iter()
        .map(|&kw| (kw, ds.graph.keyword_nodes(kw)))
        .collect();
    let index = ProjectionIndex::build(&ds.graph.graph, entries, Weight::new(13.0));
    let pq = index
        .project(&keywords, Weight::new(11.0))
        .expect("keywords indexed");
    let g = &pq.projected.graph;
    let spec = QuerySpec::new(pq.spec.keyword_nodes.clone(), pq.spec.rmax);
    println!(
        "query {keywords:?} on projected graph ({} nodes)\n",
        g.node_count()
    );

    // One persistent enumerator serves every "next page" request.
    let mut enumerator = CommK::new(g, &spec);
    println!(
        "{:<8} {:<22} {:<24}",
        "page", "PDk (resume)", "BUk (recompute from scratch)"
    );
    for p in 1..=pages {
        let t0 = Instant::now();
        let got: Vec<_> = enumerator.by_ref().take(page).collect();
        let t_resume = t0.elapsed();
        if got.is_empty() {
            println!("{:<8} enumeration exhausted", p);
            break;
        }
        // What the baselines would have to do for the same page: rerun
        // with k = p * page and throw away the first (p-1) pages.
        let t0 = Instant::now();
        let bu = bu_topk(g, &spec, p * page, None);
        let t_rerun = t0.elapsed();
        println!(
            "{:<8} {:<22} {:<24}",
            format!("{}..{}", (p - 1) * page + 1, (p - 1) * page + got.len()),
            format!("{t_resume:?}"),
            format!("{t_rerun:?} ({} communities)", bu.communities.len()),
        );
        // The pages the user saw so far always match a one-shot top-(p·page).
        let last_cost = got.last().expect("non-empty page").cost;
        let bu_last = bu.communities.last().expect("non-empty").cost;
        assert!(last_cost <= bu_last || (last_cost.get() - bu_last.get()).abs() < 1e-9);
    }
    println!(
        "\ntotal communities browsed: {} (can-list holds {} candidates, {} peak memory)",
        enumerator.emitted(),
        enumerator.can_list_len(),
        enumerator.peak_memory_bytes(),
    );
}
