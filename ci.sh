#!/usr/bin/env bash
# CI gate: build, test, format, lint, repo-specific static analysis. Run
# locally before pushing; .github/workflows/ci.yml runs the same sequence
# plus the hardening lane (Miri, cargo-deny) with the tools installed.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# --release so debug_assertions are off and the validators run purely via
# the feature gate (the debug profile exercises them for free above).
echo "==> cargo test (verify feature: deep structural validators)"
cargo test -q --workspace --release --features verify

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# Parallel lane: pin the worker pool to 2 threads so any serial/parallel
# divergence shows up, then run the dedicated equivalence gate.
echo "==> cargo test (RAYON_NUM_THREADS=2)"
RAYON_NUM_THREADS=2 cargo test -q --workspace --release

echo "==> serial/parallel equivalence gate"
RAYON_NUM_THREADS=2 cargo test -q --release --test parallel_equivalence

# Kernel lane: the equivalence gate re-run with the process-wide Dijkstra
# kernel pinned each way (the global pool reads COMM_KERNEL at first use),
# then a quick kernel_bench smoke — the bench certifies heap/bucket/batched
# bit-identity on every workload before timing anything. --force because
# the committed BENCH_kernel.json may carry better machine provenance.
echo "==> kernel lane (equivalence gate under each kernel + bench smoke)"
COMM_KERNEL=heap cargo test -q --release --test parallel_equivalence
COMM_KERNEL=bucket cargo test -q --release --test parallel_equivalence
cargo run --quiet --release -p comm-bench --bin kernel_bench -- \
    --quick --force --out /tmp/BENCH_kernel_ci.json

# Serve smoke lane: chaos-load the daemon (fault injection armed), then a
# CLI round trip. chaos_load exits non-zero unless every request
# terminated in a declared state with zero protocol errors and sheds got
# explicit Overloaded replies.
echo "==> serve smoke (chaos load + CLI round trip)"
cargo run --quiet --release -p comm-serve --example chaos_load -- /tmp/BENCH_serve_ci.json
EXPLORE=(cargo run --quiet --release -p comm-cli --bin comm-explore --)
"${EXPLORE[@]}" serve --addr 127.0.0.1:0 --side 8 >/tmp/serve_smoke.out 2>/dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" /tmp/serve_smoke.out && break
    sleep 0.1
done
SERVE_ADDR=$(sed -n 's/listening on //p' /tmp/serve_smoke.out)
test -n "$SERVE_ADDR" || { echo "daemon never bound"; kill "$SERVE_PID"; exit 1; }
"${EXPLORE[@]}" client --addr "$SERVE_ADDR" ping >/dev/null
"${EXPLORE[@]}" client --addr "$SERVE_ADDR" query alpha beta >/dev/null
"${EXPLORE[@]}" client --addr "$SERVE_ADDR" query alpha no-such-keyword >/dev/null 2>&1 \
    && { echo "bad keyword must exit non-zero"; exit 1; }
"${EXPLORE[@]}" client --addr "$SERVE_ADDR" shutdown >/dev/null
wait "$SERVE_PID"

# Warm-start lane: persist the engine as a CGPH v2 container, restart the
# daemon against it (no rebuild — the container's keyword map becomes the
# vocabulary), and query it; then the io lane asserts mmap-loaded and
# heap-built graphs answer bit-identically (exit non-zero otherwise).
echo "==> warm-start lane (save container, serve from it, query)"
cargo run --quiet --release -p comm-serve --example warm_bundle -- 8 /tmp/warm_ci.cgph
"${EXPLORE[@]}" serve --addr 127.0.0.1:0 --graph /tmp/warm_ci.cgph >/tmp/serve_warm.out 2>/dev/null &
WARM_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" /tmp/serve_warm.out && break
    sleep 0.1
done
WARM_ADDR=$(sed -n 's/listening on //p' /tmp/serve_warm.out)
test -n "$WARM_ADDR" || { echo "warm daemon never bound"; kill "$WARM_PID"; exit 1; }
"${EXPLORE[@]}" client --addr "$WARM_ADDR" query alpha beta >/dev/null
"${EXPLORE[@]}" client --addr "$WARM_ADDR" shutdown >/dev/null
wait "$WARM_PID"

echo "==> io lane (cold build vs v1 load vs v2 mmap, bit-identical answers)"
cargo run --quiet --release -p comm-serve --example io_bench -- --side 64 /tmp/BENCH_io_ci.json

echo "==> xtask self-tests"
cargo test -q --release --manifest-path xtask/Cargo.toml

echo "==> cargo xtask lint (with stale-waiver audit)"
cargo run --quiet --release --manifest-path xtask/Cargo.toml -- lint --stale-waivers

echo "==> cargo xtask analyze (concurrency discipline)"
cargo run --quiet --release --manifest-path xtask/Cargo.toml -- analyze

# Concurrency lane: the exhaustive admission-gate interleaving model runs
# everywhere (std-only); ThreadSanitizer needs nightly + rust-src and is
# skipped gracefully where absent, like the hardening tools.
echo "==> admission-gate interleaving model"
cargo test -q --release -p comm-serve --test admission_model

echo "==> wire-protocol property tests"
cargo test -q --release --test protocol_roundtrip

echo "==> ThreadSanitizer (parallel equivalence + serve tests)"
if rustc +nightly --version >/dev/null 2>&1 \
    && rustc +nightly --print sysroot 2>/dev/null \
        | xargs -I{} test -d {}/lib/rustlib/src/rust/library; then
    HOST_TARGET=$(rustc -vV | sed -n 's/^host: //p')
    RUSTFLAGS="-Zsanitizer=thread" RAYON_NUM_THREADS=2 \
        cargo +nightly test -q --release -Zbuild-std \
        --target "$HOST_TARGET" -p comm-serve --lib
    RUSTFLAGS="-Zsanitizer=thread" RAYON_NUM_THREADS=2 \
        cargo +nightly test -q --release -Zbuild-std \
        --target "$HOST_TARGET" --test parallel_equivalence
else
    echo "    nightly rust-src not installed; skipped (CI concurrency lane runs it)"
fi

# Hardening lane: skipped gracefully where the tools are absent; the
# GitHub workflow installs and runs both unconditionally.
echo "==> cargo deny"
if command -v cargo-deny >/dev/null 2>&1; then
    cargo deny check
else
    echo "    cargo-deny not installed; skipped (CI hardening lane runs it)"
fi

echo "==> miri (fibheap + graph unit tests)"
if cargo miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-strict-provenance" cargo miri test -p comm-fibheap -p comm-graph --lib
else
    echo "    miri not installed; skipped (CI hardening lane runs it)"
fi

echo "==> ci OK"
