//! The five repo-specific lint rules.
//!
//! Every rule reports findings with a stable rule id, a message, and a
//! suggestion. Findings on `#[cfg(test)]` lines are dropped; findings on
//! waived lines (see [`crate::scan::ALLOW_MARKER`]) are kept but flagged so
//! the driver can count them without failing the build.
//!
//! `no_panics` and `guard_coverage` are AST queries over the token tree
//! ([`crate::ast`]): panic-family calls are matched as tokens (so
//! `unwrap_or_else` never needs a boundary hack) and loops are resolved
//! structurally (a `node_count()` in straight-line code no longer marks the
//! function as looping). `narrowing_cast` and `display_match` stay on the
//! masked text, where substring matching is exact.

use crate::analyze::FileModel;
use crate::ast::TokKind;
use crate::scan::{ident_at, SourceFile};
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Stable rule id (`no_panics`, `narrowing_cast`, `guard_coverage`,
    /// `display_match`, `unsafe_confined`).
    pub rule: &'static str,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
    /// True when an `xtask-allow` waiver covers the finding.
    pub waived: bool,
}

/// Rule id for the panic-family ban.
pub const NO_PANICS: &str = "no_panics";
/// Rule id for the narrowing-cast ban.
pub const NARROWING_CAST: &str = "narrowing_cast";
/// Rule id for the node-loop `RunGuard` coverage requirement.
pub const GUARD_COVERAGE: &str = "guard_coverage";
/// Rule id for exhaustive `Display` impls on `*Error` enums.
pub const DISPLAY_MATCH: &str = "display_match";
/// Rule id for waiver comments that no longer suppress anything.
pub const STALE_WAIVER: &str = "stale_waiver";
/// Rule id for the unsafe-confinement requirement.
pub const UNSAFE_CONFINED: &str = "unsafe_confined";

/// Runs every applicable rule over one file. `guard_scope` enables the
/// guard-coverage rule (it applies to `crates/core` and `crates/serve`,
/// where ungoverned loops could run unbounded work).
pub fn check_file(fm: &FileModel, guard_scope: bool) -> Vec<Finding> {
    let mut out = Vec::new();
    no_panics(fm, &mut out);
    narrowing_cast(&fm.source, &mut out);
    if guard_scope {
        guard_coverage(fm, &mut out);
    }
    display_match(&fm.source, &mut out);
    unsafe_confined(fm, &mut out);
    out.sort_by_key(|x| (x.line, x.rule));
    out
}

fn push(
    f: &SourceFile,
    out: &mut Vec<Finding>,
    rule: &'static str,
    line: usize,
    msg: String,
    suggestion: &str,
) {
    if f.is_test_line(line) {
        return;
    }
    out.push(Finding {
        file: f.path.clone(),
        line,
        rule,
        message: msg,
        suggestion: suggestion.to_string(),
        waived: f.is_waived(rule, line),
    });
}

/// `no_panics`: bans `.unwrap()`, `.expect(...)`, `panic!`, `todo!`, and
/// `unimplemented!` in non-test library code. Matched as tokens: the macro
/// form is an identifier directly followed by `!`, the method form is
/// `.` + identifier + `(` — so `unwrap_or_else` or `should_panic` can
/// never match by construction.
fn no_panics(fm: &FileModel, out: &mut Vec<Finding>) {
    const SUGGESTION: &str = "return an error (QueryError/RdbError/HeapError) or document the \
         invariant with `// xtask-allow: no_panics — <why>`";
    let ast = &fm.ast;
    for i in 0..ast.toks.len() {
        match ast.toks[i].kind {
            TokKind::Ident => {
                let label = match ast.text(i) {
                    "panic" => "`panic!`",
                    "todo" => "`todo!`",
                    "unimplemented" => "`unimplemented!`",
                    _ => continue,
                };
                if ast.is_punct(i + 1, '!') {
                    push(
                        &fm.source,
                        out,
                        NO_PANICS,
                        ast.line(&fm.source, i),
                        format!("{label} in non-test library code"),
                        SUGGESTION,
                    );
                }
            }
            TokKind::Punct('.') => {
                let Some(name) = ast.ident(i + 1) else {
                    continue;
                };
                let label = match name {
                    "unwrap" => "`.unwrap()`",
                    "expect" => "`.expect(...)`",
                    _ => continue,
                };
                if ast.toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Open('(')) {
                    push(
                        &fm.source,
                        out,
                        NO_PANICS,
                        ast.line(&fm.source, i + 1),
                        format!("{label} in non-test library code"),
                        SUGGESTION,
                    );
                }
            }
            _ => {}
        }
    }
}

/// `unsafe_confined`: the `unsafe` keyword is allowed only in
/// `crates/graph/src/storage.rs` (the mmap FFI and the Pod slice
/// reinterpret, both behind `#[allow(unsafe_code)]` with safety
/// comments). Every other library file must stay `unsafe`-free — the
/// crate roots say `#![forbid(unsafe_code)]`, but a file-level
/// `#![allow]` could reopen the door; this rule closes it. Matched as a
/// keyword token over masked text, so `unsafe_code` attribute idents,
/// comments, and strings can never fire.
fn unsafe_confined(fm: &FileModel, out: &mut Vec<Finding>) {
    const SUGGESTION: &str = "express the operation safely, or move it into \
         `crates/graph/src/storage.rs` with a `// SAFETY:` justification";
    if fm.source.path.ends_with(Path::new("crates/graph/src/storage.rs")) {
        return;
    }
    let ast = &fm.ast;
    for i in 0..ast.toks.len() {
        if ast.toks[i].kind == TokKind::Ident && ast.text(i) == "unsafe" {
            push(
                &fm.source,
                out,
                UNSAFE_CONFINED,
                ast.line(&fm.source, i),
                "`unsafe` outside the confined storage module".to_string(),
                SUGGESTION,
            );
        }
    }
}

const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// `narrowing_cast`: bans bare `as` casts to sub-64-bit integer types
/// (node-id/offset narrowing must go through the checked helpers in
/// `graph::weight`).
fn narrowing_cast(f: &SourceFile, out: &mut Vec<Finding>) {
    const SUGGESTION: &str = "use the checked conversions in `graph::weight` \
         (`index_to_u32`/`try_index_to_u32`) or `T::try_from(...)`";
    let mut search = 0;
    while let Some(rel) = f.masked[search..].find(" as ") {
        let pos = search + rel;
        search = pos + 4;
        let after = &f.masked[pos + 4..];
        let ty: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if ident_at(&f.masked, pos + 4 + ty.len()) {
            continue;
        }
        // `x64 as usize` truncates on 32-bit hosts: flag usize casts whose
        // source identifier names a 64-bit quantity (`n64`, `len_u64`, ...).
        let from_64 = ty == "usize" && preceding_ident(&f.masked, pos).contains("64");
        if !NARROW_TARGETS.contains(&ty.as_str()) && !from_64 {
            continue;
        }
        let line = f.line_of(pos);
        push(
            f,
            out,
            NARROWING_CAST,
            line,
            format!("bare narrowing cast `as {ty}`"),
            SUGGESTION,
        );
    }
}

/// The identifier directly before the ` as ` at `pos` (empty when the cast
/// source is a parenthesized expression).
fn preceding_ident(masked: &str, pos: usize) -> &str {
    let bytes = masked.as_bytes();
    let mut start = pos;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    &masked[start..pos]
}

/// `guard_coverage`: every `pub fn` in `crates/core` or `crates/serve`
/// whose body loops over graph nodes, pumps a request loop, fans work
/// out across threads, or drives a fused batched sweep must thread a
/// `RunGuard` (or delegate to a `_guarded` variant), so new algorithms
/// and new serving paths cannot bypass the execution governor. Parallel
/// and batched entry points are held to the same bar as serial loops: a
/// fan-out without a shared guard cannot be cancelled mid-batch, and one
/// fused multi-source sweep settles `l·n` virtual nodes in a single call.
fn guard_coverage(fm: &FileModel, out: &mut Vec<Finding>) {
    const SUGGESTION: &str = "accept `&RunGuard` (or delegate to a `*_guarded` variant) so the \
         execution governor can interrupt the loop";
    const LOOP_MARKS: [&str; 6] = [
        ".nodes()",
        "node_count()",
        "0..self.n",
        " 0..n",
        // Serving-path loops: an accept loop or a frame-pump without a
        // cancellable guard would hang shutdown forever.
        ".accept(",
        "read_frame(",
    ];
    const PAR_MARKS: [&str; 4] = ["thread::scope", ".spawn(", ".map_init(", "par.map("];
    // Batched sweep entry points: these match only unguarded call forms —
    // `run_batched_guarded(` carries a guard-naming identifier and
    // satisfies the check on its own.
    const BATCH_MARKS: [&str; 2] = ["run_batched(", "recompute_all_batched("];
    let ast = &fm.ast;
    for f in &ast.fns {
        if !f.is_pub {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        // Structural loop resolution: a mark only counts inside an actual
        // `for`/`while`/`loop` span (header included, so a frame-pump in a
        // `while let` condition is governed too). Straight-line calls to
        // `node_count()` no longer mark the function as looping.
        let loops = ast.loops_in(open + 1, close).into_iter().any(|(lo, hi)| {
            let t = ast.span_text(lo, hi);
            LOOP_MARKS.iter().any(|m| t.contains(m))
        });
        let body = ast.span_text(open, close);
        let fans_out = PAR_MARKS.iter().any(|m| body.contains(m));
        let batches = BATCH_MARKS.iter().any(|m| body.contains(m));
        if !loops && !fans_out && !batches {
            continue;
        }
        // Guarded when any identifier in the signature or body names a
        // guard (`guard`, `RunGuard`, `scan_guarded`, `guard_cancel`, ...).
        let (sig_lo, _) = f.sig;
        let guarded = (sig_lo..=close).any(|i| {
            ast.ident(i)
                .is_some_and(|id| id.to_ascii_lowercase().contains("guard"))
        });
        if !guarded {
            let what = if fans_out {
                "fans work out across threads"
            } else if batches {
                "drives a fused batched sweep"
            } else {
                "loops over graph nodes"
            };
            push(
                &fm.source,
                out,
                GUARD_COVERAGE,
                f.line,
                format!("`pub fn {}` {what} without a RunGuard", f.name),
                SUGGESTION,
            );
        }
    }
}

/// Byte offset of the `}` matching the `{` at `open` (or end of text).
fn matching_brace(masked: &str, open: usize) -> usize {
    let mut depth = 0usize;
    for (off, b) in masked.bytes().enumerate().skip(open) {
        if b == b'{' {
            depth += 1;
        } else if b == b'}' {
            depth -= 1;
            if depth == 0 {
                return off;
            }
        }
    }
    masked.len()
}

/// `display_match`: every variant of a `pub enum *Error` must be matched in
/// a `Display` impl in the same file (no stringly-typed error gaps).
fn display_match(f: &SourceFile, out: &mut Vec<Finding>) {
    const SUGGESTION: &str = "add a match arm for the variant to the enum's `Display` impl";
    let mut search = 0;
    while let Some(rel) = f.masked[search..].find("pub enum ") {
        let pos = search + rel;
        search = pos + "pub enum ".len();
        let name: String = f.masked[pos + "pub enum ".len()..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.ends_with("Error") {
            continue;
        }
        let enum_line = f.line_of(pos);
        let Some(open_rel) = f.masked[pos..].find('{') else {
            continue;
        };
        let open = pos + open_rel;
        let close = matching_brace(&f.masked, open);
        let variants = enum_variants(f, open, close);

        let impl_body = find_display_impl(f, &name);
        match impl_body {
            None => push(
                f,
                out,
                DISPLAY_MATCH,
                enum_line,
                format!("`{name}` has no `Display` impl in this file"),
                "implement `std::fmt::Display` with one arm per variant",
            ),
            Some(body) => {
                for (vline, variant) in variants {
                    let qualified = format!("{name}::{variant}");
                    let selfed = format!("Self::{variant}");
                    if !body.contains(&qualified) && !body.contains(&selfed) {
                        push(
                            f,
                            out,
                            DISPLAY_MATCH,
                            vline,
                            format!("variant `{name}::{variant}` is not matched in `Display`"),
                            SUGGESTION,
                        );
                    }
                }
            }
        }
    }
}

/// Collects `(line, variant_name)` pairs from a rustfmt-formatted enum body.
fn enum_variants(f: &SourceFile, open: usize, close: usize) -> Vec<(usize, String)> {
    let mut variants = Vec::new();
    let first_line = f.line_of(open);
    let last_line = f.line_of(close);
    if first_line == last_line {
        // Single-line enum: `pub enum E { A, B }`.
        for part in f.masked[open + 1..close].split(',') {
            let ident: String = part
                .trim()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                variants.push((first_line, ident));
            }
        }
        return variants;
    }
    // Multi-line: a variant is a depth-1 line starting with an uppercase
    // identifier (field lines start lowercase, attribute lines with '#').
    let mut depth = 0usize;
    for line_no in first_line..=last_line {
        let text = f.masked_line(line_no);
        let trimmed = text.trim_start();
        if depth == 1 {
            let ident: String = trimmed
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                variants.push((line_no, ident));
            }
        }
        for b in text.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    variants
}

fn find_display_impl<'a>(f: &'a SourceFile, name: &str) -> Option<&'a str> {
    let needle = format!("Display for {name}");
    let pos = f.masked.find(&needle)?;
    let open = pos + f.masked[pos..].find('{')?;
    let close = matching_brace(&f.masked, open);
    Some(&f.masked[open..close])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn findings(src: &str, in_core: bool) -> Vec<Finding> {
        let fm = FileModel::parse(PathBuf::from("seed.rs"), src.to_string());
        check_file(&fm, in_core)
    }

    fn live(src: &str, in_core: bool) -> Vec<Finding> {
        findings(src, in_core)
            .into_iter()
            .filter(|x| !x.waived)
            .collect()
    }

    #[test]
    fn seeded_unwrap_violation_fails() {
        let out = live(
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
            false,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, NO_PANICS);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn seeded_panic_and_expect_fail() {
        let src = "fn f() {\n    panic!(\"boom\");\n}\nfn g(x: Option<u8>) {\n    x.expect(\"live\");\n}\n";
        let out = live(src, false);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|x| x.rule == NO_PANICS));
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let out = live(
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or_else(|| 0)\n}\n",
            false,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn should_panic_attr_is_not_flagged() {
        let out = live("#[should_panic(expected = \"x\")]\nfn f() {}\n", false);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u8>) {\n        x.unwrap();\n    }\n}\n";
        assert!(findings(src, false).is_empty());
    }

    #[test]
    fn waiver_suppresses_but_is_reported() {
        let src = "fn f(x: Option<u8>) {\n    // xtask-allow: no_panics — audited invariant\n    x.unwrap();\n}\n";
        let all = findings(src, false);
        assert_eq!(all.len(), 1);
        assert!(all[0].waived);
    }

    #[test]
    fn seeded_narrowing_cast_fails() {
        let out = live("fn f(n: usize) -> u32 {\n    n as u32\n}\n", false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, NARROWING_CAST);
    }

    #[test]
    fn widening_casts_are_fine() {
        let out = live(
            "fn f(n: u32) -> u64 {\n    let _ = n as usize;\n    n as u64\n}\n",
            false,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn u64_to_usize_truncation_is_flagged() {
        let out = live("fn f(n64: u64) -> usize {\n    n64 as usize\n}\n", false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, NARROWING_CAST);
        // Plain u32 -> usize widening stays clean.
        let ok = live("fn f(n: u32) -> usize {\n    n as usize\n}\n", false);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn cast_in_string_is_ignored() {
        let out = live("fn f() -> &'static str {\n    \"x as u32\"\n}\n", false);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn seeded_unguarded_node_loop_fails() {
        let src = "pub fn scan(g: &Graph) -> usize {\n    let mut c = 0;\n    for u in g.nodes() {\n        c += u.index();\n    }\n    c\n}\n";
        let out = live(src, true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, GUARD_COVERAGE);
        // The same source is clean outside crates/core.
        assert!(live(src, false).is_empty());
    }

    #[test]
    fn guarded_node_loop_passes() {
        let src = "pub fn scan(g: &Graph, guard: &RunGuard) -> usize {\n    let mut c = 0;\n    for u in g.nodes() {\n        guard.note_settled(1);\n        c += u.index();\n    }\n    c\n}\n";
        assert!(live(src, true).is_empty());
    }

    #[test]
    fn delegating_wrapper_passes() {
        let src = "pub fn scan(g: &Graph) -> usize {\n    for u in g.nodes() {\n        let _ = u;\n    }\n    scan_guarded(g, &RunGuard::noop())\n}\n";
        assert!(live(src, true).is_empty());
    }

    #[test]
    fn seeded_unguarded_fan_out_fails() {
        let src = "pub fn sweep(g: &Graph) -> Vec<u64> {\n    let tasks = make_tasks(g);\n    par.map(tasks)\n}\n";
        let out = live(src, true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, GUARD_COVERAGE);
        assert!(out[0].message.contains("fans work out"));
        // Same source is clean outside crates/core.
        assert!(live(src, false).is_empty());
    }

    #[test]
    fn seeded_unguarded_scope_spawn_fails() {
        let src = "pub fn sweep(g: &Graph) {\n    std::thread::scope(|s| {\n        s.spawn(|| work(g));\n    });\n}\n";
        let out = live(src, true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, GUARD_COVERAGE);
    }

    #[test]
    fn guarded_fan_out_passes() {
        let src = "pub fn sweep_guarded(g: &Graph, guard: &RunGuard) -> Vec<u64> {\n    let tasks = make_tasks(g, guard);\n    par.map(tasks)\n}\n";
        assert!(live(src, true).is_empty());
        let init = "pub fn build(g: &Graph, guard: &RunGuard) -> Vec<u64> {\n    par.map_init(|| scratch(), make_tasks(g, guard))\n}\n";
        assert!(live(init, true).is_empty());
    }

    #[test]
    fn seeded_unguarded_batched_sweep_fails() {
        let src = "pub fn refill(g: &Graph) {\n    engine.run_batched(g, seeds, |dim, s| note(dim, s));\n}\n";
        let out = live(src, true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, GUARD_COVERAGE);
        assert!(out[0].message.contains("fused batched sweep"));
        assert!(live(src, false).is_empty());
    }

    #[test]
    fn guarded_batched_sweep_passes() {
        // The `_guarded` call form names a guard, so the delegating entry
        // point is credited without threading its own parameter.
        let src = "pub fn refill(g: &Graph) {\n    engine.run_batched_guarded(g, seeds, &RunGuard::unlimited(), |dim, s| note(dim, s)).unwrap_or_default()\n}\n";
        assert!(live(src, true).is_empty());
    }

    #[test]
    fn unwrap_inside_scoped_closure_is_flagged() {
        let src = "pub fn sweep_guarded(g: &Graph, guard: &RunGuard) {\n    std::thread::scope(|s| {\n        s.spawn(|| g.lookup().unwrap());\n    });\n}\n";
        let out = live(src, true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, NO_PANICS);
    }

    #[test]
    fn non_node_loop_passes() {
        let src = "pub fn sum(xs: &[u64]) -> u64 {\n    let mut t = 0;\n    for x in xs {\n        t += x;\n    }\n    t\n}\n";
        assert!(live(src, true).is_empty());
    }

    #[test]
    fn seeded_unguarded_accept_loop_fails() {
        let src = "pub fn serve(listener: &TcpListener) {\n    while running() {\n        let (s, _) = listener.accept().unwrap_or_continue();\n        handle(s);\n    }\n}\n";
        let out = live(src, true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, GUARD_COVERAGE);
        // The same source is clean outside the guard scope.
        assert!(live(src, false).is_empty());
    }

    #[test]
    fn seeded_unguarded_frame_pump_fails() {
        let src = "pub fn pump(stream: &mut TcpStream) {\n    while let Ok(frame) = read_frame(stream) {\n        dispatch(frame);\n    }\n}\n";
        let out = live(src, true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, GUARD_COVERAGE);
    }

    #[test]
    fn cancellable_request_loop_passes() {
        let src = "pub fn serve(listener: &TcpListener, guard_cancel: &AtomicBool) {\n    while !guard_cancel.load(Ordering::Relaxed) {\n        let _ = listener.accept();\n    }\n}\n";
        assert!(live(src, true).is_empty());
    }

    #[test]
    fn seeded_display_gap_fails() {
        let src = "pub enum DemoError {\n    Lost,\n    Found,\n}\nimpl std::fmt::Display for DemoError {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n        match self {\n            DemoError::Lost => write!(f, \"lost\"),\n        }\n    }\n}\n";
        let out = live(src, false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, DISPLAY_MATCH);
        assert!(out[0].message.contains("Found"));
    }

    #[test]
    fn exhaustive_display_passes() {
        let src = "pub enum DemoError {\n    Lost,\n    Found { name: String },\n}\nimpl std::fmt::Display for DemoError {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n        match self {\n            DemoError::Lost => write!(f, \"lost\"),\n            DemoError::Found { name } => write!(f, \"found {name}\"),\n        }\n    }\n}\n";
        assert!(live(src, false).is_empty());
    }

    #[test]
    fn missing_display_impl_fails() {
        let out = live("pub enum GapError {\n    Oops,\n}\n", false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, DISPLAY_MATCH);
        assert!(out[0].message.contains("no `Display` impl"));
    }

    fn findings_at(path: &str, src: &str) -> Vec<Finding> {
        let fm = FileModel::parse(PathBuf::from(path), src.to_string());
        check_file(&fm, false)
            .into_iter()
            .filter(|x| !x.waived)
            .collect()
    }

    #[test]
    fn seeded_unsafe_outside_storage_fails() {
        let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let out = findings_at("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, UNSAFE_CONFINED);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn unsafe_inside_storage_is_allowed() {
        let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert!(findings_at("crates/graph/src/storage.rs", src).is_empty());
    }

    #[test]
    fn unsafe_code_attribute_ident_is_not_flagged() {
        let src = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(findings_at("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_comment_or_string_is_not_flagged() {
        let src = "// unsafe is discussed here\npub fn f() -> &'static str {\n    \"unsafe\"\n}\n";
        assert!(findings_at("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn non_error_enums_are_ignored() {
        let out = live(
            "pub enum Direction {\n    Forward,\n    Reverse,\n}\n",
            false,
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
