//! Canonical benchmark datasets: generation + index build + projection.

use comm_core::{ProjectedQuery, ProjectionIndex};
use comm_datasets::workload::{
    query_keywords, KeywordGroup, ParameterGrid, DBLP_GRID, DBLP_KEYWORD_GROUPS, IMDB_GRID,
    IMDB_KEYWORD_GROUPS,
};
use comm_datasets::{generate_dblp, generate_imdb, DblpConfig, GeneratedDataset, ImdbConfig};
use comm_graph::{NodeId, Weight};
use std::time::{Duration, Instant};

/// A generated dataset with its projection index, ready for queries.
pub struct Prepared {
    /// `"imdb"` or `"dblp"`.
    pub name: &'static str,
    /// The generated database + graph.
    pub dataset: GeneratedDataset,
    /// The parameter grid (Table II / IV).
    pub grid: &'static ParameterGrid,
    /// The keyword buckets (Table III / V).
    pub groups: &'static [KeywordGroup],
    /// The inverted indexes of Sec. VI, built at the grid's maximum Rmax
    /// over every benchmark keyword.
    pub index: ProjectionIndex,
    /// Wall-clock time to build the index.
    pub index_build: Duration,
    /// Wall-clock time to generate + materialize the dataset.
    pub generation: Duration,
}

/// The scale knob: `quick` shrinks datasets so the full harness runs in
/// well under a minute (used by tests); `full` is the canonical scale used
/// for EXPERIMENTS.md; `paper` is the real datasets' size (DBLP: 4.1M
/// tuples — generation ≈ 1 min; used by `repro --paper`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny datasets for smoke runs.
    Quick,
    /// The canonical benchmark scale.
    Full,
    /// The paper's full dataset scale.
    Paper,
}

/// The canonical IMDB-like configuration (see DESIGN.md's substitutions).
pub fn imdb_config(scale: Scale) -> ImdbConfig {
    match scale {
        Scale::Full => ImdbConfig::default(),
        Scale::Quick => {
            let mut c = ImdbConfig::default().scaled(0.4);
            c.avg_ratings_per_user = 25.0;
            c
        }
        // Tuple-relative KWF planting saturates movie titles at the full
        // MovieLens scale (see EXPERIMENTS.md), so paper-scale runs use
        // DBLP; this arm keeps the canonical IMDB if requested anyway.
        Scale::Paper => ImdbConfig::paper_scale(),
    }
}

/// The canonical DBLP-like configuration.
pub fn dblp_config(scale: Scale) -> DblpConfig {
    match scale {
        Scale::Full => {
            let mut c = DblpConfig::default().scaled(2.0);
            c.co_occurrence = 0.5;
            c
        }
        Scale::Quick => DblpConfig::default().scaled(0.3),
        Scale::Paper => DblpConfig::paper_scale(),
    }
}

impl Prepared {
    /// Generates the IMDB-like benchmark dataset and its index.
    pub fn imdb(scale: Scale) -> Prepared {
        let t0 = Instant::now();
        let dataset = generate_imdb(&imdb_config(scale));
        let generation = t0.elapsed();
        Prepared::finish("imdb", dataset, generation, &IMDB_GRID, IMDB_KEYWORD_GROUPS)
    }

    /// Generates the DBLP-like benchmark dataset and its index.
    pub fn dblp(scale: Scale) -> Prepared {
        let t0 = Instant::now();
        let dataset = generate_dblp(&dblp_config(scale));
        let generation = t0.elapsed();
        Prepared::finish("dblp", dataset, generation, &DBLP_GRID, DBLP_KEYWORD_GROUPS)
    }

    fn finish(
        name: &'static str,
        dataset: GeneratedDataset,
        generation: Duration,
        grid: &'static ParameterGrid,
        groups: &'static [KeywordGroup],
    ) -> Prepared {
        let t0 = Instant::now();
        let entries: Vec<(&str, &[NodeId])> = groups
            .iter()
            .flat_map(|g| {
                g.keywords
                    .iter()
                    .map(|&kw| (kw, dataset.graph.keyword_nodes(kw)))
            })
            .collect();
        let index = ProjectionIndex::build(
            &dataset.graph.graph,
            entries,
            Weight::new(*grid.rmax.last().expect("non-empty rmax grid")),
        );
        let index_build = t0.elapsed();
        Prepared {
            name,
            dataset,
            grid,
            groups,
            index,
            index_build,
            generation,
        }
    }

    /// The query keywords for a KWF bucket and keyword count.
    pub fn keywords(&self, kwf: f64, l: usize) -> Vec<&'static str> {
        query_keywords(self.groups, kwf, l)
    }

    /// Projects the query subgraph for a grid cell (Algorithm 6), exactly
    /// as Sec. VII does before running any algorithm.
    pub fn project(&self, kwf: f64, l: usize, rmax: f64) -> ProjectedQuery {
        let kws = self.keywords(kwf, l);
        self.index
            .project(&kws, Weight::new(rmax))
            .expect("benchmark keywords are always indexed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_imdb_prepares_and_projects() {
        let p = Prepared::imdb(Scale::Quick);
        assert!(p.dataset.graph.graph.node_count() > 1000);
        let (kwf, l, rmax, _) = p.grid.defaults;
        let pq = p.project(kwf, l, rmax);
        assert!(pq.projected.graph.node_count() > 0);
        assert!(pq.projected.graph.node_count() < p.dataset.graph.graph.node_count());
        assert_eq!(pq.spec.l(), l);
    }

    #[test]
    fn quick_dblp_prepares_and_projects() {
        let p = Prepared::dblp(Scale::Quick);
        let (kwf, l, rmax, _) = p.grid.defaults;
        let pq = p.project(kwf, l, rmax);
        assert!(pq.projected.graph.node_count() < p.dataset.graph.graph.node_count());
    }
}
