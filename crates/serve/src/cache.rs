//! Guarded caches: an LRU of [`ProjectionIndex`]es keyed by keyword set
//! and an exact-hit answer cache keyed by `(keywords, Rmax, k, cost)`.
//!
//! Both caches hold `Arc`s, so a hit never copies the cached structure and
//! an eviction never invalidates an in-flight reader. Insertion is
//! *guarded*: index construction runs under the request's [`RunGuard`],
//! and a trip mid-build returns an error **before** anything touches the
//! cache — a half-built `ProjectionIndex` can never become visible
//! (exercised by the cache-contract tests).
//!
//! The caches are deliberately small and exact. The bit-identical
//! contract — a cached answer must equal the uncached answer bit for bit —
//! holds structurally: cache hits replay the stored value of a previous
//! `Complete` run, and the engine is deterministic, so storing the value
//! *is* storing the recomputation.

use comm_core::{Community, ProjectionIndex};
use std::collections::HashMap;
use std::sync::Arc;

/// A tiny exact LRU: move-to-front over a `Vec`. With the small capacities
/// the daemon uses (a handful of indexes, a few hundred answers) the O(cap)
/// scan is cheaper than a linked-map and trivially correct.
pub struct Lru<K, V> {
    cap: usize,
    entries: Vec<(K, V)>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Clone, V: Clone> Lru<K, V> {
    /// An empty LRU holding at most `cap` entries (`cap ≥ 1`).
    pub fn new(cap: usize) -> Lru<K, V> {
        Lru {
            cap: cap.max(1),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(pos) => {
                let entry = self.entries.remove(pos);
                let value = entry.1.clone();
                self.entries.insert(0, entry);
                self.hits += 1;
                Some(value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, (key, value));
        self.entries.truncate(self.cap);
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` lookup counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Key of the projection-index cache: the *set* of keywords (sorted,
/// deduplicated, lowercased) plus the index radius bits. Requests that
/// differ only in keyword order or `k` share one index.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct IndexKey {
    /// Sorted, deduplicated, lowercased keywords.
    pub keywords: Vec<String>,
    /// The index radius as raw bits.
    pub radius_bits: u64,
}

impl IndexKey {
    /// Normalizes a request's keywords into a cache key.
    pub fn new(keywords: &[String], radius_bits: u64) -> IndexKey {
        let mut kws: Vec<String> = keywords.iter().map(|k| k.to_lowercase()).collect();
        kws.sort_unstable();
        kws.dedup();
        IndexKey {
            keywords: kws,
            radius_bits,
        }
    }
}

/// Key of the exact-hit answer cache. Keyword *order* matters here: cores
/// are position-wise (`c_i` holds keyword `k_i`), so reordering keywords
/// permutes every core.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AnswerKey {
    /// Lowercased keywords in request order.
    pub keywords: Vec<String>,
    /// `Rmax` as raw bits.
    pub rmax_bits: u64,
    /// The `k` of top-k.
    pub k: u32,
}

impl AnswerKey {
    /// Normalizes a request into an answer-cache key.
    pub fn new(keywords: &[String], rmax: f64, k: u32) -> AnswerKey {
        AnswerKey {
            keywords: keywords.iter().map(|k| k.to_lowercase()).collect(),
            rmax_bits: rmax.to_bits(),
            k,
        }
    }
}

/// A cached complete answer: the exact `Vec<Community>` of a prior
/// `Complete` run, shared by reference.
pub type CachedAnswer = Arc<Vec<Community>>;

/// A cached projection index, shared by reference.
pub type CachedIndex = Arc<ProjectionIndex>;

/// `HashMap`-free alias kept for readability at use sites.
pub type Vocabulary = HashMap<String, Vec<comm_graph::NodeId>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_moves_hits_to_front_and_evicts_lru() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        assert!(lru.is_empty());
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.get(&1), Some(10)); // refresh 1; 2 is now LRU
        lru.insert(3, 30); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.stats(), (3, 1));
    }

    #[test]
    fn lru_reinsert_refreshes_instead_of_duplicating() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(1, 11); // refresh + overwrite, no duplicate
        assert_eq!(lru.len(), 2);
        lru.insert(3, 30); // evicts 2, not 1
        assert_eq!(lru.get(&1), Some(11));
        assert_eq!(lru.get(&2), None);
    }

    #[test]
    fn index_key_normalizes_order_case_and_duplicates() {
        let a = IndexKey::new(&["Bob".into(), "alice".into(), "BOB".into()], 42);
        let b = IndexKey::new(&["alice".into(), "bob".into()], 42);
        assert_eq!(a, b);
        let c = IndexKey::new(&["alice".into(), "bob".into()], 43);
        assert_ne!(a, c);
    }

    #[test]
    fn answer_key_is_order_sensitive() {
        let ab = AnswerKey::new(&["a".into(), "b".into()], 5.0, 3);
        let ba = AnswerKey::new(&["b".into(), "a".into()], 5.0, 3);
        assert_ne!(ab, ba, "cores are position-wise; order is significant");
        let ab2 = AnswerKey::new(&["A".into(), "B".into()], 5.0, 3);
        assert_eq!(ab, ab2, "case is not significant");
    }
}
