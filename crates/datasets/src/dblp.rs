//! Synthetic DBLP-like dataset.
//!
//! The paper evaluates on DBLP 2008: `Author(Aid, Name)`,
//! `Paper(Pid, Title, Other)`, `Write(Aid, Pid, Remark)`,
//! `Cite(Pid1, Pid2)` with 597K / 986K / 2,426K / 112K tuples — on average
//! 2.46 authors per paper, 4.06 papers per author, and ~0.11 citations per
//! paper. We cannot ship the DBLP dump, so this generator reproduces the
//! *shape* that drives the algorithms: the same 4-table schema, a
//! preferential-attachment author assignment (long-tailed per-author paper
//! counts), citations between random paper pairs at the same ratio, and
//! benchmark keywords planted at the exact KWFs of Table III. The default
//! scale targets ≈40K tuples so the whole Fig. 11 sweep runs on a laptop;
//! `scale` ramps it toward the paper's full size.

use crate::keywords::{filler_title, plant_keywords, PlantSpec};
use crate::sampling::WeightedSampler;
use crate::workload::{topical_plant_specs, DBLP_KEYWORD_GROUPS};
use comm_rdb::{
    ColumnDef, ColumnType, Database, DatabaseGraph, EdgeMode, TableSchema, Value, WeightScheme,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for the DBLP-like generator.
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// Number of authors (paper full scale: 597K).
    pub authors: usize,
    /// Number of papers (paper full scale: 986K).
    pub papers: usize,
    /// Mean authors per paper (paper: 2.46).
    pub avg_authors_per_paper: f64,
    /// Citations as a fraction of papers (paper: 112K/986K ≈ 0.114).
    pub cite_ratio: f64,
    /// RNG seed — generation is fully deterministic per seed.
    pub seed: u64,
    /// Number of topic clusters (research sub-communities).
    pub topics: usize,
    /// Fraction of each topical keyword's plantings (and of co-author /
    /// citation choices) confined to the topic cluster.
    pub topic_bias: f64,
    /// Fraction of each topical keyword's plantings stacked onto titles
    /// already hosting a same-topic keyword (title co-occurrence).
    pub co_occurrence: f64,
    /// Keywords to plant (defaults to every Table III keyword, topical).
    pub plant: Vec<PlantSpec>,
}

impl Default for DblpConfig {
    fn default() -> DblpConfig {
        DblpConfig {
            authors: 6_000,
            papers: 10_000,
            avg_authors_per_paper: 2.46,
            cite_ratio: 0.114,
            seed: 0xDB1_2008,
            topics: 12,
            topic_bias: 0.85,
            co_occurrence: 0.4,
            plant: topical_plant_specs(DBLP_KEYWORD_GROUPS),
        }
    }
}

impl DblpConfig {
    /// Scales tuple counts by `factor` (≥ full paper size at ≈ 100).
    pub fn scaled(mut self, factor: f64) -> DblpConfig {
        self.authors = ((self.authors as f64) * factor).round() as usize;
        self.papers = ((self.papers as f64) * factor).round() as usize;
        self
    }

    /// The large I/O-benchmark scale: ≈1M tuples, ≈2.6M directed edges —
    /// big enough that a CGPH v2 container clears the page-cache noise
    /// floor, small enough to regenerate in seconds. This is the setting
    /// `comm-bench`'s `io_bench` binary uses with `--large` for the
    /// `BENCH_io.json` cold-build vs v1-load vs v2-mmap comparison.
    pub fn large_scale() -> DblpConfig {
        let mut c = DblpConfig {
            authors: 150_000,
            papers: 250_000,
            ..DblpConfig::default()
        };
        c.topics = 40;
        c
    }

    /// The paper's full DBLP 2008 scale: 597K authors, 986K papers
    /// (≈ 4.1M tuples, ≈ 10.2M directed edges). Generates in ~20 s.
    pub fn paper_scale() -> DblpConfig {
        let mut c = DblpConfig {
            authors: 597_000,
            papers: 986_000,
            ..DblpConfig::default()
        };
        // More topics at full scale: a research field is not 12 clusters.
        c.topics = 120;
        c
    }
}

/// A generated dataset: the relational database and its database graph.
pub struct GeneratedDataset {
    /// Human-readable dataset name.
    pub name: &'static str,
    /// The relational database.
    pub db: Database,
    /// The materialized graph with the paper's `log2(1+N_in)` weights.
    pub graph: DatabaseGraph,
}

/// Generates the DBLP-like database and materializes its graph.
pub fn generate_dblp(config: &DblpConfig) -> GeneratedDataset {
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Every author belongs to one research topic; papers inherit the first
    // author's topic, and co-authors / citations stay in-topic with
    // probability `topic_bias` — the community structure real
    // co-authorship graphs exhibit.
    let topics = config.topics.max(1);
    let author_topic: Vec<usize> = (0..config.authors).map(|a| a % topics).collect();

    // Write tuples: per paper, 1 + Poisson-ish extra authors, authors
    // chosen preferentially (O(log n) Fenwick sampling, so paper-full-scale
    // generation stays tractable) so per-author paper counts are
    // long-tailed.
    let mut author_sampler = WeightedSampler::new(config.authors);
    let mut writes: Vec<(usize, usize)> = Vec::new(); // (author, paper)
    let mut paper_topic: Vec<usize> = Vec::with_capacity(config.papers);
    let extra_mean = (config.avg_authors_per_paper - 1.0).max(0.0);
    for paper in 0..config.papers {
        let extra = sample_poisson(&mut rng, extra_mean);
        let count = (1 + extra).min(config.authors);
        let mut chosen: Vec<usize> = Vec::with_capacity(count);
        let first = author_sampler.sample(&mut rng);
        let topic = author_topic[first];
        chosen.push(first);
        author_sampler.add(first, 1);
        while chosen.len() < count {
            let want_in_topic = rng.gen::<f64>() < config.topic_bias;
            // Rejection-sample a preferential pick until the topic matches
            // (bounded: fall back to any author after a few tries).
            let mut a = author_sampler.sample(&mut rng);
            if want_in_topic {
                for _ in 0..4 * topics {
                    if author_topic[a] == topic {
                        break;
                    }
                    a = author_sampler.sample(&mut rng);
                }
            }
            if !chosen.contains(&a) {
                chosen.push(a);
                author_sampler.add(a, 1);
            }
        }
        paper_topic.push(topic);
        for a in chosen {
            writes.push((a, paper));
        }
    }

    // Citations: ordered paper pairs, no self-citations, in-topic with
    // probability `topic_bias`.
    let cite_count = ((config.papers as f64) * config.cite_ratio).round() as usize;
    let mut cites: Vec<(usize, usize)> = Vec::with_capacity(cite_count);
    while cites.len() < cite_count && config.papers > 1 {
        let a = rng.gen_range(0..config.papers);
        let b = rng.gen_range(0..config.papers);
        if a == b {
            continue;
        }
        if rng.gen::<f64>() < config.topic_bias && paper_topic[a] != paper_topic[b] {
            continue;
        }
        cites.push((a, b));
    }

    // Titles with planted keywords. KWF is relative to the total tuple
    // count, exactly as in Table II; topical keywords concentrate in their
    // cluster's papers.
    let total_tuples = config.authors + config.papers + writes.len() + cites.len();
    let mut titles: Vec<String> = (0..config.papers).map(|_| filler_title(&mut rng)).collect();
    plant_keywords(
        &mut titles,
        &paper_topic,
        config.topic_bias,
        config.co_occurrence,
        total_tuples,
        &config.plant,
        config.seed,
    );

    // Assemble the relational database.
    let mut db = Database::new();
    let author_t = db.create_table(
        TableSchema::new(
            "Author",
            vec![
                ColumnDef::new("Aid", ColumnType::Int),
                ColumnDef::full_text("Name"),
            ],
        )
        .with_primary_key("Aid"),
    );
    let paper_t = db.create_table(
        TableSchema::new(
            "Paper",
            vec![
                ColumnDef::new("Pid", ColumnType::Int),
                ColumnDef::full_text("Title"),
                ColumnDef::new("Other", ColumnType::Text),
            ],
        )
        .with_primary_key("Pid"),
    );
    let write_t = db.create_table(
        TableSchema::new(
            "Write",
            vec![
                ColumnDef::new("Aid", ColumnType::Int),
                ColumnDef::new("Pid", ColumnType::Int),
                ColumnDef::new("Remark", ColumnType::Text),
            ],
        )
        .with_foreign_key("Aid", author_t)
        .with_foreign_key("Pid", paper_t),
    );
    let cite_t = db.create_table(
        TableSchema::new(
            "Cite",
            vec![
                ColumnDef::new("Pid1", ColumnType::Int),
                ColumnDef::new("Pid2", ColumnType::Int),
            ],
        )
        .with_foreign_key("Pid1", paper_t)
        .with_foreign_key("Pid2", paper_t),
    );

    for a in 0..config.authors {
        db.insert(
            author_t,
            &[
                Value::Int(a as i64),
                Value::Text(format!("author{a} surname{}", a % 997)),
            ],
        )
        // xtask-allow: no_panics — the generator emits schema-valid rows by construction
        .expect("author insert");
    }
    for (p, title) in titles.into_iter().enumerate() {
        db.insert(
            paper_t,
            &[Value::Int(p as i64), Value::Text(title), Value::Null],
        )
        // xtask-allow: no_panics — the generator emits schema-valid rows by construction
        .expect("paper insert");
    }
    for &(a, p) in &writes {
        db.insert(
            write_t,
            &[Value::Int(a as i64), Value::Int(p as i64), Value::Null],
        )
        // xtask-allow: no_panics — the generator emits schema-valid rows by construction
        .expect("write insert");
    }
    for &(a, b) in &cites {
        db.insert(cite_t, &[Value::Int(a as i64), Value::Int(b as i64)])
            // xtask-allow: no_panics — the generator emits schema-valid rows by construction
            .expect("cite insert");
    }

    let graph = DatabaseGraph::materialize(&db, WeightScheme::LogInDegree, EdgeMode::BiDirected);
    GeneratedDataset {
        name: "dblp-synthetic",
        db,
        graph,
    }
}

/// Small-mean Poisson sampler (Knuth's method; mean ≤ ~10 in practice).
fn sample_poisson(rng: &mut SmallRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
        if k > 64 {
            return k; // numeric safety net
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm_rdb::TableId;

    fn small() -> DblpConfig {
        DblpConfig::default().scaled(0.1)
    }

    #[test]
    fn large_scale_sits_between_default_and_paper() {
        let d = DblpConfig::default();
        let l = DblpConfig::large_scale();
        let p = DblpConfig::paper_scale();
        assert!(d.authors < l.authors && l.authors < p.authors);
        assert!(d.papers < l.papers && l.papers < p.papers);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_dblp(&small());
        let b = generate_dblp(&small());
        assert_eq!(a.graph.graph.node_count(), b.graph.graph.node_count());
        assert_eq!(a.graph.graph.edge_count(), b.graph.graph.edge_count());
        assert_eq!(
            a.graph.keyword_nodes("database"),
            b.graph.keyword_nodes("database")
        );
    }

    #[test]
    fn tuple_and_edge_counts_consistent() {
        let d = generate_dblp(&small());
        assert_eq!(d.graph.graph.node_count(), d.db.tuple_count());
        // Bi-directed: every FK reference contributes exactly two edges.
        let writes = d.db.table(TableId(2)).len();
        let cites = d.db.table(TableId(3)).len();
        assert_eq!(d.graph.graph.edge_count(), 2 * (2 * writes + 2 * cites));
    }

    #[test]
    fn mean_authors_per_paper_close_to_target() {
        let d = generate_dblp(&DblpConfig::default().scaled(0.3));
        let papers = d.db.table(TableId(1)).len() as f64;
        let writes = d.db.table(TableId(2)).len() as f64;
        let mean = writes / papers;
        assert!(
            (mean - 2.46).abs() < 0.25,
            "authors/paper = {mean}, want ≈ 2.46"
        );
    }

    #[test]
    fn author_paper_counts_are_long_tailed() {
        let d = generate_dblp(&small());
        // Preferential attachment ⇒ max load far above the mean.
        let authors = d.db.table(TableId(0)).len();
        let mut load = vec![0usize; authors];
        let writes = d.db.table(TableId(2));
        for row in writes.rows() {
            let a = writes.cell(row, comm_rdb::ColumnId(0)).as_int().unwrap() as usize;
            load[a] += 1;
        }
        let max = *load.iter().max().unwrap();
        let mean = load.iter().sum::<usize>() as f64 / authors as f64;
        assert!(max as f64 > mean * 4.0, "max {max}, mean {mean}");
    }

    #[test]
    fn planted_kwf_is_exact() {
        let d = generate_dblp(&small());
        let total = d.db.tuple_count();
        for group in DBLP_KEYWORD_GROUPS {
            for kw in group.keywords {
                let nodes = d.graph.keyword_nodes(kw).len();
                let want = (group.kwf * total as f64).round() as usize;
                assert_eq!(nodes, want, "kwf of {kw}");
            }
        }
    }

    #[test]
    fn edge_weights_are_log_indegree() {
        let d = generate_dblp(&DblpConfig::default().scaled(0.02));
        for (_, v, w) in d.graph.graph.edges().take(500) {
            let expect = (1.0 + d.graph.graph.in_degree(v) as f64).log2();
            assert!((w.get() - expect).abs() < 1e-12);
        }
    }
}
