//! The daemon: accept loop, per-connection request loop, idempotent reply
//! replay, and the degradation ladder in action.
//!
//! Every request terminates in exactly one of four ways — the chaos
//! harness asserts there is no fifth:
//!
//! 1. `Complete` — the full answer;
//! 2. `Interrupted` — a certified exact-prefix answer (guard tripped:
//!    deadline, budget, shutdown, or injected fault);
//! 3. `Overloaded` — admission control shed the request *without
//!    executing it*, with a retry-after hint;
//! 4. `Error` — the request was invalid (unknown keyword, bad radius,
//!    malformed frame).
//!
//! **Idempotent replay.** Query replies are recorded by request id before
//! they are sent. A retry of an already-executed id replays the recorded
//! bytes — bit-identical — instead of re-executing; a retry of a *shed* id
//! re-attempts admission (shed requests never executed, so there is
//! nothing to replay). This makes client retries safe even when the
//! connection dies between execution and reply.

use crate::admission::{Admission, AdmissionConfig, AdmissionGate};
use crate::chaos::{ChaosConfig, ChaosState};
use crate::engine::{summarize, QueryEngine};
use crate::protocol::{
    decode_request, encode_response, write_frame, Priority, ProtocolError, Request, Response,
};
use comm_core::QueryError;
use comm_graph::{EnginePool, Outcome};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (exposed via
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Admission gate + degradation ladder settings.
    pub admission: AdmissionConfig,
    /// Per-connection read/write timeout. A peer that stalls mid-frame
    /// longer than this is disconnected (slow-client defense).
    pub io_timeout: Duration,
    /// Completed replies remembered for idempotent replay.
    pub dedupe_capacity: usize,
    /// Fault-injection schedule (off by default).
    pub chaos: ChaosConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            admission: AdmissionConfig::default(),
            io_timeout: Duration::from_secs(2),
            dedupe_capacity: 1024,
            chaos: ChaosConfig::default(),
        }
    }
}

/// Request-outcome counters (everything else is derived from the gate,
/// caches, chaos state, and engine pool at snapshot time).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    protocol_errors: AtomicU64,
    dedupe_replays: AtomicU64,
    /// Connections dropped for stalling mid-frame (slow-client defense).
    slow_disconnects: AtomicU64,
}

/// What a recorded request id maps to.
enum DedupeEntry {
    /// Executing now; retries wait for the recorded reply.
    Pending,
    /// Reply bytes as sent (or as they would have been sent, if chaos
    /// dropped the connection first).
    Done(Arc<Vec<u8>>),
}

#[derive(Default)]
struct DedupeState {
    entries: HashMap<u64, DedupeEntry>,
    /// Completion order of `Done` ids, for bounded eviction.
    done_order: VecDeque<u64>,
}

/// The idempotency table: request id → recorded reply.
struct DedupeMap {
    state: Mutex<DedupeState>,
    completed: Condvar,
    capacity: usize,
}

/// How a query request should proceed after consulting the table.
enum Begin {
    /// First sighting: execute, then `complete` or `abort`.
    Execute,
    /// Already executed: replay these bytes verbatim.
    Replay(Arc<Vec<u8>>),
}

impl DedupeMap {
    fn new(capacity: usize) -> DedupeMap {
        DedupeMap {
            state: Mutex::new(DedupeState::default()),
            completed: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DedupeState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Claims `id` for execution, or returns the recorded reply. A
    /// concurrent in-flight execution of the same id is awaited (bounded);
    /// if it neither completes nor aborts in time, the caller re-executes
    /// — safe because the engine is deterministic and side-effect free.
    fn begin(&self, id: u64, wait_cap: Duration) -> Begin {
        let mut st = self.lock();
        let mut waited = Duration::ZERO;
        loop {
            match st.entries.get(&id) {
                None => {
                    st.entries.insert(id, DedupeEntry::Pending);
                    return Begin::Execute;
                }
                Some(DedupeEntry::Done(bytes)) => return Begin::Replay(Arc::clone(bytes)),
                Some(DedupeEntry::Pending) => {
                    if waited >= wait_cap {
                        return Begin::Execute;
                    }
                    let step = Duration::from_millis(20).min(wait_cap - waited);
                    st = match self.completed.wait_timeout(st, step) {
                        Ok((g, _)) => g,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                    waited += step;
                }
            }
        }
    }

    /// Records the reply for `id` and evicts the oldest recorded replies
    /// beyond capacity.
    fn complete(&self, id: u64, bytes: Arc<Vec<u8>>) {
        let mut st = self.lock();
        st.entries.insert(id, DedupeEntry::Done(bytes));
        st.done_order.push_back(id);
        while st.done_order.len() > self.capacity {
            if let Some(old) = st.done_order.pop_front() {
                // Only evict if it still maps to Done (it may have been
                // re-recorded and thus appear later in the order too).
                if let Some(DedupeEntry::Done(_)) = st.entries.get(&old) {
                    if !st.done_order.contains(&old) {
                        st.entries.remove(&old);
                    }
                }
            }
        }
        drop(st);
        self.completed.notify_all();
    }

    /// Forgets a claimed-but-not-executed id (shed path), so a retry
    /// re-attempts admission instead of replaying `Overloaded` forever.
    fn abort(&self, id: u64) {
        let mut st = self.lock();
        if let Some(DedupeEntry::Pending) = st.entries.get(&id) {
            st.entries.remove(&id);
        }
        drop(st);
        self.completed.notify_all();
    }
}

/// Everything the connection handlers share.
struct Shared {
    engine: Arc<QueryEngine>,
    gate: AdmissionGate,
    dedupe: DedupeMap,
    chaos: ChaosState,
    counters: Counters,
    guard_cancel: Arc<AtomicBool>,
    io_timeout: Duration,
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`shutdown`](ServerHandle::shutdown).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of every server counter, as `(name, value)` pairs — the
    /// same payload a `Stats` request returns.
    pub fn counters(&self) -> Vec<(String, u64)> {
        snapshot(&self.shared)
    }

    /// Whether the daemon has been told to stop — locally via
    /// [`shutdown`](ServerHandle::shutdown) or by a remote
    /// [`Request::Shutdown`](crate::protocol::Request::Shutdown). The accept
    /// loop exits shortly after this flips; a supervising process can poll
    /// it instead of probing the socket.
    pub fn is_stopping(&self) -> bool {
        self.shared.guard_cancel.load(Ordering::Relaxed)
    }

    /// Requests shutdown (cancels in-flight guards, stops accepting) and
    /// joins the accept loop and every connection handler.
    pub fn shutdown(mut self) {
        self.shared.guard_cancel.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Spawns the daemon. `guard_cancel` semantics: one shared flag cancels
/// the accept loop, every per-connection read loop, and — through the
/// admission gate — every in-flight query's `RunGuard`.
pub fn spawn(engine: Arc<QueryEngine>, cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let guard_cancel = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        engine,
        gate: AdmissionGate::new(cfg.admission, Arc::clone(&guard_cancel)),
        dedupe: DedupeMap::new(cfg.dedupe_capacity),
        chaos: ChaosState::new(cfg.chaos),
        counters: Counters::default(),
        guard_cancel,
        io_timeout: cfg.io_timeout,
    });
    let shared2 = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("comm-serve-accept".to_string())
        .spawn(move || accept_loop(listener, shared2))?;
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

/// Polling accept loop: non-blocking accepts so the shared cancel flag is
/// honored within one poll interval even with no inbound traffic.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.guard_cancel.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let shared2 = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("comm-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared2));
                match spawned {
                    Ok(h) => handlers.push(h),
                    Err(_) => {
                        // Thread exhaustion: shed by dropping the
                        // connection; the client's retry backs off.
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Reads one request frame, polling the shared cancel flag while the
/// connection is idle. `Ok(None)` means clean end (EOF between frames or
/// shutdown). A stall *mid-frame* longer than the io timeout is an error:
/// that is the slow-client defense.
fn read_request_frame(
    stream: &mut TcpStream,
    shared: &Shared,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        if shared.guard_cancel.load(Ordering::Relaxed) && filled == 0 {
            return Ok(None);
        }
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None); // clean EOF between frames
                }
                return Err(ProtocolError::Io(io::ErrorKind::UnexpectedEof.into()));
            }
            Ok(n) => filled += n,
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                // Idle between frames: keep polling for shutdown.
                continue;
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > crate::protocol::MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let len = usize::try_from(len).map_err(|_| ProtocolError::FrameTooLarge(u32::MAX))?;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// The per-connection request loop.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.io_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_request_frame(&mut stream, shared) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(ProtocolError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Mid-frame stall past the io timeout: the slow-client
                // defense, not a malformed frame.
                shared
                    .counters
                    .slow_disconnects
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(_) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                // The stream is still framed correctly (the frame parsed,
                // its payload didn't), so reply and keep the connection.
                let resp = Response::Error {
                    id: 0,
                    message: "malformed request payload".to_string(),
                };
                if send(&mut stream, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::Ping { id } => {
                if send(&mut stream, &Response::Pong { id }).is_err() {
                    return;
                }
            }
            Request::Stats { id } => {
                let resp = Response::Stats {
                    id,
                    counters: snapshot(shared),
                };
                if send(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Request::Shutdown { id } => {
                let _ = send(&mut stream, &Response::ShuttingDown { id });
                shared.guard_cancel.store(true, Ordering::Relaxed);
                return;
            }
            Request::Query {
                id,
                priority,
                keywords,
                rmax,
                k,
            } => {
                if !handle_query(&mut stream, shared, id, priority, &keywords, rmax, k) {
                    return;
                }
            }
        }
    }
}

/// Executes (or replays) one query. Returns `false` when the connection
/// should close (send failure or injected disconnect).
#[allow(clippy::too_many_arguments)]
fn handle_query(
    stream: &mut TcpStream,
    shared: &Shared,
    id: u64,
    priority: Priority,
    keywords: &[String],
    rmax: f64,
    k: u32,
) -> bool {
    // Idempotency first: a retry of an executed id replays the recorded
    // bytes without touching admission control or the engine.
    let plan = match shared.dedupe.begin(id, shared.io_timeout) {
        Begin::Replay(bytes) => {
            shared
                .counters
                .dedupe_replays
                .fetch_add(1, Ordering::Relaxed);
            return write_frame(stream, &bytes).is_ok();
        }
        Begin::Execute => shared.chaos.plan_query(),
    };
    if plan.poison_pool {
        EnginePool::global().poison_shard_for_chaos(shared.engine.graph().node_count());
    }
    let response = match shared.gate.admit() {
        Admission::Shed { retry_after } => {
            // Shed without executing: forget the claim so a retry
            // re-attempts admission rather than replaying `Overloaded`.
            shared.dedupe.abort(id);
            let retry_after_ms = u32::try_from(retry_after.as_millis().min(u128::from(u32::MAX)))
                .unwrap_or(u32::MAX);
            let resp = Response::Overloaded { id, retry_after_ms };
            return send_with_chaos(
                stream,
                shared,
                &resp,
                plan.delay_reply,
                plan.drop_reply,
                None,
            );
        }
        Admission::Admitted(permit) => {
            let mut guard = shared.gate.guard_for(priority);
            if let Some(n) = plan.trip_after {
                guard = guard.with_trip_after(n);
            }
            let result = shared.engine.answer(keywords, rmax, k, &guard);
            drop(permit);
            match result {
                Ok(Outcome::Complete(communities)) => {
                    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                    Response::Complete {
                        id,
                        communities: communities.iter().map(summarize).collect(),
                    }
                }
                Ok(Outcome::Interrupted { reason, partial }) => {
                    shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    Response::Interrupted {
                        id,
                        reason: reason.to_string(),
                        communities: partial.iter().map(summarize).collect(),
                    }
                }
                Err(QueryError::Interrupted(reason)) => {
                    // Tripped during projection/index build: no partial
                    // result exists; the certified exact prefix is empty.
                    shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    Response::Interrupted {
                        id,
                        reason: reason.to_string(),
                        communities: Vec::new(),
                    }
                }
                Err(e) => {
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    Response::Error {
                        id,
                        message: e.to_string(),
                    }
                }
            }
        }
    };
    send_with_chaos(
        stream,
        shared,
        &response,
        plan.delay_reply,
        plan.drop_reply,
        Some(id),
    )
}

/// Encodes and sends a reply, applying injected delay/disconnect. When
/// `record_id` is set, the bytes are recorded for idempotent replay
/// *before* any injected disconnect — that ordering is what makes a
/// mid-request disconnect recoverable by retry.
fn send_with_chaos(
    stream: &mut TcpStream,
    shared: &Shared,
    resp: &Response,
    delay: Option<Duration>,
    drop_reply: bool,
    record_id: Option<u64>,
) -> bool {
    let bytes = match encode_response(resp) {
        Ok(b) => Arc::new(b),
        Err(_) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return false;
        }
    };
    if let Some(id) = record_id {
        shared.dedupe.complete(id, Arc::clone(&bytes));
    }
    if let Some(d) = delay {
        std::thread::sleep(d);
    }
    if drop_reply {
        // Injected mid-request disconnect: the reply is recorded but
        // never sent; the client's retry replays it.
        return false;
    }
    write_frame(stream, &bytes).is_ok()
}

fn send(stream: &mut TcpStream, resp: &Response) -> Result<(), ProtocolError> {
    let bytes = encode_response(resp)?;
    write_frame(stream, &bytes)
}

/// Assembles the full counter snapshot. Touching the pool here also
/// lazily recovers any shard a chaos panic poisoned since the last look.
fn snapshot(shared: &Shared) -> Vec<(String, u64)> {
    let c = &shared.counters;
    let (admitted, shed) = shared.gate.stats();
    let (ih, im, ah, am) = shared.engine.cache_stats();
    let (index_entries, answer_entries) = shared.engine.cache_sizes();
    let (chaos_disc, chaos_delay, chaos_poison) = shared.chaos.stats();
    let pool = EnginePool::global();
    let pooled = pool.pooled_engines();
    let mut out = vec![
        (
            "connections".to_string(),
            c.connections.load(Ordering::Relaxed),
        ),
        ("requests".to_string(), c.requests.load(Ordering::Relaxed)),
        ("completed".to_string(), c.completed.load(Ordering::Relaxed)),
        ("degraded".to_string(), c.degraded.load(Ordering::Relaxed)),
        ("rejected".to_string(), c.rejected.load(Ordering::Relaxed)),
        (
            "protocol_errors".to_string(),
            c.protocol_errors.load(Ordering::Relaxed),
        ),
        (
            "dedupe_replays".to_string(),
            c.dedupe_replays.load(Ordering::Relaxed),
        ),
        (
            "slow_client_disconnects".to_string(),
            c.slow_disconnects.load(Ordering::Relaxed),
        ),
        ("admitted".to_string(), admitted),
        ("shed".to_string(), shed),
        ("index_cache_hits".to_string(), ih),
        ("index_cache_misses".to_string(), im),
        ("answer_cache_hits".to_string(), ah),
        ("answer_cache_misses".to_string(), am),
        ("chaos_disconnects".to_string(), chaos_disc),
        ("chaos_delays".to_string(), chaos_delay),
        ("chaos_poisons".to_string(), chaos_poison),
    ];
    for (name, value) in [
        ("index_cache_entries", index_entries),
        ("answer_cache_entries", answer_entries),
        ("pooled_engines", pooled),
    ] {
        out.push((name.to_string(), u64::try_from(value).unwrap_or(u64::MAX)));
    }
    out.push((
        "pool_poison_recoveries".to_string(),
        u64::try_from(pool.poison_recoveries()).unwrap_or(u64::MAX),
    ));
    out
}

/// Looks up one counter in a snapshot (helper for tests and the CLI).
pub fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}
