//! Total-ordered, non-negative edge weights.
//!
//! The paper's weight function `w_e((u,v)) = log2(1 + N_in(v))` produces
//! fractional weights, so weights are `f64` under the hood; [`Weight`] wraps
//! them with a *total* order (`f64::total_cmp`) so they can key heaps and be
//! compared exactly in tie-breaking rules.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A non-negative, totally ordered path/edge weight.
///
/// `Weight` is `Copy` and 8 bytes; `Weight::INFINITY` marks unreachable
/// distances. Constructing a NaN or negative weight is a caller bug and is
/// rejected by [`Weight::new`]. `repr(transparent)` so CSR weight arrays
/// can be viewed zero-copy inside a mapped container file (see
/// [`crate::storage`]); on-disk weights are re-validated at load.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct Weight(f64);

impl Weight {
    /// The zero weight (virtual edges in the paper's Algorithms 2/4/6).
    pub const ZERO: Weight = Weight(0.0);
    /// Unreachable marker.
    pub const INFINITY: Weight = Weight(f64::INFINITY);

    /// Creates a weight, panicking on NaN or negative input.
    ///
    /// Shortest-path algorithms require non-negative weights; a NaN would
    /// silently corrupt heap ordering, so both are rejected eagerly.
    #[inline]
    pub fn new(w: f64) -> Weight {
        Weight::try_new(w)
            // xtask-allow: no_panics — NaN/negative weights are caller bugs; the fallible path is try_new
            .unwrap_or_else(|| panic!("edge weights must be non-negative and not NaN, got {w}"))
    }

    /// Creates a weight, returning `None` on NaN or negative input instead
    /// of panicking — the validation hook behind the fallible `try_*`
    /// query APIs.
    #[inline]
    pub fn try_new(w: f64) -> Option<Weight> {
        if w >= 0.0 {
            Some(Weight(w))
        } else {
            None
        }
    }

    /// The raw `f64` value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Whether this weight is finite (i.e. represents a reachable distance).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

/// Narrows a `usize` index to `u32`, returning `None` when it does not fit.
///
/// Node ids, CSR offsets, and row ids are `u32` by design (flat-vector
/// indexing at DBLP scale); every `usize → u32` narrowing in the workspace
/// funnels through here or [`index_to_u32`] so the truncation check lives in
/// exactly one audited place (enforced by `cargo xtask lint`,
/// rule `narrowing_cast`).
#[inline]
pub fn try_index_to_u32(i: usize) -> Option<u32> {
    u32::try_from(i).ok()
}

/// Narrows a `usize` index to `u32`, panicking when it does not fit.
///
/// Use this at call sites whose surrounding structure already bounds the
/// index (e.g. a `Vec` that is grown one `u32` id at a time); prefer
/// [`try_index_to_u32`] where an error can be returned.
#[inline]
pub fn index_to_u32(i: usize) -> u32 {
    // xtask-allow: no_panics — the single audited usize→u32 chokepoint; >4G ids is unsupported
    try_index_to_u32(i).unwrap_or_else(|| panic!("index {i} exceeds the u32 id space"))
}

/// Converts a `u64` on-disk field to `usize`, returning `None` when it does
/// not fit the host (possible on 32-bit targets).
#[inline]
pub fn try_u64_to_usize(x: u64) -> Option<usize> {
    usize::try_from(x).ok()
}

impl From<u32> for Weight {
    #[inline]
    fn from(w: u32) -> Weight {
        Weight(f64::from(w))
    }
}

impl Eq for Weight {}

impl PartialOrd for Weight {
    #[inline]
    fn partial_cmp(&self, other: &Weight) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weight {
    #[inline]
    fn cmp(&self, other: &Weight) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Weight {
    type Output = Weight;
    #[inline]
    fn add(self, rhs: Weight) -> Weight {
        Weight(self.0 + rhs.0)
    }
}

impl AddAssign for Weight {
    #[inline]
    fn add_assign(&mut self, rhs: Weight) {
        self.0 += rhs.0;
    }
}

impl Sum for Weight {
    fn sum<I: Iterator<Item = Weight>>(iter: I) -> Weight {
        iter.fold(Weight::ZERO, Add::add)
    }
}

impl fmt::Debug for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        assert!(Weight::ZERO < Weight::new(1.0));
        assert!(Weight::new(1.0) < Weight::INFINITY);
        assert_eq!(Weight::new(2.5), Weight::new(2.5));
    }

    #[test]
    fn addition_saturates_at_infinity() {
        let w = Weight::INFINITY + Weight::new(3.0);
        assert!(!w.is_finite());
        assert_eq!(w, Weight::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = Weight::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_rejected() {
        let _ = Weight::new(f64::NAN);
    }

    #[test]
    fn try_new_rejects_without_panicking() {
        assert_eq!(Weight::try_new(2.5), Some(Weight::new(2.5)));
        assert_eq!(Weight::try_new(0.0), Some(Weight::ZERO));
        assert_eq!(Weight::try_new(f64::INFINITY), Some(Weight::INFINITY));
        assert_eq!(Weight::try_new(-1.0), None);
        assert_eq!(Weight::try_new(f64::NAN), None);
    }

    #[test]
    fn sum_of_weights() {
        let total: Weight = [1u32, 2, 3].into_iter().map(Weight::from).sum();
        assert_eq!(total, Weight::new(6.0));
    }

    #[test]
    fn from_u32() {
        assert_eq!(Weight::from(7u32), Weight::new(7.0));
    }

    #[test]
    fn checked_index_narrowing() {
        assert_eq!(try_index_to_u32(0), Some(0));
        assert_eq!(try_index_to_u32(u32::MAX as usize), Some(u32::MAX));
        assert_eq!(try_index_to_u32(u32::MAX as usize + 1), None);
        assert_eq!(index_to_u32(41), 41);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 id space")]
    fn unchecked_index_narrowing_panics() {
        let _ = index_to_u32(u32::MAX as usize + 1);
    }

    #[test]
    fn checked_u64_widening() {
        assert_eq!(try_u64_to_usize(12), Some(12));
        assert_eq!(
            try_u64_to_usize(u64::from(u32::MAX)),
            Some(u32::MAX as usize)
        );
    }
}
