//! A bucket queue over quantized distances with an exact tie-break path.
//!
//! # Why this is bit-identical to the binary heap
//!
//! The heap kernel pops `Reverse<(Weight, NodeId)>` entries, so with lazy
//! deletion it settles nodes in globally sorted `(dist, node)` order —
//! `Weight`'s `total_cmp` order on distances, node id as the tie-break.
//! [`BucketQueue`] reproduces exactly that order, not merely some valid
//! Dijkstra order:
//!
//! * every entry is keyed by `bucket_of(d) = ⌊d · delta_inv⌋`, which is
//!   monotone in `d` (multiplication by a positive finite constant and
//!   `floor` are both monotone under IEEE-754 round-to-nearest), so equal
//!   distances always share a bucket and a smaller distance never lands in
//!   a later bucket;
//! * the queue drains bucket `base` through a **mini binary heap** holding
//!   that bucket's entries, popping them in exact `(dist, node)` order;
//! * Dijkstra's invariant (no relaxation produces a distance below the
//!   distance currently being settled) means new pushes land in bucket
//!   `≥ base`; pushes into bucket `base` itself (zero-weight edges,
//!   same-bucket short edges) go straight into the active heap, so they
//!   participate in the exact ordering of the current bucket;
//! * `base` only advances when the active heap is empty, and takes the
//!   next non-empty bucket's entries as the new active heap.
//!
//! Hence the pop sequence is sorted by `(dist, node)` across the whole
//! sweep — the heap kernel's sequence, element for element. The bucket
//! width `delta` affects only how much work the mini heap sees: a wider
//! bucket means more comparisons, a narrower one more empty-bucket skips.
//! Correctness needs no tuning.
//!
//! The win over one big heap: pushes into future buckets are `O(1)` vector
//! appends (no sift-up), and the mini heap's size is the bucket occupancy —
//! for the paper's weights (`log2(1 + N_in) ≥ 1`) and `Rmax`-truncated
//! sweeps, a small fraction of the frontier.

use crate::csr::NodeId;
use crate::kernel::BucketPlan;
use crate::weight::Weight;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A radius-aware bucket queue; see the module docs for the exactness
/// argument. Retains its allocations across sweeps like the heap kernel.
#[derive(Default)]
pub(crate) struct BucketQueue {
    /// Bucket geometry of the current sweep (set by [`begin`](Self::begin)).
    plan: BucketPlan,
    /// Future entries, keyed by bucket index.
    buckets: Vec<Vec<(Weight, NodeId)>>,
    /// The current bucket's entries in exact `(dist, node)` pop order.
    active: BinaryHeap<Reverse<(Weight, NodeId)>>,
    /// Index of the bucket currently draining through `active`.
    base: usize,
    /// Entries parked in `buckets` (not counting `active`).
    pending: usize,
}

impl BucketQueue {
    /// Prepares the queue for a sweep with the given bucket geometry.
    /// Retained bucket vectors are reused; the bucket array only grows.
    pub(crate) fn begin(&mut self, plan: &BucketPlan) {
        debug_assert!(
            self.pending == 0 && self.active.is_empty(),
            "begin on a drained queue"
        );
        self.plan = *plan;
        if self.buckets.len() < plan.buckets {
            self.buckets.resize_with(plan.buckets, Vec::new);
        }
        self.base = 0;
    }

    /// Pushes an entry. `d` must be within the sweep radius the queue was
    /// sized for and (per Dijkstra's invariant) not below the bucket
    /// currently draining.
    #[inline]
    pub(crate) fn push(&mut self, d: Weight, v: NodeId) {
        let b = self.plan.bucket_of(d).min(self.buckets.len() - 1);
        if b <= self.base {
            // Same-bucket push: joins the exact in-bucket ordering. (An
            // earlier bucket is unreachable mid-sweep; clamped entries at
            // the array edge also stay exact because every clamped
            // distance sorts inside the final bucket's heap.)
            self.active.push(Reverse((d, v)));
        } else {
            self.buckets[b].push((d, v));
            self.pending += 1;
        }
    }

    /// Pops the globally smallest `(dist, node)` entry.
    pub(crate) fn pop(&mut self) -> Option<(Weight, NodeId)> {
        loop {
            if let Some(Reverse(entry)) = self.active.pop() {
                return Some(entry);
            }
            if self.pending == 0 {
                return None;
            }
            // Advance to the next non-empty bucket and heapify it as the
            // new active set.
            self.base += 1;
            while self.buckets[self.base].is_empty() {
                self.base += 1;
            }
            let batch = &mut self.buckets[self.base];
            self.pending -= batch.len();
            self.active.extend(batch.drain(..).map(Reverse));
        }
    }

    /// Discards all entries, keeping allocations for the next sweep.
    pub(crate) fn clear(&mut self) {
        self.active.clear();
        if self.pending > 0 {
            for b in &mut self.buckets {
                b.clear();
            }
            self.pending = 0;
        }
        self.base = 0;
    }

    /// Retained capacity in bytes (scratch accounting for pool trimming).
    pub(crate) fn retained_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(Weight, NodeId)>();
        let vecs: usize = self.buckets.iter().map(Vec::capacity).sum::<usize>() * entry;
        vecs + self.buckets.capacity() * std::mem::size_of::<Vec<(Weight, NodeId)>>()
            + self.active.capacity() * entry
    }

    /// Drops retained allocations beyond a fresh queue (pool trimming).
    pub(crate) fn trim(&mut self) {
        debug_assert!(
            self.pending == 0 && self.active.is_empty(),
            "trim on a drained queue"
        );
        self.buckets = Vec::new();
        self.active = BinaryHeap::new();
        self.base = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(delta: f64, buckets: usize) -> BucketPlan {
        BucketPlan {
            delta_inv: delta.recip(),
            buckets,
        }
    }

    fn drain(q: &mut BucketQueue) -> Vec<(Weight, NodeId)> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn pops_in_sorted_dist_node_order() {
        let mut q = BucketQueue::default();
        q.begin(&plan(1.0, 12));
        for (d, v) in [(5.0, 2), (1.25, 7), (5.0, 1), (0.0, 3), (9.9, 0)] {
            q.push(Weight::new(d), NodeId(v));
        }
        let mut want = vec![
            (Weight::ZERO, NodeId(3)),
            (Weight::new(1.25), NodeId(7)),
            (Weight::new(5.0), NodeId(1)),
            (Weight::new(5.0), NodeId(2)),
            (Weight::new(9.9), NodeId(0)),
        ];
        want.sort();
        assert_eq!(drain(&mut q), want);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        // Mimics a sweep: after popping d, push entries with dist ≥ d.
        let mut q = BucketQueue::default();
        q.begin(&plan(0.5, 24));
        q.push(Weight::ZERO, NodeId(0));
        let mut popped = Vec::new();
        let mut next_id = 1u32;
        while let Some((d, u)) = q.pop() {
            popped.push((d, u));
            if popped.len() >= 32 {
                break;
            }
            // Zero-weight self-bucket push and a forward push.
            if next_id < 16 {
                q.push(d, NodeId(next_id + 100));
                q.push(d + Weight::new(0.75), NodeId(next_id));
                next_id += 1;
            }
        }
        let mut sorted = popped.clone();
        sorted.sort();
        assert_eq!(popped, sorted);
        assert_eq!(popped.len(), 31); // 1 seed + 15×2 pushes
    }

    #[test]
    fn entries_past_the_last_bucket_clamp_exactly() {
        let mut q = BucketQueue::default();
        q.begin(&plan(1.0, 3));
        // Buckets cover [0,3); distances beyond clamp into bucket 2 and
        // still pop in exact order via the mini heap.
        for (d, v) in [(10.0, 1), (2.5, 2), (7.0, 3), (0.5, 4)] {
            q.push(Weight::new(d), NodeId(v));
        }
        let got = drain(&mut q);
        assert_eq!(
            got,
            vec![
                (Weight::new(0.5), NodeId(4)),
                (Weight::new(2.5), NodeId(2)),
                (Weight::new(7.0), NodeId(3)),
                (Weight::new(10.0), NodeId(1)),
            ]
        );
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut q = BucketQueue::default();
        q.begin(&plan(1.0, 8));
        q.push(Weight::new(3.0), NodeId(1));
        q.push(Weight::ZERO, NodeId(2));
        q.clear();
        assert_eq!(q.pop(), None);
        q.begin(&plan(2.0, 4));
        q.push(Weight::new(1.0), NodeId(9));
        assert_eq!(drain(&mut q), vec![(Weight::new(1.0), NodeId(9))]);
    }

    #[test]
    fn trim_releases_capacity() {
        let mut q = BucketQueue::default();
        q.begin(&plan(1.0, 256));
        q.push(Weight::new(200.0), NodeId(1));
        q.clear();
        assert!(q.retained_bytes() > 0);
        q.trim();
        assert_eq!(q.retained_bytes(), 0);
    }
}
