//! The caching contracts, gated by the `comm_core::verify` certification
//! path:
//!
//! 1. cached and uncached answers are **bit-identical** — as structures
//!    and as encoded wire bytes;
//! 2. a tripped guard during a cached-answer reply still returns an exact
//!    prefix;
//! 3. a trip during index build never leaves a half-built
//!    `ProjectionIndex` in the cache.

use comm_core::{check_community, check_ranking, check_topk_prefix, QueryError, QuerySpec};
use comm_graph::{Outcome, RunGuard, Weight};
use comm_serve::{encode_response, summarize, EngineConfig, QueryEngine, Response};

fn engine() -> QueryEngine {
    comm_serve::synthetic_engine(8, EngineConfig::default()).expect("synthetic engine builds")
}

fn kws(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

/// The full-graph spec equivalent to a request, for certification.
fn spec_for(engine: &QueryEngine, keywords: &[String], rmax: f64) -> QuerySpec {
    let sets = keywords
        .iter()
        .map(|kw| engine.keyword_nodes(kw).expect("workload keyword").to_vec())
        .collect();
    QuerySpec::new(sets, Weight::new(rmax))
}

#[test]
fn cached_and_uncached_answers_are_bit_identical_and_certified() {
    let engine = engine();
    let keywords = kws(&["alpha", "beta"]);
    let (rmax, k) = (4.0, 5);

    let uncached = engine
        .answer(&keywords, rmax, k, &RunGuard::unlimited())
        .expect("fresh query succeeds");
    assert!(uncached.is_complete());
    let (_, im0, _, am0) = engine.cache_stats();
    assert!(im0 >= 1 && am0 >= 1, "first run must miss both caches");

    let cached = engine
        .answer(&keywords, rmax, k, &RunGuard::unlimited())
        .expect("cached query succeeds");
    assert!(cached.is_complete());
    let (_, _, ah, _) = engine.cache_stats();
    assert_eq!(ah, 1, "second run must hit the answer cache");

    let a = uncached.value();
    let b = cached.value();
    assert!(!a.is_empty(), "workload must produce communities");
    assert_eq!(a.len(), b.len());

    let spec = spec_for(&engine, &keywords, rmax);
    for (x, y) in a.iter().zip(b.iter()) {
        // Structure: every field, with costs compared as raw bits.
        assert_eq!(x.core, y.core);
        assert_eq!(x.cost.get().to_bits(), y.cost.get().to_bits());
        assert_eq!(x.centers, y.centers);
        assert_eq!(x.knodes, y.knodes);
        assert_eq!(x.path_nodes, y.path_nodes);
        assert_eq!(x.subgraph.original_ids, y.subgraph.original_ids);
        assert_eq!(x.edge_count(), y.edge_count());
        // Certification: both replies are real communities of the FULL
        // graph under the request's spec (the verify gate the issue
        // requires), not merely equal to each other.
        check_community(engine.graph(), &spec, x).expect("uncached answer certifies");
        check_community(engine.graph(), &spec, y).expect("cached answer certifies");
    }
    check_ranking(a).expect("uncached ranking monotone");
    check_ranking(b).expect("cached ranking monotone");

    // Wire level: the encoded reply bytes are identical too.
    let frame = |cs: &Vec<comm_core::Community>| {
        encode_response(&Response::Complete {
            id: 42,
            communities: cs.iter().map(summarize).collect(),
        })
        .expect("encodes")
    };
    assert_eq!(frame(a), frame(b), "wire bytes must be bit-identical");
}

#[test]
fn guard_trip_during_cached_reply_returns_exact_prefix() {
    let engine = engine();
    let keywords = kws(&["alpha", "beta"]);
    let (rmax, k) = (4.0, 5);

    let full = engine
        .answer(&keywords, rmax, k, &RunGuard::unlimited())
        .expect("warm-up succeeds")
        .into_value();
    assert!(full.len() >= 2, "need at least 2 answers to cut a prefix");

    // A candidate budget of 1 on the cache-hit path: exactly the first
    // ranked community comes back, flagged interrupted.
    let out = engine
        .answer(
            &keywords,
            rmax,
            k,
            &RunGuard::new().with_candidate_budget(1),
        )
        .expect("cached replay under guard succeeds");
    let (_, _, ah, _) = engine.cache_stats();
    assert!(ah >= 1, "replay must come from the answer cache");
    match out {
        Outcome::Interrupted { partial, .. } => {
            assert_eq!(partial.len(), 1);
            assert_eq!(partial[0].core, full[0].core);
            assert_eq!(
                partial[0].cost.get().to_bits(),
                full[0].cost.get().to_bits()
            );
            check_topk_prefix(&partial, &full).expect("prefix certifies against full answer");
        }
        Outcome::Complete(_) => panic!("budget of 1 must interrupt the replay"),
    }

    // An immediately-tripping guard degrades to the empty exact prefix —
    // still a reply, never a hang or an error.
    let out = engine
        .answer(
            &keywords,
            rmax,
            k,
            &RunGuard::new().with_candidate_budget(0),
        )
        .expect("zero-budget replay still answers");
    match out {
        Outcome::Interrupted { partial, .. } => assert!(partial.is_empty()),
        Outcome::Complete(_) => panic!("zero budget cannot complete"),
    }
}

#[test]
fn trip_during_index_build_leaves_cache_empty() {
    let engine = engine();
    let keywords = kws(&["alpha", "beta"]);

    // Trip after very few guard checks: the projection-index build (one
    // guarded sweep per keyword) cannot finish.
    let err = engine
        .answer(&keywords, 4.0, 5, &RunGuard::new().with_trip_after(3))
        .expect_err("build must trip");
    assert!(matches!(err, QueryError::Interrupted(_)), "got {err:?}");
    let (indexes, answers) = engine.cache_sizes();
    assert_eq!(indexes, 0, "a half-built index must never be cached");
    assert_eq!(answers, 0, "no answer can exist either");

    // The engine is undamaged: the same query under no limits succeeds
    // and populates both caches.
    let out = engine
        .answer(&keywords, 4.0, 5, &RunGuard::unlimited())
        .expect("clean run succeeds after the tripped build");
    assert!(out.is_complete());
    let (indexes, answers) = engine.cache_sizes();
    assert_eq!((indexes, answers), (1, 1));
}

#[test]
fn interrupted_enumeration_is_never_cached() {
    let engine = engine();
    let keywords = kws(&["alpha", "beta"]);

    // Enough budget to build the index and emit one answer, then trip.
    let out = engine
        .answer(&keywords, 4.0, 5, &RunGuard::new().with_candidate_budget(1))
        .expect("guarded run answers");
    assert!(!out.is_complete());
    let (indexes, answers) = engine.cache_sizes();
    assert_eq!(indexes, 1, "the fully built index is cached");
    assert_eq!(answers, 0, "a partial answer must never be cached");

    // The next unlimited run recomputes and returns the full answer, of
    // which the earlier partial was an exact prefix.
    let full = engine
        .answer(&keywords, 4.0, 5, &RunGuard::unlimited())
        .expect("full run succeeds")
        .into_value();
    let partial = out.into_value();
    check_topk_prefix(&partial, &full).expect("partial is an exact prefix");
}

#[test]
fn unknown_keyword_and_oversized_radius_are_clean_errors() {
    let engine = engine();
    let err = engine
        .answer(&kws(&["alpha", "zzz"]), 4.0, 5, &RunGuard::unlimited())
        .expect_err("unknown keyword rejected");
    assert!(matches!(err, QueryError::UnknownKeyword(ref kw) if kw == "zzz"));

    let err = engine
        .answer(&kws(&["alpha"]), 1e9, 5, &RunGuard::unlimited())
        .expect_err("radius beyond the index rejected");
    assert!(matches!(err, QueryError::RadiusExceedsIndex { .. }));

    let (indexes, answers) = engine.cache_sizes();
    assert_eq!(
        (indexes, answers),
        (0, 0),
        "rejections must not pollute caches"
    );
}
