//! Independent certification of query answers.
//!
//! Everything here re-derives community structure from Definition 2.1 with
//! a *self-contained* truncated Dijkstra over `std::collections::BinaryHeap`
//! — deliberately sharing no code with [`DijkstraEngine`](comm_graph::DijkstraEngine),
//! the Fibonacci heap, or the incremental `Neighbor()` bookkeeping — so a
//! bug in the optimized engines cannot certify its own output.
//!
//! * [`check_community`] certifies one [`Community`] against a
//!   [`QuerySpec`]: knodes, centers, cost, membership, path-node roles, and
//!   induced edge count;
//! * [`check_enumeration`] certifies a `COMM-all`/`COMM-k` result stream:
//!   every community certified, cores pairwise distinct;
//! * [`check_ranking`] checks ranked (`COMM-k`) output for non-decreasing
//!   costs;
//! * [`check_topk_prefix`] checks that a top-k answer heads the full
//!   enumeration's sorted cost multiset (equal-cost ties may be ordered
//!   either way).

use crate::types::{Community, Core, CostFn, QuerySpec};
use comm_graph::weight::index_to_u32;
use comm_graph::{Direction, Graph, InterruptReason, NodeId, RunGuard, Weight};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

/// Why a certification failed.
///
/// The `*Mismatch` variants carry both the independently recomputed value
/// (`expected`) and the value the answer claimed (`got`).
#[derive(Clone, Debug, PartialEq)]
pub enum CertificationError {
    /// The core's length disagrees with the query's keyword count.
    CoreArity {
        /// The query's `l`.
        expected: usize,
        /// The core's length.
        got: usize,
    },
    /// A core node does not belong to its keyword's node set `V_i`.
    KnodeOutsideKeywordSet {
        /// The keyword position.
        dim: usize,
        /// The offending node.
        node: NodeId,
    },
    /// The community's knode list is not the sorted distinct core.
    WrongKnodes {
        /// The community's core.
        core: Core,
        /// The recomputed knodes.
        expected: Vec<NodeId>,
        /// The claimed knodes.
        got: Vec<NodeId>,
    },
    /// The claimed center set differs from the recomputed one.
    CentersMismatch {
        /// The community's core.
        core: Core,
        /// The recomputed centers.
        expected: Vec<NodeId>,
        /// The claimed centers.
        got: Vec<NodeId>,
    },
    /// The claimed cost differs from the recomputed one.
    CostMismatch {
        /// The community's core.
        core: Core,
        /// The recomputed cost.
        expected: Weight,
        /// The claimed cost.
        got: Weight,
    },
    /// The claimed member set differs from the recomputed one.
    MembersMismatch {
        /// The community's core.
        core: Core,
        /// The recomputed members.
        expected: Vec<NodeId>,
        /// The claimed members.
        got: Vec<NodeId>,
    },
    /// The claimed path nodes are not exactly members − centers − knodes.
    PathNodesMismatch {
        /// The community's core.
        core: Core,
        /// The recomputed path nodes.
        expected: Vec<NodeId>,
        /// The claimed path nodes.
        got: Vec<NodeId>,
    },
    /// The community's subgraph does not hold every `G_D` edge between
    /// members.
    EdgeCountMismatch {
        /// The community's core.
        core: Core,
        /// The recomputed induced edge count.
        expected: usize,
        /// The subgraph's edge count.
        got: usize,
    },
    /// Two communities in an enumeration share a core.
    DuplicateCore {
        /// The index of the second occurrence.
        index: usize,
    },
    /// A ranked answer's costs decrease somewhere.
    CostsNotMonotone {
        /// The index at which the cost dropped.
        index: usize,
        /// The cost before the drop.
        prev: Weight,
        /// The cost at `index`.
        next: Weight,
    },
    /// A top-k answer holds more communities than the full enumeration.
    TopKLongerThanAll {
        /// The top-k length.
        topk: usize,
        /// The full enumeration's length.
        all: usize,
    },
    /// A top-k answer's cost sequence is not a prefix of the full
    /// ranking's.
    TopKNotPrefix {
        /// The first disagreeing rank.
        index: usize,
        /// The top-k cost at that rank.
        topk: Weight,
        /// The full ranking's cost at that rank.
        all: Weight,
    },
    /// The guard tripped before certification finished.
    Interrupted(InterruptReason),
}

impl fmt::Display for CertificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificationError::CoreArity { expected, got } => {
                write!(f, "core has {got} knodes, query has {expected} keywords")
            }
            CertificationError::KnodeOutsideKeywordSet { dim, node } => {
                write!(f, "knode {node} is not in keyword set V_{dim}")
            }
            CertificationError::WrongKnodes { core, .. } => {
                write!(f, "knodes of {core:?} are not the distinct core nodes")
            }
            CertificationError::CentersMismatch {
                core,
                expected,
                got,
            } => {
                write!(
                    f,
                    "centers of {core:?}: recomputed {expected:?}, claimed {got:?}"
                )
            }
            CertificationError::CostMismatch {
                core,
                expected,
                got,
            } => {
                write!(f, "cost of {core:?}: recomputed {expected}, claimed {got}")
            }
            CertificationError::MembersMismatch {
                core,
                expected,
                got,
            } => {
                write!(
                    f,
                    "members of {core:?}: recomputed {expected:?}, claimed {got:?}"
                )
            }
            CertificationError::PathNodesMismatch {
                core,
                expected,
                got,
            } => {
                write!(
                    f,
                    "path nodes of {core:?}: recomputed {expected:?}, claimed {got:?}"
                )
            }
            CertificationError::EdgeCountMismatch {
                core,
                expected,
                got,
            } => {
                write!(
                    f,
                    "subgraph of {core:?} has {got} edges, induced count is {expected}"
                )
            }
            CertificationError::DuplicateCore { index } => {
                write!(f, "enumeration repeats a core at index {index}")
            }
            CertificationError::CostsNotMonotone { index, prev, next } => {
                write!(f, "cost drops from {prev} to {next} at index {index}")
            }
            CertificationError::TopKLongerThanAll { topk, all } => {
                write!(f, "top-k holds {topk} answers, full enumeration only {all}")
            }
            CertificationError::TopKNotPrefix { index, topk, all } => {
                write!(
                    f,
                    "top-k cost {topk} at rank {index} differs from the full ranking's {all}"
                )
            }
            CertificationError::Interrupted(reason) => {
                write!(f, "certification interrupted: {reason}")
            }
        }
    }
}

impl std::error::Error for CertificationError {}

impl From<InterruptReason> for CertificationError {
    fn from(reason: InterruptReason) -> CertificationError {
        CertificationError::Interrupted(reason)
    }
}

/// Plain binary-heap Dijkstra from `sources`, truncated at `rmax`.
///
/// Returns per-node distances, `Weight::INFINITY` where unreachable within
/// the radius. Lazy deletion, no decrease-key — the point is independence
/// from the optimized engines, not speed.
fn truncated_dijkstra(
    graph: &Graph,
    dir: Direction,
    sources: &[NodeId],
    rmax: Weight,
    guard: &RunGuard,
) -> Result<Vec<Weight>, InterruptReason> {
    let mut dist = vec![Weight::INFINITY; graph.node_count()];
    let mut heap: BinaryHeap<Reverse<(Weight, NodeId)>> = BinaryHeap::new();
    for &s in sources {
        if Weight::ZERO < dist[s.index()] {
            dist[s.index()] = Weight::ZERO;
            // xtask-allow: unbounded_alloc — seeding pass, bounded by sources.len()
            heap.push(Reverse((Weight::ZERO, s)));
        }
    }
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        guard.note_settled(1)?;
        for (v, w) in graph.neighbors(u, dir) {
            let nd = d + w;
            if nd <= rmax && nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    Ok(dist)
}

/// Certifies one community against its query (see module docs).
pub fn check_community(
    graph: &Graph,
    spec: &QuerySpec,
    community: &Community,
) -> Result<(), CertificationError> {
    check_community_guarded(graph, spec, community, &RunGuard::unlimited())
}

/// [`check_community`] under a [`RunGuard`], consulted per settled node of
/// every certification sweep.
pub fn check_community_guarded(
    graph: &Graph,
    spec: &QuerySpec,
    community: &Community,
    guard: &RunGuard,
) -> Result<(), CertificationError> {
    let core = &community.core;
    let l = spec.l();
    if core.len() != l {
        return Err(CertificationError::CoreArity {
            expected: l,
            got: core.len(),
        });
    }
    for (dim, &node) in core.0.iter().enumerate() {
        if spec.keyword_nodes[dim].binary_search(&node).is_err() {
            return Err(CertificationError::KnodeOutsideKeywordSet { dim, node });
        }
    }
    let distinct = core.distinct_nodes();
    if community.knodes != distinct {
        return Err(CertificationError::WrongKnodes {
            core: core.clone(),
            expected: distinct,
            got: community.knodes.clone(),
        });
    }

    // One reverse sweep per distinct knode; a center must reach every
    // knode within Rmax (Definition 2.1).
    let rmax = spec.rmax;
    let mut dists: Vec<Vec<Weight>> = Vec::with_capacity(distinct.len());
    for &c in &distinct {
        dists.push(truncated_dijkstra(
            graph,
            Direction::Reverse,
            &[c],
            rmax,
            guard,
        )?);
    }
    let multiplicity: Vec<usize> = distinct
        .iter()
        .map(|&c| core.0.iter().filter(|&&x| x == c).count())
        .collect();

    let n = graph.node_count();
    let mut centers: Vec<NodeId> = Vec::new();
    let mut cost = Weight::INFINITY;
    for u in 0..n {
        if !dists.iter().all(|d| d[u].is_finite()) {
            continue;
        }
        // xtask-allow: unbounded_alloc — bounded by n; one candidate center per node
        centers.push(NodeId(index_to_u32(u)));
        // Aggregate exactly as GetCommunity does (same distinct order,
        // same multiplicity weighting) so float results match bit-for-bit.
        let agg = match spec.cost {
            CostFn::SumDistances => {
                let mut s = 0.0f64;
                for (d, &m) in dists.iter().zip(&multiplicity) {
                    s += d[u].get() * m as f64;
                }
                Weight::new(s)
            }
            CostFn::MaxDistance => dists.iter().map(|d| d[u]).max().unwrap_or(Weight::ZERO),
        };
        if agg < cost {
            cost = agg;
        }
    }
    if centers != community.centers {
        return Err(CertificationError::CentersMismatch {
            core: core.clone(),
            expected: centers,
            got: community.centers.clone(),
        });
    }
    if cost != community.cost {
        return Err(CertificationError::CostMismatch {
            core: core.clone(),
            expected: cost,
            got: community.cost,
        });
    }

    // Membership: dist(s, u) + dist(u, t) ≤ Rmax with the virtual source
    // over the centers and the virtual sink under the knodes.
    let dist_s = truncated_dijkstra(graph, Direction::Forward, &centers, rmax, guard)?;
    let dist_t = truncated_dijkstra(graph, Direction::Reverse, &distinct, rmax, guard)?;
    let members: Vec<NodeId> = (0..n)
        .filter(|&u| {
            dist_s[u].is_finite() && dist_t[u].is_finite() && dist_s[u] + dist_t[u] <= rmax
        })
        .map(|u| NodeId(index_to_u32(u)))
        .collect();
    if members != community.nodes() {
        return Err(CertificationError::MembersMismatch {
            core: core.clone(),
            expected: members,
            got: community.nodes().to_vec(),
        });
    }
    let path_nodes: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|u| centers.binary_search(u).is_err() && distinct.binary_search(u).is_err())
        .collect();
    if path_nodes != community.path_nodes {
        return Err(CertificationError::PathNodesMismatch {
            core: core.clone(),
            expected: path_nodes,
            got: community.path_nodes.clone(),
        });
    }

    // The subgraph must hold exactly the G_D edges between members.
    let mut expected_edges = 0usize;
    for &u in &members {
        for (v, _) in graph.out_neighbors(u) {
            if members.binary_search(&v).is_ok() {
                expected_edges += 1;
            }
        }
    }
    if expected_edges != community.edge_count() {
        return Err(CertificationError::EdgeCountMismatch {
            core: core.clone(),
            expected: expected_edges,
            got: community.edge_count(),
        });
    }
    Ok(())
}

/// Certifies an enumeration: every community passes [`check_community`]
/// and cores are pairwise distinct. Emission *order* is not constrained —
/// COMM-all enumerates in Lawler order, not by cost; use [`check_ranking`]
/// for ranked (COMM-k) output.
pub fn check_enumeration(
    graph: &Graph,
    spec: &QuerySpec,
    communities: &[Community],
) -> Result<(), CertificationError> {
    check_enumeration_guarded(graph, spec, communities, &RunGuard::unlimited())
}

/// [`check_enumeration`] under a [`RunGuard`].
pub fn check_enumeration_guarded(
    graph: &Graph,
    spec: &QuerySpec,
    communities: &[Community],
    guard: &RunGuard,
) -> Result<(), CertificationError> {
    let mut seen: HashSet<Core> = HashSet::with_capacity(communities.len());
    for (index, community) in communities.iter().enumerate() {
        check_community_guarded(graph, spec, community, guard)?;
        if !seen.insert(community.core.clone()) {
            return Err(CertificationError::DuplicateCore { index });
        }
    }
    Ok(())
}

/// Checks ranked (COMM-k) output discipline: costs must be non-decreasing.
pub fn check_ranking(communities: &[Community]) -> Result<(), CertificationError> {
    for (index, pair) in communities.windows(2).enumerate() {
        if pair[0].cost > pair[1].cost {
            return Err(CertificationError::CostsNotMonotone {
                index: index + 1,
                prev: pair[0].cost,
                next: pair[1].cost,
            });
        }
    }
    Ok(())
}

/// Checks that `topk`'s cost sequence is the head of `all`'s *sorted* cost
/// multiset (COMM-all enumerates unordered, so ranks are compared against
/// the sorted costs; equal-cost ties may legitimately order differently).
pub fn check_topk_prefix(topk: &[Community], all: &[Community]) -> Result<(), CertificationError> {
    if topk.len() > all.len() {
        return Err(CertificationError::TopKLongerThanAll {
            topk: topk.len(),
            all: all.len(),
        });
    }
    check_ranking(topk)?;
    let mut ranked: Vec<Weight> = all.iter().map(|c| c.cost).collect();
    ranked.sort_unstable();
    for (index, t) in topk.iter().enumerate() {
        if t.cost != ranked[index] {
            return Err(CertificationError::TopKNotPrefix {
                index,
                topk: t.cost,
                all: ranked[index],
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{comm_all, comm_k};
    use comm_datasets::paper_example::{fig4_graph, fig4_keyword_nodes, FIG4_RMAX};

    fn fig4_spec() -> QuerySpec {
        QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX))
    }

    #[test]
    fn comm_all_on_paper_example_certifies() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let all = comm_all(&g, &spec);
        assert_eq!(all.len(), 5); // Table I
        check_enumeration(&g, &spec, &all).unwrap();
    }

    #[test]
    fn comm_k_is_a_prefix_of_comm_all() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let all = comm_all(&g, &spec);
        for k in 1..=all.len() + 1 {
            let topk = comm_k(&g, &spec, k);
            check_enumeration(&g, &spec, &topk).unwrap();
            check_ranking(&topk).unwrap();
            check_topk_prefix(&topk, &all).unwrap();
        }
    }

    #[test]
    fn max_distance_cost_certifies() {
        let g = fig4_graph();
        let spec = fig4_spec().with_cost(CostFn::MaxDistance);
        let all = comm_all(&g, &spec);
        assert!(!all.is_empty());
        check_enumeration(&g, &spec, &all).unwrap();
    }

    #[test]
    fn tampered_cost_is_detected() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let mut c = comm_all(&g, &spec).remove(0);
        c.cost = c.cost + Weight::new(1.0);
        assert!(matches!(
            check_community(&g, &spec, &c),
            Err(CertificationError::CostMismatch { .. })
        ));
    }

    #[test]
    fn tampered_centers_are_detected() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let mut c = comm_all(&g, &spec).remove(0);
        c.centers.pop();
        assert!(matches!(
            check_community(&g, &spec, &c),
            Err(CertificationError::CentersMismatch { .. })
        ));
    }

    #[test]
    fn tampered_knodes_are_detected() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let mut c = comm_all(&g, &spec).remove(0);
        c.knodes.push(NodeId(0));
        assert!(matches!(
            check_community(&g, &spec, &c),
            Err(CertificationError::WrongKnodes { .. })
        ));
    }

    #[test]
    fn tampered_path_nodes_are_detected() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let all = comm_all(&g, &spec);
        let mut c = all
            .iter()
            .find(|c| !c.path_nodes.is_empty())
            .expect("paper example has a community with path nodes")
            .clone();
        c.path_nodes.clear();
        assert!(matches!(
            check_community(&g, &spec, &c),
            Err(CertificationError::PathNodesMismatch { .. })
        ));
    }

    #[test]
    fn core_outside_keyword_set_is_detected() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let mut c = comm_all(&g, &spec).remove(0);
        // v1 carries no keyword in the fig. 4 assignment.
        c.core.0[0] = NodeId(1);
        assert!(matches!(
            check_community(&g, &spec, &c),
            Err(CertificationError::KnodeOutsideKeywordSet { .. })
        ));
    }

    #[test]
    fn duplicate_core_is_detected() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let all = comm_all(&g, &spec);
        let mut doubled = all.clone();
        doubled.push(all[all.len() - 1].clone());
        assert_eq!(
            check_enumeration(&g, &spec, &doubled),
            Err(CertificationError::DuplicateCore { index: all.len() })
        );
    }

    #[test]
    fn cost_regression_is_detected() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let mut topk = comm_k(&g, &spec, 5);
        topk.swap(0, 4); // Table I's rank-1 and rank-5 costs differ
        assert!(matches!(
            check_ranking(&topk),
            Err(CertificationError::CostsNotMonotone { .. })
        ));
    }

    #[test]
    fn topk_prefix_rejects_wrong_costs() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let all = comm_all(&g, &spec);
        let mut topk = comm_k(&g, &spec, 1);
        topk[0].cost = topk[0].cost + Weight::new(0.5);
        assert!(matches!(
            check_topk_prefix(&topk, &all),
            Err(CertificationError::TopKNotPrefix { index: 0, .. })
        ));
        let mut fake = all.clone();
        fake.push(all[0].clone());
        assert!(matches!(
            check_topk_prefix(&fake, &all),
            Err(CertificationError::TopKLongerThanAll { .. })
        ));
    }

    #[test]
    fn guard_trip_reports_interrupted() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let c = comm_all(&g, &spec).remove(0);
        let guard = RunGuard::new().with_settled_budget(1);
        assert!(matches!(
            check_community_guarded(&g, &spec, &c, &guard),
            Err(CertificationError::Interrupted(_))
        ));
    }
}
