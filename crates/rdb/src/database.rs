//! A database: a catalog of tables with foreign-key enforcement.

use crate::error::RdbError;
use crate::schema::{TableId, TableSchema};
use crate::table::{RowId, Table};
use crate::value::Value;
use comm_graph::weight::index_to_u32;

/// A reference to one tuple anywhere in the database — the entity that
/// becomes a node of the database graph `G_D`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TupleRef {
    /// The tuple's table.
    pub table: TableId,
    /// The row within that table.
    pub row: RowId,
}

/// An in-memory relational database.
#[derive(Default)]
pub struct Database {
    tables: Vec<Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database { tables: Vec::new() }
    }

    /// Adds a table and returns its id. Foreign keys may only reference
    /// tables that already exist (or the table itself).
    pub fn create_table(&mut self, schema: TableSchema) -> TableId {
        let id = TableId(index_to_u32(self.tables.len()));
        for fk in &schema.foreign_keys {
            assert!(
                fk.target.0 <= id.0,
                "foreign key in {} references table {} that does not exist yet",
                schema.name,
                fk.target.0
            );
        }
        self.tables.push(Table::new(schema));
        id
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of tuples across all tables (`n` of `G_D`).
    pub fn tuple_count(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// Access a table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Finds a table by name.
    pub fn table_by_name(&self, name: &str) -> Result<TableId, RdbError> {
        self.tables
            .iter()
            .position(|t| t.schema().name == name)
            .map(|i| TableId(index_to_u32(i)))
            .ok_or_else(|| RdbError::NoSuchTable {
                name: name.to_owned(),
            })
    }

    /// Iterates table ids.
    pub fn tables(&self) -> impl Iterator<Item = TableId> {
        (0..index_to_u32(self.tables.len())).map(TableId)
    }

    /// Inserts a row, enforcing primary-key uniqueness, types, and every
    /// declared foreign key (`Null` foreign keys are allowed and simply
    /// contribute no edge).
    pub fn insert(&mut self, table: TableId, values: &[Value]) -> Result<TupleRef, RdbError> {
        // Validate foreign keys first (immutable borrows).
        let schema = self.tables[table.0 as usize].schema().clone();
        for fk in &schema.foreign_keys {
            let v = &values
                .get(fk.column.0 as usize)
                .ok_or_else(|| RdbError::ArityMismatch {
                    table: schema.name.clone(),
                    expected: schema.arity(),
                    got: values.len(),
                })?;
            if v.is_null() {
                continue;
            }
            let key = v.as_int().ok_or_else(|| RdbError::TypeMismatch {
                table: schema.name.clone(),
                column: schema.columns[fk.column.0 as usize].name.clone(),
                index: fk.column.0 as usize,
            })?;
            if self.tables[fk.target.0 as usize]
                .by_primary_key(key)
                .is_none()
            {
                return Err(RdbError::ForeignKeyViolation {
                    table: schema.name.clone(),
                    column: schema.columns[fk.column.0 as usize].name.clone(),
                    key,
                });
            }
        }
        let row = self.tables[table.0 as usize].insert_unchecked_fk(values)?;
        Ok(TupleRef { table, row })
    }

    /// Resolves a foreign-key reference of `tuple` at the fk with index
    /// `fk_idx` in its table's declaration order, if non-NULL.
    pub fn resolve_fk(&self, tuple: TupleRef, fk_idx: usize) -> Option<TupleRef> {
        let t = self.table(tuple.table);
        let fk = &t.schema().foreign_keys[fk_idx];
        let key = t.cell(tuple.row, fk.column).as_int()?;
        let row = self.table(fk.target).by_primary_key(key)?;
        Some(TupleRef {
            table: fk.target,
            row,
        })
    }

    /// Total bytes in all row arenas (the "raw dataset size" reported next
    /// to index sizes in the paper's Sec. VII).
    pub fn byte_size(&self) -> usize {
        self.tables.iter().map(Table::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;

    /// The paper's DBLP schema: Author(Aid, Name), Paper(Pid, Title),
    /// Write(Aid, Pid), Cite(Pid1, Pid2).
    pub fn dblp_schema(db: &mut Database) -> (TableId, TableId, TableId, TableId) {
        let author = db.create_table(
            TableSchema::new(
                "Author",
                vec![
                    ColumnDef::new("Aid", ColumnType::Int),
                    ColumnDef::full_text("Name"),
                ],
            )
            .with_primary_key("Aid"),
        );
        let paper = db.create_table(
            TableSchema::new(
                "Paper",
                vec![
                    ColumnDef::new("Pid", ColumnType::Int),
                    ColumnDef::full_text("Title"),
                ],
            )
            .with_primary_key("Pid"),
        );
        let write = db.create_table(
            TableSchema::new(
                "Write",
                vec![
                    ColumnDef::new("Aid", ColumnType::Int),
                    ColumnDef::new("Pid", ColumnType::Int),
                ],
            )
            .with_foreign_key("Aid", author)
            .with_foreign_key("Pid", paper),
        );
        let cite = db.create_table(
            TableSchema::new(
                "Cite",
                vec![
                    ColumnDef::new("Pid1", ColumnType::Int),
                    ColumnDef::new("Pid2", ColumnType::Int),
                ],
            )
            .with_foreign_key("Pid1", paper)
            .with_foreign_key("Pid2", paper),
        );
        (author, paper, write, cite)
    }

    #[test]
    fn insert_with_fks() {
        let mut db = Database::new();
        let (author, paper, write, _) = dblp_schema(&mut db);
        db.insert(author, &[Value::Int(1), Value::from("John Smith")])
            .unwrap();
        db.insert(paper, &[Value::Int(1), Value::from("paper1")])
            .unwrap();
        let w = db.insert(write, &[Value::Int(1), Value::Int(1)]).unwrap();
        assert_eq!(db.tuple_count(), 3);
        // FK resolution.
        let a = db.resolve_fk(w, 0).unwrap();
        assert_eq!(a.table, author);
        let p = db.resolve_fk(w, 1).unwrap();
        assert_eq!(p.table, paper);
    }

    #[test]
    fn dangling_fk_rejected() {
        let mut db = Database::new();
        let (_, _, write, _) = dblp_schema(&mut db);
        let err = db
            .insert(write, &[Value::Int(7), Value::Int(7)])
            .unwrap_err();
        assert!(matches!(err, RdbError::ForeignKeyViolation { key: 7, .. }));
    }

    #[test]
    fn null_fk_allowed() {
        let mut db = Database::new();
        let (author, _, write, _) = dblp_schema(&mut db);
        db.insert(author, &[Value::Int(1), Value::from("A")])
            .unwrap();
        let w = db.insert(write, &[Value::Int(1), Value::Null]).unwrap();
        assert_eq!(db.resolve_fk(w, 1), None);
    }

    #[test]
    fn table_by_name() {
        let mut db = Database::new();
        let (author, ..) = dblp_schema(&mut db);
        assert_eq!(db.table_by_name("Author"), Ok(author));
        assert!(matches!(
            db.table_by_name("Missing"),
            Err(RdbError::NoSuchTable { .. })
        ));
        assert_eq!(db.table_count(), 4);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_fk_rejected() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("T", vec![ColumnDef::new("x", ColumnType::Int)])
                .with_foreign_key("x", TableId(5)),
        );
    }
}
