//! Property tests for the relational layer: codec roundtrips, constraint
//! enforcement, tokenizer/index agreement, and graph materialization
//! invariants.

use comm_rdb::{
    tokenize, ColumnDef, ColumnId, ColumnType, Database, DatabaseGraph, EdgeMode, FullTextIndex,
    TableSchema, Value, WeightScheme,
};
use proptest::prelude::*;

fn arbitrary_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        "[a-zA-Z0-9 àßç]{0,40}".prop_map(Value::Text),
        (-1e12f64..1e12).prop_map(Value::Float),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Rows written through a table come back bit-identical, cell by cell.
    #[test]
    fn row_storage_roundtrip(texts in proptest::collection::vec("[a-z가-힣 ]{0,30}", 1..30)) {
        let mut db = Database::new();
        let t = db.create_table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::full_text("body"),
                ],
            )
            .with_primary_key("id"),
        );
        for (i, text) in texts.iter().enumerate() {
            db.insert(t, &[Value::Int(i as i64), Value::Text(text.clone())]).unwrap();
        }
        let table = db.table(t);
        for (i, text) in texts.iter().enumerate() {
            let row = table.by_primary_key(i as i64).expect("pk exists");
            prop_assert_eq!(table.cell(row, ColumnId(1)), Value::Text(text.clone()));
            prop_assert_eq!(
                table.row(row),
                vec![Value::Int(i as i64), Value::Text(text.clone())]
            );
        }
    }

    /// Arbitrary typed rows survive storage when types line up.
    #[test]
    fn heterogeneous_rows_roundtrip(rows in proptest::collection::vec(
        (any::<i64>(), arbitrary_value(), arbitrary_value()), 1..25)) {
        let mut db = Database::new();
        let t = db.create_table(TableSchema::new(
            "U",
            vec![
                ColumnDef::new("k", ColumnType::Int),
                ColumnDef::new("a", ColumnType::Text),
                ColumnDef::new("b", ColumnType::Float),
            ],
        ));
        let mut inserted = Vec::new();
        for (k, a, b) in rows {
            // Coerce to the column types (Null always allowed).
            let a = match a { Value::Text(s) => Value::Text(s), _ => Value::Null };
            let b = match b { Value::Float(f) => Value::Float(f), _ => Value::Null };
            let vals = vec![Value::Int(k), a, b];
            db.insert(t, &vals).unwrap();
            inserted.push(vals);
        }
        let table = db.table(t);
        for (row, vals) in table.rows().zip(&inserted) {
            prop_assert_eq!(&table.row(row), vals);
        }
    }

    /// The full-text index finds exactly the rows whose tokenization
    /// contains the keyword.
    #[test]
    fn full_text_index_is_exact(titles in proptest::collection::vec("[a-c ]{0,12}", 1..25)) {
        let mut db = Database::new();
        let t = db.create_table(TableSchema::new(
            "D",
            vec![ColumnDef::new("id", ColumnType::Int), ColumnDef::full_text("s")],
        ).with_primary_key("id"));
        for (i, title) in titles.iter().enumerate() {
            db.insert(t, &[Value::Int(i as i64), Value::Text(title.clone())]).unwrap();
        }
        let idx = FullTextIndex::build(&db);
        for probe in ["a", "ab", "abc", "b", "c"] {
            let hits: Vec<usize> = idx
                .lookup(probe)
                .iter()
                .map(|r| r.row.0 as usize)
                .collect();
            let expect: Vec<usize> = titles
                .iter()
                .enumerate()
                .filter(|(_, s)| tokenize(s).any(|tok| tok == probe))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(hits, expect, "probe {}", probe);
        }
    }

    /// Materialization invariants: node per tuple, bi-directed edge pairs,
    /// weights follow the scheme, and provenance is a bijection.
    #[test]
    fn materialization_invariants(links in proptest::collection::vec((0i64..15, 0i64..15), 0..60)) {
        let mut db = Database::new();
        let people = db.create_table(TableSchema::new(
            "P",
            vec![ColumnDef::new("id", ColumnType::Int), ColumnDef::full_text("name")],
        ).with_primary_key("id"));
        for i in 0..15 {
            db.insert(people, &[Value::Int(i), Value::Text(format!("p{i}"))]).unwrap();
        }
        let follows = db.create_table(
            TableSchema::new(
                "F",
                vec![ColumnDef::new("src", ColumnType::Int), ColumnDef::new("dst", ColumnType::Int)],
            )
            .with_foreign_key("src", people)
            .with_foreign_key("dst", people),
        );
        for &(a, b) in &links {
            db.insert(follows, &[Value::Int(a), Value::Int(b)]).unwrap();
        }
        let dg = DatabaseGraph::materialize(&db, WeightScheme::LogInDegree, EdgeMode::BiDirected);
        prop_assert_eq!(dg.graph.node_count(), db.tuple_count());
        prop_assert_eq!(dg.graph.edge_count(), 4 * links.len());
        for (_, v, w) in dg.graph.edges() {
            let expect = (1.0 + dg.graph.in_degree(v) as f64).log2();
            prop_assert!((w.get() - expect).abs() < 1e-12);
        }
        for node in dg.graph.nodes() {
            prop_assert_eq!(dg.node_of(dg.tuple_of(node)), Some(node));
        }
    }
}
