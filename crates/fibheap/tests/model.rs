//! Model-based property test: the Fibonacci heap must behave exactly like
//! a reference priority queue under arbitrary operation sequences.

use comm_fibheap::{FibHeap, HeapError, NodeRef};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    PopMin,
    DecreaseKey { live_idx: usize, by: u32 },
    Peek,
    Meld(Vec<u32>),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..10_000).prop_map(Op::Push),
            Just(Op::PopMin),
            (0usize..64, 1u32..500).prop_map(|(live_idx, by)| Op::DecreaseKey { live_idx, by }),
            Just(Op::Peek),
            proptest::collection::vec(0u32..10_000, 0..8).prop_map(Op::Meld),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_reference_model(ops in ops()) {
        // Model: a Vec of (key, id) kept unsorted; min extracted by scan.
        // Ids make entries distinguishable so decrease-key tracks exactly.
        let mut heap: FibHeap<(u32, u64), u64> = FibHeap::new();
        let mut live: Vec<(NodeRef, u32, u64)> = Vec::new(); // (handle, key, id)
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Push(k) => {
                    let id = next_id;
                    next_id += 1;
                    let r = heap.push((k, id), id);
                    live.push((r, k, id));
                }
                Op::PopMin => {
                    let expect = live
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(_, k, id))| (k, id))
                        .map(|(i, &(_, k, id))| (i, k, id));
                    match (heap.pop_min(), expect) {
                        (None, None) => {}
                        (Some(((k, id), v)), Some((i, ek, eid))) => {
                            prop_assert_eq!((k, id, v), (ek, eid, eid));
                            live.swap_remove(i);
                        }
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "pop mismatch: got {got:?}, want {want:?}"
                            )))
                        }
                    }
                }
                Op::DecreaseKey { live_idx, by } => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = live_idx % live.len();
                    let (r, k, id) = live[i];
                    let nk = k.saturating_sub(by);
                    heap.decrease_key(r, (nk, id)).unwrap();
                    live[i].1 = nk;
                }
                Op::Peek => {
                    let expect = live.iter().map(|&(_, k, id)| (k, id)).min();
                    prop_assert_eq!(heap.peek_min().map(|(&(k, id), _)| (k, id)), expect);
                }
                Op::Meld(keys) => {
                    // Build a side heap, meld it in, and rebase its handles
                    // by the returned slot offset.
                    let mut side: FibHeap<(u32, u64), u64> = FibHeap::new();
                    let mut side_live: Vec<(NodeRef, u32, u64)> = Vec::new();
                    for k in keys {
                        let id = next_id;
                        next_id += 1;
                        side_live.push((side.push((k, id), id), k, id));
                    }
                    side.validate().unwrap();
                    let offset = heap.meld(side);
                    live.extend(
                        side_live
                            .into_iter()
                            .map(|(r, k, id)| (r.rebased(offset), k, id)),
                    );
                }
            }
            // The deep structural validator must hold after *every* op.
            heap.validate().unwrap();
            prop_assert_eq!(heap.len(), live.len());
        }
        // Drain and verify global order.
        let mut rest: Vec<(u32, u64)> = live.iter().map(|&(_, k, id)| (k, id)).collect();
        rest.sort_unstable();
        let mut drained = Vec::new();
        while let Some((key, _)) = heap.pop_min() {
            drained.push(key);
        }
        prop_assert_eq!(drained, rest);
    }

    #[test]
    fn meld_heapsort_matches_binaryheap(
        chunks in proptest::collection::vec(proptest::collection::vec(0u32..10_000, 0..50), 1..8),
    ) {
        // Meld chunk-heaps together and heapsort; a std::BinaryHeap fed the
        // same keys is the oracle.
        let mut reference = std::collections::BinaryHeap::new();
        let mut heap: FibHeap<u32, u32> = FibHeap::new();
        for chunk in &chunks {
            let mut side = FibHeap::new();
            for &k in chunk {
                side.push(k, k);
                reference.push(std::cmp::Reverse(k));
            }
            heap.meld(side);
            heap.validate().unwrap();
        }
        while let Some((k, _)) = heap.pop_min() {
            prop_assert_eq!(Some(std::cmp::Reverse(k)), reference.pop());
            heap.validate().unwrap();
        }
        prop_assert!(reference.is_empty());
    }

    #[test]
    fn stale_handles_always_detected(keys in proptest::collection::vec(0u32..100, 1..40)) {
        let mut heap = FibHeap::new();
        let handles: Vec<NodeRef> = keys.iter().map(|&k| heap.push(k, k)).collect();
        while heap.pop_min().is_some() {}
        for r in handles {
            prop_assert_eq!(heap.decrease_key(r, 0), Err(HeapError::StaleHandle));
        }
    }
}
