//! Criterion benchmarks for the enumeration engines themselves: the
//! per-community delay of `COMM-all` (PDall vs BUall vs TDall) and the
//! total time of `COMM-k` (PDk vs BUk vs TDk), at quick scale — one
//! Criterion group per figure of the paper's evaluation.

use comm_bench::{Prepared, Scale};
use comm_core::{bu_all, bu_topk, td_all, td_topk, CommAll, CommK};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_comm_all_delay(c: &mut Criterion) {
    let p = Prepared::imdb(Scale::Quick);
    let (kwf, l, rmax, _) = p.grid.defaults;
    let pq = p.project(kwf, l, rmax);
    let g = pq.projected.graph.clone();
    let spec = pq.spec;
    let cap = 60usize;
    let mut group = c.benchmark_group("comm_all_first60");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("PDall", "imdb-default"), |b| {
        b.iter(|| {
            let mut it = CommAll::new(&g, &spec);
            let mut n = 0;
            while n < cap && it.next().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    group.bench_function(BenchmarkId::new("BUall", "imdb-default"), |b| {
        b.iter(|| black_box(bu_all(&g, &spec, Some(cap)).communities.len()))
    });
    group.bench_function(BenchmarkId::new("TDall", "imdb-default"), |b| {
        b.iter(|| black_box(td_all(&g, &spec, Some(cap)).communities.len()))
    });
    group.finish();
}

fn bench_comm_k_total(c: &mut Criterion) {
    let p = Prepared::imdb(Scale::Quick);
    let (kwf, l, rmax, _) = p.grid.defaults;
    let pq = p.project(kwf, l, rmax);
    let g = pq.projected.graph.clone();
    let spec = pq.spec;
    let k = 30usize;
    let mut group = c.benchmark_group("comm_k_top30");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("PDk", "imdb-default"), |b| {
        b.iter(|| black_box(CommK::new(&g, &spec).take(k).count()))
    });
    group.bench_function(BenchmarkId::new("BUk", "imdb-default"), |b| {
        b.iter(|| black_box(bu_topk(&g, &spec, k, None).communities.len()))
    });
    group.bench_function(BenchmarkId::new("TDk", "imdb-default"), |b| {
        b.iter(|| black_box(td_topk(&g, &spec, k, None).communities.len()))
    });
    group.finish();
}

fn bench_interactive_resume(c: &mut Criterion) {
    // Fig. 12's primitive: the marginal cost of "+10 more" after top-40.
    let p = Prepared::imdb(Scale::Quick);
    let (kwf, l, rmax, _) = p.grid.defaults;
    let pq = p.project(kwf, l, rmax);
    let g = pq.projected.graph.clone();
    let spec = pq.spec;
    let mut group = c.benchmark_group("interactive_next10");
    group.sample_size(10);
    group.bench_function("PDk_resume", |b| {
        b.iter_batched(
            || {
                let mut it = CommK::new(&g, &spec);
                let mut n = 0;
                while n < 40 && it.next().is_some() {
                    n += 1;
                }
                it
            },
            |mut it| black_box(it.by_ref().take(10).count()),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("BUk_recompute", |b| {
        b.iter(|| black_box(bu_topk(&g, &spec, 50, None).communities.len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_comm_all_delay,
    bench_comm_k_total,
    bench_interactive_resume
);
criterion_main!(benches);
