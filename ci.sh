#!/usr/bin/env bash
# CI gate: build, test, format, lint, repo-specific static analysis. Run
# locally before pushing; .github/workflows/ci.yml runs the same sequence
# plus the hardening lane (Miri, cargo-deny) with the tools installed.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# --release so debug_assertions are off and the validators run purely via
# the feature gate (the debug profile exercises them for free above).
echo "==> cargo test (verify feature: deep structural validators)"
cargo test -q --workspace --release --features verify

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# Parallel lane: pin the worker pool to 2 threads so any serial/parallel
# divergence shows up, then run the dedicated equivalence gate.
echo "==> cargo test (RAYON_NUM_THREADS=2)"
RAYON_NUM_THREADS=2 cargo test -q --workspace --release

echo "==> serial/parallel equivalence gate"
RAYON_NUM_THREADS=2 cargo test -q --release --test parallel_equivalence

echo "==> xtask self-tests"
cargo test -q --release --manifest-path xtask/Cargo.toml

echo "==> cargo xtask lint"
cargo run --quiet --release --manifest-path xtask/Cargo.toml -- lint

# Hardening lane: skipped gracefully where the tools are absent; the
# GitHub workflow installs and runs both unconditionally.
echo "==> cargo deny"
if command -v cargo-deny >/dev/null 2>&1; then
    cargo deny check
else
    echo "    cargo-deny not installed; skipped (CI hardening lane runs it)"
fi

echo "==> miri (fibheap + graph unit tests)"
if cargo miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-strict-provenance" cargo miri test -p comm-fibheap -p comm-graph --lib
else
    echo "    miri not installed; skipped (CI hardening lane runs it)"
fi

echo "==> ci OK"
