//! Exhaustive-interleaving model of the admission gate's permit handoff.
//!
//! `loom` is not available in this build environment, so this is a
//! hand-rolled model checker in the same spirit: the gate's `admit` /
//! `Permit::drop` logic is re-expressed as a small state machine whose
//! atomic steps are exactly the critical sections of the real code
//! (`crates/serve/src/admission.rs`), and a depth-first search explores
//! **every** scheduler interleaving of N clients, checking safety
//! invariants at every reachable state:
//!
//! * `inflight` never exceeds `max_inflight` (permits are real slots);
//! * `queued` never exceeds `max_queue` (the daemon never queues to death);
//! * counters never underflow (a double-release would be caught);
//! * every client terminates as exactly admitted-once or shed-once, and
//!   the final state is drained (`inflight == queued == 0`);
//! * no reachable state deadlocks (some step is always enabled until all
//!   clients are done).
//!
//! The checker validates itself the same way the xtask analyzers do: a
//! seeded mutation (dropping the `queued -= 1` on timeout — a classic
//! lost-decrement) must be caught by the search.

use std::collections::HashSet;

/// How many timed re-checks a waiting client gets before its wait budget
/// is exhausted (models `queue_wait` draining to zero).
const WAIT_BUDGET: u8 = 2;

/// What each modeled client is doing. Mirrors the phases of `admit()`:
/// one critical section to enter, a wait loop, and the permit's drop.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Phase {
    /// Has not called `admit()` yet.
    Start,
    /// Parked in the condvar loop with this much wait budget left.
    Waiting(u8),
    /// Admitted and holding the permit (will release next).
    Holding,
    /// Terminal: admitted then released.
    DoneAdmitted,
    /// Terminal: shed (queue full or wait timed out).
    DoneShed,
}

/// One global state of the model: the gate counters plus every client.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct State<const N: usize> {
    inflight: usize,
    queued: usize,
    clients: [Phase; N],
}

/// The seeded bugs the self-check plants, [`Mutation::None`] for the
/// faithful model.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mutation {
    None,
    /// Timeout path forgets `queued -= 1` (lost decrement).
    LeakQueueSlotOnTimeout,
    /// Release path forgets `inflight -= 1` (leaked permit).
    LeakPermitOnRelease,
}

struct Model {
    max_inflight: usize,
    max_queue: usize,
    mutation: Mutation,
}

impl Model {
    /// All states reachable from `st` by letting client `i` take its next
    /// atomic step. Empty when `i` has no enabled step in `st`.
    fn steps<const N: usize>(&self, st: &State<N>, i: usize) -> Vec<State<N>> {
        let mut out = Vec::new();
        match st.clients[i] {
            // The entry critical section of admit(): fast path, immediate
            // shed on a full queue, or enqueue.
            Phase::Start => {
                let mut next = st.clone();
                if st.inflight < self.max_inflight && st.queued == 0 {
                    next.inflight += 1;
                    next.clients[i] = Phase::Holding;
                } else if st.queued >= self.max_queue {
                    next.clients[i] = Phase::DoneShed;
                } else {
                    next.queued += 1;
                    next.clients[i] = Phase::Waiting(WAIT_BUDGET);
                }
                out.push(next);
            }
            // One pass through the condvar loop body. The scheduler choice
            // of *which* waiter re-checks first models notify_one racing
            // spurious wakeups and timeouts.
            Phase::Waiting(budget) => {
                if st.inflight < self.max_inflight {
                    // Woken with a free slot: claim it.
                    let mut next = st.clone();
                    next.queued -= 1;
                    next.inflight += 1;
                    next.clients[i] = Phase::Holding;
                    out.push(next);
                } else if budget > 0 {
                    // Wait again with less budget remaining.
                    let mut next = st.clone();
                    next.clients[i] = Phase::Waiting(budget - 1);
                    out.push(next);
                } else {
                    // queue_wait exhausted: shed.
                    let mut next = st.clone();
                    if self.mutation != Mutation::LeakQueueSlotOnTimeout {
                        next.queued -= 1;
                    }
                    next.clients[i] = Phase::DoneShed;
                    out.push(next);
                }
            }
            // Permit::drop — the release critical section.
            Phase::Holding => {
                let mut next = st.clone();
                if self.mutation != Mutation::LeakPermitOnRelease {
                    next.inflight -= 1;
                }
                next.clients[i] = Phase::DoneAdmitted;
                out.push(next);
            }
            Phase::DoneAdmitted | Phase::DoneShed => {}
        }
        out
    }

    /// Exhaustive DFS over every interleaving of `N` clients. Returns the
    /// number of distinct states visited, or an invariant-violation
    /// description.
    fn check<const N: usize>(&self) -> Result<usize, String> {
        let start = State {
            inflight: 0,
            queued: 0,
            clients: [Phase::Start; N],
        };
        let mut seen: HashSet<State<N>> = HashSet::new();
        let mut stack = vec![start];
        while let Some(st) = stack.pop() {
            if !seen.insert(st.clone()) {
                continue;
            }
            if st.inflight > self.max_inflight {
                return Err(format!("inflight {} exceeds cap: {st:?}", st.inflight));
            }
            if st.queued > self.max_queue {
                return Err(format!("queued {} exceeds cap: {st:?}", st.queued));
            }
            let done = st
                .clients
                .iter()
                .all(|c| matches!(c, Phase::DoneAdmitted | Phase::DoneShed));
            if done {
                if st.inflight != 0 || st.queued != 0 {
                    return Err(format!("terminal state not drained: {st:?}"));
                }
                continue;
            }
            let before = stack.len();
            for i in 0..N {
                stack.extend(self.steps(&st, i));
            }
            if stack.len() == before {
                return Err(format!("deadlock: no client can step in {st:?}"));
            }
        }
        Ok(seen.len())
    }
}

#[test]
fn handoff_is_safe_under_every_interleaving() {
    // The contended shape: one slot, a two-deep queue, four clients —
    // every admit path (fast, queued-then-admitted, shed-on-full,
    // shed-on-timeout) is reachable.
    let m = Model {
        max_inflight: 1,
        max_queue: 2,
        mutation: Mutation::None,
    };
    let states = m
        .check::<4>()
        .expect("no interleaving violates the gate invariants");
    // The search must actually have explored a non-trivial space.
    assert!(states > 1_000, "only {states} states explored");
}

#[test]
fn wider_gate_is_safe_too() {
    let m = Model {
        max_inflight: 2,
        max_queue: 1,
        mutation: Mutation::None,
    };
    m.check::<5>().expect("2-slot gate safe under 5 clients");
}

#[test]
fn zero_queue_gate_never_parks_a_client() {
    // max_queue = 0 must shed without waiting: no reachable state may
    // contain a Waiting client.
    let m = Model {
        max_inflight: 1,
        max_queue: 0,
        mutation: Mutation::None,
    };
    m.check::<3>().expect("shed-only gate is safe");
    // Re-walk reachable states asserting the stronger property.
    let start = State {
        inflight: 0,
        queued: 0,
        clients: [Phase::Start; 3],
    };
    let mut seen = HashSet::new();
    let mut stack = vec![start];
    while let Some(st) = stack.pop() {
        if !seen.insert(st.clone()) {
            continue;
        }
        assert!(
            !st.clients.iter().any(|c| matches!(c, Phase::Waiting(_))),
            "client parked despite max_queue = 0: {st:?}"
        );
        for i in 0..3 {
            stack.extend(m.steps(&st, i));
        }
    }
}

#[test]
fn seeded_lost_queue_decrement_is_caught() {
    let m = Model {
        max_inflight: 1,
        max_queue: 2,
        mutation: Mutation::LeakQueueSlotOnTimeout,
    };
    let err = m
        .check::<4>()
        .expect_err("leaked queue slot must be detected");
    assert!(err.contains("not drained"), "unexpected diagnosis: {err}");
}

#[test]
fn seeded_leaked_permit_is_caught() {
    let m = Model {
        max_inflight: 1,
        max_queue: 2,
        mutation: Mutation::LeakPermitOnRelease,
    };
    let err = m.check::<4>().expect_err("leaked permit must be detected");
    // A leaked permit either wedges waiters (deadlock once budgets are
    // spent... which the timeout path converts to sheds) or leaves the
    // terminal state undrained — both are invariant violations.
    assert!(
        err.contains("not drained") || err.contains("deadlock"),
        "unexpected diagnosis: {err}"
    );
}
