//! The process exit-code contract, shared by every non-interactive
//! entry point (`batch`, `serve`, `client`).
//!
//! Scripts and CI lanes branch on these, so they are part of the public
//! interface — change them only with a changelog entry:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | complete: every query ran to completion |
//! | 1    | runtime failure: I/O, transport exhausted, daemon died |
//! | 2    | usage: unknown flag, malformed value, missing argument |
//! | 3    | interrupted: a certified exact-prefix answer (deadline, |
//! |      | budget, or Ctrl-C) — partial results were produced |
//! | 4    | overloaded: the request was explicitly shed by admission |
//! |      | control and never executed — retry later |

/// Every query completed.
pub const OK: i32 = 0;
/// Runtime failure (I/O error, transport retries exhausted).
pub const RUNTIME: i32 = 1;
/// Bad command-line usage.
pub const USAGE: i32 = 2;
/// Interrupted: certified exact-prefix (partial) results.
pub const INTERRUPTED: i32 = 3;
/// Explicitly shed by admission control; nothing executed.
pub const OVERLOADED: i32 = 4;
