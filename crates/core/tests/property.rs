//! Property tests: the polynomial-delay enumerators must agree with the
//! exponential naive oracle on random graphs — completeness,
//! duplication-freeness, cost correctness, rank order, and resumability.

use comm_core::naive::{naive_all_cores, naive_community_nodes};
use comm_core::{
    bu_all, bu_topk, comm_all, comm_all_guarded, comm_k_guarded, get_community, td_all, td_topk,
    CommK, Community, Core, CostFn, EnginePool, InterruptReason, LawlerK, NeighborSets, Outcome,
    Parallelism, ProjectionIndex, QuerySpec, RunGuard,
};
use comm_graph::{DijkstraEngine, Graph, GraphBuilder, Kernel, NodeId, Weight};
use proptest::prelude::*;

/// A random sparse weighted digraph plus keyword sets and a radius.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    edges: Vec<(u32, u32, u32)>,
    keyword_nodes: Vec<Vec<u32>>,
    rmax: u32,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (4usize..18, 1usize..4)
        .prop_flat_map(|(n, l)| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..6), 0..(n * 3));
            let keywords =
                proptest::collection::vec(proptest::collection::vec(0..n as u32, 1..4), l..=l);
            (Just(n), edges, keywords, 2u32..14)
        })
        .prop_map(|(n, edges, keyword_nodes, rmax)| Scenario {
            n,
            edges,
            keyword_nodes,
            rmax,
        })
}

fn build(s: &Scenario) -> (Graph, QuerySpec) {
    let mut b = GraphBuilder::new(s.n);
    for &(u, v, w) in &s.edges {
        b.add_edge(NodeId(u), NodeId(v), Weight::from(w));
    }
    let spec = QuerySpec::new(
        s.keyword_nodes
            .iter()
            .map(|set| set.iter().map(|&v| NodeId(v)).collect())
            .collect(),
        Weight::from(s.rmax),
    );
    (b.build(), spec)
}

fn sorted_cores(cores: impl IntoIterator<Item = Core>) -> Vec<Core> {
    let mut v: Vec<Core> = cores.into_iter().collect();
    v.sort();
    v
}

/// Structural invariants every emitted community must satisfy, on complete
/// *and* partial (guard-interrupted) output: at least one center, strictly
/// sorted role lists, and the core contained in the knodes.
fn check_partial_invariants(
    communities: &[Community],
) -> Result<(), proptest::test_runner::TestCaseError> {
    for c in communities {
        prop_assert!(!c.centers.is_empty(), "community without a center");
        prop_assert!(
            c.centers.windows(2).all(|w| w[0] < w[1]),
            "centers unsorted"
        );
        prop_assert!(c.knodes.windows(2).all(|w| w[0] < w[1]), "knodes unsorted");
        prop_assert!(
            c.path_nodes.windows(2).all(|w| w[0] < w[1]),
            "path nodes unsorted"
        );
        for n in &c.core.0 {
            prop_assert!(c.knodes.contains(n), "core node missing from knodes");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// COMM-all is complete and duplication-free: its core set equals the
    /// naive oracle's exactly.
    #[test]
    fn comm_all_equals_naive(s in scenario()) {
        let (g, spec) = build(&s);
        let expect = sorted_cores(naive_all_cores(&g, &spec).into_iter().map(|(c, _)| c));
        let got_list: Vec<Core> = comm_all(&g, &spec).into_iter().map(|c| c.core).collect();
        let deduped = {
            let mut v = got_list.clone();
            v.sort();
            let before = v.len();
            v.dedup();
            prop_assert_eq!(before, v.len(), "COMM-all emitted a duplicate core");
            v
        };
        prop_assert_eq!(deduped, expect);
    }

    /// COMM-k emits the same core set, in non-decreasing true-cost order,
    /// with per-community costs matching the oracle.
    #[test]
    fn comm_k_equals_naive_in_rank_order(s in scenario()) {
        let (g, spec) = build(&s);
        let expect = naive_all_cores(&g, &spec);
        let got: Vec<(Core, Weight)> = CommK::new(&g, &spec).map(|c| (c.core, c.cost)).collect();
        prop_assert_eq!(got.len(), expect.len());
        // Cost sequence identical (ties may order differently, so compare
        // the cost vectors and the core sets separately).
        let costs_got: Vec<Weight> = got.iter().map(|&(_, w)| w).collect();
        let costs_expect: Vec<Weight> = expect.iter().map(|&(_, w)| w).collect();
        prop_assert_eq!(costs_got, costs_expect);
        let a = sorted_cores(got.into_iter().map(|(c, _)| c));
        let b = sorted_cores(expect.into_iter().map(|(c, _)| c));
        prop_assert_eq!(a, b);
    }

    /// Stopping and resuming CommK at an arbitrary point changes nothing.
    #[test]
    fn comm_k_resume_invariance(s in scenario(), split in 0usize..6) {
        let (g, spec) = build(&s);
        let oneshot: Vec<Core> = CommK::new(&g, &spec).map(|c| c.core).collect();
        let mut it = CommK::new(&g, &spec);
        let mut resumed: Vec<Core> = it.by_ref().take(split).map(|c| c.core).collect();
        resumed.extend(it.map(|c| c.core));
        prop_assert_eq!(resumed, oneshot);
    }

    /// GetCommunity's role assignment matches the brute-force definition.
    #[test]
    fn get_community_matches_definition(s in scenario()) {
        let (g, spec) = build(&s);
        let mut engine = DijkstraEngine::new(g.node_count());
        for (core, cost) in naive_all_cores(&g, &spec).into_iter().take(8) {
            let c = get_community(&g, &mut engine, &core, spec.rmax)
                .expect("oracle core has a center");
            prop_assert_eq!(c.cost, cost, "cost mismatch for {:?}", &c.core);
            let (centers, members) = naive_community_nodes(&g, &core, spec.rmax);
            prop_assert_eq!(&c.centers, &centers);
            prop_assert_eq!(c.nodes(), &members[..]);
            // Role partition: knodes ∪ centers ∪ pnodes = members.
            let mut roles: Vec<NodeId> = c
                .knodes.iter().chain(&c.centers).chain(&c.path_nodes).copied().collect();
            roles.sort_unstable();
            roles.dedup();
            prop_assert_eq!(roles, members);
        }
    }

    /// Both expanding baselines agree with the oracle on the core set.
    #[test]
    fn baselines_equal_naive(s in scenario()) {
        let (g, spec) = build(&s);
        let expect = sorted_cores(naive_all_cores(&g, &spec).into_iter().map(|(c, _)| c));
        let bu = sorted_cores(bu_all(&g, &spec, None).communities.into_iter().map(|c| c.core));
        let td = sorted_cores(td_all(&g, &spec, None).communities.into_iter().map(|c| c.core));
        prop_assert_eq!(&bu, &expect, "bottom-up disagrees with oracle");
        prop_assert_eq!(&td, &expect, "top-down disagrees with oracle");
    }

    /// The baselines' top-k cost sequences match the polynomial-delay one.
    #[test]
    fn baseline_topk_order_matches_pdk(s in scenario(), k in 1usize..8) {
        let (g, spec) = build(&s);
        let pd: Vec<Weight> = CommK::new(&g, &spec).take(k).map(|c| c.cost).collect();
        let bu: Vec<Weight> = bu_topk(&g, &spec, k, None).communities.iter().map(|c| c.cost).collect();
        let td: Vec<Weight> = td_topk(&g, &spec, k, None).communities.iter().map(|c| c.cost).collect();
        prop_assert_eq!(&bu, &pd);
        prop_assert_eq!(&td, &pd);
    }

    /// The naive Lawler procedure produces the exact same enumeration as
    /// COMM-k (it only lacks the sweep sharing).
    #[test]
    fn lawler_equals_comm_k(s in scenario()) {
        let (g, spec) = build(&s);
        let ours: Vec<(Core, Weight)> = CommK::new(&g, &spec).map(|c| (c.core, c.cost)).collect();
        let lawler: Vec<(Core, Weight)> = LawlerK::new(&g, &spec).map(|c| (c.core, c.cost)).collect();
        prop_assert_eq!(ours, lawler);
    }

    /// The MaxDistance cost function: same result set, correct ordering,
    /// across enumerators and the oracle.
    #[test]
    fn max_distance_cost_agrees_with_oracle(s in scenario()) {
        let (g, spec) = build(&s);
        let spec = spec.with_cost(CostFn::MaxDistance);
        let expect = naive_all_cores(&g, &spec);
        let got: Vec<(Core, Weight)> = CommK::new(&g, &spec).map(|c| (c.core, c.cost)).collect();
        prop_assert_eq!(got.len(), expect.len());
        let costs_got: Vec<Weight> = got.iter().map(|&(_, w)| w).collect();
        let costs_expect: Vec<Weight> = expect.iter().map(|&(_, w)| w).collect();
        prop_assert_eq!(costs_got, costs_expect);
        prop_assert_eq!(
            sorted_cores(got.into_iter().map(|(c, _)| c)),
            sorted_cores(expect.into_iter().map(|(c, _)| c))
        );
        // Baselines under the same cost function agree too.
        let k = 6;
        let pd: Vec<Weight> = CommK::new(&g, &spec).take(k).map(|c| c.cost).collect();
        let bu: Vec<Weight> = bu_topk(&g, &spec, k, None).communities.iter().map(|c| c.cost).collect();
        prop_assert_eq!(bu, pd);
    }

    /// Projection (Sec. VI): enumerating on the projected graph yields
    /// exactly the communities of the full graph, including costs.
    #[test]
    fn projection_preserves_results(s in scenario(), slack in 0u32..4) {
        let (g, spec) = build(&s);
        let index_radius = spec.rmax + Weight::from(slack);
        let names: Vec<String> = (0..spec.l()).map(|i| format!("kw{i}")).collect();
        let idx = ProjectionIndex::build(
            &g,
            names
                .iter()
                .zip(&spec.keyword_nodes)
                .map(|(n, v)| (n.as_str(), v.as_slice())),
            index_radius,
        );
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let pq = idx.project(&name_refs, spec.rmax).expect("all keywords indexed");
        let full: Vec<(Core, Weight)> = naive_all_cores(&g, &spec);
        let mut projected: Vec<(Core, Weight)> = comm_all(&pq.projected.graph, &pq.spec)
            .into_iter()
            .map(|c| {
                (
                    Core(c.core.0.iter().map(|&n| pq.projected.to_original(n)).collect()),
                    c.cost,
                )
            })
            .collect();
        projected.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        prop_assert_eq!(projected, full);
    }

    /// A guarded COMM-all tripped at any fault-injection point emits an
    /// exact prefix of the unguarded enumeration, and every partial
    /// community still satisfies the structural invariants.
    #[test]
    fn guarded_comm_all_is_prefix_of_unguarded(s in scenario(), trip in 0u64..600) {
        let (g, spec) = build(&s);
        let full: Vec<(Core, Weight)> =
            comm_all(&g, &spec).into_iter().map(|c| (c.core, c.cost)).collect();
        let out = comm_all_guarded(&g, &spec, RunGuard::new().with_trip_after(trip)).unwrap();
        let (partial, interrupted) = match out {
            Outcome::Complete(v) => (v, false),
            Outcome::Interrupted { reason, partial } => {
                prop_assert_eq!(reason, InterruptReason::Injected);
                (partial, true)
            }
        };
        prop_assert!(partial.len() <= full.len());
        for (got, want) in partial.iter().zip(&full) {
            prop_assert_eq!(&got.core, &want.0, "guarded output diverged from prefix");
            prop_assert_eq!(got.cost, want.1);
        }
        if !interrupted {
            prop_assert_eq!(partial.len(), full.len(), "untripped run must be complete");
        }
        check_partial_invariants(&partial)?;
    }

    /// Same prefix guarantee for COMM-k, plus rank order: costs on the
    /// partial output are non-decreasing.
    #[test]
    fn guarded_comm_k_is_ranked_prefix_of_unguarded(s in scenario(), trip in 0u64..600) {
        let (g, spec) = build(&s);
        let full: Vec<(Core, Weight)> =
            CommK::new(&g, &spec).map(|c| (c.core, c.cost)).collect();
        let out =
            comm_k_guarded(&g, &spec, usize::MAX, RunGuard::new().with_trip_after(trip)).unwrap();
        let partial = out.into_value();
        prop_assert!(partial.len() <= full.len());
        for (got, want) in partial.iter().zip(&full) {
            prop_assert_eq!(&got.core, &want.0, "guarded output diverged from prefix");
            prop_assert_eq!(got.cost, want.1);
        }
        for w in partial.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost, "partial ranking out of order");
        }
        check_partial_invariants(&partial)?;
    }

    /// Monotonicity: growing the radius can only add communities.
    #[test]
    fn radius_monotonicity(s in scenario()) {
        let (g, spec) = build(&s);
        let small = sorted_cores(naive_all_cores(&g, &spec).into_iter().map(|(c, _)| c));
        let mut bigger = spec.clone();
        bigger.rmax = spec.rmax + Weight::from(3u32);
        let large = sorted_cores(comm_all(&g, &bigger).into_iter().map(|c| c.core));
        for c in &small {
            prop_assert!(large.binary_search(c).is_ok(), "lost {c:?} when radius grew");
        }
    }

    /// Parallel `NeighborSets` refill is bit-identical to the serial
    /// per-dimension loop: same dist/src per dimension and node, same
    /// sum/count accumulators, for every thread count.
    #[test]
    fn parallel_neighbor_sets_match_serial(s in scenario()) {
        let (g, spec) = build(&s);
        let l = spec.l();
        let n = g.node_count();
        let mut serial = NeighborSets::new(l, n);
        let mut engine = DijkstraEngine::new(n);
        for (i, seeds) in spec.keyword_nodes.iter().enumerate() {
            serial.recompute_dim(&g, &mut engine, i, seeds.iter().copied(), spec.rmax);
        }
        let pool = EnginePool::new();
        for threads in [1usize, 2, 4, 8] {
            let mut par = NeighborSets::new(l, n);
            par.recompute_all(&g, &pool, &spec.keyword_nodes, spec.rmax,
                Parallelism::new(threads));
            for u in (0..n as u32).map(NodeId) {
                for i in 0..l {
                    prop_assert_eq!(par.dist(i, u), serial.dist(i, u),
                        "dist dim {} node {} at {} threads", i, u, threads);
                    prop_assert_eq!(par.src(i, u), serial.src(i, u),
                        "src dim {} node {} at {} threads", i, u, threads);
                }
                prop_assert_eq!(par.sum(u), serial.sum(u),
                    "sum at node {} at {} threads", u, threads);
                prop_assert_eq!(par.count(u), serial.count(u),
                    "count at node {} at {} threads", u, threads);
            }
            prop_assert_eq!(par.best_core(), serial.best_core());
        }
    }

    /// The fused batched refill is bit-identical to the serial
    /// per-dimension loop under every kernel: same dist/src per dimension
    /// and node, same sum/count accumulators, same best core. (Calling
    /// `recompute_all_batched_guarded` directly bypasses the seed-mass
    /// gate, so the fused pass itself is exercised even on tiny inputs.)
    #[test]
    fn batched_neighbor_sets_match_serial(s in scenario()) {
        let (g, spec) = build(&s);
        let l = spec.l();
        let n = g.node_count();
        let mut serial = NeighborSets::new(l, n);
        let mut engine = DijkstraEngine::new(n);
        for (i, seeds) in spec.keyword_nodes.iter().enumerate() {
            serial.recompute_dim(&g, &mut engine, i, seeds.iter().copied(), spec.rmax);
        }
        let pool = EnginePool::new();
        for kernel in [Kernel::Heap, Kernel::Bucket, Kernel::Auto] {
            pool.set_kernel(kernel);
            let mut batched = NeighborSets::new(l, n);
            batched
                .recompute_all_batched_guarded(
                    &g, &pool, &spec.keyword_nodes, spec.rmax, &RunGuard::unlimited())
                .expect("unlimited guard never trips");
            for u in (0..n as u32).map(NodeId) {
                for i in 0..l {
                    prop_assert_eq!(batched.dist(i, u), serial.dist(i, u),
                        "dist dim {} node {} kernel {}", i, u, kernel);
                    prop_assert_eq!(batched.src(i, u), serial.src(i, u),
                        "src dim {} node {} kernel {}", i, u, kernel);
                }
                prop_assert_eq!(batched.sum(u), serial.sum(u),
                    "sum at node {} kernel {}", u, kernel);
                prop_assert_eq!(batched.count(u), serial.count(u),
                    "count at node {} kernel {}", u, kernel);
            }
            prop_assert_eq!(batched.best_core(), serial.best_core());
        }
    }

    /// Tripping one shared cancel flag interrupts every in-flight query of
    /// a concurrent batch: each returns `Outcome::Interrupted` with the
    /// cancellation reason and a valid (possibly empty) prefix.
    #[test]
    fn shared_guard_trip_interrupts_every_inflight_query(s in scenario(), batch in 2usize..6) {
        let (g, spec) = build(&s);
        let flag = RunGuard::new().cancel_flag();
        flag.store(true, std::sync::atomic::Ordering::SeqCst);
        let tasks: Vec<_> = (0..batch)
            .map(|_| {
                let (g, spec, flag) = (&g, &spec, &flag);
                move || {
                    comm_k_guarded(g, spec, usize::MAX,
                        RunGuard::new().with_cancel_flag(std::sync::Arc::clone(flag)))
                }
            })
            .collect();
        for out in Parallelism::new(4).map(tasks) {
            match out.unwrap() {
                Outcome::Interrupted { reason, partial } => {
                    prop_assert_eq!(reason, InterruptReason::Cancelled);
                    check_partial_invariants(&partial)?;
                }
                Outcome::Complete(_) => prop_assert!(false, "tripped guard ran to completion"),
            }
        }
    }
}
