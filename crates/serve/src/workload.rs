//! A deterministic synthetic serving workload: a torus grid graph with
//! keywords assigned by residue class, plus a repeating query mix.
//!
//! Everything here is seed-free and dependency-free on purpose: the chaos
//! tests, the CI smoke lane, and the offline bench all need a workload
//! that builds identically everywhere (no datasets crate, no RNG) and is
//! heavy enough that deadlines and budgets actually bite.

use crate::engine::{EngineConfig, QueryEngine};
use crate::protocol::Priority;
use comm_core::QueryError;
use comm_graph::weight::index_to_u32;
use comm_graph::{graph_from_edges, NodeId};
use std::collections::HashMap;

/// One query of the load mix.
#[derive(Clone, Debug)]
pub struct QueryMix {
    /// Query keywords.
    pub keywords: Vec<String>,
    /// Radius bound.
    pub rmax: f64,
    /// Top-k.
    pub k: u32,
    /// Service level.
    pub priority: Priority,
}

/// The keyword vocabulary of the synthetic workload.
pub const KEYWORDS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Builds a `side × side` torus grid: node `(r, c)` connects to its four
/// neighbors (wrapping) with weights cycling `1.0, 1.5, 2.0` so shortest
/// paths are non-trivial. Keyword `KEYWORDS[i]` lands on nodes whose id is
/// `≡ i (mod 5 + i)` — overlapping, uneven classes, as real attributes
/// would be.
pub fn synthetic_engine(side: usize, cfg: EngineConfig) -> Result<QueryEngine, QueryError> {
    let n = side * side;
    let id = |r: usize, c: usize| index_to_u32((r % side) * side + (c % side));
    let mut edges: Vec<(u32, u32, f64)> = Vec::with_capacity(n * 2);
    let weights = [1.0, 1.5, 2.0];
    for r in 0..side {
        for c in 0..side {
            let w1 = weights[(r + c) % weights.len()];
            let w2 = weights[(r + 2 * c) % weights.len()];
            edges.push((id(r, c), id(r, c + 1), w1));
            edges.push((id(r, c + 1), id(r, c), w1));
            edges.push((id(r, c), id(r + 1, c), w2));
            edges.push((id(r + 1, c), id(r, c), w2));
        }
    }
    let graph = graph_from_edges(n, &edges);
    let mut vocab: HashMap<String, Vec<NodeId>> = HashMap::new();
    for (i, kw) in KEYWORDS.iter().enumerate() {
        let modulus = 5 + i;
        let nodes: Vec<NodeId> = (0..n)
            .filter(|v| v % modulus == i)
            .map(|v| NodeId(index_to_u32(v)))
            .collect();
        vocab.insert((*kw).to_string(), nodes);
    }
    QueryEngine::new(graph, vocab, cfg)
}

/// The repeating query mix: cache-friendly repeats plus heavier radius/k
/// combinations, across all three priorities.
pub fn synthetic_mix(rmax: f64) -> Vec<QueryMix> {
    let kw = |names: &[&str]| -> Vec<String> { names.iter().map(|s| s.to_string()).collect() };
    vec![
        QueryMix {
            keywords: kw(&["alpha", "beta"]),
            rmax: rmax / 2.0,
            k: 5,
            priority: Priority::Normal,
        },
        QueryMix {
            keywords: kw(&["beta", "gamma"]),
            rmax,
            k: 10,
            priority: Priority::Normal,
        },
        QueryMix {
            keywords: kw(&["alpha", "beta"]),
            rmax: rmax / 2.0,
            k: 5,
            priority: Priority::Low,
        },
        QueryMix {
            keywords: kw(&["alpha", "gamma", "delta"]),
            rmax,
            k: 20,
            priority: Priority::High,
        },
        QueryMix {
            keywords: kw(&["beta", "gamma"]),
            rmax,
            k: 10,
            priority: Priority::Low,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_engine_builds_and_answers() {
        let engine = synthetic_engine(8, EngineConfig::default()).unwrap();
        assert_eq!(engine.graph().node_count(), 64);
        let out = engine
            .answer(
                &["alpha".to_string(), "beta".to_string()],
                4.0,
                3,
                &comm_graph::RunGuard::unlimited(),
            )
            .unwrap();
        assert!(out.is_complete());
        assert!(
            !out.value().is_empty(),
            "the torus must contain alpha/beta communities within radius 4"
        );
    }

    #[test]
    fn mix_covers_every_priority() {
        let mix = synthetic_mix(6.0);
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert!(mix.iter().any(|q| q.priority == p), "missing {p}");
        }
    }
}
