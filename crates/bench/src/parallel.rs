//! Concurrent batch-query driver and the `BENCH_parallel.json` report.
//!
//! [`BatchRunner`] executes a workload of top-k community queries across a
//! [`Parallelism`] thread pool. Every in-flight query shares one cancel
//! flag (tripping it interrupts the whole batch) and optionally carries a
//! per-query deadline; per-query latencies are collected into percentile
//! statistics plus an aggregate queries/sec figure.

use comm_core::{comm_k_guarded, Outcome, Parallelism, QuerySpec, RunGuard};
use comm_graph::{Graph, NodeId};
use serde::Serialize;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

/// One query of a batch workload.
#[derive(Clone, Debug)]
pub struct BatchQuery {
    /// Display label (e.g. the keyword list).
    pub label: String,
    /// `V_i` per keyword, in graph node ids.
    pub keyword_nodes: Vec<Vec<NodeId>>,
    /// The radius `Rmax`.
    pub rmax: f64,
    /// How many top communities to produce.
    pub k: usize,
}

/// What happened to one query of the batch.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum QueryStatus {
    /// Ran to completion.
    Complete {
        /// Communities produced (≤ k).
        communities: usize,
    },
    /// The shared flag, deadline, or a budget tripped mid-run.
    Interrupted {
        /// The interrupt reason, stringified.
        reason: String,
        /// Communities emitted before the trip.
        partial: usize,
    },
    /// The spec failed validation.
    Invalid {
        /// The validation error, stringified.
        error: String,
    },
}

/// Per-query result: label, latency, and outcome.
#[derive(Clone, Debug, Serialize)]
pub struct QueryResult {
    /// The query's label.
    pub label: String,
    /// Wall-clock latency in microseconds.
    pub latency_us: f64,
    /// Completion status.
    #[serde(flatten)]
    pub status: QueryStatus,
}

/// Latency percentiles over a batch, in microseconds.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LatencyStats {
    /// Median latency.
    pub p50_us: f64,
    /// 95th-percentile latency.
    pub p95_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
    /// Slowest query.
    pub max_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
}

impl LatencyStats {
    /// Computes percentiles from raw per-query latencies (any order).
    pub fn from_latencies(latencies: &[Duration]) -> LatencyStats {
        if latencies.is_empty() {
            return LatencyStats::default();
        }
        let mut us: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e6).collect();
        us.sort_by(f64::total_cmp);
        let pick = |p: f64| -> f64 {
            let idx = ((p * us.len() as f64).ceil() as usize).clamp(1, us.len()) - 1;
            us[idx]
        };
        LatencyStats {
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            max_us: us[us.len() - 1],
            mean_us: us.iter().sum::<f64>() / us.len() as f64,
        }
    }
}

/// The aggregate outcome of one batch run.
#[derive(Clone, Debug, Serialize)]
pub struct BatchReport {
    /// Worker threads used.
    pub threads: usize,
    /// Total queries submitted.
    pub queries: usize,
    /// Queries that ran to completion.
    pub completed: usize,
    /// Queries interrupted by the shared flag, a deadline, or a budget.
    pub interrupted: usize,
    /// Queries rejected at validation.
    pub invalid: usize,
    /// Wall-clock time for the whole batch, milliseconds.
    pub wall_ms: f64,
    /// Aggregate throughput: queries / wall-clock seconds.
    pub qps: f64,
    /// Latency percentiles across all queries.
    pub latency: LatencyStats,
    /// Per-query results, in submission order.
    pub results: Vec<QueryResult>,
}

impl BatchReport {
    /// Pretty-printed JSON (these types cannot fail to serialize; a
    /// hypothetical failure is reported inside the returned JSON).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

/// Executes query workloads across a thread pool, with per-query deadlines
/// and one shared cancel flag for the whole batch.
pub struct BatchRunner {
    parallelism: Parallelism,
    deadline: Option<Duration>,
    cancel: Arc<AtomicBool>,
}

impl BatchRunner {
    /// A runner executing on `parallelism`'s workers.
    pub fn new(parallelism: Parallelism) -> BatchRunner {
        BatchRunner {
            parallelism,
            deadline: None,
            cancel: RunGuard::new().cancel_flag(),
        }
    }

    /// Adds a per-query wall-clock deadline (each query gets its own
    /// clock, started when the query is picked up by a worker).
    pub fn with_deadline(mut self, deadline: Duration) -> BatchRunner {
        self.deadline = Some(deadline);
        self
    }

    /// The batch-wide cancel flag. Storing `true` (from any thread)
    /// interrupts every in-flight and not-yet-started query.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Trips the batch-wide cancel flag.
    pub fn cancel(&self) {
        self.cancel
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.parallelism.threads()
    }

    /// Runs the whole workload, one `CommK` top-k enumeration per query,
    /// each under its own [`RunGuard`] (shared cancel flag + optional
    /// per-query deadline). Results come back in submission order.
    pub fn run(&self, graph: &Graph, queries: &[BatchQuery]) -> BatchReport {
        let t0 = Instant::now();
        let tasks: Vec<_> = queries
            .iter()
            .map(|q| {
                move || -> QueryResult {
                    let mut guard = RunGuard::new().with_cancel_flag(self.cancel_flag());
                    if let Some(d) = self.deadline {
                        guard = guard.with_deadline(d);
                    }
                    let started = Instant::now();
                    let spec = match QuerySpec::try_new(q.keyword_nodes.clone(), q.rmax) {
                        Ok(spec) => spec,
                        Err(e) => {
                            return QueryResult {
                                label: q.label.clone(),
                                latency_us: started.elapsed().as_secs_f64() * 1e6,
                                status: QueryStatus::Invalid {
                                    error: e.to_string(),
                                },
                            }
                        }
                    };
                    let status = match comm_k_guarded(graph, &spec, q.k, guard) {
                        Ok(Outcome::Complete(cs)) => QueryStatus::Complete {
                            communities: cs.len(),
                        },
                        Ok(Outcome::Interrupted { partial, reason }) => QueryStatus::Interrupted {
                            reason: reason.to_string(),
                            partial: partial.len(),
                        },
                        Err(e) => QueryStatus::Invalid {
                            error: e.to_string(),
                        },
                    };
                    QueryResult {
                        label: q.label.clone(),
                        latency_us: started.elapsed().as_secs_f64() * 1e6,
                        status,
                    }
                }
            })
            .collect();
        let results = self.parallelism.map(tasks);
        let wall = t0.elapsed();
        let latencies: Vec<Duration> = results
            .iter()
            .map(|r| Duration::from_secs_f64(r.latency_us / 1e6))
            .collect();
        let completed = results
            .iter()
            .filter(|r| matches!(r.status, QueryStatus::Complete { .. }))
            .count();
        let interrupted = results
            .iter()
            .filter(|r| matches!(r.status, QueryStatus::Interrupted { .. }))
            .count();
        let invalid = results.len() - completed - interrupted;
        BatchReport {
            threads: self.parallelism.threads(),
            queries: results.len(),
            completed,
            interrupted,
            invalid,
            wall_ms: wall.as_secs_f64() * 1000.0,
            qps: if wall.as_secs_f64() > 0.0 {
                results.len() as f64 / wall.as_secs_f64()
            } else {
                0.0
            },
            latency: LatencyStats::from_latencies(&latencies),
            results,
        }
    }
}

/// Machine metadata recorded next to every timing (so numbers are never
/// read out of context).
#[derive(Clone, Debug, Serialize)]
pub struct MachineInfo {
    /// `std::env::consts::OS`.
    pub os: &'static str,
    /// `std::env::consts::ARCH`.
    pub arch: &'static str,
    /// Available hardware parallelism.
    pub cpus: usize,
    /// The thread-count override env var, if set.
    pub threads_env: Option<String>,
    /// Seconds since the Unix epoch when the report was generated.
    pub generated_unix: u64,
}

impl MachineInfo {
    /// Snapshot of the current machine.
    pub fn capture() -> MachineInfo {
        MachineInfo {
            os: std::env::consts::OS,
            arch: std::env::consts::ARCH,
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            threads_env: std::env::var(comm_graph::parallel::THREADS_ENV).ok(),
            generated_unix: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
        }
    }
}

/// One serial-vs-parallel micro-benchmark sample.
#[derive(Clone, Debug, Serialize)]
pub struct SpeedupSample {
    /// What was measured (e.g. `"neighbor_sets_init"`).
    pub name: String,
    /// Worker threads.
    pub threads: usize,
    /// Wall-clock milliseconds (best of the measured repetitions).
    pub best_ms: f64,
    /// Speedup over the 1-thread sample of the same `name`.
    pub speedup: f64,
}

/// The full `BENCH_parallel.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct ParallelBenchReport {
    /// Machine metadata.
    pub machine: MachineInfo,
    /// Dataset description (name + node/edge counts).
    pub dataset: String,
    /// Serial-vs-parallel micro-benchmarks at 1/2/4/8 threads.
    pub microbench: Vec<SpeedupSample>,
    /// Batch-driver runs at each thread count.
    pub batches: Vec<BatchReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm_datasets::paper_example::{fig4_graph, fig4_keyword_nodes, FIG4_RMAX};

    fn paper_batch(copies: usize) -> Vec<BatchQuery> {
        (0..copies)
            .map(|i| BatchQuery {
                label: format!("paper-{i}"),
                keyword_nodes: fig4_keyword_nodes(),
                rmax: FIG4_RMAX,
                k: 5,
            })
            .collect()
    }

    #[test]
    fn batch_results_are_deterministic_across_thread_counts() {
        let g = fig4_graph();
        let queries = paper_batch(6);
        let serial = BatchRunner::new(Parallelism::serial()).run(&g, &queries);
        assert_eq!(serial.completed, 6);
        assert_eq!(serial.interrupted, 0);
        assert_eq!(serial.invalid, 0);
        for threads in [2usize, 4] {
            let par = BatchRunner::new(Parallelism::new(threads)).run(&g, &queries);
            assert_eq!(par.threads, threads);
            assert_eq!(par.completed, serial.completed);
            // Same labels in the same submission order, same payloads.
            for (a, b) in serial.results.iter().zip(&par.results) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.status, b.status);
            }
        }
    }

    #[test]
    fn pre_tripped_flag_interrupts_every_query() {
        let g = fig4_graph();
        let queries = paper_batch(5);
        let runner = BatchRunner::new(Parallelism::new(4));
        runner.cancel();
        let report = runner.run(&g, &queries);
        assert_eq!(report.completed, 0);
        assert_eq!(report.interrupted, 5);
        for r in &report.results {
            assert!(
                matches!(&r.status, QueryStatus::Interrupted { reason, .. } if reason.contains("cancel")),
                "expected cancellation, got {:?}",
                r.status
            );
        }
    }

    #[test]
    fn cancel_flag_accessor_shares_the_batch_flag() {
        // Tripping the flag obtained from `cancel_flag()` (the handle a
        // controller thread would hold) interrupts the whole batch, same
        // as `cancel()`.
        let g = fig4_graph();
        let runner = BatchRunner::new(Parallelism::new(2));
        let flag = runner.cancel_flag();
        flag.store(true, std::sync::atomic::Ordering::Release);
        let report = runner.run(&g, &paper_batch(4));
        assert_eq!(report.completed, 0);
        assert_eq!(report.interrupted, 4);
    }

    #[test]
    fn invalid_query_is_reported_not_panicked() {
        let g = fig4_graph();
        let queries = vec![BatchQuery {
            label: "bad".into(),
            keyword_nodes: vec![],
            rmax: FIG4_RMAX,
            k: 3,
        }];
        let report = BatchRunner::new(Parallelism::new(2)).run(&g, &queries);
        assert_eq!(report.invalid, 1);
        assert_eq!(report.completed + report.interrupted, 0);
    }

    #[test]
    fn deadline_is_threaded_into_guards() {
        let g = fig4_graph();
        let queries = paper_batch(2);
        // A generous deadline: everything completes.
        let report = BatchRunner::new(Parallelism::new(2))
            .with_deadline(Duration::from_secs(30))
            .run(&g, &queries);
        assert_eq!(report.completed, 2);
        assert!(report.wall_ms >= 0.0);
        assert!(report.qps > 0.0);
    }

    #[test]
    fn latency_percentiles() {
        let ds: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = LatencyStats::from_latencies(&ds);
        assert!((s.p50_us - 50.0).abs() < 1e-6);
        assert!((s.p95_us - 95.0).abs() < 1e-6);
        assert!((s.p99_us - 99.0).abs() < 1e-6);
        assert!((s.max_us - 100.0).abs() < 1e-6);
        assert!((s.mean_us - 50.5).abs() < 1e-6);
        let empty = LatencyStats::from_latencies(&[]);
        assert_eq!(empty.p50_us, 0.0);
    }
}
