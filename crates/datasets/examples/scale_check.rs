//! Timing probe: generation cost at paper scale.
use comm_datasets::{generate_dblp, generate_imdb, DblpConfig, ImdbConfig};
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "dblp".into());
    let t0 = Instant::now();
    let ds = if which == "imdb" {
        generate_imdb(&ImdbConfig::paper_scale())
    } else if let Ok(f) = which.parse::<f64>() {
        generate_dblp(&DblpConfig::default().scaled(f))
    } else {
        generate_dblp(&DblpConfig::paper_scale())
    };
    println!(
        "{}: {} tuples, {} edges in {:?}",
        ds.name,
        ds.db.tuple_count(),
        ds.graph.graph.edge_count(),
        t0.elapsed()
    );
}
