//! The expanding baselines of Sec. III: bottom-up (`BUall`/`BUk`) and
//! top-down (`TDall`/`TDk`).
//!
//! Both are *incremental polynomial time* enumerators, not polynomial
//! delay: to stay duplication-free they keep a pool of already-output
//! cores and check every candidate against it, and for top-k they must
//! collect (and rank) candidate cores before emitting — which is also why
//! they cannot resume when the user enlarges `k` (Exp-3).
//!
//! * **Bottom-up** expands from every keyword node `v ∈ V_i` backwards
//!   within `Rmax`; each reached node `u` accumulates `u.V_i`, the set of
//!   keyword-`i` nodes it can reach. Every node with all `u.V_i` non-empty
//!   is a center whose cross-product `u.V_1 × … × u.V_l` yields candidate
//!   cores. The per-node sets are kept alive for the whole run — the
//!   memory cost Fig. 9 highlights.
//! * **Top-down** expands forward from every node `u ∈ V(G_D)` within
//!   `Rmax`, collecting the keyword nodes it reaches; the per-center state
//!   is transient (freed after `u` is processed), so it uses less memory
//!   than bottom-up, at the same asymptotic time.

use crate::error::QueryError;
use crate::get_community::get_community_guarded;
use crate::types::{Community, Core, CostFn, QuerySpec};
use comm_graph::{
    DijkstraEngine, Direction, Graph, InterruptReason, NodeId, Outcome, RunGuard, Weight,
};
use std::collections::{HashMap, HashSet};

/// Per-center reach lists: `sets[i]` holds the `(keyword_node, dist)`
/// pairs of dimension `i` reachable within `Rmax`.
type ReachSets = Vec<Vec<(NodeId, Weight)>>;

/// Bookkeeping reported by a baseline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselineStats {
    /// Communities emitted.
    pub communities: usize,
    /// Candidate cores generated across all centers (before deduplication).
    pub candidates: usize,
    /// Candidates rejected by the duplication pool.
    pub duplicates: usize,
    /// Peak logical bytes of expansion state + pools + result buffers.
    pub peak_bytes: usize,
    /// Whether the run finished (false: hit its community limit, its
    /// candidate budget, or a guard trip).
    pub completed: bool,
    /// Why the guard cut the run short, if it did.
    pub interrupted: Option<InterruptReason>,
}

/// The result of a baseline run.
pub struct BaselineRun {
    /// The communities found (for the top-k variants, in rank order).
    pub communities: Vec<Community>,
    /// Run statistics.
    pub stats: BaselineStats,
}

const PAIR_BYTES: usize = std::mem::size_of::<(NodeId, Weight)>();

/// Enumerates the cross product of the per-dimension reach lists at one
/// center, reporting each core with the center's total distance. The
/// callback returns `false` to stop early (used by truncated benchmark
/// runs); the function reports whether enumeration ran to completion.
fn cross_product<F: FnMut(Core, Weight) -> bool>(
    sets: &ReachSets,
    cost_fn: CostFn,
    mut emit: F,
) -> bool {
    let l = sets.len();
    debug_assert!(sets.iter().all(|s| !s.is_empty()));
    let mut idx = vec![0usize; l];
    let mut dists = vec![Weight::ZERO; l];
    'outer: loop {
        let mut core = Vec::with_capacity(l);
        for i in 0..l {
            let (v, d) = sets[i][idx[i]];
            core.push(v);
            dists[i] = d;
        }
        if !emit(Core(core), cost_fn.combine(dists.iter().copied())) {
            return false;
        }
        for i in (0..l).rev() {
            idx[i] += 1;
            if idx[i] < sets[i].len() {
                continue 'outer;
            }
            idx[i] = 0;
            if i == 0 {
                break 'outer;
            }
        }
    }
    true
}

/// Runs the bottom-up expansion, building `u.V_i` for every node.
/// Returns `(per_node_sets, bytes_held)`.
fn bottom_up_expand(
    graph: &Graph,
    spec: &QuerySpec,
    engine: &mut DijkstraEngine,
    guard: &RunGuard,
) -> Result<(Vec<ReachSets>, usize), InterruptReason> {
    let n = graph.node_count();
    let l = spec.l();
    let mut sets: Vec<ReachSets> = vec![vec![Vec::new(); l]; n];
    let mut entries = 0usize;
    for (i, v_i) in spec.keyword_nodes.iter().enumerate() {
        for &v in v_i {
            engine.run_guarded(graph, Direction::Reverse, [v], spec.rmax, guard, |s| {
                sets[s.node.index()][i].push((v, s.dist));
                entries += 1;
            })?;
            guard.check_bytes(entries * PAIR_BYTES)?;
        }
    }
    Ok((sets, entries * PAIR_BYTES))
}

/// Wraps a finished run in the `Outcome` the guarded entry points return.
fn wrap_run(run: BaselineRun) -> Outcome<BaselineRun> {
    match run.stats.interrupted {
        None => Outcome::Complete(run),
        Some(reason) => Outcome::Interrupted {
            reason,
            partial: run,
        },
    }
}

/// `BUall`: bottom-up enumeration of all communities.
///
/// `limit` optionally caps the number of communities materialized (the
/// expansion and candidate generation still run in full).
pub fn bu_all(graph: &Graph, spec: &QuerySpec, limit: Option<usize>) -> BaselineRun {
    bu_all_impl(graph, spec, limit, &RunGuard::unlimited())
}

/// [`bu_all`] validating the spec and running under `guard`. An
/// interrupted run carries the communities materialized before the trip.
pub fn bu_all_guarded(
    graph: &Graph,
    spec: &QuerySpec,
    limit: Option<usize>,
    guard: RunGuard,
) -> Result<Outcome<BaselineRun>, QueryError> {
    spec.validate_for(graph)?;
    Ok(wrap_run(bu_all_impl(graph, spec, limit, &guard)))
}

fn bu_all_impl(
    graph: &Graph,
    spec: &QuerySpec,
    limit: Option<usize>,
    guard: &RunGuard,
) -> BaselineRun {
    let mut engine = DijkstraEngine::new(graph.node_count());
    let mut stats = BaselineStats {
        completed: true,
        ..BaselineStats::default()
    };
    if spec.has_empty_keyword() {
        return BaselineRun {
            communities: Vec::new(),
            stats,
        };
    }
    let (sets, expansion_bytes) = match bottom_up_expand(graph, spec, &mut engine, guard) {
        Ok(x) => x,
        Err(reason) => {
            stats.completed = false;
            stats.interrupted = Some(reason);
            return BaselineRun {
                communities: Vec::new(),
                stats,
            };
        }
    };

    let mut pool: HashSet<Core> = HashSet::new();
    let mut communities = Vec::new();
    let mut trip: Option<InterruptReason> = None;
    let l = spec.l();
    'centers: for per_center in &sets {
        if (0..l).any(|i| per_center[i].is_empty()) {
            continue;
        }
        let done = cross_product(per_center, spec.cost, |core, _| {
            stats.candidates += 1;
            if let Err(reason) = guard.note_candidate() {
                trip = Some(reason);
                return false;
            }
            if pool.insert(core.clone()) {
                match get_community_guarded(graph, &mut engine, &core, spec.rmax, spec.cost, guard)
                {
                    // xtask-allow: no_panics — BestCore only returns cores certified by a center
                    Ok(c) => communities.push(c.expect("center u certifies the core")),
                    Err(reason) => {
                        trip = Some(reason);
                        return false;
                    }
                }
            } else {
                stats.duplicates += 1;
            }
            limit.is_none_or(|cap| communities.len() < cap)
        });
        if !done {
            stats.completed = false;
            break 'centers;
        }
    }
    stats.interrupted = trip;
    stats.communities = communities.len();
    stats.peak_bytes = expansion_bytes + pool.len() * (l * 4 + 32);
    BaselineRun { communities, stats }
}

/// `BUk`: bottom-up top-k. Collects every candidate core with its minimum
/// center cost, ranks, and materializes the top `k`. Cannot resume — a
/// larger `k` requires a full re-run (Exp-3).
///
/// `candidate_budget` aborts the run (with `stats.completed = false` and no
/// communities) once that many candidate cores have been generated; the
/// benchmark harness uses it to keep combinatorially explosive cells from
/// exhausting memory. `None` never aborts.
pub fn bu_topk(
    graph: &Graph,
    spec: &QuerySpec,
    k: usize,
    candidate_budget: Option<usize>,
) -> BaselineRun {
    bu_topk_impl(graph, spec, k, candidate_budget, &RunGuard::unlimited())
}

/// [`bu_topk`] validating the spec and running under `guard`. An aborted
/// ranking would be wrong, so an interrupted run carries no communities —
/// only the stats accumulated up to the trip.
pub fn bu_topk_guarded(
    graph: &Graph,
    spec: &QuerySpec,
    k: usize,
    candidate_budget: Option<usize>,
    guard: RunGuard,
) -> Result<Outcome<BaselineRun>, QueryError> {
    spec.validate_for(graph)?;
    Ok(wrap_run(bu_topk_impl(
        graph,
        spec,
        k,
        candidate_budget,
        &guard,
    )))
}

fn bu_topk_impl(
    graph: &Graph,
    spec: &QuerySpec,
    k: usize,
    candidate_budget: Option<usize>,
    guard: &RunGuard,
) -> BaselineRun {
    let mut engine = DijkstraEngine::new(graph.node_count());
    let mut stats = BaselineStats {
        completed: true,
        ..BaselineStats::default()
    };
    if spec.has_empty_keyword() || k == 0 {
        return BaselineRun {
            communities: Vec::new(),
            stats,
        };
    }
    let (sets, expansion_bytes) = match bottom_up_expand(graph, spec, &mut engine, guard) {
        Ok(x) => x,
        Err(reason) => {
            stats.completed = false;
            stats.interrupted = Some(reason);
            return BaselineRun {
                communities: Vec::new(),
                stats,
            };
        }
    };

    let l = spec.l();
    let mut best_cost: HashMap<Core, Weight> = HashMap::new();
    let mut trip: Option<InterruptReason> = None;
    'centers: for per_center in &sets {
        if (0..l).any(|i| per_center[i].is_empty()) {
            continue;
        }
        let done = cross_product(per_center, spec.cost, |core, cost| {
            stats.candidates += 1;
            if let Err(reason) = guard.note_candidate() {
                trip = Some(reason);
                return false;
            }
            best_cost
                .entry(core)
                .and_modify(|c| {
                    stats.duplicates += 1;
                    if cost < *c {
                        *c = cost;
                    }
                })
                .or_insert(cost);
            candidate_budget.is_none_or(|b| stats.candidates < b)
        });
        if !done {
            stats.completed = false;
            break 'centers;
        }
    }
    stats.interrupted = trip;
    stats.peak_bytes = expansion_bytes + best_cost.len() * (l * 4 + 8 + 32);
    if !stats.completed {
        // An aborted ranking would be wrong; report the abort instead.
        return BaselineRun {
            communities: Vec::new(),
            stats,
        };
    }

    let mut ranked: Vec<(Core, Weight)> = best_cost.into_iter().collect();
    ranked.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(k);
    let mut communities: Vec<Community> = Vec::with_capacity(ranked.len());
    for (core, _) in ranked {
        match get_community_guarded(graph, &mut engine, &core, spec.rmax, spec.cost, guard) {
            // xtask-allow: no_panics — BestCore only returns cores certified by a center
            Ok(c) => communities.push(c.expect("core has a center")),
            Err(reason) => {
                stats.completed = false;
                stats.interrupted = Some(reason);
                break;
            }
        }
    }
    stats.communities = communities.len();
    BaselineRun { communities, stats }
}

/// Per-center forward expansion used by the top-down variants: collects
/// the keyword nodes reachable from `u` within `Rmax`, per dimension.
/// Returns `None` (cheaply) if some dimension stays empty.
fn top_down_reach(
    graph: &Graph,
    spec: &QuerySpec,
    engine: &mut DijkstraEngine,
    membership: &HashMap<NodeId, Vec<u8>>,
    u: NodeId,
    guard: &RunGuard,
) -> Result<Option<ReachSets>, InterruptReason> {
    let l = spec.l();
    let mut sets: ReachSets = vec![Vec::new(); l];
    engine.run_guarded(graph, Direction::Forward, [u], spec.rmax, guard, |s| {
        if let Some(dims) = membership.get(&s.node) {
            for &i in dims {
                // xtask-allow: unbounded_alloc — run_guarded charges per settled node; l sets
                sets[i as usize].push((s.node, s.dist));
            }
        }
    })?;
    Ok(sets.iter().all(|s| !s.is_empty()).then_some(sets))
}

fn keyword_membership(spec: &QuerySpec) -> HashMap<NodeId, Vec<u8>> {
    let mut m: HashMap<NodeId, Vec<u8>> = HashMap::new();
    for (i, v_i) in spec.keyword_nodes.iter().enumerate() {
        for &v in v_i {
            // xtask-allow: narrowing_cast — keyword positions are bounded by l, a handful per query
            m.entry(v).or_default().push(i as u8);
        }
    }
    m
}

/// `TDall`: top-down enumeration of all communities.
pub fn td_all(graph: &Graph, spec: &QuerySpec, limit: Option<usize>) -> BaselineRun {
    td_all_impl(graph, spec, limit, &RunGuard::unlimited())
}

/// [`td_all`] validating the spec and running under `guard`. An
/// interrupted run carries the communities materialized before the trip.
pub fn td_all_guarded(
    graph: &Graph,
    spec: &QuerySpec,
    limit: Option<usize>,
    guard: RunGuard,
) -> Result<Outcome<BaselineRun>, QueryError> {
    spec.validate_for(graph)?;
    Ok(wrap_run(td_all_impl(graph, spec, limit, &guard)))
}

fn td_all_impl(
    graph: &Graph,
    spec: &QuerySpec,
    limit: Option<usize>,
    guard: &RunGuard,
) -> BaselineRun {
    let mut engine = DijkstraEngine::new(graph.node_count());
    let mut stats = BaselineStats {
        completed: true,
        ..BaselineStats::default()
    };
    if spec.has_empty_keyword() {
        return BaselineRun {
            communities: Vec::new(),
            stats,
        };
    }
    let membership = keyword_membership(spec);
    let mut pool: HashSet<Core> = HashSet::new();
    let mut communities = Vec::new();
    let mut max_transient = 0usize;
    let mut trip: Option<InterruptReason> = None;
    let l = spec.l();
    'centers: for u in graph.nodes() {
        let sets = match top_down_reach(graph, spec, &mut engine, &membership, u, guard) {
            Ok(Some(sets)) => sets,
            Ok(None) => continue,
            Err(reason) => {
                trip = Some(reason);
                stats.completed = false;
                break 'centers;
            }
        };
        let transient: usize = sets.iter().map(|s| s.len() * PAIR_BYTES).sum();
        max_transient = max_transient.max(transient);
        let done = cross_product(&sets, spec.cost, |core, _| {
            stats.candidates += 1;
            if let Err(reason) = guard.note_candidate() {
                trip = Some(reason);
                return false;
            }
            if pool.insert(core.clone()) {
                match get_community_guarded(graph, &mut engine, &core, spec.rmax, spec.cost, guard)
                {
                    // xtask-allow: no_panics — BestCore only returns cores certified by a center
                    Ok(c) => communities.push(c.expect("center u certifies the core")),
                    Err(reason) => {
                        trip = Some(reason);
                        return false;
                    }
                }
            } else {
                stats.duplicates += 1;
            }
            limit.is_none_or(|cap| communities.len() < cap)
        });
        if !done {
            stats.completed = false;
            break 'centers;
        }
        // The per-center sets are dropped here — the memory advantage of
        // top-down over bottom-up the paper points out for Fig. 9(b).
    }
    stats.interrupted = trip;
    stats.communities = communities.len();
    stats.peak_bytes = max_transient + pool.len() * (l * 4 + 32);
    BaselineRun { communities, stats }
}

/// `TDk`: top-down top-k (rank at the end; no resume). See [`bu_topk`]
/// for `candidate_budget`.
pub fn td_topk(
    graph: &Graph,
    spec: &QuerySpec,
    k: usize,
    candidate_budget: Option<usize>,
) -> BaselineRun {
    td_topk_impl(graph, spec, k, candidate_budget, &RunGuard::unlimited())
}

/// [`td_topk`] validating the spec and running under `guard`; see
/// [`bu_topk_guarded`] for the interrupted-run contract.
pub fn td_topk_guarded(
    graph: &Graph,
    spec: &QuerySpec,
    k: usize,
    candidate_budget: Option<usize>,
    guard: RunGuard,
) -> Result<Outcome<BaselineRun>, QueryError> {
    spec.validate_for(graph)?;
    Ok(wrap_run(td_topk_impl(
        graph,
        spec,
        k,
        candidate_budget,
        &guard,
    )))
}

fn td_topk_impl(
    graph: &Graph,
    spec: &QuerySpec,
    k: usize,
    candidate_budget: Option<usize>,
    guard: &RunGuard,
) -> BaselineRun {
    let mut engine = DijkstraEngine::new(graph.node_count());
    let mut stats = BaselineStats {
        completed: true,
        ..BaselineStats::default()
    };
    if spec.has_empty_keyword() || k == 0 {
        return BaselineRun {
            communities: Vec::new(),
            stats,
        };
    }
    let membership = keyword_membership(spec);
    let mut best_cost: HashMap<Core, Weight> = HashMap::new();
    let mut max_transient = 0usize;
    let mut trip: Option<InterruptReason> = None;
    let l = spec.l();
    'centers: for u in graph.nodes() {
        let sets = match top_down_reach(graph, spec, &mut engine, &membership, u, guard) {
            Ok(Some(sets)) => sets,
            Ok(None) => continue,
            Err(reason) => {
                trip = Some(reason);
                stats.completed = false;
                break 'centers;
            }
        };
        let transient: usize = sets.iter().map(|s| s.len() * PAIR_BYTES).sum();
        max_transient = max_transient.max(transient);
        let done = cross_product(&sets, spec.cost, |core, cost| {
            stats.candidates += 1;
            if let Err(reason) = guard.note_candidate() {
                trip = Some(reason);
                return false;
            }
            best_cost
                .entry(core)
                .and_modify(|c| {
                    stats.duplicates += 1;
                    if cost < *c {
                        *c = cost;
                    }
                })
                .or_insert(cost);
            candidate_budget.is_none_or(|b| stats.candidates < b)
        });
        if !done {
            stats.completed = false;
            break 'centers;
        }
    }
    stats.interrupted = trip;
    stats.peak_bytes = max_transient + best_cost.len() * (l * 4 + 8 + 32);
    if !stats.completed {
        return BaselineRun {
            communities: Vec::new(),
            stats,
        };
    }

    let mut ranked: Vec<(Core, Weight)> = best_cost.into_iter().collect();
    ranked.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(k);
    let mut communities: Vec<Community> = Vec::with_capacity(ranked.len());
    for (core, _) in ranked {
        match get_community_guarded(graph, &mut engine, &core, spec.rmax, spec.cost, guard) {
            // xtask-allow: no_panics — BestCore only returns cores certified by a center
            Ok(c) => communities.push(c.expect("core has a center")),
            Err(reason) => {
                stats.completed = false;
                stats.interrupted = Some(reason);
                break;
            }
        }
    }
    stats.communities = communities.len();
    BaselineRun { communities, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm_all;
    use comm_datasets::paper_example::{fig4_graph, fig4_keyword_nodes, fig4_table1, FIG4_RMAX};
    use std::collections::BTreeSet;

    fn fig4_spec() -> QuerySpec {
        QuerySpec::new(fig4_keyword_nodes(), Weight::new(FIG4_RMAX))
    }

    fn core_set(cs: &[Community]) -> BTreeSet<Core> {
        cs.iter().map(|c| c.core.clone()).collect()
    }

    #[test]
    fn bu_all_matches_pd_all() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let pd = comm_all(&g, &spec);
        let bu = bu_all(&g, &spec, None);
        assert_eq!(core_set(&pd), core_set(&bu.communities));
        assert_eq!(bu.stats.communities, 5);
        assert!(bu.stats.peak_bytes > 0);
    }

    #[test]
    fn td_all_matches_pd_all() {
        let g = fig4_graph();
        let spec = fig4_spec();
        let pd = comm_all(&g, &spec);
        let td = td_all(&g, &spec, None);
        assert_eq!(core_set(&pd), core_set(&td.communities));
    }

    #[test]
    fn bu_duplicates_are_counted() {
        // R3 and R5 have two centers each, so their cores are generated at
        // least twice across centers → duplicates > 0.
        let g = fig4_graph();
        let run = bu_all(&g, &fig4_spec(), None);
        assert!(run.stats.duplicates >= 2, "{:?}", run.stats);
        assert_eq!(
            run.stats.candidates,
            run.stats.communities + run.stats.duplicates
        );
    }

    #[test]
    fn bu_topk_matches_table1_order() {
        let g = fig4_graph();
        let run = bu_topk(&g, &fig4_spec(), 3, None);
        let expect: Vec<Vec<u32>> = fig4_table1()
            .into_iter()
            .take(3)
            .map(|(_, core, _, _)| core.to_vec())
            .collect();
        let got: Vec<Vec<u32>> = run
            .communities
            .iter()
            .map(|c| c.core.0.iter().map(|n| n.0).collect())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn td_topk_matches_table1_order() {
        let g = fig4_graph();
        let run = td_topk(&g, &fig4_spec(), 5, None);
        let costs: Vec<f64> = run.communities.iter().map(|c| c.cost.get()).collect();
        assert_eq!(costs, vec![7.0, 10.0, 11.0, 14.0, 15.0]);
    }

    #[test]
    fn limit_caps_materialization() {
        let g = fig4_graph();
        let run = bu_all(&g, &fig4_spec(), Some(2));
        assert_eq!(run.communities.len(), 2);
        // Early exit: enumeration stops once the cap is hit.
        assert!(run.stats.candidates <= 5);
        let td = td_all(&g, &fig4_spec(), Some(2));
        assert_eq!(td.communities.len(), 2);
    }

    #[test]
    fn empty_keyword_short_circuits() {
        let g = fig4_graph();
        let spec = QuerySpec::new(vec![vec![NodeId(4)], vec![]], Weight::new(8.0));
        assert!(bu_all(&g, &spec, None).communities.is_empty());
        assert!(td_all(&g, &spec, None).communities.is_empty());
        assert!(bu_topk(&g, &spec, 3, None).communities.is_empty());
        assert!(td_topk(&g, &spec, 3, None).communities.is_empty());
    }

    #[test]
    fn k_zero_returns_nothing() {
        let g = fig4_graph();
        assert!(bu_topk(&g, &fig4_spec(), 0, None).communities.is_empty());
        assert!(td_topk(&g, &fig4_spec(), 0, None).communities.is_empty());
    }

    #[test]
    fn candidate_budget_aborts_cleanly() {
        let g = fig4_graph();
        let run = bu_topk(&g, &fig4_spec(), 5, Some(2));
        assert!(!run.stats.completed);
        assert!(run.communities.is_empty());
        assert!(run.stats.candidates >= 2);
        let run = td_topk(&g, &fig4_spec(), 5, Some(2));
        assert!(!run.stats.completed);
        // And a generous budget completes normally.
        let ok = bu_topk(&g, &fig4_spec(), 5, Some(1_000_000));
        assert!(ok.stats.completed);
        assert_eq!(ok.communities.len(), 5);
    }

    #[test]
    fn guarded_baselines_interrupt_cleanly() {
        let g = fig4_graph();
        let spec = fig4_spec();
        // A zero settled budget trips inside the very first expansion.
        for out in [
            bu_all_guarded(&g, &spec, None, RunGuard::new().with_settled_budget(0)).unwrap(),
            td_all_guarded(&g, &spec, None, RunGuard::new().with_settled_budget(0)).unwrap(),
            bu_topk_guarded(&g, &spec, 3, None, RunGuard::new().with_settled_budget(0)).unwrap(),
            td_topk_guarded(&g, &spec, 3, None, RunGuard::new().with_settled_budget(0)).unwrap(),
        ] {
            assert_eq!(out.reason(), Some(InterruptReason::SettledBudgetExhausted));
            let run = out.into_value();
            assert!(run.communities.is_empty());
            assert!(!run.stats.completed);
        }
        // Unlimited guards leave the results untouched.
        let full = bu_all(&g, &spec, None);
        let guarded = bu_all_guarded(&g, &spec, None, RunGuard::new()).unwrap();
        assert!(guarded.is_complete());
        assert_eq!(
            core_set(&full.communities),
            core_set(&guarded.into_value().communities)
        );
    }

    #[test]
    fn guarded_baselines_reject_bad_specs() {
        let g = fig4_graph();
        let bad = QuerySpec::new(vec![vec![NodeId(9999)]], Weight::new(8.0));
        assert!(matches!(
            bu_all_guarded(&g, &bad, None, RunGuard::new()),
            Err(QueryError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            td_topk_guarded(&g, &bad, 3, None, RunGuard::new()),
            Err(QueryError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn td_memory_leaner_than_bu_on_fig4() {
        // The paper's Fig. 9(b) observation: BU keeps every node's keyword
        // sets alive, TD frees them per center.
        let g = fig4_graph();
        let bu = bu_all(&g, &fig4_spec(), None);
        let td = td_all(&g, &fig4_spec(), None);
        assert!(
            td.stats.peak_bytes <= bu.stats.peak_bytes,
            "TD {} should not exceed BU {}",
            td.stats.peak_bytes,
            bu.stats.peak_bytes
        );
    }
}
