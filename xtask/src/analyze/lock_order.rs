//! Lock-order analysis: the heart of `cargo xtask analyze`.
//!
//! Every `Mutex`/`RwLock` struct field (and local binding) gets a stable
//! lock-site id — `Struct.field` for fields, `fn.name` for locals. The
//! analysis walks every function body tracking which guards are live:
//!
//! * a `let g = ...lock()...` binding keeps its guard live until the
//!   enclosing block closes or `drop(g)` runs;
//! * an unbound `...lock()` temporary is live to the end of its statement;
//! * a call to a guard-returning helper (`lock_shard`, `lock_cache`,
//!   `DedupeMap::lock`, ...) is an acquisition of the lock the helper
//!   locks, resolved through per-function summaries to a fixed point.
//!
//! Every acquisition while another guard is live becomes an edge in the
//! whole-workspace lock-order graph. Findings:
//!
//! * [`LOCK_ORDER`]: a cycle in the graph (potential deadlock), a
//!   re-acquisition of a held lock, or an edge that contradicts the
//!   canonical order documented in DESIGN.md ("Concurrency discipline"):
//!   pool shard → admission gate → caches → dedupe table.
//! * [`LOCK_BLOCKING`]: a guard held across an `EnginePool` checkout or a
//!   wire-I/O call (`write_frame`/`read_frame`/`accept`/...) — latency
//!   hazards in the serve path.

use super::{push, FileModel, LOCK_BLOCKING, LOCK_ORDER};
use crate::ast::{Ast, Call, TokKind};
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Canonical lock order (outer first). Edges between these ids must go
/// left-to-right; a right-to-left edge is flagged even without a full cycle.
pub const CANONICAL_ORDER: [&str; 5] = [
    "EnginePool.classes",
    "AdmissionGate.state",
    "QueryEngine.indexes",
    "QueryEngine.answers",
    "DedupeMap.state",
];

/// Calls that block on the network or check out a pooled engine; holding a
/// lock across them is flagged. (`acquire`/`admit` are only flagged when
/// the receiver resolves to the pool/gate.)
const BLOCKING_IO: [&str; 9] = [
    "write_frame",
    "read_frame",
    "read_request_frame",
    "accept",
    "connect",
    "connect_timeout",
    "write_all",
    "read_exact",
    "flush",
];

/// Which lock (or which parameter's lock) a guard-returning helper locks.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GuardSource {
    Lock(String),
    Param(usize),
}

/// Per-function summary, computed to a fixed point across the workspace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct FnSummary {
    /// Lock ids this fn may acquire (and release) during a call.
    acquires: BTreeSet<String>,
    /// When the fn returns a guard, the lock that guard holds.
    returns_guard: Option<GuardSource>,
}

/// A lock-order edge with provenance.
struct Edge {
    file: usize,
    line: usize,
}

struct Model<'a> {
    files: &'a [FileModel],
    /// `(struct, field)` → lock id.
    field_locks: BTreeMap<(String, String), String>,
    /// field name → owning structs (for unique-field fallback).
    by_field: BTreeMap<String, Vec<String>>,
    /// Every struct/impl type name in the workspace.
    known_types: BTreeSet<String>,
    /// `(impl_ty_or_empty, fn_name)` → `(file, fn index)` list.
    fns_by_key: BTreeMap<(String, String), Vec<(usize, usize)>>,
    /// Summaries parallel to `files[i].ast.fns`.
    summaries: Vec<Vec<FnSummary>>,
}

/// Per-function resolution context.
struct FnCtx<'a> {
    file: usize,
    impl_ty: Option<&'a str>,
    params: &'a [(String, String)],
    /// local binding → lock id (for `let m = Mutex::new(...)` locals).
    local_locks: BTreeMap<String, String>,
    /// local binding → struct type (for `let pool = EnginePool::global()`).
    local_types: BTreeMap<String, String>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Target {
    Lock(String),
    ParamLock(usize),
}

/// Runs the lock-order analysis over the whole workspace model.
pub fn check(files: &[FileModel], out: &mut Vec<Finding>) {
    let model = Model::build(files);
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (fi, fm) in files.iter().enumerate() {
        for (fx, f) in fm.ast.fns.iter().enumerate() {
            if f.body.is_none() {
                continue;
            }
            let ctx = model.fn_ctx(fi, fx);
            model.walk_edges(&ctx, fm, fx, &mut edges, out);
        }
    }

    // Self-edges: re-acquiring a lock already held deadlocks immediately.
    for ((from, to), e) in &edges {
        if from == to {
            let fm = &files[e.file];
            push(
                &fm.source,
                out,
                LOCK_ORDER,
                e.line,
                format!("lock `{from}` acquired while already held (self-deadlock)"),
                "release the first guard before re-acquiring, or restructure so one \
                 acquisition covers both uses",
            );
        }
    }

    // Canonical-order violations.
    let rank = |id: &str| CANONICAL_ORDER.iter().position(|c| *c == id);
    for ((from, to), e) in &edges {
        if from == to {
            continue;
        }
        if let (Some(rf), Some(rt)) = (rank(from), rank(to)) {
            if rf > rt {
                let fm = &files[e.file];
                push(
                    &fm.source,
                    out,
                    LOCK_ORDER,
                    e.line,
                    format!(
                        "acquiring `{to}` while holding `{from}` violates the canonical \
                         lock order (pool shard → admission gate → caches → dedupe table)"
                    ),
                    "acquire locks in the canonical order documented in DESIGN.md \
                     (Concurrency discipline)",
                );
            }
        }
    }

    // Cycles (length >= 2).
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        if from != to {
            adj.entry(from).or_default().push(to);
        }
    }
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for ((from, to), e) in &edges {
        if from == to {
            continue;
        }
        if let Some(path) = find_path(&adj, to, from) {
            // `from → to → ... → from` is a cycle.
            let mut nodes: BTreeSet<String> = path.iter().map(|s| s.to_string()).collect();
            nodes.insert(from.clone());
            if reported.insert(nodes) {
                let mut cycle = vec![from.as_str()];
                cycle.extend(path.iter().copied());
                cycle.push(from.as_str());
                let fm = &files[e.file];
                push(
                    &fm.source,
                    out,
                    LOCK_ORDER,
                    e.line,
                    format!("lock-order cycle: {}", cycle.join(" → ")),
                    "pick one global order for these locks (see DESIGN.md, Concurrency \
                     discipline) and acquire them consistently",
                );
            }
        }
    }
}

/// BFS path from `start` to `goal` (inclusive of both, excluding `start`'s
/// repetition); None when unreachable.
fn find_path<'g>(
    adj: &BTreeMap<&'g str, Vec<&'g str>>,
    start: &'g str,
    goal: &str,
) -> Option<Vec<&'g str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    seen.insert(start);
    while let Some(n) = queue.pop_front() {
        if n == goal {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &m in adj.get(n).into_iter().flatten() {
            if seen.insert(m) {
                prev.insert(m, n);
                queue.push_back(m);
            }
        }
    }
    None
}

impl<'a> Model<'a> {
    fn build(files: &'a [FileModel]) -> Model<'a> {
        let mut field_locks = BTreeMap::new();
        let mut by_field: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut known_types = BTreeSet::new();
        let mut fns_by_key: BTreeMap<(String, String), Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, fm) in files.iter().enumerate() {
            for s in &fm.ast.structs {
                known_types.insert(s.name.clone());
                for fld in &s.fields {
                    if is_lock_type(&fld.ty) {
                        let id = format!("{}.{}", s.name, fld.name);
                        field_locks.insert((s.name.clone(), fld.name.clone()), id);
                        by_field
                            .entry(fld.name.clone())
                            .or_default()
                            .push(s.name.clone());
                    }
                }
            }
            for imp in &fm.ast.impls {
                if !imp.ty.is_empty() {
                    known_types.insert(imp.ty.clone());
                }
            }
            for (fx, f) in fm.ast.fns.iter().enumerate() {
                let key = (f.impl_ty.clone().unwrap_or_default(), f.name.clone());
                fns_by_key.entry(key).or_default().push((fi, fx));
            }
        }
        let summaries = files
            .iter()
            .map(|fm| vec![FnSummary::default(); fm.ast.fns.len()])
            .collect();
        let mut model = Model {
            files,
            field_locks,
            by_field,
            known_types,
            fns_by_key,
            summaries,
        };
        model.fixed_point();
        model
    }

    /// Iterates summary computation until no summary changes (bounded).
    fn fixed_point(&mut self) {
        for _ in 0..8 {
            let mut changed = false;
            for fi in 0..self.files.len() {
                for fx in 0..self.files[fi].ast.fns.len() {
                    let next = self.summarize(fi, fx);
                    if next != self.summaries[fi][fx] {
                        self.summaries[fi][fx] = next;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn fn_ctx(&self, fi: usize, fx: usize) -> FnCtx<'a> {
        let fm = &self.files[fi];
        let f = &fm.ast.fns[fx];
        let mut ctx = FnCtx {
            file: fi,
            impl_ty: f.impl_ty.as_deref(),
            params: &f.params,
            local_locks: BTreeMap::new(),
            local_types: BTreeMap::new(),
        };
        let Some((open, close)) = f.body else {
            return ctx;
        };
        // Pre-pass: local `let` bindings that are locks or known types.
        let ast = &fm.ast;
        let mut i = open + 1;
        while i < close {
            if ast.ident(i) == Some("let") {
                let mut j = i + 1;
                let mut name: Option<&str> = None;
                while j < close {
                    match ast.toks[j].kind {
                        TokKind::Ident => {
                            let id = ast.text(j);
                            if id == "mut" || id == "ref" {
                                j += 1;
                                continue;
                            }
                            if id.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                                // Pattern constructor (`Ok(x)`) — keep going.
                                j += 1;
                                continue;
                            }
                            name = Some(id);
                            break;
                        }
                        TokKind::Punct('=') | TokKind::Punct(';') => break,
                        _ => j += 1,
                    }
                }
                // Statement text up to the first `;`.
                let mut stmt_end = i;
                let mut k = i;
                while k < close {
                    if ast.is_punct(k, ';') {
                        stmt_end = k;
                        break;
                    }
                    k += 1;
                }
                if stmt_end > i {
                    let text = ast.span_text(i, stmt_end);
                    if let Some(name) = name {
                        if is_lock_type(text)
                            || text.contains("Mutex::new")
                            || text.contains("RwLock::new")
                        {
                            ctx.local_locks
                                .insert(name.to_string(), format!("{}.{}", f.name, name));
                        } else {
                            // Light type inference from the initializer.
                            for t in idents_of(text) {
                                if self.known_types.contains(t) {
                                    ctx.local_types.insert(name.to_string(), t.to_string());
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            i += 1;
        }
        ctx
    }

    /// Computes one function's summary using current callee summaries.
    fn summarize(&self, fi: usize, fx: usize) -> FnSummary {
        let fm = &self.files[fi];
        let f = &fm.ast.fns[fx];
        let Some((open, close)) = f.body else {
            return FnSummary::default();
        };
        let ctx = self.fn_ctx(fi, fx);
        let returns_guard_ty = f.ret.contains("Guard");
        let mut acquires = BTreeSet::new();
        let mut first_source: Option<GuardSource> = None;
        for call in fm.ast.calls_in(open + 1, close) {
            for ev in self.call_events(&ctx, &fm.ast, &call) {
                match ev {
                    Target::Lock(id) => {
                        if returns_guard_ty && first_source.is_none() {
                            first_source = Some(GuardSource::Lock(id));
                        } else {
                            acquires.insert(id);
                        }
                    }
                    Target::ParamLock(k) => {
                        if returns_guard_ty && first_source.is_none() {
                            first_source = Some(GuardSource::Param(k));
                        }
                        // A param lock used-but-not-returned cannot be
                        // named from here; call sites resolve it.
                    }
                }
            }
            // Transitive acquisitions through callees.
            if let Some(s) = self.callee_summary(&ctx, &fm.ast, &call) {
                acquires.extend(s.acquires.iter().cloned());
            }
        }
        FnSummary {
            acquires,
            returns_guard: first_source,
        }
    }

    /// The lock acquisitions a single call performs, resolved in `ctx`:
    /// direct `.lock()/.read()/.write()` on a known lock, or a call to a
    /// guard-returning helper (its returned lock).
    fn call_events(&self, ctx: &FnCtx, ast: &Ast, call: &Call) -> Vec<Target> {
        let mut out = Vec::new();
        if call.is_method && matches!(call.name.as_str(), "lock" | "read" | "write") {
            let chain = ast.receiver_chain(call.tok);
            if let Some(t) = self.resolve_chain(ctx, &chain) {
                out.push(t);
                return out;
            }
        }
        if let Some(s) = self.callee_summary(ctx, ast, call) {
            if let Some(src) = &s.returns_guard {
                match src {
                    GuardSource::Lock(id) => out.push(Target::Lock(id.clone())),
                    GuardSource::Param(k) => {
                        if let Some(chain) = arg_chain(ast, call, *k) {
                            if let Some(t) = self.resolve_chain(ctx, &chain) {
                                out.push(t);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Resolves a receiver/argument chain to a lock.
    fn resolve_chain(&self, ctx: &FnCtx, chain: &[String]) -> Option<Target> {
        let last = chain.last()?;
        if let Some(owners) = self.by_field.get(last) {
            if chain.len() >= 2 {
                let parent = &chain[chain.len() - 2];
                if let Some(ty) = self.elem_type(ctx, parent) {
                    if let Some(id) = self.field_locks.get(&(ty, last.clone())) {
                        return Some(Target::Lock(id.clone()));
                    }
                }
            }
            if owners.len() == 1 {
                return Some(Target::Lock(format!("{}.{}", owners[0], last)));
            }
        }
        if chain.len() == 1 {
            if let Some(id) = ctx.local_locks.get(last) {
                return Some(Target::Lock(id.clone()));
            }
            if let Some(k) = ctx.params.iter().position(|(n, _)| n == last) {
                if is_lock_type(&ctx.params[k].1) {
                    return Some(Target::ParamLock(k));
                }
            }
        }
        None
    }

    /// The struct type of one chain element (`self`, a param, or a local).
    fn elem_type(&self, ctx: &FnCtx, elem: &str) -> Option<String> {
        if elem == "self" {
            return ctx.impl_ty.map(str::to_string);
        }
        if let Some((_, ty)) = ctx.params.iter().find(|(n, _)| n == elem) {
            return self.struct_in(ty);
        }
        ctx.local_types.get(elem).cloned()
    }

    /// The last known struct/impl type named in a type text.
    fn struct_in(&self, ty: &str) -> Option<String> {
        idents_of(ty)
            .into_iter()
            .filter(|t| self.known_types.contains(*t))
            .next_back()
            .map(str::to_string)
    }

    /// The receiver type of a call: `self` → impl type; params/locals by
    /// inference; path calls (`EnginePool::global().f()`) by the first
    /// known type in the chain, refined through that fn's return type.
    fn receiver_type(&self, ctx: &FnCtx, ast: &Ast, call: &Call) -> Option<String> {
        let chain = ast.receiver_chain(call.tok);
        if call.is_method {
            let root = chain.first()?;
            if root == "self" {
                return ctx.impl_ty.map(str::to_string);
            }
            if let Some(t) = self.elem_type(ctx, root) {
                return Some(t);
            }
            // Path receiver: `Type::assoc().method()`.
            let known = chain.iter().find(|e| self.known_types.contains(*e))?;
            if let Some(tail) = chain.last() {
                if let Some(cands) = self.fns_by_key.get(&(known.clone(), tail.clone())) {
                    for &(fi, fx) in cands {
                        if let Some(r) = self.struct_in(&self.files[fi].ast.fns[fx].ret) {
                            return Some(r);
                        }
                    }
                }
            }
            Some(known.clone())
        } else {
            // Path call `Type::name(...)`: collect `::` segments backward.
            let mut j = call.tok;
            while j >= 3
                && ast.is_punct(j - 1, ':')
                && ast.is_punct(j - 2, ':')
                && ast.toks.get(j - 3).map(|t| t.kind) == Some(TokKind::Ident)
            {
                let seg = ast.text(j - 3).to_string();
                if self.known_types.contains(&seg) {
                    return Some(seg);
                }
                j -= 3;
            }
            None
        }
    }

    /// The merged summary of the fn(s) a call may invoke, or None for
    /// unresolvable/std calls.
    fn callee_summary(&self, ctx: &FnCtx, ast: &Ast, call: &Call) -> Option<FnSummary> {
        let key = if call.is_method {
            (self.receiver_type(ctx, ast, call)?, call.name.clone())
        } else {
            match self.receiver_type(ctx, ast, call) {
                Some(t) => (t, call.name.clone()),
                None => (String::new(), call.name.clone()),
            }
        };
        let cands = self.fns_by_key.get(&key)?;
        // Prefer same-file candidates for free fns (helper shadowing).
        let picked: Vec<&(usize, usize)> = if key.0.is_empty() {
            let same: Vec<_> = cands.iter().filter(|(fi, _)| *fi == ctx.file).collect();
            if same.is_empty() {
                cands.iter().collect()
            } else {
                same
            }
        } else {
            cands.iter().collect()
        };
        let mut merged = FnSummary::default();
        for &&(fi, fx) in &picked {
            let s = &self.summaries[fi][fx];
            merged.acquires.extend(s.acquires.iter().cloned());
            if merged.returns_guard.is_none() {
                merged.returns_guard = s.returns_guard.clone();
            }
        }
        if merged.acquires.is_empty() && merged.returns_guard.is_none() {
            return None;
        }
        Some(merged)
    }

    /// Walks one fn body tracking live guards, emitting lock-order edges
    /// and blocking-call findings.
    fn walk_edges(
        &self,
        ctx: &FnCtx,
        fm: &FileModel,
        fx: usize,
        edges: &mut BTreeMap<(String, String), Edge>,
        out: &mut Vec<Finding>,
    ) {
        let ast = &fm.ast;
        let f = &ast.fns[fx];
        let Some((open, close)) = f.body else { return };

        let mut live: Vec<LiveGuardSlot> = Vec::new();
        let mut depth = 1usize;
        let mut pending: Option<Pending> = None;

        let calls = ast.calls_in(open + 1, close);
        let mut call_iter = calls.iter().peekable();

        let mut i = open + 1;
        while i < close {
            match ast.toks[i].kind {
                TokKind::Open('{') => {
                    depth += 1;
                    // An `if let`/`while let` scrutinee ends where the body
                    // block opens.
                    if matches!(pending, Some(Pending::Scrutinee(_))) {
                        pending = None;
                    }
                }
                TokKind::Close('}') => {
                    depth = depth.saturating_sub(1);
                    live.retain(|g| g.depth <= depth);
                }
                TokKind::Punct(';') => {
                    live.retain(|g| !(g.temp && g.depth >= depth));
                    pending = None;
                }
                TokKind::Ident => {
                    if ast.text(i) == "let" {
                        // `if let P = scrutinee` / `while let P = scrutinee`
                        // bind the *match result*, not a guard acquired in
                        // the scrutinee — such a guard lives exactly as
                        // long as the body block.
                        let conditional =
                            i > 0 && matches!(ast.ident(i - 1), Some("if") | Some("while"));
                        if conditional {
                            pending = Some(Pending::Scrutinee(depth + 1));
                        } else {
                            // Find the binding name (skip pattern wrappers).
                            let mut j = i + 1;
                            while j < close {
                                match ast.toks[j].kind {
                                    TokKind::Ident => {
                                        let id = ast.text(j);
                                        if id == "mut"
                                            || id == "ref"
                                            || id
                                                .chars()
                                                .next()
                                                .is_some_and(|c| c.is_ascii_uppercase())
                                        {
                                            j += 1;
                                            continue;
                                        }
                                        pending = Some(Pending::Let(id.to_string(), depth));
                                        break;
                                    }
                                    TokKind::Punct('=') | TokKind::Punct(';') => break,
                                    _ => j += 1,
                                }
                            }
                        }
                    }
                }
                _ => {}
            }

            // Process any call whose ident token is here.
            while let Some(call) = call_iter.peek() {
                if call.tok > i {
                    break;
                }
                if call.tok == i {
                    let call = call_iter.next().expect("peeked");
                    self.handle_call(ctx, fm, call, &mut live, &mut pending, depth, edges, out);
                    break;
                }
                call_iter.next();
            }
            i += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_call(
        &self,
        ctx: &FnCtx,
        fm: &FileModel,
        call: &Call,
        live: &mut Vec<LiveGuardSlot>,
        pending: &mut Option<Pending>,
        depth: usize,
        edges: &mut BTreeMap<(String, String), Edge>,
        out: &mut Vec<Finding>,
    ) {
        let ast = &fm.ast;
        let line = ast.line(&fm.source, call.tok);

        // `drop(g)` releases a bound guard.
        if !call.is_method && call.name == "drop" {
            if let Some(chain) = arg_chain(ast, call, 0) {
                if chain.len() == 1 {
                    live.retain(|g| g.name.as_deref() != Some(chain[0].as_str()));
                }
            }
            return;
        }

        // Blocking calls while holding a guard.
        let is_blocking = if BLOCKING_IO.contains(&call.name.as_str()) {
            true
        } else if call.name == "acquire"
            || call.name == "admit"
            || call.name == "poison_shard_for_chaos"
        {
            let rty = self.receiver_type(ctx, ast, call);
            matches!(rty.as_deref(), Some("EnginePool") | Some("AdmissionGate"))
        } else {
            false
        };
        if is_blocking && !live.is_empty() {
            let held: Vec<&str> = live.iter().map(|g| g.lock.as_str()).collect();
            push(
                &fm.source,
                out,
                LOCK_BLOCKING,
                line,
                format!("`{}` called while holding {}", call.name, held.join(", ")),
                "release the guard before pool checkout / wire I/O (clone or stage the \
                 data out of the critical section)",
            );
        }

        // New acquisitions: edges from every live lock, then register.
        let events = self.call_events(ctx, ast, call);
        for ev in events {
            let id = match ev {
                Target::Lock(id) => id,
                Target::ParamLock(_) => continue, // identity unknown here
            };
            for g in live.iter() {
                edges.entry((g.lock.clone(), id.clone())).or_insert(Edge {
                    file: ctx.file,
                    line,
                });
            }
            match pending {
                Some(Pending::Let(name, let_depth)) => {
                    live.push(LiveGuardSlot {
                        name: Some(name.clone()),
                        lock: id,
                        depth: *let_depth,
                        temp: false,
                    });
                    *pending = None;
                }
                Some(Pending::Scrutinee(body_depth)) => {
                    // Dies when the if/while body block closes.
                    live.push(LiveGuardSlot {
                        name: None,
                        lock: id,
                        depth: *body_depth,
                        temp: false,
                    });
                }
                None => live.push(LiveGuardSlot {
                    name: None,
                    lock: id,
                    depth,
                    temp: true,
                }),
            }
        }

        // Transient acquisitions inside callees (acquired + released there).
        if let Some(s) = self.callee_summary(ctx, ast, call) {
            for inner in &s.acquires {
                for g in live.iter() {
                    if g.lock == *inner {
                        continue; // re-entry is reported via direct walks
                    }
                    edges
                        .entry((g.lock.clone(), inner.clone()))
                        .or_insert(Edge {
                            file: ctx.file,
                            line,
                        });
                }
            }
        }
    }
}

/// What the next acquisition should bind to.
enum Pending {
    /// `let name = ...` — the guard is named and block-scoped.
    Let(String, usize),
    /// `if let`/`while let` scrutinee — the guard lives exactly as long
    /// as the body block (registered at the body's depth).
    Scrutinee(usize),
}

/// Live-guard slot (name is None for statement temporaries).
struct LiveGuardSlot {
    name: Option<String>,
    lock: String,
    depth: usize,
    temp: bool,
}

/// True when a type text names a `Mutex`/`RwLock` at a token boundary.
fn is_lock_type(ty: &str) -> bool {
    for needle in ["Mutex<", "RwLock<"] {
        let mut from = 0;
        while let Some(rel) = ty[from..].find(needle) {
            let pos = from + rel;
            let boundary = pos == 0 || {
                let b = ty.as_bytes()[pos - 1];
                !(b.is_ascii_alphanumeric() || b == b'_')
            };
            if boundary {
                return true;
            }
            from = pos + needle.len();
        }
    }
    false
}

/// All identifier-ish words of a text slice.
fn idents_of(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(&text[start..i]);
        } else {
            i += 1;
        }
    }
    out
}

/// The leading ident chain of the `k`-th argument of a call:
/// `&self.indexes` → `["self", "indexes"]`, `&slots[i]` → `["slots"]`.
fn arg_chain(ast: &Ast, call: &Call, k: usize) -> Option<Vec<String>> {
    let open = call.tok + 1;
    if ast.toks.get(open).map(|t| t.kind) != Some(TokKind::Open('(')) {
        return None;
    }
    let close = *ast.partner.get(open)?;
    if close == usize::MAX {
        return None;
    }
    // Split args at level-0 commas.
    let mut args: Vec<(usize, usize)> = Vec::new();
    let mut seg = open + 1;
    let mut m = open + 1;
    while m <= close {
        if m == close || ast.toks[m].kind == TokKind::Punct(',') {
            if seg < m {
                args.push((seg, m));
            }
            seg = m + 1;
            m += 1;
            continue;
        }
        if let TokKind::Open(_) = ast.toks[m].kind {
            let p = ast.partner[m];
            if p == usize::MAX || p > close {
                break;
            }
            m = p + 1;
            continue;
        }
        m += 1;
    }
    let (lo, hi) = *args.get(k)?;
    let mut chain = Vec::new();
    let mut j = lo;
    // Skip leading `&`, `mut`.
    while j < hi {
        match ast.toks[j].kind {
            TokKind::Punct('&') => j += 1,
            TokKind::Ident if ast.text(j) == "mut" => j += 1,
            _ => break,
        }
    }
    while j < hi {
        match ast.toks[j].kind {
            TokKind::Ident => {
                chain.push(ast.text(j).to_string());
                j += 1;
            }
            TokKind::Punct('.') => j += 1,
            TokKind::Punct(':') if ast.is_punct(j + 1, ':') => j += 2,
            TokKind::Open(_) => {
                let p = ast.partner[j];
                if p == usize::MAX || p >= hi {
                    break;
                }
                j = p + 1;
            }
            _ => break,
        }
    }
    if chain.is_empty() {
        None
    } else {
        Some(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::FileModel;
    use std::path::PathBuf;

    fn models(srcs: &[(&str, &str)]) -> Vec<FileModel> {
        srcs.iter()
            .map(|(p, s)| FileModel::parse(PathBuf::from(p), s.to_string()))
            .collect()
    }

    fn live_findings(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files = models(srcs);
        let mut out = Vec::new();
        check(&files, &mut out);
        out.into_iter().filter(|f| !f.waived).collect()
    }

    const CYCLE_SRC: &str = "\
struct A { m1: Mutex<u32> }
struct B { m2: Mutex<u32> }
impl A {
    fn ab(&self, b: &B) {
        let g = self.m1.lock();
        let h = b.m2.lock();
        use_both(g, h);
    }
}
impl B {
    fn ba(&self, a: &A) {
        let g = self.m2.lock();
        let h = a.m1.lock();
        use_both(g, h);
    }
}
";

    #[test]
    fn seeded_lock_order_cycle_detected() {
        let out = live_findings(&[("crates/x/src/lib.rs", CYCLE_SRC)]);
        assert!(
            out.iter()
                .any(|f| f.rule == LOCK_ORDER && f.message.contains("cycle")),
            "{out:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
struct A { m1: Mutex<u32> }
struct B { m2: Mutex<u32> }
impl A {
    fn ab(&self, b: &B) {
        let g = self.m1.lock();
        let h = b.m2.lock();
        use_both(g, h);
    }
    fn ab2(&self, b: &B) {
        let g = self.m1.lock();
        let h = b.m2.lock();
        use_both(g, h);
    }
}
";
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn sequential_statement_temporaries_do_not_nest() {
        let src = "\
struct A { m1: Mutex<u32>, m2: Mutex<u32> }
impl A {
    fn seq(&self) {
        let a = self.m1.lock().len();
        let b = self.m2.lock().len();
        use_both(a, b);
    }
}
";
        // Each guard is a temporary that dies at its own `;` — no edge,
        // except: the `let a = ...` binds the *result* (len), not the
        // guard. The analyzer binds the lock to the let conservatively,
        // but both statements still don't overlap.
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        // m1's guard is considered bound to `a` (conservative), so an
        // m1 → m2 edge may exist, but no cycle and no canonical violation.
        assert!(out.iter().all(|f| !f.message.contains("cycle")), "{out:?}");
    }

    #[test]
    fn scoped_guard_dies_at_block_close() {
        let src = "\
struct A { m1: Mutex<u32>, m2: Mutex<u32> }
impl A {
    fn scoped(&self) {
        {
            let g = self.m1.lock();
            touch(g);
        }
        let h = self.m2.lock();
        touch(h);
    }
    fn scoped_rev(&self) {
        {
            let g = self.m2.lock();
            touch(g);
        }
        let h = self.m1.lock();
        touch(h);
    }
}
";
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn dropped_guard_is_released() {
        let src = "\
struct A { m1: Mutex<u32>, m2: Mutex<u32> }
impl A {
    fn fwd(&self) {
        let g = self.m1.lock();
        drop(g);
        let h = self.m2.lock();
        touch(h);
    }
    fn rev(&self) {
        let g = self.m2.lock();
        drop(g);
        let h = self.m1.lock();
        touch(h);
    }
}
";
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn guard_returning_helper_propagates() {
        let src = "\
struct Pool { classes: Mutex<u32> }
struct Cache { entries: Mutex<u32> }
impl Pool {
    fn lock_shard(&self) -> MutexGuard<'_, u32> {
        self.classes.lock()
    }
}
impl Cache {
    fn bad(&self, pool: &Pool) {
        let c = self.entries.lock();
        let s = pool.lock_shard();
        use_both(c, s);
    }
    fn also_bad(&self, pool: &Pool) {
        let s = pool.lock_shard();
        let c = self.entries.lock();
        use_both(c, s);
    }
}
";
        // Both orders exist → cycle through the helper-returned guard.
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(
            out.iter()
                .any(|f| f.rule == LOCK_ORDER && f.message.contains("cycle")),
            "{out:?}"
        );
    }

    #[test]
    fn blocking_call_while_holding_guard_flagged() {
        let src = "\
struct S { state: Mutex<u32> }
impl S {
    fn bad(&self, stream: &mut TcpStream) {
        let g = self.state.lock();
        write_frame(stream, &payload(g));
    }
}
";
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(out.iter().any(|f| f.rule == LOCK_BLOCKING), "{out:?}");
    }

    #[test]
    fn blocking_call_after_release_is_clean() {
        let src = "\
struct S { state: Mutex<u32> }
impl S {
    fn good(&self, stream: &mut TcpStream) {
        let bytes = { let g = self.state.lock(); encode(g) };
        write_frame(stream, &bytes);
    }
}
";
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn condvar_wait_on_held_guard_is_not_blocking() {
        let src = "\
struct Gate { state: Mutex<u32>, freed: Condvar }
impl Gate {
    fn wait_loop(&self) {
        let mut st = self.state.lock();
        loop {
            st = self.freed.wait_timeout(st, step);
        }
    }
}
";
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn if_let_scrutinee_guard_dies_with_body() {
        // The binding captures the cache-hit value, not the guard; after
        // the early-return body the lock is free again.
        let src = "\
struct S { state: Mutex<u32> }
impl S {
    fn cached(&self) -> u32 {
        if let Some(v) = self.state.lock().get() {
            return v;
        }
        let g = self.state.lock();
        compute(g)
    }
}
";
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn while_let_frame_pump_guard_scoped_to_body() {
        let src = "\
struct S { state: Mutex<Queue> }
impl S {
    fn drain(&self) {
        while let Some(job) = self.state.lock().pop() {
            run(job);
        }
        let g = self.state.lock();
        finish(g);
    }
}
";
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn canonical_order_violation_flagged() {
        let src = "\
struct DedupeMap { state: Mutex<u32> }
struct AdmissionGate { state: Mutex<u32> }
impl DedupeMap {
    fn backward(&self, gate: &AdmissionGate) {
        let d = self.state.lock();
        let g = gate.state.lock();
        use_both(d, g);
    }
}
";
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(
            out.iter()
                .any(|f| f.rule == LOCK_ORDER && f.message.contains("canonical")),
            "{out:?}"
        );
    }

    #[test]
    fn self_reacquire_flagged() {
        let src = "\
struct S { state: Mutex<u32> }
impl S {
    fn twice(&self) {
        let a = self.state.lock();
        let b = self.state.lock();
        use_both(a, b);
    }
}
";
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(
            out.iter()
                .any(|f| f.rule == LOCK_ORDER && f.message.contains("already held")),
            "{out:?}"
        );
    }

    #[test]
    fn unrelated_read_write_calls_are_ignored() {
        let src = "\
struct S { state: Mutex<u32> }
impl S {
    fn io(&self, stream: &mut TcpStream, stdin: &Stdin) {
        let mut buf = [0u8; 4];
        stream.read(&mut buf);
        stdin.lock();
        stream.write(&buf);
    }
}
";
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn local_mutex_bindings_resolve() {
        let src = "\
fn run() {
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let slots = Mutex::new(0u32);
    let a = latencies.lock();
    let b = slots.lock();
    use_both(a, b);
    let c = slots.lock();
    let d = latencies.lock();
    use_both(c, d);
}
";
        // Both orders on two locks — cycle between the two local locks.
        let out = live_findings(&[("crates/x/src/lib.rs", src)]);
        assert!(out.iter().any(|f| f.message.contains("cycle")), "{out:?}");
    }

    #[test]
    fn waived_finding_is_suppressed() {
        let src = CYCLE_SRC.replace(
            "        let h = b.m2.lock();\n        use_both(g, h);\n    }\n}\n",
            "        // xtask-allow: lock_order — intentional for the fixture\n        let h = b.m2.lock();\n        use_both(g, h);\n    }\n}\n",
        );
        // Only one edge carries provenance; whichever line reports, the
        // waiver on that acquisition suppresses the cycle finding when it
        // anchors there. This exercises waiver plumbing rather than
        // asserting zero findings (the anchor edge may be the other one).
        let files = models(&[("crates/x/src/lib.rs", &src)]);
        let mut out = Vec::new();
        check(&files, &mut out);
        assert!(!out.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = format!("#[cfg(test)]\nmod tests {{\n{CYCLE_SRC}\n}}\n");
        let out = live_findings(&[("crates/x/src/lib.rs", &src)]);
        assert!(out.is_empty(), "{out:?}");
    }
}
