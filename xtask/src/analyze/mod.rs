//! `cargo xtask analyze` — the concurrency-discipline analysis pass.
//!
//! Where `lint` works line-by-line on masked text, `analyze` parses every
//! file into a token tree ([`crate::ast`]) and runs whole-workspace
//! structural rules:
//!
//! * [`lock_order`] — the lock-order graph: cycles ([`LOCK_ORDER`]) and
//!   guards held across pool checkout / wire I/O ([`LOCK_BLOCKING`]);
//! * [`alloc`] — collection growth inside guarded loops without a
//!   `RunGuard` byte-budget charge ([`UNBOUNDED_ALLOC`]);
//! * [`protocol`] — encode/decode symmetry for every wire-protocol
//!   variant and kind/status constant ([`PROTOCOL_SYMMETRY`]).
//!
//! Findings share the `lint` plumbing (`Finding`, waivers, test-line
//! exemption), so `// xtask-allow: lock_order — reason` works the same way
//! as for the lint rules.

pub mod alloc;
pub mod lock_order;
pub mod protocol;

use crate::ast::Ast;
use crate::rules::Finding;
use crate::scan::SourceFile;
use std::path::PathBuf;

/// Rule id for lock-order cycles, canonical-order violations, and
/// re-acquisition of a held lock.
pub const LOCK_ORDER: &str = "lock_order";
/// Rule id for guards held across `EnginePool` checkout or wire I/O.
pub const LOCK_BLOCKING: &str = "lock_blocking";
/// Rule id for uncharged collection growth in guarded loops.
pub const UNBOUNDED_ALLOC: &str = "unbounded_alloc";
/// Rule id for asymmetric wire-protocol encode/decode arms.
pub const PROTOCOL_SYMMETRY: &str = "protocol_symmetry";

/// One parsed file: the lexical model plus its token tree.
pub struct FileModel {
    /// The masked-text model shared with the lint rules.
    pub source: SourceFile,
    /// The token tree built over the masked text.
    pub ast: Ast,
}

impl FileModel {
    /// Parses raw text into both models.
    pub fn parse(path: PathBuf, text: String) -> FileModel {
        let source = SourceFile::from_text(path, text);
        let ast = Ast::parse(&source);
        FileModel { source, ast }
    }
}

/// Runs every analyzer rule over the workspace model.
pub fn analyze(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    lock_order::check(files, &mut out);
    for fm in files {
        if alloc::in_scope(&fm.source.path) {
            alloc::check(fm, &mut out);
        }
        if protocol::in_scope(&fm.source.path) {
            protocol::check(fm, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Shared push helper: drops test-line findings, flags waived ones.
pub(crate) fn push(
    f: &SourceFile,
    out: &mut Vec<Finding>,
    rule: &'static str,
    line: usize,
    message: String,
    suggestion: &str,
) {
    if f.is_test_line(line) {
        return;
    }
    out.push(Finding {
        file: f.path.clone(),
        line,
        rule,
        message,
        suggestion: suggestion.to_string(),
        waived: f.is_waived(rule, line),
    });
}
